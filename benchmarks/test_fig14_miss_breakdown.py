"""Bench: regenerate Fig. 14 (L1 miss breakdown under DR)."""

from conftest import MIXES, record

from repro.experiments import fig14_miss_breakdown


def test_fig14_miss_breakdown(run_once):
    result = run_once(lambda: fig14_miss_breakdown.run(n_mixes=MIXES))
    record(result)
    # paper: 54.8% of L1 misses delegated; 74.4% of delegated requests are
    # remote hits.  Shape: a large delegated share, mostly remote hits.
    assert result.data["mean_delegated"] > 0.15
    assert result.data["mean_remote_hit_rate"] > 0.6
    by_bench = dict(result.rows)
    # fractions are a valid partition per benchmark
    for name, v in by_bench.items():
        assert abs(v["llc"] + v["remote_hit"] + v["remote_miss"] - 1.0) < 1e-6
    # remote misses concentrate in 3DCON/BT/LPS (frequent remote eviction)
    churny = by_bench["3DCON"]["remote_miss"] + by_bench["BT"]["remote_miss"] \
        + by_bench["LPS"]["remote_miss"]
    stable = by_bench["HS"]["remote_miss"] + by_bench["SC"]["remote_miss"] \
        + by_bench["NN"]["remote_miss"]
    assert churny > stable
    # HS and 2DCON lead the remote-hit ranking (paper: >60%)
    top = sorted(by_bench, key=lambda b: -by_bench[b]["remote_hit"])[:4]
    assert "HS" in top and "2DCON" in top
