"""Bench: regenerate Fig. 12 (CPU network latency under DR)."""

from conftest import MIXES, record

from repro.experiments import fig12_cpu_latency


def test_fig12_cpu_latency(run_once):
    result = run_once(lambda: fig12_cpu_latency.run(n_mixes=MIXES))
    record(result)
    # paper: -44.2% average CPU packet latency, up to -59.7%
    assert result.data["mean_ratio"] < 0.95
    best = min(v["min"] for _, v in result.rows)
    assert best < 0.75, "the best case should show a strong reduction"
    # no CPU benchmark should see a large latency *increase* on average
    for label, v in result.rows:
        assert v["dr_latency_ratio"] < 1.15, label
