"""Bench: regenerate Fig. 5 (topology change vs bandwidth doubling)."""

from conftest import record, subset

from repro.experiments import fig05_topology
from repro.experiments.common import default_benchmarks


def test_fig05_topology(run_once):
    benches = default_benchmarks(subset=subset(5))
    result = run_once(lambda: fig05_topology.run(benchmarks=benches))
    record(result)
    rows = dict(result.rows)
    mesh1 = rows["mesh-1x"]
    # paper: every topology keeps blocking high at nominal bandwidth ...
    for topo in ("mesh", "crossbar", "flattened_butterfly", "dragonfly"):
        assert rows[f"{topo}-1x"]["mem_blocking_rate"] > 0.5
    # ... while doubling bandwidth helps every topology substantially
    for topo in ("mesh", "crossbar", "flattened_butterfly", "dragonfly"):
        gain = (
            rows[f"{topo}-2x"]["hm_gpu_speedup"]
            / rows[f"{topo}-1x"]["hm_gpu_speedup"]
        )
        assert gain > 1.08, f"2x bandwidth did not help {topo}"
    # topology alone moves performance far less than 2x bandwidth does
    topo_spread = max(
        rows[f"{t}-1x"]["hm_gpu_speedup"]
        for t in ("crossbar", "flattened_butterfly", "dragonfly")
    )
    assert topo_spread < rows["mesh-2x"]["hm_gpu_speedup"] * 1.1
    assert mesh1["hm_gpu_speedup"] == 1.0
