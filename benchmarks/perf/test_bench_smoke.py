"""Smoke test for the kernel benchmark CLI (CI budget: well under 60 s).

Runs ``python -m repro.bench --quick`` on a subset of configs and checks
the CLI exit code, the ``BENCH_noc.json`` schema and that every config
made forward progress.  This is a *smoke* test — it asserts the bench
runs, not how fast; absolute numbers live in the committed BENCH_noc.json.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_bench_cli_quick(tmp_path):
    out = tmp_path / "BENCH_noc.json"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.bench",
            "--quick",
            "--configs",
            "mesh8x8",
            "mesh8x8_dr",
            "shared_vnet",
            "--out",
            str(out),
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
        timeout=55,
    )
    assert proc.returncode == 0, proc.stderr
    payload = json.loads(out.read_text())
    assert payload["bench"] == "noc-kernel"
    assert payload["scheduler"] == "active-set"
    configs = payload["configs"]
    assert set(configs) == {"mesh8x8", "mesh8x8_dr", "shared_vnet"}
    for name, entry in configs.items():
        assert entry["cycles"] > 0, name
        assert entry["cycles_per_sec"] > 0, name
        assert entry["packets_delivered"] > 0, name
        assert entry["flits_delivered"] >= entry["packets_delivered"], name


def test_bench_python_api_reference_mode():
    """run_bench(reference=True) must drive the full-scan stepping."""
    from repro.bench import run_bench

    res = run_bench("mesh8x8", cycles=600, reference=True)
    assert res.cycles == 600
    assert res.packets_delivered > 0
