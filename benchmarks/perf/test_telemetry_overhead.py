"""Telemetry overhead guard (CI budget: well under 60 s).

Two checks on the ``telemetry_overhead`` bench config:

* the measurement itself works end-to-end (both runs make progress and
  report sane rates);
* *enabled* telemetry stays cheap — the collector must not slow the
  hotspot DR config by more than 2x even on a noisy shared runner (its
  steady-state cost measures ~0-5%; the committed number is in
  BENCH_noc.json).

The disabled-vs-seed guarantee (<5% regression from adding the hook
checks) is asserted against the committed ``BENCH_noc.json`` baselines by
inspection, not here: same-process A/B timing of a code change is
impossible once the change is merged.
"""

from __future__ import annotations

from repro.bench.harness import run_telemetry_overhead


def test_telemetry_overhead_bench():
    res = run_telemetry_overhead(cycles=1500)
    assert res.name == "telemetry_overhead"
    assert res.cycles == 1500
    assert res.packets_delivered > 0
    assert res.cycles_per_sec > 0
    assert res.extra["enabled_cycles_per_sec"] > 0
    # loose bound: catches accidental O(n)-per-cycle work in the
    # collector without flaking on shared-runner timing noise
    assert res.extra["overhead_pct"] < 100.0
