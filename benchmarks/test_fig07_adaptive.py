"""Bench: regenerate Fig. 7 (adaptive routing does not beat CDR)."""

from conftest import record, subset

from repro.analysis.report import amean
from repro.experiments import fig07_adaptive
from repro.experiments.common import default_benchmarks


def test_fig07_adaptive(run_once):
    benches = default_benchmarks(subset=subset(5))
    result = run_once(lambda: fig07_adaptive.run(benchmarks=benches))
    record(result)
    # paper: CDR is the top performer; adaptive schemes pay overhead with
    # no benefit because every reply path is equally clogged
    for policy in ("dyxy", "footprint", "hare"):
        mean = amean(result.column(policy))
        assert mean < 1.10, f"{policy} should not meaningfully beat CDR"
