"""Bench: regenerate Fig. 19 (sensitivity analyses)."""

from conftest import record, subset

from repro.experiments import fig19_sensitivity
from repro.experiments.common import default_benchmarks


def test_fig19_sensitivity(run_once):
    benches = default_benchmarks(subset=subset(3))
    result = run_once(lambda: fig19_sensitivity.run(benchmarks=benches))
    record(result)
    rows = dict(result.rows)
    # paper: Delegated Replies consistently improves GPU performance
    # across the whole design space
    for point, v in rows.items():
        assert v["dr_speedup"] > 1.0, f"DR should help at {point}"
    # every channel width keeps a solid gain (paper: +13.9% even at 24 B)
    for width in ("8B", "16B", "24B"):
        assert rows[f"channel_width:{width}"]["dr_speedup"] > 1.03
    # L1 size: the gain grows with L1 capacity (paper: 22.9% -> 30.2%)
    assert rows["l1_size:64KB"]["dr_speedup"] >= \
        rows["l1_size:16KB"]["dr_speedup"] * 0.98
    # injection-buffer size does not fix clogging (paper: insensitive)
    buf = [rows[f"injection_buffer:{s}"]["dr_speedup"] for s in ("18f", "36f", "72f")]
    assert max(buf) / min(buf) < 1.4
