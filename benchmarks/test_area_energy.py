"""Bench: regenerate the area table and energy comparison."""

import pytest

from conftest import MIXES, record, subset

from repro.experiments import area_energy
from repro.experiments.common import default_benchmarks


def test_area_energy(run_once):
    benches = default_benchmarks(subset=subset(6))
    result = run_once(
        lambda: area_energy.run(benchmarks=benches, n_mixes=MIXES)
    )
    record(result)
    rows = dict(result.rows)
    # area: exact calibration targets from the paper
    assert rows["baseline_noc_mm2"]["value"] == pytest.approx(2.27, abs=0.05)
    assert rows["double_bw_noc_mm2"]["value"] == pytest.approx(5.76, abs=0.1)
    assert rows["double_bw_ratio"]["value"] == pytest.approx(2.5, abs=0.1)
    assert rows["dr_total_mm2"]["value"] == pytest.approx(0.172, abs=0.01)
    assert 0.03 < rows["dr_vs_double_bw_extra"]["value"] < 0.07
    # energy shape: RP inflates requests (paper 5.9x) and pays for it;
    # both mechanisms cut system energy per instruction via faster runs,
    # DR more than RP (paper -13.6% vs -7.4%)
    assert rows["rp_request_count"]["ratio"] > 2.0
    assert rows["rp_noc_dynamic_energy"]["ratio"] > \
        rows["dr_noc_dynamic_energy"]["ratio"]
    assert rows["dr_system_energy"]["ratio"] < 1.0
    assert rows["dr_system_energy"]["ratio"] < rows["rp_system_energy"]["ratio"]
