"""Bench: regenerate Figs. 17-18 (DR across chip layouts, GPU and CPU)."""

from conftest import record, subset

from repro.experiments import fig17_layout_dr
from repro.experiments.common import default_benchmarks


def test_fig17_fig18_layout_dr(run_once):
    benches = default_benchmarks(subset=subset(4))
    result = run_once(lambda: fig17_layout_dr.run(benchmarks=benches))
    record(result)
    rows = dict(result.rows)
    # Fig. 17: GPU gains are uniform across layouts (paper: 25-29%)
    for layout, v in rows.items():
        assert v["gpu_dr_speedup"] > 1.08, f"DR should help GPUs on {layout}"
    # Fig. 18: CPU gains grow with CPU-GPU interference — layouts B
    # (edge) and D (distributed) mix traffic and benefit most
    interference = (
        rows["edge"]["cpu_dr_speedup"] + rows["distributed"]["cpu_dr_speedup"]
    )
    isolated = (
        rows["baseline"]["cpu_dr_speedup"] + rows["clustered"]["cpu_dr_speedup"]
    )
    assert interference > isolated * 0.95
