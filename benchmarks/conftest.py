"""Shared helpers for the per-figure benchmark harness.

Each ``test_figNN_*`` target regenerates one paper figure/table via
``pytest benchmarks/ --benchmark-only``.  The rendered tables are written
to ``benchmarks/results/`` (they are the data behind EXPERIMENTS.md) and
basic shape assertions check the paper's qualitative conclusions — who
wins, in which direction — rather than absolute numbers.

Environment knobs:

* ``REPRO_CYCLES`` / ``REPRO_WARMUP``: measured/warmup window per run
  (defaults 3000/2000).
* ``REPRO_BENCH_SUBSET``: number of GPU benchmarks for the heavier
  multi-configuration studies (default varies per figure; the
  mechanism-comparison figures always use all 11).
* ``REPRO_MIXES``: CPU co-runners per GPU benchmark in the mechanism
  sweep (default 2; the paper uses 3).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: CPU co-runners per GPU benchmark in the shared mechanism sweep
MIXES = int(os.environ.get("REPRO_MIXES", "2"))


def subset(default: int) -> int:
    return int(os.environ.get("REPRO_BENCH_SUBSET", str(default)))


def record(result) -> None:
    """Persist an experiment's rendered table and echo it to the log."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.name}.txt"
    path.write_text(result.text)
    print()
    print(result.text)


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
