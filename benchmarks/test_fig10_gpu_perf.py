"""Bench: regenerate Fig. 10 (GPU speedups: DR vs RP vs baseline).

This is the paper's headline result: Delegated Replies improves GPU
performance by 25.7% on average (up to 65.9%) over the baseline and by
14.2% over Realistic Probing.
"""

from conftest import MIXES, record

from repro.experiments import fig10_gpu_perf


def test_fig10_gpu_perf(run_once):
    result = run_once(lambda: fig10_gpu_perf.run(n_mixes=MIXES))
    record(result)
    dr = result.data["dr_mean_speedup"]
    rp = result.data["rp_mean_speedup"]
    # who wins and by roughly what factor (paper: 1.257 vs 1.101)
    assert dr > rp > 1.0
    assert 1.10 < dr < 1.55
    assert result.data["dr_over_rp"] > 1.05
    by_bench = dict(result.rows)
    # per-benchmark shape: HS is the best case, SC/LUD/BP the most modest
    assert by_bench["HS"]["dr_speedup"] == max(
        v["dr_speedup"] for v in by_bench.values()
    )
    for modest in ("SC", "LUD", "BP"):
        assert by_bench[modest]["dr_speedup"] < by_bench["HS"]["dr_speedup"]
    # DR helps (or at worst is neutral, within short-window noise) on
    # every single benchmark — the paper reports consistent improvement
    for name, v in by_bench.items():
        assert v["dr_speedup"] > 0.97, f"DR must not hurt {name}"
