"""Bench: ablation studies of Delegated Replies' design choices."""

from conftest import record, subset

from repro.experiments import ablations
from repro.experiments.common import default_benchmarks


def test_ablations(run_once):
    benches = default_benchmarks(subset=subset(3))
    result = run_once(lambda: ablations.run(benchmarks=benches))
    record(result)
    rows = dict(result.rows)
    paper_point = rows["delegate_on_block (paper)"]["dr_speedup"]
    # all delegation variants help
    assert paper_point > 1.05
    assert rows["delegate_always"]["dr_speedup"] > 1.0
    # 8 FRQ entries (the paper's pick) captures nearly all the benefit
    assert rows["frq_8_entries"]["dr_speedup"] > \
        rows["frq_2_entries"]["dr_speedup"] * 0.95
    assert rows["frq_16_entries"]["dr_speedup"] < \
        rows["frq_8_entries"]["dr_speedup"] * 1.10
    # stale pointers still run correctly (imprecise tracking is safe)
    assert rows["no_pointer_invalidation"]["dr_speedup"] > 0.9
    # pointer accuracy in the ballpark of the paper's 74.5%
    assert rows["pointer_accuracy"]["dr_speedup"] > 0.5
