"""Bench: regenerate Fig. 16 (DR's gain is topology-insensitive)."""

from conftest import record, subset

from repro.experiments import fig16_topology_dr
from repro.experiments.common import default_benchmarks


def test_fig16_topology_dr(run_once):
    benches = default_benchmarks(subset=subset(4))
    result = run_once(lambda: fig16_topology_dr.run(benchmarks=benches))
    record(result)
    rows = dict(result.rows)
    # paper: +21.9% to +28.3% across all four topologies — DR helps every
    # topology because each memory node keeps its single reply link
    for topo, v in rows.items():
        assert v["dr_speedup"] > 1.08, f"DR should help on {topo}"
    speedups = [v["dr_speedup"] for v in rows.values()]
    assert max(speedups) / min(speedups) < 1.5, "gain should be uniform-ish"
