"""Bench: regenerate Fig. 2 (inter-core locality of GPU L1 misses)."""

from conftest import record

from repro.experiments import fig02_locality


def test_fig02_locality(run_once):
    result = run_once(lambda: fig02_locality.run())
    record(result)
    # paper: >57% of L1 misses are available in a remote L1 on average;
    # shape check: substantial mean locality, with HS/NN near the top
    assert result.data["mean"] > 0.30
    by_bench = dict(result.rows)
    assert by_bench["HS"]["remote_l1_fraction"] > 0.5
    assert by_bench["NN"]["remote_l1_fraction"] > 0.5
    assert (
        by_bench["SC"]["remote_l1_fraction"]
        < by_bench["HS"]["remote_l1_fraction"]
    )
