"""Bench: regenerate Fig. 15 (DR on top of shared-L1 / CTA optimisations)."""

from conftest import record, subset

from repro.analysis.report import amean
from repro.experiments import fig15_shared_l1
from repro.experiments.common import default_benchmarks


def test_fig15_shared_l1(run_once):
    benches = default_benchmarks(subset=subset(5))
    result = run_once(lambda: fig15_shared_l1.run(benchmarks=benches))
    record(result)
    # paper: locality optimisations do not remove clogging; DR still adds
    # a substantial gain on top of DynEB under round-robin scheduling
    assert result.data["dr_on_dyneb_rr"] > 1.08
    dyneb = amean(result.column("dyneb-rr"))
    dyneb_dr = amean(result.column("dyneb+dr-rr"))
    assert dyneb_dr > dyneb
    # DynEB's fallback keeps it from collapsing the way DC-L1 can
    for _, v in result.rows:
        assert v["dyneb-rr"] > v["dc_l1-rr"] * 0.75
