"""Bench: regenerate Fig. 11 (received data rate per GPU core)."""

from conftest import MIXES, record

from repro.analysis.report import amean
from repro.experiments import fig11_data_rate


def test_fig11_data_rate(run_once):
    result = run_once(lambda: fig11_data_rate.run(n_mixes=MIXES))
    record(result)
    # paper: DR raises effective NoC bandwidth +26.5% avg, RP +11.9%
    assert result.data["dr_mean_gain"] > 1.10
    dr_gain = amean(
        [v["dr"] / v["baseline"] for _, v in result.rows if v["baseline"] > 0]
    )
    rp_gain = amean(
        [v["rp"] / v["baseline"] for _, v in result.rows if v["baseline"] > 0]
    )
    assert dr_gain > rp_gain
    # HS has the largest gain in the paper (+70.9%); allow close seconds
    by_bench = dict(result.rows)
    top3 = sorted(by_bench, key=lambda b: -by_bench[b]["dr_gain"])[:3]
    assert "HS" in top3
