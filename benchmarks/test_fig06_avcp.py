"""Bench: regenerate Fig. 6 (asymmetric VC partitioning is ineffective)."""

from conftest import record, subset

from repro.experiments import fig06_avcp
from repro.experiments.common import default_benchmarks


def test_fig06_avcp(run_once):
    benches = default_benchmarks(subset=subset(6))
    result = run_once(lambda: fig06_avcp.run(benchmarks=benches))
    record(result)
    # the paper's conclusion: giving replies more VCs cannot raise the
    # clogged links' bandwidth — AVCP vs the symmetric shared net is flat
    for label, values in result.rows:
        assert 0.75 < values["avcp_vs_symmetric"] < 1.25, label
    # BP is write-heavy: the reply-heavy split must not help it
    by_bench = dict(result.rows)
    if "BP" in by_bench:
        assert by_bench["BP"]["1req+3rep"] <= by_bench["BP"]["2req+2rep"] * 1.1
