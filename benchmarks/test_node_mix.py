"""Bench: regenerate the Section VII node-mix study."""

from conftest import record, subset

from repro.experiments import node_mix
from repro.experiments.common import default_benchmarks


def test_node_mix(run_once):
    benches = default_benchmarks(subset=subset(3))
    result = run_once(lambda: node_mix.run(benchmarks=benches))
    record(result)
    rows = dict(result.rows)
    # paper: fewer memory nodes (more GPU cores per node) means more
    # clogging and a larger DR gain: 1.382 (4 mem) > 1.305 (8) > 1.107 (16)
    assert rows["8cpu/52gpu/4mem"]["dr_speedup"] > \
        rows["8cpu/40gpu/16mem"]["dr_speedup"]
    # DR helps at every mix
    for mix, v in rows.items():
        assert v["dr_speedup"] > 1.0, mix
