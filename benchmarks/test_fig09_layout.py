"""Bench: regenerate Fig. 9 (layout and routing-policy study)."""

from conftest import record, subset

from repro.experiments import fig09_layout
from repro.experiments.common import default_benchmarks


def test_fig09_layout(run_once):
    benches = default_benchmarks(subset=subset(4))
    result = run_once(lambda: fig09_layout.run(benchmarks=benches))
    record(result)
    rows = dict(result.rows)
    base = rows["Baseline YX-XY"]
    assert base["gpu_perf"] == 1.0 and base["cpu_perf"] == 1.0
    # paper: the baseline is the only layout good at both; every other
    # layout/routing point gives up GPU or CPU performance
    for label, values in rows.items():
        if label == "Baseline YX-XY":
            continue
        assert (
            values["gpu_perf"] < 1.10 or values["cpu_perf"] < 1.10
        ), f"{label} should not dominate the baseline on both axes"
    # layout C clusters CPUs: its CPU perf should hold up reasonably
    assert rows["C XY-YX"]["cpu_perf"] > 0.55
    # layout B without its recommended XY-YX ordering collapses GPU perf
    # (memory-row congestion, Section V)
    assert rows["B XY-XY"]["gpu_perf"] < rows["B XY-YX"]["gpu_perf"]
