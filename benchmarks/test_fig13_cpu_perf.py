"""Bench: regenerate Fig. 13 (CPU performance under DR)."""

from conftest import MIXES, record

from repro.experiments import fig13_cpu_perf


def test_fig13_cpu_perf(run_once):
    result = run_once(lambda: fig13_cpu_perf.run(n_mixes=MIXES))
    record(result)
    # paper: +3.8% average, +8.8% across clogged workloads (the maxima)
    assert result.data["mean_speedup"] > 1.0
    assert result.data["clogged_mean_speedup"] > result.data["mean_speedup"]
    by_cpu = dict(result.rows)
    # latency-sensitive benchmarks gain more than insensitive ones
    if "vips" in by_cpu and "dedup" in by_cpu:
        assert by_cpu["vips"]["max"] >= by_cpu["dedup"]["max"] * 0.9
