"""Tests for repro.telemetry: histograms, tracing, collector, CLI.

Covers the three subsystem layers (bucketed histograms, trace sinks,
collector/detector), the simulator integration (bit-identical results
with telemetry on vs. off, percentile accuracy against exact samples)
and the ``python -m repro.telemetry`` reader CLI.
"""

import json

from repro.config import SystemConfig, TelemetryConfig
from repro.config.loader import config_from_dict
from repro.noc.packet import MessageType, Packet, TrafficClass
from repro.sim.metrics import collect_counters, derive_result
from repro.sim.simulator import build_system, run_simulation
from repro.sweep.jobs import JobSpec
from repro.telemetry import (
    CloggingDetector,
    LogHistogram,
    TelemetryCollector,
    bucket_bounds,
    bucket_index,
    load_summary,
    read_trace,
)
from repro.telemetry.__main__ import main as telemetry_main
from repro.telemetry.trace import BinaryTraceSink, JsonlTraceSink

import sys
sys.path.insert(0, "tests")
from conftest import small_config


def _lcg_values(n, seed=7):
    """Deterministic skewed sample set (long tail like packet latencies)."""
    state = seed
    out = []
    for _ in range(n):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        draw = state >> 33
        out.append(draw % 100 + (draw % 7 == 0) * (draw % 5000))
    return out


def _exact_percentile(values, p):
    values = sorted(values)
    rank = max(1, -(-int(p * len(values)) // 100))  # ceil(p/100 * n)
    return values[rank - 1]


class TestBuckets:
    def test_small_values_exact(self):
        for v in range(64):
            lo, hi = bucket_bounds(bucket_index(v))
            assert (lo, hi) == (v, v + 1)

    def test_bounds_contain_value(self):
        for v in [64, 65, 100, 1000, 12345, 1 << 20, (1 << 31) + 17]:
            lo, hi = bucket_bounds(bucket_index(v))
            assert lo <= v < hi

    def test_relative_width_bounded(self):
        for v in [64, 1000, 12345, 1 << 20]:
            lo, hi = bucket_bounds(bucket_index(v))
            assert (hi - lo) <= lo * 2 ** -5

    def test_indices_monotone(self):
        idxs = [bucket_index(v) for v in range(0, 1 << 14)]
        assert idxs == sorted(idxs)


class TestLogHistogram:
    def test_percentiles_within_resolution(self):
        values = _lcg_values(5000)
        hist = LogHistogram()
        for v in values:
            hist.record(v)
        for p in (50, 95, 99, 99.9):
            exact = _exact_percentile(values, p)
            approx = hist.percentile(p)
            assert abs(approx - exact) <= exact * 2 ** -5 + 1, p

    def test_count_total_min_max(self):
        values = _lcg_values(500)
        hist = LogHistogram()
        for v in values:
            hist.record(v)
        assert hist.count == len(values)
        assert hist.total == sum(values)
        assert hist.min == min(values) and hist.max == max(values)

    def test_merge_equals_joint_recording(self):
        a_vals, b_vals = _lcg_values(300, seed=1), _lcg_values(300, seed=2)
        a, b, joint = LogHistogram(), LogHistogram(), LogHistogram()
        for v in a_vals:
            a.record(v)
            joint.record(v)
        for v in b_vals:
            b.record(v)
            joint.record(v)
        a.merge(b)
        assert a.buckets == joint.buckets
        assert a.count == joint.count and a.total == joint.total

    def test_dict_round_trip(self):
        hist = LogHistogram()
        for v in _lcg_values(200):
            hist.record(v)
        clone = LogHistogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone.buckets == hist.buckets
        assert clone.percentile(99) == hist.percentile(99)

    def test_from_sparse_drops_nonpositive(self):
        hist = LogHistogram.from_sparse({3: 5, 4: 0, 5: -2})
        assert hist.count == 5
        assert set(hist.buckets) == {3}

    def test_empty(self):
        hist = LogHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.mean == 0.0
        assert hist.ascii() == "(empty histogram)"


class TestTraceSinks:
    def _events(self):
        pkts = [
            Packet(src=1, dst=2, mtype=MessageType.READ_REQ,
                   cls=TrafficClass.CPU, size_flits=1, block=17, created=5),
            Packet(src=2, dst=1, mtype=MessageType.READ_REPLY,
                   cls=TrafficClass.GPU, size_flits=9, block=17, created=9),
        ]
        return [
            ("inject", 5, pkts[0], -1),
            ("vc_alloc", 6, pkts[0], 0),
            ("deliver", 19, pkts[1], 10),
        ]

    def test_jsonl_bin_equivalent(self, tmp_path):
        jpath, bpath = tmp_path / "t.jsonl", tmp_path / "t.bin"
        events = self._events()  # one packet set: pids are global
        for sink in (JsonlTraceSink(str(jpath)), BinaryTraceSink(str(bpath))):
            for ev, cycle, pkt, value in events:
                sink.packet_event(ev, cycle, pkt, value=value)
            sink.record({"rec": "meta", "schema": 1, "nodes": 4})
            sink.close()
        jrecs = list(read_trace(str(jpath)))
        brecs = list(read_trace(str(bpath)))
        assert jrecs == brecs
        assert jrecs[0]["ev"] == "inject" and jrecs[0]["pid"] == jrecs[1]["pid"]
        assert jrecs[2]["value"] == 10
        assert jrecs[3]["rec"] == "meta"

    def test_binary_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "t.bin"
        sink = BinaryTraceSink(str(path))
        for ev, cycle, pkt, value in self._events():
            sink.packet_event(ev, cycle, pkt, value=value)
        sink.close()
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        recs = list(read_trace(str(path)))
        assert len(recs) == 2  # last event dropped, no exception


class TestSampling:
    def _collector(self, rate, fabric):
        return TelemetryCollector(
            TelemetryConfig(enabled=True, sample_rate=rate), fabric
        )

    def test_rate_subsets_nest(self):
        system = build_system(small_config(), "HS")
        quarter = self._collector(0.25, system.fabric)
        half = self._collector(0.5, system.fabric)
        q = {pid for pid in range(4000) if quarter._sampled(pid)}
        h = {pid for pid in range(4000) if half._sampled(pid)}
        assert q < h
        assert 0.15 < len(q) / 4000 < 0.35
        assert 0.4 < len(h) / 4000 < 0.6

    def test_rate_one_samples_everything(self):
        system = build_system(small_config(), "HS")
        full = self._collector(1.0, system.fabric)
        assert all(full._sampled(pid) for pid in range(100))


class TestCloggingDetector:
    def test_short_blips_ignored(self):
        det = CloggingDetector(threshold=0.9, min_windows=2)
        det.update(3, 0, 99, 0.95)
        det.update(3, 100, 199, 0.1)  # one hot window < min_windows
        assert det.flush() == [] and det.episodes == []

    def test_episode_shape(self):
        det = CloggingDetector(threshold=0.9, min_windows=2)
        det.update(3, 0, 99, 0.92)
        det.update(3, 100, 199, 1.0)
        episode = det.update(3, 200, 299, 0.2)
        assert episode is not None
        assert episode["node"] == 3
        assert episode["start"] == 0 and episode["end"] == 199
        assert episode["windows"] == 2
        assert episode["severity"] == 0.96 and episode["peak"] == 1.0

    def test_flush_closes_open_episode(self):
        det = CloggingDetector(threshold=0.5, min_windows=1)
        det.update(1, 0, 99, 0.8)
        det.update(2, 0, 99, 0.7)
        closed = det.flush()
        assert [e["node"] for e in closed] == [1, 2]
        assert det.flush() == []

    def test_independent_nodes(self):
        det = CloggingDetector(threshold=0.9, min_windows=1)
        det.update(1, 0, 99, 0.95)
        assert det.update(2, 0, 99, 0.1) is None
        assert len(det.flush()) == 1


def _traced_config(tmp_path, fmt="jsonl", **tel):
    cfg = small_config()
    cfg.telemetry.enabled = True
    cfg.telemetry.trace_path = str(tmp_path / f"trace.{fmt}")
    cfg.telemetry.trace_format = fmt
    cfg.telemetry.probe_interval = tel.pop("probe_interval", 100)
    for k, v in tel.items():
        setattr(cfg.telemetry, k, v)
    return cfg


class TestIntegration:
    def test_disabled_is_bit_identical(self):
        base = run_simulation(small_config(), "SC", "bodytrack",
                              cycles=400, warmup=200)
        cfg = small_config()
        cfg.telemetry.enabled = True  # histograms/probes, no trace file
        traced = run_simulation(cfg, "SC", "bodytrack",
                                cycles=400, warmup=200)
        assert traced.counters == base.counters
        assert traced.cpu_avg_latency == base.cpu_avg_latency

    def test_trace_file_contents(self, tmp_path):
        cfg = _traced_config(tmp_path)
        run_simulation(cfg, "SC", "bodytrack", cycles=400, warmup=200)
        recs = list(read_trace(cfg.telemetry.trace_path))
        kinds = {}
        for rec in recs:
            k = rec.get("rec", rec.get("ev"))
            kinds[k] = kinds.get(k, 0) + 1
        assert recs[0]["rec"] == "meta" and recs[0]["schema"] == 1
        assert kinds.get("win", 0) >= 5
        assert kinds.get("deliver", 0) > 0
        assert kinds.get("hist", 0) >= 2  # at least CPU+GPU reply classes
        assert kinds.get("summary") == 1
        # delivery counts in the summary match the per-event stream
        summary = [r for r in recs if r.get("rec") == "summary"][0]
        assert summary["events"]["deliver"] == kinds["deliver"]

    def test_percentiles_match_exact_samples(self):
        # HS keeps the mesh below saturation and dedup is the most
        # memory-intensive co-runner, so the CPU reply population is
        # large enough to pin percentiles
        system = build_system(small_config(), "HS", "dedup")
        exact = []
        for core in system.cpu_cores:
            def handler(pkt, cycle, core=core):
                issued = core._issue_cycle.get(pkt.block)
                if issued is not None:
                    exact.append(cycle - issued)
                core.on_packet(pkt, cycle)
            core.nic.handler = handler
        system.run(4000)
        res = derive_result(system, collect_counters(system))
        assert len(exact) >= 40
        for p, approx in ((50, res.cpu_latency_p50),
                          (95, res.cpu_latency_p95),
                          (99, res.cpu_latency_p99)):
            want = _exact_percentile(exact, p)
            assert abs(approx - want) <= want * 2 ** -5 + 1, p

    def test_collector_histogram_matches_counters(self, tmp_path):
        cfg = _traced_config(tmp_path)
        system = build_system(cfg, "SC", "bodytrack")
        system.run(600)
        counters = collect_counters(system)
        # reply-net CPU deliveries == CPU core replies (each CPU reply is
        # one reply-net delivery to a CPU NIC)
        cpu_hist = system.telemetry.latency_histogram(1, 0)
        assert cpu_hist.count == counters["cpu.replies"]

    def test_detector_fires_on_hot_workload(self, tmp_path):
        # SC saturates the memory nodes of the small mesh: the canonical
        # clogging scenario must produce at least one episode
        cfg = _traced_config(tmp_path, clog_threshold=0.8, clog_min_windows=2)
        run_simulation(cfg, "SC", "bodytrack", cycles=1200, warmup=400)
        recs = list(read_trace(cfg.telemetry.trace_path))
        assert any(r.get("rec") == "clog" for r in recs)


class TestCli:
    def _make_trace(self, tmp_path, fmt="jsonl"):
        cfg = _traced_config(tmp_path, fmt=fmt)
        run_simulation(cfg, "SC", "bodytrack", cycles=600, warmup=200)
        return cfg.telemetry.trace_path

    def test_report(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        assert telemetry_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "latency percentiles" in out
        assert "p99" in out and "reply" in out

    def test_hist_filters(self, tmp_path, capsys):
        path = self._make_trace(tmp_path, fmt="bin")
        assert telemetry_main(["hist", path, "--net", "reply",
                               "--cls", "GPU"]) == 0
        out = capsys.readouterr().out
        assert "reply/GPU" in out and "request" not in out

    def test_timeline(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        assert telemetry_main(["timeline", path]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "util" in out
        assert len(out.splitlines()) >= 5

    def test_events(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        assert telemetry_main(["events", path]) == 0
        out = capsys.readouterr().out
        assert "episode" in out

    def test_blame(self, tmp_path, capsys):
        cfg = _traced_config(tmp_path, clog_threshold=0.8,
                             clog_min_windows=2)
        run_simulation(cfg, "SC", "bodytrack", cycles=1200, warmup=400)
        assert telemetry_main(["blame", cfg.telemetry.trace_path]) == 0
        out = capsys.readouterr().out
        assert "per-router stall cycles" in out
        assert "memory-node reply-buffer pressure" in out
        assert "mesh stall heatmap" in out
        assert "episode root causes" in out

    def test_blame_reports_disabled_attribution(self, tmp_path, capsys):
        cfg = _traced_config(tmp_path, stall_attribution=False)
        run_simulation(cfg, "SC", "bodytrack", cycles=400, warmup=200)
        assert telemetry_main(["blame", cfg.telemetry.trace_path]) == 0
        out = capsys.readouterr().out
        assert "stall attribution was disabled" in out

    def test_missing_trace_is_one_line_error(self, tmp_path, capsys):
        path = str(tmp_path / "does-not-exist.jsonl")
        assert telemetry_main(["report", path]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read trace")
        assert len(err.strip().splitlines()) == 1

    def test_empty_trace_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert telemetry_main(["blame", str(path)]) == 2
        err = capsys.readouterr().err
        assert "is empty (no records)" in err
        assert len(err.strip().splitlines()) == 1

    def test_garbage_trace_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x00\x01not a trace file at all")
        assert telemetry_main(["report", str(path)]) == 2
        err = capsys.readouterr().err
        assert "is not a readable trace" in err
        assert len(err.strip().splitlines()) == 1

    def test_readers_emit_json(self, tmp_path, capsys):
        """Every reader honours the shared --format json switch."""
        import json

        path = self._make_trace(tmp_path)
        for cmd in ("report", "hist", "timeline", "events", "blame"):
            assert telemetry_main([cmd, path, "--format", "json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["path"] == path

    def test_report_json_matches_table_numbers(self, tmp_path, capsys):
        import json

        path = self._make_trace(tmp_path)
        telemetry_main(["report", path, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] > 0
        assert payload["events"].get("deliver", 0) > 0
        rows = {(r["net"], r["cls"]): r for r in payload["latency"]}
        assert ("reply", "GPU") in rows
        assert rows[("reply", "GPU")]["p99"] >= rows[("reply", "GPU")]["p50"]

    def test_blame_json_totals_match_table(self, tmp_path, capsys):
        import json

        cfg = _traced_config(tmp_path, clog_threshold=0.8,
                             clog_min_windows=2)
        run_simulation(cfg, "SC", "bodytrack", cycles=1200, warmup=400)
        path = cfg.telemetry.trace_path
        assert telemetry_main(["blame", path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["routers"]
        top = payload["routers"][0]
        assert top["total"] == sum(top["classes"].values())
        telemetry_main(["blame", path])
        table = capsys.readouterr().out
        assert str(top["total"]) in table

    def test_load_summary_uses_full_histograms(self, tmp_path):
        # sampled traces still report exact percentiles: the final "hist"
        # records carry the full population, overriding sampled deliveries
        cfg = _traced_config(tmp_path, sample_rate=0.2)
        run_simulation(cfg, "SC", "bodytrack", cycles=600, warmup=200)
        summary = load_summary(cfg.telemetry.trace_path)
        full = [r for r in read_trace(cfg.telemetry.trace_path)
                if r.get("rec") == "hist" and r["net"] == "reply"
                and r["cls"] == "GPU"]
        assert summary.hists[("reply", "GPU")].count == full[0]["count"]


class TestConfigPlumbing:
    def test_loader_round_trip(self):
        cfg = SystemConfig()
        cfg.telemetry.enabled = True
        cfg.telemetry.sample_rate = 0.5
        cfg.telemetry.trace_format = "bin"
        clone = config_from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert clone.telemetry == cfg.telemetry

    def test_sweep_key_ignores_telemetry(self):
        plain = small_config()
        traced = small_config()
        traced.telemetry.enabled = True
        traced.telemetry.trace_path = "/tmp/x.jsonl"
        a = JobSpec.make(plain, "SC", "bodytrack")
        b = JobSpec.make(traced, "SC", "bodytrack")
        assert a.key() == b.key()

    def test_sweep_key_still_sees_real_config(self):
        a = JobSpec.make(small_config(), "SC", "bodytrack")
        b = JobSpec.make(small_config(seed=99), "SC", "bodytrack")
        assert a.key() != b.key()
