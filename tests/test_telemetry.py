"""Tests for repro.telemetry: histograms, tracing, collector, CLI.

Covers the subsystem layers (bucketed histograms, event rings and
``RDMP`` dumps, trace sinks, metrics registry, collector/detector with
the flight recorder), the simulator integration (bit-identical results
with telemetry on vs. off, percentile accuracy against exact samples)
and the ``python -m repro.telemetry`` reader CLI, including one-line
errors on unknown trace versions.
"""

import json
import struct

import pytest

from repro.config import SystemConfig, TelemetryConfig
from repro.config.loader import config_from_dict
from repro.noc.packet import MessageType, NetKind, Packet, TrafficClass
from repro.sim.metrics import collect_counters, derive_result
from repro.sim.simulator import build_system, run_simulation
from repro.sweep.jobs import JobSpec
from repro.telemetry import (
    CloggingDetector,
    EventRing,
    LogHistogram,
    MetricsRegistry,
    TelemetryCollector,
    bucket_bounds,
    bucket_index,
    load_summary,
    merge_events,
    pack_w0,
    read_trace,
    unpack_w0,
    write_dump,
)
from repro.telemetry.__main__ import main as telemetry_main
from repro.telemetry.trace import MAGIC, BinaryTraceSink, JsonlTraceSink

import sys
sys.path.insert(0, "tests")
from conftest import small_config


def _lcg_values(n, seed=7):
    """Deterministic skewed sample set (long tail like packet latencies)."""
    state = seed
    out = []
    for _ in range(n):
        state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
        draw = state >> 33
        out.append(draw % 100 + (draw % 7 == 0) * (draw % 5000))
    return out


def _exact_percentile(values, p):
    values = sorted(values)
    rank = max(1, -(-int(p * len(values)) // 100))  # ceil(p/100 * n)
    return values[rank - 1]


class TestBuckets:
    def test_small_values_exact(self):
        for v in range(64):
            lo, hi = bucket_bounds(bucket_index(v))
            assert (lo, hi) == (v, v + 1)

    def test_bounds_contain_value(self):
        for v in [64, 65, 100, 1000, 12345, 1 << 20, (1 << 31) + 17]:
            lo, hi = bucket_bounds(bucket_index(v))
            assert lo <= v < hi

    def test_relative_width_bounded(self):
        for v in [64, 1000, 12345, 1 << 20]:
            lo, hi = bucket_bounds(bucket_index(v))
            assert (hi - lo) <= lo * 2 ** -5

    def test_indices_monotone(self):
        idxs = [bucket_index(v) for v in range(0, 1 << 14)]
        assert idxs == sorted(idxs)


class TestLogHistogram:
    def test_percentiles_within_resolution(self):
        values = _lcg_values(5000)
        hist = LogHistogram()
        for v in values:
            hist.record(v)
        for p in (50, 95, 99, 99.9):
            exact = _exact_percentile(values, p)
            approx = hist.percentile(p)
            assert abs(approx - exact) <= exact * 2 ** -5 + 1, p

    def test_count_total_min_max(self):
        values = _lcg_values(500)
        hist = LogHistogram()
        for v in values:
            hist.record(v)
        assert hist.count == len(values)
        assert hist.total == sum(values)
        assert hist.min == min(values) and hist.max == max(values)

    def test_merge_equals_joint_recording(self):
        a_vals, b_vals = _lcg_values(300, seed=1), _lcg_values(300, seed=2)
        a, b, joint = LogHistogram(), LogHistogram(), LogHistogram()
        for v in a_vals:
            a.record(v)
            joint.record(v)
        for v in b_vals:
            b.record(v)
            joint.record(v)
        a.merge(b)
        assert a.buckets == joint.buckets
        assert a.count == joint.count and a.total == joint.total

    def test_dict_round_trip(self):
        hist = LogHistogram()
        for v in _lcg_values(200):
            hist.record(v)
        clone = LogHistogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone.buckets == hist.buckets
        assert clone.percentile(99) == hist.percentile(99)

    def test_from_sparse_drops_nonpositive(self):
        hist = LogHistogram.from_sparse({3: 5, 4: 0, 5: -2})
        assert hist.count == 5
        assert set(hist.buckets) == {3}

    def test_empty(self):
        hist = LogHistogram()
        assert hist.percentile(99) == 0.0
        assert hist.mean == 0.0
        assert hist.ascii() == "(empty histogram)"


class TestTraceSinks:
    def _events(self):
        pkts = [
            Packet(src=1, dst=2, mtype=MessageType.READ_REQ,
                   cls=TrafficClass.CPU, size_flits=1, block=17, created=5),
            Packet(src=2, dst=1, mtype=MessageType.READ_REPLY,
                   cls=TrafficClass.GPU, size_flits=9, block=17, created=9),
        ]
        return [
            ("inject", 5, pkts[0], -1),
            ("vc_alloc", 6, pkts[0], 0),
            ("deliver", 19, pkts[1], 10),
        ]

    def test_jsonl_bin_equivalent(self, tmp_path):
        jpath, bpath = tmp_path / "t.jsonl", tmp_path / "t.bin"
        events = self._events()  # one packet set: pids are global
        for sink in (JsonlTraceSink(str(jpath)), BinaryTraceSink(str(bpath))):
            for ev, cycle, pkt, value in events:
                sink.packet_event(ev, cycle, pkt, value=value)
            sink.record({"rec": "meta", "schema": 1, "nodes": 4})
            sink.close()
        jrecs = list(read_trace(str(jpath)))
        brecs = list(read_trace(str(bpath)))
        assert jrecs == brecs
        assert jrecs[0]["ev"] == "inject" and jrecs[0]["pid"] == jrecs[1]["pid"]
        assert jrecs[2]["value"] == 10
        assert jrecs[3]["rec"] == "meta"

    def test_binary_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "t.bin"
        sink = BinaryTraceSink(str(path))
        for ev, cycle, pkt, value in self._events():
            sink.packet_event(ev, cycle, pkt, value=value)
        sink.close()
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        recs = list(read_trace(str(path)))
        assert len(recs) == 2  # last event dropped, no exception


class TestSampling:
    def _collector(self, rate, fabric):
        return TelemetryCollector(
            TelemetryConfig(enabled=True, sample_rate=rate), fabric
        )

    def test_rate_subsets_nest(self):
        system = build_system(small_config(), "HS")
        quarter = self._collector(0.25, system.fabric)
        half = self._collector(0.5, system.fabric)
        q = {pid for pid in range(4000) if quarter._sampled(pid)}
        h = {pid for pid in range(4000) if half._sampled(pid)}
        assert q < h
        assert 0.15 < len(q) / 4000 < 0.35
        assert 0.4 < len(h) / 4000 < 0.6

    def test_rate_one_samples_everything(self):
        system = build_system(small_config(), "HS")
        full = self._collector(1.0, system.fabric)
        assert all(full._sampled(pid) for pid in range(100))


class TestCloggingDetector:
    def test_short_blips_ignored(self):
        det = CloggingDetector(threshold=0.9, min_windows=2)
        det.update(3, 0, 99, 0.95)
        det.update(3, 100, 199, 0.1)  # one hot window < min_windows
        assert det.flush() == [] and det.episodes == []

    def test_episode_shape(self):
        det = CloggingDetector(threshold=0.9, min_windows=2)
        det.update(3, 0, 99, 0.92)
        det.update(3, 100, 199, 1.0)
        episode = det.update(3, 200, 299, 0.2)
        assert episode is not None
        assert episode["node"] == 3
        assert episode["start"] == 0 and episode["end"] == 199
        assert episode["windows"] == 2
        assert episode["severity"] == 0.96 and episode["peak"] == 1.0

    def test_flush_closes_open_episode(self):
        det = CloggingDetector(threshold=0.5, min_windows=1)
        det.update(1, 0, 99, 0.8)
        det.update(2, 0, 99, 0.7)
        closed = det.flush()
        assert [e["node"] for e in closed] == [1, 2]
        assert det.flush() == []

    def test_independent_nodes(self):
        det = CloggingDetector(threshold=0.9, min_windows=1)
        det.update(1, 0, 99, 0.95)
        assert det.update(2, 0, 99, 0.1) is None
        assert len(det.flush()) == 1

    def test_signal_exactly_at_threshold_is_hot(self):
        det = CloggingDetector(threshold=0.9, min_windows=1)
        det.update(1, 0, 99, 0.9)
        assert len(det.flush()) == 1

    def test_streak_one_short_of_min_windows_is_no_episode(self):
        det = CloggingDetector(threshold=0.5, min_windows=3)
        det.update(1, 0, 99, 0.9)
        det.update(1, 100, 199, 0.9)
        assert det.update(1, 200, 299, 0.1) is None
        assert det.flush() == [] and det.episodes == []

    def test_on_open_fires_once_when_streak_reaches_min_windows(self):
        det = CloggingDetector(threshold=0.5, min_windows=2)
        opened = []
        det.on_open = lambda node, cycle: opened.append((node, cycle))
        det.update(3, 0, 99, 0.8)
        assert opened == []
        det.update(3, 100, 199, 0.9)
        assert opened == [(3, 199)]
        det.update(3, 200, 299, 0.9)  # same episode: no second open
        assert opened == [(3, 199)]

    def test_on_open_fires_immediately_for_min_windows_one(self):
        det = CloggingDetector(threshold=0.5, min_windows=1)
        opened = []
        det.on_open = lambda node, cycle: opened.append((node, cycle))
        det.update(7, 0, 99, 0.6)
        assert opened == [(7, 99)]

    def test_short_blip_never_opens(self):
        det = CloggingDetector(threshold=0.5, min_windows=3)
        opened = []
        det.on_open = lambda node, cycle: opened.append((node, cycle))
        det.update(1, 0, 99, 0.9)
        det.update(1, 100, 199, 0.9)
        det.update(1, 200, 299, 0.1)
        assert opened == []


def _ring_event(cycle, pid=1, code=0, value=-1):
    """A raw ring tuple shaped like the collector's hook appends."""
    return (code, MessageType.READ_REQ, TrafficClass.CPU, NetKind.REQUEST,
            1, 2, 9, cycle, pid, 0x80, value)


class TestEventRing:
    def test_bounded_retention(self):
        ring = EventRing(4)
        for i in range(7):
            ring.events.append(_ring_event(i))
        assert len(ring) == 4
        assert [e[7] for e in ring.snapshot()] == [3, 4, 5, 6]

    def test_take_pending_marks_drained(self):
        ring = EventRing(8)
        for i in range(3):
            ring.events.append(_ring_event(i))
            ring.head += 1
        assert [e[7] for e in ring.take_pending()] == [0, 1, 2]
        assert ring.take_pending() == []
        ring.events.append(_ring_event(9))
        ring.head += 1
        assert [e[7] for e in ring.take_pending()] == [9]

    def test_take_pending_keeps_flight_retention(self):
        ring = EventRing(8)
        for i in range(3):
            ring.events.append(_ring_event(i))
            ring.head += 1
        ring.take_pending()
        # drained events stay in the deque: the flight recorder still
        # sees them until capacity evicts them
        assert [e[7] for e in ring.snapshot()] == [0, 1, 2]

    def test_pack_round_trip_extremes(self):
        for fields in ((0, 0, 0, 0, 0, 0, 0),
                       (4, 17, 1, 1, 4095, 0xFFFFF, 0xFFFFF)):
            w0 = pack_w0(*fields)
            assert unpack_w0(w0) == fields
            assert 0 <= w0 < (1 << 63)  # sign bit clear: safe as i64

    def test_merge_is_cycle_ordered_and_stable(self):
        req = [_ring_event(1, pid=1), _ring_event(5, pid=2)]
        rep = [_ring_event(1, pid=3), _ring_event(4, pid=4)]
        merged = merge_events(req, rep)
        assert [e[7] for e in merged] == [1, 1, 4, 5]
        # ties keep batch order: request-net before reply-net
        assert [e[8] for e in merged] == [1, 3, 4, 2]

    def test_dump_round_trip_via_read_trace(self, tmp_path):
        path = tmp_path / "ring.rdmp"
        write_dump(path, {"nodes": 16, "dump": "clog"},
                   [_ring_event(200, pid=42),
                    _ring_event(210, pid=99, code=3, value=17)],
                   schema=2)
        recs = list(read_trace(str(path)))
        assert recs[0]["rec"] == "meta"
        assert recs[0]["schema"] == 2 and recs[0]["dump"] == "clog"
        assert recs[1] == {
            "ev": "inject", "cycle": 200, "pid": 42, "src": 2, "dst": 9,
            "block": 0x80, "mtype": "READ_REQ", "cls": "CPU",
            "net": "request", "flits": 1,
        }
        assert recs[2]["ev"] == "deliver" and recs[2]["value"] == 17

    def test_dump_truncated_tail_stops_cleanly(self, tmp_path):
        path = tmp_path / "torn.rdmp"
        write_dump(path, {}, [_ring_event(c) for c in range(4)], schema=2)
        blob = path.read_bytes()
        path.write_bytes(blob[:-13])  # tear the last packed event
        recs = list(read_trace(str(path)))
        assert [r["cycle"] for r in recs[1:]] == [0, 1, 2]

    def test_dump_bad_magic_raises(self, tmp_path):
        from repro.telemetry import read_dump

        path = tmp_path / "bad.rdmp"
        path.write_bytes(b"XXXX not a dump")
        # read_dump itself rejects the magic; read_trace's auto-detection
        # would instead fall through to the JSONL reader (and its own
        # one-line "not a readable trace" ValueError)
        with pytest.raises(ValueError, match="bad magic"):
            list(read_dump(str(path), max_schema=2))
        with pytest.raises(ValueError):
            list(read_trace(str(path)))


class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        m = MetricsRegistry()
        m.counter("flight.dumps").inc()
        m.counter("flight.dumps").inc(2)
        m.gauge("ring_retained").set(17)
        assert m.snapshot() == {"flight.dumps": 3, "ring_retained": 17}

    def test_get_or_create_is_idempotent(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        assert len(m) == 1 and "x" in m

    def test_kind_mismatch_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_snapshot_is_sorted(self):
        m = MetricsRegistry()
        m.gauge("zeta").set(1)
        m.counter("alpha").inc()
        assert list(m.snapshot()) == ["alpha", "zeta"]


def _traced_config(tmp_path, fmt="jsonl", **tel):
    cfg = small_config()
    cfg.telemetry.enabled = True
    cfg.telemetry.trace_path = str(tmp_path / f"trace.{fmt}")
    cfg.telemetry.trace_format = fmt
    cfg.telemetry.probe_interval = tel.pop("probe_interval", 100)
    for k, v in tel.items():
        setattr(cfg.telemetry, k, v)
    return cfg


class TestIntegration:
    def test_disabled_is_bit_identical(self):
        base = run_simulation(small_config(), "SC", "bodytrack",
                              cycles=400, warmup=200)
        cfg = small_config()
        cfg.telemetry.enabled = True  # histograms/probes, no trace file
        traced = run_simulation(cfg, "SC", "bodytrack",
                                cycles=400, warmup=200)
        assert traced.counters == base.counters
        assert traced.cpu_avg_latency == base.cpu_avg_latency

    def test_trace_file_contents(self, tmp_path):
        cfg = _traced_config(tmp_path)
        run_simulation(cfg, "SC", "bodytrack", cycles=400, warmup=200)
        recs = list(read_trace(cfg.telemetry.trace_path))
        kinds = {}
        for rec in recs:
            k = rec.get("rec", rec.get("ev"))
            kinds[k] = kinds.get(k, 0) + 1
        assert recs[0]["rec"] == "meta" and recs[0]["schema"] == 2
        assert kinds.get("win", 0) >= 5
        assert kinds.get("deliver", 0) > 0
        assert kinds.get("hist", 0) >= 2  # at least CPU+GPU reply classes
        assert kinds.get("summary") == 1
        # delivery counts in the summary match the per-event stream
        summary = [r for r in recs if r.get("rec") == "summary"][0]
        assert summary["events"]["deliver"] == kinds["deliver"]

    def test_percentiles_match_exact_samples(self):
        # HS keeps the mesh below saturation and dedup is the most
        # memory-intensive co-runner, so the CPU reply population is
        # large enough to pin percentiles
        system = build_system(small_config(), "HS", "dedup")
        exact = []
        for core in system.cpu_cores:
            def handler(pkt, cycle, core=core):
                issued = core._issue_cycle.get(pkt.block)
                if issued is not None:
                    exact.append(cycle - issued)
                core.on_packet(pkt, cycle)
            core.nic.handler = handler
        system.run(4000)
        res = derive_result(system, collect_counters(system))
        assert len(exact) >= 40
        for p, approx in ((50, res.cpu_latency_p50),
                          (95, res.cpu_latency_p95),
                          (99, res.cpu_latency_p99)):
            want = _exact_percentile(exact, p)
            assert abs(approx - want) <= want * 2 ** -5 + 1, p

    def test_collector_histogram_matches_counters(self, tmp_path):
        cfg = _traced_config(tmp_path)
        system = build_system(cfg, "SC", "bodytrack")
        system.run(600)
        counters = collect_counters(system)
        # reply-net CPU deliveries == CPU core replies (each CPU reply is
        # one reply-net delivery to a CPU NIC)
        cpu_hist = system.telemetry.latency_histogram(1, 0)
        assert cpu_hist.count == counters["cpu.replies"]

    def test_detector_fires_on_hot_workload(self, tmp_path):
        # SC saturates the memory nodes of the small mesh: the canonical
        # clogging scenario must produce at least one episode
        cfg = _traced_config(tmp_path, clog_threshold=0.8, clog_min_windows=2)
        run_simulation(cfg, "SC", "bodytrack", cycles=1200, warmup=400)
        recs = list(read_trace(cfg.telemetry.trace_path))
        assert any(r.get("rec") == "clog" for r in recs)

    def test_result_carries_metrics_snapshot(self):
        cfg = small_config()
        cfg.telemetry.enabled = True
        res = run_simulation(cfg, "SC", "bodytrack", cycles=400, warmup=200)
        assert res.telemetry_metrics["events.deliver"] > 0
        assert "windows" in res.telemetry_metrics
        base = run_simulation(small_config(), "SC", "bodytrack",
                              cycles=400, warmup=200)
        assert base.telemetry_metrics == {}
        # metrics ride along but never leak into the bit-identity surface
        assert res.counters == base.counters

    def test_sweep_manifest_carries_telemetry_metrics(self):
        from repro.sweep.runner import JobOutcome

        cfg = small_config()
        cfg.telemetry.enabled = True
        spec = JobSpec.make(cfg, "SC", "bodytrack", cycles=400, warmup=200)
        res = run_simulation(cfg, "SC", "bodytrack", cycles=400, warmup=200)
        d = JobOutcome(spec=spec, key=spec.key(), status="ok",
                       result=res).as_dict()
        assert d["metrics"]["telemetry"]["events.deliver"] > 0


class TestFlightRecorder:
    def test_dump_on_clog_open(self, tmp_path):
        flights = tmp_path / "flights"
        cfg = _traced_config(tmp_path, clog_threshold=0.8,
                             clog_min_windows=2, flight_dir=str(flights))
        run_simulation(cfg, "SC", "bodytrack", cycles=1200, warmup=400)
        dumps = sorted(flights.glob("flight-*-clog*.rdmp"))
        assert dumps, "clog episode opened but no flight dump written"
        recs = list(read_trace(str(dumps[0])))
        meta, events = recs[0], recs[1:]
        assert meta["dump"] == "clog" and "dump_node" in meta
        assert meta["events_retained"] == len(events) > 0
        cycles = [r["cycle"] for r in events]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= meta["dump_cycle"]
        # the main trace names every dump file it wrote
        flight_recs = [r for r in read_trace(cfg.telemetry.trace_path)
                       if r.get("rec") == "flight"]
        assert {r["path"] for r in flight_recs} >= {str(p) for p in dumps}

    def test_fault_dump_on_first_occurrence_only(self, tmp_path):
        cfg = _traced_config(tmp_path, flight_dir=str(tmp_path / "fl"))
        system = build_system(cfg, "SC", "bodytrack")
        system.run(100)
        tel = system.telemetry
        tel.on_fault_event({"rec": "fault", "fault": "flit_drop",
                            "cycle": 60})
        tel.on_fault_event({"rec": "fault", "fault": "flit_drop",
                            "cycle": 70})
        assert tel.events["flit_drop"] == 2
        fault_dumps = [p for p in tel.flight_dumps if "fault-flit_drop" in p]
        assert len(fault_dumps) == 1
        recs = list(read_trace(fault_dumps[0]))
        assert recs[0]["dump"] == "fault-flit_drop"
        assert recs[0]["dump_cycle"] == 60
        assert len(recs) > 1  # lead-up events decode

    def test_dump_count_is_capped(self, tmp_path):
        cfg = _traced_config(tmp_path, flight_dir=str(tmp_path / "fl"),
                             clog_threshold=2.0)  # never clog-dump
        system = build_system(cfg, "SC", "bodytrack")
        system.run(50)
        tel = system.telemetry
        for i in range(12):
            tel.on_fault_event({"rec": "fault", "fault": f"f{i}",
                                "cycle": 50 + i})
        assert len(tel.flight_dumps) == 8

    def test_no_dir_retains_but_never_writes(self, tmp_path):
        cfg = _traced_config(tmp_path, clog_threshold=0.8,
                             clog_min_windows=2)  # flight_dir unset
        res = run_simulation(cfg, "SC", "bodytrack", cycles=1200, warmup=400)
        assert res.telemetry_metrics.get("flight.dumps", 0) == 0
        assert res.telemetry_metrics["ring_retained"] > 0


class TestReaderVersions:
    def test_rtel_future_version_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "future.rtel"
        path.write_bytes(MAGIC + struct.pack("<H", 99))
        with pytest.raises(ValueError, match="v99 is not supported"):
            list(read_trace(str(path)))
        assert telemetry_main(["report", str(path)]) == 2
        err = capsys.readouterr().err
        assert "v99" in err
        assert len(err.strip().splitlines()) == 1

    def test_rdmp_future_schema_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "future.rdmp"
        write_dump(path, {"nodes": 4}, [], schema=99)
        with pytest.raises(ValueError, match="newer than this reader"):
            list(read_trace(str(path)))
        assert telemetry_main(["events", str(path)]) == 2
        err = capsys.readouterr().err
        assert "v99" in err
        assert len(err.strip().splitlines()) == 1

    def test_jsonl_future_schema_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({"rec": "meta", "schema": 99}) + "\n")
        with pytest.raises(ValueError, match="newer than this reader"):
            list(read_trace(str(path)))
        assert telemetry_main(["report", str(path)]) == 2
        err = capsys.readouterr().err
        assert "v99" in err or "99" in err
        assert len(err.strip().splitlines()) == 1

    def test_current_formats_all_read(self, tmp_path):
        # RTEL and JSONL via a traced run, RDMP via a ring dump: one
        # read_trace auto-detects all three
        for fmt in ("jsonl", "bin"):
            sub = tmp_path / fmt
            sub.mkdir(exist_ok=True)
            cfg = _traced_config(sub, fmt=fmt)
            run_simulation(cfg, "SC", "bodytrack", cycles=300, warmup=100)
            assert list(read_trace(cfg.telemetry.trace_path))[0]["rec"] == "meta"
        dump = tmp_path / "d.rdmp"
        write_dump(dump, {}, [_ring_event(5)], schema=2)
        assert [r["cycle"] for r in list(read_trace(str(dump)))[1:]] == [5]


class TestCli:
    def _make_trace(self, tmp_path, fmt="jsonl"):
        cfg = _traced_config(tmp_path, fmt=fmt)
        run_simulation(cfg, "SC", "bodytrack", cycles=600, warmup=200)
        return cfg.telemetry.trace_path

    def test_report(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        assert telemetry_main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "latency percentiles" in out
        assert "p99" in out and "reply" in out

    def test_hist_filters(self, tmp_path, capsys):
        path = self._make_trace(tmp_path, fmt="bin")
        assert telemetry_main(["hist", path, "--net", "reply",
                               "--cls", "GPU"]) == 0
        out = capsys.readouterr().out
        assert "reply/GPU" in out and "request" not in out

    def test_timeline(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        assert telemetry_main(["timeline", path]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out and "util" in out
        assert len(out.splitlines()) >= 5

    def test_events(self, tmp_path, capsys):
        path = self._make_trace(tmp_path)
        assert telemetry_main(["events", path]) == 0
        out = capsys.readouterr().out
        assert "episode" in out

    def test_blame(self, tmp_path, capsys):
        cfg = _traced_config(tmp_path, mode="full", clog_threshold=0.8,
                             clog_min_windows=2)
        run_simulation(cfg, "SC", "bodytrack", cycles=1200, warmup=400)
        assert telemetry_main(["blame", cfg.telemetry.trace_path]) == 0
        out = capsys.readouterr().out
        assert "per-router stall cycles" in out
        assert "memory-node reply-buffer pressure" in out
        assert "mesh stall heatmap" in out
        assert "episode root causes" in out

    def test_blame_reports_disabled_attribution(self, tmp_path, capsys):
        cfg = _traced_config(tmp_path, stall_attribution=False)
        run_simulation(cfg, "SC", "bodytrack", cycles=400, warmup=200)
        assert telemetry_main(["blame", cfg.telemetry.trace_path]) == 0
        out = capsys.readouterr().out
        assert "stall attribution was disabled" in out

    def test_missing_trace_is_one_line_error(self, tmp_path, capsys):
        path = str(tmp_path / "does-not-exist.jsonl")
        assert telemetry_main(["report", path]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read trace")
        assert len(err.strip().splitlines()) == 1

    def test_empty_trace_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert telemetry_main(["blame", str(path)]) == 2
        err = capsys.readouterr().err
        assert "is empty (no records)" in err
        assert len(err.strip().splitlines()) == 1

    def test_garbage_trace_is_one_line_error(self, tmp_path, capsys):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"\x00\x01not a trace file at all")
        assert telemetry_main(["report", str(path)]) == 2
        err = capsys.readouterr().err
        assert "is not a readable trace" in err
        assert len(err.strip().splitlines()) == 1

    def test_readers_emit_json(self, tmp_path, capsys):
        """Every reader honours the shared --format json switch."""
        import json

        path = self._make_trace(tmp_path)
        for cmd in ("report", "hist", "timeline", "events", "blame"):
            assert telemetry_main([cmd, path, "--format", "json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["path"] == path

    def test_report_json_matches_table_numbers(self, tmp_path, capsys):
        import json

        path = self._make_trace(tmp_path)
        telemetry_main(["report", path, "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["records"] > 0
        assert payload["events"].get("deliver", 0) > 0
        rows = {(r["net"], r["cls"]): r for r in payload["latency"]}
        assert ("reply", "GPU") in rows
        assert rows[("reply", "GPU")]["p99"] >= rows[("reply", "GPU")]["p50"]

    def test_blame_json_totals_match_table(self, tmp_path, capsys):
        import json

        cfg = _traced_config(tmp_path, mode="full", clog_threshold=0.8,
                             clog_min_windows=2)
        run_simulation(cfg, "SC", "bodytrack", cycles=1200, warmup=400)
        path = cfg.telemetry.trace_path
        assert telemetry_main(["blame", path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["routers"]
        top = payload["routers"][0]
        assert top["total"] == sum(top["classes"].values())
        telemetry_main(["blame", path])
        table = capsys.readouterr().out
        assert str(top["total"]) in table

    def test_load_summary_uses_full_histograms(self, tmp_path):
        # sampled traces still report exact percentiles: the final "hist"
        # records carry the full population, overriding sampled deliveries
        cfg = _traced_config(tmp_path, sample_rate=0.2)
        run_simulation(cfg, "SC", "bodytrack", cycles=600, warmup=200)
        summary = load_summary(cfg.telemetry.trace_path)
        full = [r for r in read_trace(cfg.telemetry.trace_path)
                if r.get("rec") == "hist" and r["net"] == "reply"
                and r["cls"] == "GPU"]
        assert summary.hists[("reply", "GPU")].count == full[0]["count"]


class TestConfigPlumbing:
    def test_loader_round_trip(self):
        cfg = SystemConfig()
        cfg.telemetry.enabled = True
        cfg.telemetry.sample_rate = 0.5
        cfg.telemetry.trace_format = "bin"
        clone = config_from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert clone.telemetry == cfg.telemetry

    def test_sweep_key_ignores_telemetry(self):
        plain = small_config()
        traced = small_config()
        traced.telemetry.enabled = True
        traced.telemetry.trace_path = "/tmp/x.jsonl"
        a = JobSpec.make(plain, "SC", "bodytrack")
        b = JobSpec.make(traced, "SC", "bodytrack")
        assert a.key() == b.key()

    def test_sweep_key_still_sees_real_config(self):
        a = JobSpec.make(small_config(), "SC", "bodytrack")
        b = JobSpec.make(small_config(seed=99), "SC", "bodytrack")
        assert a.key() != b.key()
