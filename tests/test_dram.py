"""Tests for the GDDR5 timing model and FR-FCFS controller."""

import pytest

from repro.config.system import DramConfig
from repro.mem.dram import MemoryController


def drain(mc, until=10_000):
    done = []
    for cyc in range(until):
        mc.step(cyc)
        mc.drain_completions(cyc)
        if not mc.queue and not mc._completions:
            break
    return done


class TestTiming:
    def test_row_miss_pays_activate_precharge(self):
        mc = MemoryController(DramConfig())
        done = []
        mc.submit(0, False, 0, lambda b, c: done.append(c))
        for cyc in range(200):
            mc.step(cyc)
            mc.drain_completions(cyc)
        # cold access: tRP + tRCD + tCL + burst = 12+12+12+4 = 40
        assert done == [40]

    def test_row_hit_is_cheaper(self):
        cfg = DramConfig()
        mc = MemoryController(cfg)
        done = []
        mc.submit(0, False, 0, lambda b, c: done.append(("a", c)))
        mc.submit(1, False, 0, lambda b, c: done.append(("b", c)))  # same row
        for cyc in range(300):
            mc.step(cyc)
            mc.drain_completions(cyc)
        assert mc.row_hits == 1 and mc.row_misses == 1
        (_, t1), (_, t2) = sorted(done, key=lambda x: x[1])
        # the second (row hit) takes tCL + burst = 16 after issue
        assert t2 - t1 < 40

    def test_write_pays_twr(self):
        mc = MemoryController(DramConfig())
        done = []
        mc.submit(0, True, 0, lambda b, c: done.append(c))
        for cyc in range(200):
            mc.step(cyc)
            mc.drain_completions(cyc)
        assert done and done[0] >= 40  # never cheaper than a read


class TestFrFcfs:
    def test_ready_row_hit_bypasses_older_miss(self):
        cfg = DramConfig()
        mc = MemoryController(cfg)
        order = []
        # fill bank 0 row 0, then queue: (old) row 5 of bank 0, (young)
        # row 0 of bank 0.  FR-FCFS serves the young row hit first once the
        # bank reopens row 0.
        mc.submit(0, False, 0, lambda b, c: order.append(b))
        for cyc in range(0, 60):
            mc.step(cyc)
            mc.drain_completions(cyc)
        row_blocks = cfg.row_bytes // 128 * cfg.banks
        old_miss = 5 * row_blocks  # bank 0, row 5
        young_hit = 1               # bank 0, row 0
        mc.submit(old_miss, False, 60, lambda b, c: order.append(b))
        mc.submit(young_hit, False, 60, lambda b, c: order.append(b))
        for cyc in range(60, 400):
            mc.step(cyc)
            mc.drain_completions(cyc)
        assert order.index(young_hit) < order.index(old_miss)

    def test_bank_parallelism(self):
        cfg = DramConfig()
        mc = MemoryController(cfg)
        done = []
        blocks_per_row = cfg.row_bytes // 128
        # two requests on different banks overlap their activates
        mc.submit(0, False, 0, lambda b, c: done.append(c))
        mc.submit(blocks_per_row, False, 0, lambda b, c: done.append(c))
        for cyc in range(300):
            mc.step(cyc)
            mc.drain_completions(cyc)
        assert len(done) == 2
        assert max(done) < 2 * 40  # overlapped, not serialised

    def test_queue_capacity(self):
        cfg = DramConfig(queue_depth=2)
        mc = MemoryController(cfg)
        mc.submit(0, False, 0, lambda b, c: None)
        mc.submit(1, False, 0, lambda b, c: None)
        assert not mc.can_accept()
        with pytest.raises(RuntimeError):
            mc.submit(2, False, 0, lambda b, c: None)

    def test_bus_serialises_bursts(self):
        cfg = DramConfig()
        mc = MemoryController(cfg)
        issued = []
        for i in range(4):
            mc.submit(i * cfg.row_bytes // 128, False, 0, lambda b, c: issued.append(c))
        served_before = 0
        for cyc in range(3):
            mc.step(cyc)
        # one burst per max(tCCD, burst) cycles at most
        assert mc.served <= 1 + 3 // max(cfg.t_ccd, cfg.burst_cycles)

    def test_served_counts(self):
        mc = MemoryController(DramConfig())
        for i in range(5):
            mc.submit(i * 1000, False, 0, lambda b, c: None)
        for cyc in range(1000):
            mc.step(cyc)
            mc.drain_completions(cyc)
        assert mc.served == 5
        assert mc.row_hits + mc.row_misses == 5
