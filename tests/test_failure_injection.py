"""Failure-injection tests: pathological inputs must degrade, not break.

DESIGN.md calls these out: FRQ overflow storms, all-to-one pointer maps,
stale pointers and zero-locality workloads.  Delegated Replies tracks
sharers *imprecisely* — wrong pointers may cost performance but the
system must stay correct (every request still answered, no deadlock).
"""

import dataclasses

import pytest

from repro.config import delegated_replies_config
from repro.noc import MessageType, Packet, TrafficClass
from repro.sim.simulator import build_system, run_simulation
from repro.workloads.gpu import gpu_benchmark

from conftest import small_config, small_dr_config


def drain(system, cycles=8000):
    for core in system.gpu_cores:
        core.stall_until = 10 ** 9
    for core in system.cpu_cores:
        core._countdown = 10 ** 9
        core._pending = None
    for _ in range(cycles):
        system.step()


class TestFrqOverflowStorm:
    def test_tiny_frq_still_conserves_transactions(self):
        cfg = small_dr_config()
        cfg.gpu_l1.frq_entries = 1  # storm: nearly every delegation queues
        system = build_system(cfg, "HS", "vips")
        system.run(800)
        drain(system)
        for core in system.gpu_cores:
            assert len(core.mshrs) == 0
            assert len(core.frq) == 0
        assert system.fabric.in_flight_flits() == 0


class TestAllToOnePointerMap:
    def test_hot_core_poisoned_pointers_stay_correct(self):
        """Force every LLC pointer at one core: that core gets the whole
        delegation storm, FRQ backpressure throttles it, nothing breaks."""
        cfg = small_dr_config()
        system = build_system(cfg, "HS", None)
        hot = system.gpu_cores[0].node_id
        system.run(400)
        for mem in system.memory_nodes:
            for block in list(mem.llc.cache.blocks()):
                mem.llc.cache.set_meta(block, hot)
        system.run(400)
        drain(system)
        for core in system.gpu_cores:
            assert len(core.mshrs) == 0
        assert system.fabric.in_flight_flits() == 0


class TestStalePointers:
    def test_disabled_write_invalidation_still_terminates(self):
        cfg = small_dr_config()
        cfg.llc.pointer_invalidate_on_write = False
        system = build_system(cfg, "BP", "vips")  # write-heavy
        system.run(800)
        drain(system)
        for core in system.gpu_cores:
            assert len(core.mshrs) == 0
        assert system.fabric.in_flight_flits() == 0


class TestZeroLocalityWorkload:
    def test_private_only_workload_never_delegates_usefully(self):
        profile = dataclasses.replace(
            gpu_benchmark("HS"), p_shared=0.0, p_reuse=0.0
        )
        cfg = small_dr_config()
        res = run_simulation(cfg, profile, None, cycles=600, warmup=400)
        # private blocks are only ever touched by one core: the pointer
        # always equals the requester, so (almost) nothing is delegatable
        assert res.delegated_fraction < 0.05

    def test_zero_locality_baseline_equivalence(self):
        profile = dataclasses.replace(
            gpu_benchmark("HS"), p_shared=0.0, p_reuse=0.0
        )
        base = run_simulation(small_config(), profile, None,
                              cycles=600, warmup=400)
        dr = run_simulation(small_dr_config(), profile, None,
                            cycles=600, warmup=400)
        assert dr.gpu_ipc == pytest.approx(base.gpu_ipc, rel=0.10)


class TestHostileDelegations:
    def test_delegation_to_core_without_data_roundtrips_via_dnf(self):
        """A delegated request for a block nobody caches must still end in
        exactly one data reply to the requester (via DNF)."""
        cfg = small_dr_config()
        system = build_system(cfg, "HS", None)
        requester = system.gpu_cores[1].node_id
        victim = system.gpu_cores[0]
        for core in system.gpu_cores:
            core.stall_until = 10 ** 9  # isolate the injected transaction
        # the requester believes it has an outstanding miss
        victim_block = 0x123456
        system.gpu_cores[1].mshrs.allocate(victim_block, ("local", 0))
        fake = Packet(
            system.memory_nodes[0].node_id,
            victim.node_id,
            MessageType.DELEGATED_REQ,
            TrafficClass.GPU,
            1,
            block=victim_block,
            requester=requester,
        )
        victim.on_packet(fake, 0)
        for _ in range(4000):
            system.step()
        assert not system.gpu_cores[1].mshrs.has(victim_block)
        assert system.gpu_cores[1].stats.llc_replies == 1
        assert victim.stats.frq_remote_misses == 1
