"""Tests for the LLC slice and its core-pointer table."""

from repro.cache.llc import LlcRequest, LlcSlice
from repro.config.system import DramConfig, LlcConfig
from repro.mem.dram import MemoryController
from repro.noc.packet import TrafficClass


def make_slice(**cfg_kw):
    cfg = LlcConfig(**cfg_kw)
    mc = MemoryController(DramConfig(), line_bytes=cfg.line_bytes)
    return LlcSlice(0, cfg, mc), mc


def gpu_read(requester, block, dnf=False):
    return LlcRequest(
        requester=requester,
        block=block,
        is_write=False,
        cls=TrafficClass.GPU,
        dnf=dnf,
        gpu_core=True,
        orig_block=block,
    )


def gpu_write(requester, block):
    return LlcRequest(
        requester=requester,
        block=block,
        is_write=True,
        cls=TrafficClass.GPU,
        gpu_core=True,
        orig_block=block,
    )


def run_until_result(llc, mc, start=0, limit=500):
    for cyc in range(start, start + limit):
        mc.step(cyc)
        mc.drain_completions(cyc)
        llc.step(cyc)
        res = llc.pop_result()
        if res is not None:
            return res, cyc
    raise AssertionError("no result produced")


class TestMissAndFill:
    def test_cold_read_goes_to_dram_and_fills(self):
        llc, mc = make_slice()
        llc.enqueue(gpu_read(7, 0x100))
        res, _ = run_until_result(llc, mc)
        assert not res.hit
        assert llc.cache.contains(0x100)
        assert llc.stats.misses == 1

    def test_second_read_hits(self):
        llc, mc = make_slice()
        llc.enqueue(gpu_read(7, 0x100))
        run_until_result(llc, mc)
        llc.enqueue(gpu_read(8, 0x100))
        res, _ = run_until_result(llc, mc, start=600)
        assert res.hit
        assert llc.stats.hits == 1

    def test_mshr_merges_same_block(self):
        llc, mc = make_slice()
        llc.enqueue(gpu_read(1, 0x50))
        llc.enqueue(gpu_read(2, 0x50))
        results = []
        for cyc in range(500):
            mc.step(cyc)
            mc.drain_completions(cyc)
            llc.step(cyc)
            while True:
                r = llc.pop_result()
                if r is None:
                    break
                results.append(r)
        assert len(results) == 2
        assert mc.served == 1  # one DRAM access for both waiters


class TestCorePointers:
    def test_miss_fill_sets_pointer_to_requester(self):
        llc, mc = make_slice()
        llc.enqueue(gpu_read(7, 0x100))
        run_until_result(llc, mc)
        assert llc.pointer_of(0x100) == 7

    def test_hit_returns_previous_pointer_then_updates(self):
        llc, mc = make_slice()
        llc.enqueue(gpu_read(7, 0x100))
        run_until_result(llc, mc)
        llc.enqueue(gpu_read(9, 0x100))
        res, _ = run_until_result(llc, mc, start=600)
        assert res.pointer == 7      # the delegation candidate
        assert llc.pointer_of(0x100) == 9  # updated to the new accessor

    def test_cpu_reads_do_not_set_pointers(self):
        llc, mc = make_slice()
        req = LlcRequest(
            requester=3, block=0x40, is_write=False,
            cls=TrafficClass.CPU, gpu_core=False, orig_block=0x80,
        )
        llc.enqueue(req)
        run_until_result(llc, mc)
        assert llc.pointer_of(0x40) is None

    def test_write_invalidates_pointer(self):
        # Section IV: a write invalidates the core pointer so later readers
        # get the fresh copy from the LLC
        llc, mc = make_slice()
        llc.enqueue(gpu_read(7, 0x100))
        run_until_result(llc, mc)
        llc.enqueue(gpu_write(9, 0x100))
        res, _ = run_until_result(llc, mc, start=600)
        assert llc.pointer_of(0x100) is None
        assert llc.stats.pointer_invalidations >= 1

    def test_flush_drops_all_pointers(self):
        llc, mc = make_slice()
        for i, blk in enumerate((0x10, 0x20, 0x30)):
            llc.enqueue(gpu_read(i, blk))
            run_until_result(llc, mc, start=600 * i)
        dropped = llc.drop_all_pointers()
        assert dropped == 3
        assert llc.pointer_of(0x10) is None

    def test_eviction_discards_pointer_with_line(self):
        llc, mc = make_slice(slice_size_bytes=16 * 128, assoc=16)  # 1 set
        for i in range(17):
            llc.enqueue(gpu_read(1, i))
            run_until_result(llc, mc, start=700 * i)
        assert not llc.cache.contains(0)  # evicted by the 17th fill
        assert llc.pointer_of(0) is None


class TestBackpressure:
    def test_full_output_stalls_lookup_pipeline(self):
        llc, mc = make_slice()
        llc.output_capacity = 1
        # a hit result parks in the output queue; nobody drains it
        llc.enqueue(gpu_read(1, 0x10))
        for cyc in range(100):
            mc.step(cyc)
            mc.drain_completions(cyc)
            llc.step(cyc)
        assert len(llc.output) == 1
        llc.enqueue(gpu_read(1, 0x20))
        llc.enqueue(gpu_read(1, 0x30))
        stalled_before = llc.stats.stalled_cycles
        for cyc in range(100, 130):
            llc.step(cyc)
        assert llc.stats.stalled_cycles > stalled_before

    def test_input_queue_capacity_gates_admission(self):
        llc, mc = make_slice(input_queue=2)
        assert llc.enqueue(gpu_read(1, 1))
        assert llc.enqueue(gpu_read(1, 2))
        assert not llc.can_accept()
        assert not llc.enqueue(gpu_read(1, 3))
