"""Tests for node interfaces, the memory-node injection buffer and the
delegation trigger."""

from repro.config.system import NocConfig
from repro.core.delegated_replies import ReplyMeta
from repro.noc import MeshTopology, MessageType, NocFabric, Packet, TrafficClass
from repro.noc.nic import MemoryNodeNic
from repro.noc.packet import NetKind


def make_fabric(mem_nodes=(5,), **noc_kw):
    cfg = NocConfig(**noc_kw)
    fab = NocFabric(MeshTopology(4, 4), cfg, mem_nodes=mem_nodes)
    for nic in fab.nics:
        nic.handler = lambda pkt, cyc: None
    return fab


def reply(src, dst, cls=TrafficClass.GPU, flits=9, meta=None):
    pkt = Packet(src, dst, MessageType.READ_REPLY, cls, flits)
    pkt.txn = meta
    return pkt


class TestMemoryNodeBuffer:
    def test_reply_buffer_is_flit_bounded(self):
        fab = make_fabric(mem_injection_buffer_flits=18)
        nic = fab.nic(5)
        assert isinstance(nic, MemoryNodeNic)
        assert nic.try_send(reply(5, 0), 0)   # 9 flits, headroom 9 left
        assert nic.try_send(reply(5, 1), 0)   # fills the buffer
        assert not nic.can_enqueue(NetKind.REPLY)
        assert not nic.try_send(reply(5, 2), 0)

    def test_blocking_rate_counts_full_cycles(self):
        fab = make_fabric(mem_injection_buffer_flits=9)
        nic = fab.nic(5)
        nic.try_send(reply(5, 0), 0)
        nic.observed_cycles = 0
        nic.blocked_cycles = 0
        nic.inject_step(0)
        assert nic.observed_cycles == 1
        # the reply starts draining immediately, freeing headroom depends
        # on occupancy; with a 9-flit buffer and an 8-flit remainder the
        # node is still blocked
        assert nic.blocked_cycles in (0, 1)

    def test_cpu_reply_selected_before_gpu(self):
        fab = make_fabric(mem_injection_buffer_flits=36)
        nic = fab.nic(5)
        g = reply(5, 0, TrafficClass.GPU)
        c = reply(5, 1, TrafficClass.CPU)
        nic.try_send(g, 0)
        nic.try_send(c, 0)
        head = nic._select_head(NetKind.REPLY)
        assert head is c

    def test_request_queue_uses_packet_count(self):
        fab = make_fabric()
        nic = fab.nic(5)
        for i in range(nic.queue_packets):
            assert nic.try_send(
                Packet(5, 0, MessageType.DELEGATED_REQ, TrafficClass.GPU, 1,
                       requester=1),
                0,
            )
        assert not nic.can_enqueue(NetKind.REQUEST)


class TestDelegationTrigger:
    def _nic_with_policy(self, buffer_flits=36):
        fab = make_fabric(mem_injection_buffer_flits=buffer_flits)
        nic = fab.nic(5)
        made = []

        def policy(pkt, cycle):
            meta = pkt.txn
            if not isinstance(meta, ReplyMeta) or meta.delegate_to is None:
                return None
            d = Packet(5, meta.delegate_to, MessageType.DELEGATED_REQ,
                       TrafficClass.GPU, 1, requester=pkt.dst, block=pkt.block)
            made.append(d)
            return d

        nic.delegation_policy = policy
        return fab, nic, made

    def test_no_delegation_while_replies_flow(self):
        fab, nic, made = self._nic_with_policy()
        nic.try_send(reply(5, 0, meta=ReplyMeta(True, delegate_to=9)), 0)
        nic.inject_step(0)  # reply flits move fine: no pressure
        assert nic.delegations == 0

    def test_delegation_when_buffer_full(self):
        fab, nic, made = self._nic_with_policy(buffer_flits=27)
        # fill the buffer with three 9-flit replies; only the head drains
        nic.try_send(reply(5, 0, meta=ReplyMeta(True, None)), 0)
        nic.try_send(reply(5, 1, meta=ReplyMeta(True, delegate_to=9)), 0)
        nic.try_send(reply(5, 2, meta=ReplyMeta(True, delegate_to=10)), 0)
        assert not nic.can_enqueue(NetKind.REPLY)
        nic.inject_step(0)
        assert nic.delegations >= 1
        # the delegated request landed on the request queue
        assert any(
            p.mtype is MessageType.DELEGATED_REQ
            for p in nic.queues[NetKind.REQUEST]
        )

    def test_delegation_respects_per_cycle_cap(self):
        fab, nic, made = self._nic_with_policy(buffer_flits=27)
        nic.max_delegations_per_cycle = 1
        for i in range(3):
            nic.try_send(reply(5, i, meta=ReplyMeta(True, delegate_to=9 + i)), 0)
        nic.inject_step(0)
        assert nic.delegations <= 1

    def test_request_injection_does_not_mask_blocked_reply_path(self):
        # Regression: the trigger must watch the *reply* network only.  A
        # cycle where a 1-flit request injects fine while the reply router
        # refuses every flit is still a blocked reply path (Figure 4).
        fab, nic, made = self._nic_with_policy(buffer_flits=36)
        router = fab.router_for(5, NetKind.REPLY)
        for vc in range(router.vcs):  # reply router full: no reply can inject
            router.occ[0][vc] = router.vc_cap
        nic.try_send(reply(5, 0, meta=ReplyMeta(True, delegate_to=9)), 0)
        nic.try_send(
            Packet(5, 0, MessageType.READ_REQ, TrafficClass.GPU, 1), 0
        )
        nic.inject_step(0)
        assert nic.flits_injected_net[NetKind.REQUEST] == 1
        assert nic.flits_injected_net[NetKind.REPLY] == 0
        assert nic.delegations == 1

    def test_delegation_moves_packet_accounting_between_networks(self):
        # Regression: converting a queued reply into a delegated request
        # must also move its packets_sent accounting, else noc.rep_packets
        # overcounts by exactly the number of delegations.
        fab, nic, made = self._nic_with_policy(buffer_flits=27)
        for i in range(3):
            nic.try_send(reply(5, i, meta=ReplyMeta(True, delegate_to=9 + i)), 0)
        sent_rep = nic.packets_sent_net[NetKind.REPLY]
        sent_req = nic.packets_sent_net[NetKind.REQUEST]
        assert sent_rep == 3
        nic.inject_step(0)
        assert nic.delegations >= 1
        assert (
            nic.packets_sent_net[NetKind.REPLY] == sent_rep - nic.delegations
        )
        assert (
            nic.packets_sent_net[NetKind.REQUEST]
            == sent_req + nic.delegations
        )

    def test_non_delegatable_replies_stay(self):
        fab, nic, made = self._nic_with_policy(buffer_flits=27)
        for i in range(3):
            nic.try_send(reply(5, i, meta=ReplyMeta(True, None)), 0)
        nic.inject_step(0)
        assert nic.delegations == 0

    def test_always_delegate_ablation(self):
        fab, nic, made = self._nic_with_policy()
        nic.delegate_only_when_blocked = False
        nic.try_send(reply(5, 0, meta=ReplyMeta(True, delegate_to=9)), 0)
        nic.try_send(reply(5, 1, meta=ReplyMeta(True, delegate_to=9)), 0)
        nic.inject_step(0)
        assert nic.delegations >= 1


class TestCreatedTimestamp:
    def test_cycle_zero_creation_survives_retried_send(self):
        # Regression: created == 0 is a real timestamp, not the "unset"
        # sentinel; a retried send must not re-stamp it.
        fab = make_fabric()
        pkt = Packet(0, 15, MessageType.READ_REQ, TrafficClass.GPU, 1,
                     created=0)
        assert fab.nic(0).try_send(pkt, 7)
        assert pkt.created == 0

    def test_unset_created_is_stamped_on_first_send(self):
        fab = make_fabric()
        pkt = Packet(0, 15, MessageType.READ_REQ, TrafficClass.GPU, 1)
        assert pkt.created == -1
        assert fab.nic(0).try_send(pkt, 7)
        assert pkt.created == 7


class TestEjectGate:
    def test_gate_consults_callback(self):
        fab = make_fabric()
        nic = fab.nic(0)
        nic.eject_gate = lambda pkt: pkt.cls is TrafficClass.CPU
        cpu_pkt = Packet(1, 0, MessageType.READ_REPLY, TrafficClass.CPU, 5)
        gpu_pkt = Packet(1, 0, MessageType.READ_REPLY, TrafficClass.GPU, 9)
        assert nic.can_eject(cpu_pkt)
        assert not nic.can_eject(gpu_pkt)
