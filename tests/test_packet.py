"""Tests for packets and message-type/network mapping."""

import pytest

from repro.noc.packet import (
    MessageType,
    NetKind,
    Packet,
    REQUEST_NET_TYPES,
    TrafficClass,
)


def mk(mtype, flits=1, **kw):
    return Packet(0, 1, mtype, TrafficClass.GPU, flits, **kw)


class TestNetworkAssignment:
    """Requests and delegated replies ride the request network; data
    replies, write acks and probe NACKs ride the reply network."""

    @pytest.mark.parametrize(
        "mtype",
        [
            MessageType.READ_REQ,
            MessageType.WRITE_REQ,
            MessageType.DELEGATED_REQ,
            MessageType.DNF_REQ,
            MessageType.PROBE_REQ,
        ],
    )
    def test_request_network_types(self, mtype):
        assert mk(mtype).net is NetKind.REQUEST
        assert mtype in REQUEST_NET_TYPES

    @pytest.mark.parametrize(
        "mtype",
        [
            MessageType.READ_REPLY,
            MessageType.WRITE_ACK,
            MessageType.C2C_REPLY,
            MessageType.PROBE_NACK,
        ],
    )
    def test_reply_network_types(self, mtype):
        assert mk(mtype).net is NetKind.REPLY


class TestPacketInvariants:
    def test_zero_flits_rejected(self):
        with pytest.raises(ValueError):
            mk(MessageType.READ_REQ, flits=0)

    def test_self_send_rejected(self):
        with pytest.raises(ValueError):
            Packet(3, 3, MessageType.READ_REQ, TrafficClass.GPU, 1)

    def test_requester_defaults_to_src(self):
        assert mk(MessageType.READ_REQ).requester == 0

    def test_delegated_request_encodes_requester(self):
        # Section IV: delegated replies carry the requesting core as sender
        pkt = Packet(
            5, 9, MessageType.DELEGATED_REQ, TrafficClass.GPU, 1, requester=7
        )
        assert pkt.src == 5 and pkt.requester == 7

    def test_latency_requires_delivery(self):
        pkt = mk(MessageType.READ_REQ)
        with pytest.raises(ValueError):
            _ = pkt.latency
        pkt.created = 10
        pkt.delivered = 35
        assert pkt.latency == 25

    def test_ids_are_unique_and_monotonic(self):
        a, b = mk(MessageType.READ_REQ), mk(MessageType.READ_REQ)
        assert b.pid > a.pid

    def test_cpu_class_outranks_gpu_in_sort(self):
        assert TrafficClass.CPU < TrafficClass.GPU

    def test_dnf_defaults_false(self):
        assert not mk(MessageType.READ_REQ).dnf
