"""Tests for the GPU SM core model, the FRQ and delegated-reply handling."""

import pytest

from repro.config import realistic_probing_config
from repro.core.realistic_probing import ProbeEngine
from repro.gpu.core import GpuCore
from repro.gpu.shared_l1 import PrivateL1
from repro.mem.address import AddressMap
from repro.noc import MeshTopology, MessageType, NocFabric, Packet, TrafficClass
from repro.noc.packet import NetKind
from repro.workloads.gpu import GpuTraceGenerator, SharedWavefront, gpu_benchmark

from conftest import small_config


class Harness:
    """A single GPU core wired to a real fabric (no other endpoints)."""

    def __init__(self, cfg=None, probing=False, node=15, bench="HS"):
        self.cfg = cfg or small_config()
        topo = MeshTopology(self.cfg.mesh_width, self.cfg.mesh_height)
        self.fabric = NocFabric(topo, self.cfg.noc, mem_nodes=(4,))
        profile = gpu_benchmark(bench)
        trace = GpuTraceGenerator(profile, 0, SharedWavefront(profile))
        engine = None
        if probing:
            engine = ProbeEngine(self.cfg.probing, node, [node, 14, 13, 12])
        self.core = GpuCore(
            node_id=node,
            core_index=0,
            cfg=self.cfg,
            l1=PrivateL1(self.cfg.gpu_l1),
            trace=trace,
            nic=self.fabric.nic(node),
            addr_map=AddressMap((4,)),
            probe_engine=engine,
        )
        self.mem_seen = []
        self.fabric.nic(4).handler = lambda pkt, cyc: self.mem_seen.append(pkt)

    def run(self, cycles, start=0):
        for cyc in range(start, start + cycles):
            self.core.step(cyc)
            self.fabric.step(cyc)

    def deliver(self, pkt, cycle=0):
        self.core.on_packet(pkt, cycle)


class TestIssueAndMiss:
    def test_cold_misses_reach_memory_node(self):
        h = Harness()
        h.run(100)
        assert any(p.mtype is MessageType.READ_REQ for p in h.mem_seen)
        assert h.core.stats.l1_miss_ops > 0

    def test_mshr_bounds_outstanding_misses(self):
        h = Harness()
        h.run(400)
        assert len(h.core.mshrs) <= h.cfg.gpu_l1.mshrs

    def test_fill_wakes_warp_and_counts_insts(self):
        h = Harness()
        h.run(50)
        block = next(iter(h.core.mshrs.outstanding_blocks()))
        before = h.core.stats.insts
        h.deliver(
            Packet(4, 15, MessageType.READ_REPLY, TrafficClass.GPU, 9,
                   block=block),
            cycle=60,
        )
        assert h.core.stats.insts > before
        assert h.core.l1.contains(block)
        assert not h.core.mshrs.has(block)

    def test_writes_emit_write_through_and_ack_retires(self):
        h = Harness(bench="BP")  # write-heavy
        h.run(300)
        writes = [p for p in h.mem_seen if p.mtype is MessageType.WRITE_REQ]
        assert writes
        assert writes[0].size_flits == 9  # data-carrying write
        outstanding = h.core.outstanding_writes
        h.deliver(
            Packet(4, 15, MessageType.WRITE_ACK, TrafficClass.GPU, 1,
                   block=writes[0].block)
        )
        assert h.core.outstanding_writes == outstanding - 1


class TestFrq:
    def test_remote_hit_sends_c2c_reply(self):
        h = Harness()
        h.core.l1.fill(0xABC)
        h.deliver(
            Packet(4, 15, MessageType.DELEGATED_REQ, TrafficClass.GPU, 1,
                   block=0xABC, requester=9)
        )
        h.run(50, start=10)
        assert h.core.stats.frq_remote_hits == 1
        # the C2C reply was queued towards core 9 on the reply network
        sent = h.core.nic.packets_sent_net[NetKind.REPLY]
        assert sent >= 1

    def test_remote_miss_resends_dnf_to_llc(self):
        h = Harness()
        h.deliver(
            Packet(4, 15, MessageType.DELEGATED_REQ, TrafficClass.GPU, 1,
                   block=0xDEAD, requester=9)
        )
        h.run(80, start=10)
        assert h.core.stats.frq_remote_misses == 1
        dnf = [p for p in h.mem_seen if p.mtype is MessageType.DNF_REQ]
        assert len(dnf) == 1
        assert dnf[0].dnf
        assert dnf[0].requester == 9  # original requester preserved

    def test_delayed_hit_serves_after_fill(self):
        h = Harness()
        h.run(50)  # creates outstanding misses
        block = next(iter(h.core.mshrs.outstanding_blocks()))
        h.deliver(
            Packet(4, 15, MessageType.DELEGATED_REQ, TrafficClass.GPU, 1,
                   block=block, requester=9),
            cycle=50,
        )
        h.run(20, start=50)
        assert h.core.stats.frq_delayed_hits == 1
        # fill arrives -> C2C reply to core 9 gets queued
        h.deliver(
            Packet(4, 15, MessageType.READ_REPLY, TrafficClass.GPU, 9,
                   block=block),
            cycle=80,
        )
        assert any(dst == 9 for dst, _ in list(h.core._c2c_out))

    def test_full_frq_refuses_ejection(self):
        h = Harness()
        for i in range(h.cfg.gpu_l1.frq_entries):
            assert h.core.frq.push(9, 0x1000 + i, 0)
        pkt = Packet(4, 15, MessageType.DELEGATED_REQ, TrafficClass.GPU, 1,
                     block=0x2000, requester=9)
        assert not h.core.nic.can_eject(pkt)
        # data replies are still accepted
        rep = Packet(4, 15, MessageType.READ_REPLY, TrafficClass.GPU, 9,
                     block=0x2000)
        assert h.core.nic.can_eject(rep)

    def test_remote_requests_never_allocate_mshrs(self):
        # Section IV deadlock avoidance: the remote miss path must not
        # depend on local MSHR availability
        h = Harness()
        h.core.stall_until = 10_000  # no local issue interference
        h.deliver(
            Packet(4, 15, MessageType.DELEGATED_REQ, TrafficClass.GPU, 1,
                   block=0xBEEF, requester=9)
        )
        h.run(30, start=5)
        assert len(h.core.mshrs) == 0
        assert h.core.stats.frq_remote_misses == 1


class TestProbing:
    def test_probe_request_inflation(self):
        cfg = small_config()
        cfg.probing.enabled = True
        h = Harness(cfg=cfg, probing=True)
        h.run(300)
        probes = [p for p in h.mem_seen if p.mtype is MessageType.PROBE_REQ]
        # probes go to other cores, not the memory node
        assert not probes
        assert h.core.probe.stats.probes_sent > 0

    def test_probe_hit_served_from_l1(self):
        cfg = small_config()
        h = Harness(cfg=cfg, probing=True)
        h.core.l1.fill(0x77)
        h.deliver(
            Packet(14, 15, MessageType.PROBE_REQ, TrafficClass.GPU, 1,
                   block=0x77, requester=14)
        )
        h.run(10, start=1)
        assert h.core.stats.probe_hits_served == 1

    def test_probe_miss_nacks(self):
        h = Harness(probing=True)
        h.deliver(
            Packet(14, 15, MessageType.PROBE_REQ, TrafficClass.GPU, 1,
                   block=0x5555, requester=14)
        )
        h.run(10, start=1)
        assert any(True for _ in h.core._nack_out) or \
            h.core.nic.packets_sent_net[NetKind.REPLY] >= 1

    def test_all_nacks_fall_back_to_llc(self):
        h = Harness(probing=True)
        engine = h.core.probe
        engine.begin(0x99, 2)
        h.core.mshrs.allocate(0x99, ("local", 0))
        h.deliver(Packet(14, 15, MessageType.PROBE_NACK, TrafficClass.GPU, 1,
                         block=0x99))
        assert engine.is_probing(0x99)
        h.deliver(Packet(13, 15, MessageType.PROBE_NACK, TrafficClass.GPU, 1,
                         block=0x99))
        assert not engine.is_probing(0x99)
        h.run(50, start=5)
        fallback = [p for p in h.mem_seen if p.mtype is MessageType.READ_REQ
                    and p.block == 0x99]
        assert len(fallback) == 1


class TestFlush:
    def test_flush_empties_l1(self):
        h = Harness()
        h.core.l1.fill(1)
        h.core.l1.fill(2)
        assert h.core.flush_l1() == 2
        assert not h.core.l1.contains(1)
        assert h.core.stats.flushes == 1

    def test_stall_until_pauses_issue(self):
        h = Harness()
        h.core.stall_until = 100
        h.run(50)
        assert h.core.stats.mem_ops == 0
        h.run(100, start=100)
        assert h.core.stats.mem_ops > 0
