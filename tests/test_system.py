"""Integration tests: the fully assembled system end to end."""

import pytest

from repro.config import L1Organization, Mechanism
from repro.sim.metrics import collect_counters, derive_result, diff_counters
from repro.sim.simulator import build_system, run_simulation
from repro.sim.system import HeterogeneousSystem

from conftest import small_config, small_dr_config


def run_small(cfg, gpu="HS", cpu="bodytrack", cycles=600, warmup=300):
    return run_simulation(cfg, gpu, cpu, cycles=cycles, warmup=warmup)


class TestAssembly:
    def test_core_counts_match_config(self):
        system = build_system(small_config(), "HS", "vips")
        assert len(system.gpu_cores) == 10
        assert len(system.cpu_cores) == 4
        assert len(system.memory_nodes) == 2

    def test_no_cpu_workload_means_no_cpu_cores(self):
        system = build_system(small_config(), "HS")
        assert system.cpu_cores == []

    def test_sim_scale_shrinks_caches_once(self):
        cfg = small_config()
        assert cfg.sim_scale == 0.125
        system = build_system(cfg, "HS")
        scaled = system.cfg.gpu_l1.size_bytes
        assert scaled == int(48 * 1024 * 0.125)
        assert system.cfg.sim_scale == 1.0
        # caller's config untouched
        assert cfg.gpu_l1.size_bytes == 48 * 1024

    def test_mechanism_wiring(self):
        dr = build_system(small_dr_config(), "HS")
        assert dr.delegation is not None
        assert all(
            m.nic.delegation_policy is not None for m in dr.memory_nodes
        )
        base = build_system(small_config(), "HS")
        assert base.delegation is None

    def test_shared_l1_clusters(self):
        cfg = small_config()
        cfg.l1_org = L1Organization.DC_L1
        system = build_system(cfg, "HS")
        assert len(system._clusters) == 2  # 10 cores / 8 per cluster


class TestEndToEnd:
    def test_simulation_makes_progress(self):
        res = run_small(small_config())
        assert res.gpu_ipc > 0
        assert res.cpu_ipc > 0
        assert res.counters["mem.requests"] > 0

    def test_determinism(self):
        r1 = run_small(small_config())
        r2 = run_small(small_config())
        assert r1.gpu_ipc == r2.gpu_ipc
        assert r1.counters == r2.counters

    def test_seed_changes_results(self):
        cfg2 = small_config()
        cfg2.seed = 99
        r1 = run_small(small_config())
        r2 = run_small(cfg2)
        assert r1.gpu_ipc != r2.gpu_ipc

    def test_transaction_conservation_after_drain(self):
        """Every issued request is eventually answered exactly once."""
        system = build_system(small_config(), "HS", "vips")
        system.run(500)
        # stop issuing and let everything drain
        for core in system.gpu_cores:
            core.stall_until = 10 ** 9
        for core in system.cpu_cores:
            core._blocked_on = None
            core._countdown = 10 ** 9
            core._pending = None
        for _ in range(6000):
            system.step()
        for core in system.gpu_cores:
            assert len(core.mshrs) == 0, "GPU MSHRs left outstanding"
            assert core.outstanding_writes == 0
            assert len(core.frq) == 0
        for core in system.cpu_cores:
            assert len(core.mshrs) == 0, "CPU MSHRs left outstanding"
        assert system.fabric.in_flight_flits() == 0

    def test_dr_drain_conservation(self):
        """Same conservation property with delegation active."""
        system = build_system(small_dr_config(), "HS", "vips")
        system.run(800)
        for core in system.gpu_cores:
            core.stall_until = 10 ** 9
        for core in system.cpu_cores:
            core._countdown = 10 ** 9
            core._pending = None
        for _ in range(8000):
            system.step()
        for core in system.gpu_cores:
            assert len(core.mshrs) == 0
            assert len(core.frq) == 0
            assert not core._c2c_out and not core._dnf_out
        assert system.fabric.in_flight_flits() == 0

    def test_kernel_flush_interval(self):
        system = build_system(small_config(), "HS", None,
                              kernel_flush_interval=200)
        system.run(650)
        assert system.kernel_flushes == 3
        assert system.coherence.stats.flushes == 3


class TestMechanismsEndToEnd:
    def test_dr_helps_on_high_locality_workload(self):
        base = run_small(small_config(), cycles=1200, warmup=600)
        dr = run_small(small_dr_config(), cycles=1200, warmup=600)
        assert dr.gpu_ipc > base.gpu_ipc
        assert dr.counters["mem.delegations"] > 0

    def test_dr_produces_c2c_replies(self):
        dr = run_small(small_dr_config(), cycles=1200, warmup=600)
        assert dr.counters["gpu.c2c_replies"] > 0

    def test_memory_nodes_block_under_load(self):
        base = run_small(small_config(), cycles=1000, warmup=500)
        assert base.mem_blocking_rate > 0.3


class TestMetricsPlumbing:
    def test_counter_diff_isolates_window(self):
        system = build_system(small_config(), "HS", "vips")
        system.run(300)
        snap = collect_counters(system)
        system.run(300)
        window = diff_counters(collect_counters(system), snap)
        assert window["cycle"] == 300
        assert window["gpu.insts"] >= 0

    def test_derive_result_fields(self):
        res = run_small(small_config())
        assert res.cycles == 600
        assert 0 <= res.mem_blocking_rate <= 1
        assert 0 <= res.mem_reply_link_utilization <= 1.01
        breakdown = res.miss_breakdown()
        assert abs(sum(breakdown.values()) - 1.0) < 1e-6
