"""Tests for the ``python -m repro.sweep`` command-line interface."""

import json
from pathlib import Path

import pytest

from repro.sweep.__main__ import main

SWEEP = ["--benchmarks", "HS", "--mechanisms", "baseline",
         "--cycles", "150", "--warmup", "100"]


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def run_cli(*argv):
    return main(list(argv))


class TestRun:
    def test_run_then_resume_from_cache(self, cache_dir, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        rc = run_cli("run", *SWEEP, "--jobs", "1",
                     "--cache-dir", cache_dir, "--manifest", str(manifest))
        assert rc == 0
        data = json.loads(manifest.read_text())
        assert data["totals"] == {"ok": 1, "cached": 0, "failed": 0}
        (job,) = data["jobs"]
        assert job["label"] == ["HS", "bodytrack", "baseline"]
        assert job["status"] == "ok"
        assert job["attempts"] == 1
        assert job["wall_time_s"] > 0

        rc = run_cli("run", *SWEEP, "--jobs", "1", "--resume",
                     "--cache-dir", cache_dir, "--manifest", str(manifest))
        assert rc == 0
        data = json.loads(manifest.read_text())
        assert data["totals"] == {"ok": 0, "cached": 1, "failed": 0}

    def test_force_recomputes(self, cache_dir, capsys):
        assert run_cli("run", *SWEEP, "--cache-dir", cache_dir) == 0
        assert run_cli("run", *SWEEP, "--force", "--cache-dir", cache_dir) == 0
        out = capsys.readouterr().out
        assert "1 simulated, 0 from cache" in out

    def test_batch_flag_runs_pooled_and_lands_in_manifest(
        self, cache_dir, tmp_path, capsys
    ):
        manifest = tmp_path / "manifest.json"
        rc = run_cli("run", "--benchmarks", "HS,SC",
                     "--mechanisms", "baseline",
                     "--cycles", "150", "--warmup", "100",
                     "--jobs", "2", "--batch", "2",
                     "--cache-dir", cache_dir, "--out", str(manifest))
        assert rc == 0
        data = json.loads(manifest.read_text())
        assert data["workers"] == 2
        assert data["batch"] == 2
        assert data["totals"] == {"ok": 2, "cached": 0, "failed": 0}

    def test_default_batch_recorded_as_adaptive(self, cache_dir, tmp_path,
                                                capsys):
        manifest = tmp_path / "manifest.json"
        rc = run_cli("run", *SWEEP, "--cache-dir", cache_dir,
                     "--out", str(manifest))
        assert rc == 0
        assert json.loads(manifest.read_text())["batch"] == "adaptive"


class TestIntrospection:
    def test_list_shows_cache_state(self, cache_dir, capsys):
        run_cli("list", *SWEEP, "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert "1 job(s)" in out and "missing" in out

        run_cli("run", *SWEEP, "--cache-dir", cache_dir)
        capsys.readouterr()
        run_cli("list", *SWEEP, "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert "cached" in out and "missing" not in out

    def test_status_counts(self, cache_dir, capsys):
        run_cli("status", *SWEEP, "--cache-dir", cache_dir)
        assert "0/1 job(s) cached" in capsys.readouterr().out
        run_cli("run", *SWEEP, "--cache-dir", cache_dir)
        capsys.readouterr()
        run_cli("status", *SWEEP, "--cache-dir", cache_dir)
        assert "1/1 job(s) cached" in capsys.readouterr().out

    def test_status_without_progress_log(self, cache_dir, capsys):
        run_cli("status", *SWEEP, "--cache-dir", cache_dir)
        assert "no progress log" in capsys.readouterr().out

    def test_clean_empties_cache(self, cache_dir, capsys):
        run_cli("run", *SWEEP, "--cache-dir", cache_dir)
        capsys.readouterr()
        assert run_cli("clean", "--cache-dir", cache_dir) == 0
        assert "removed 1" in capsys.readouterr().out
        run_cli("status", *SWEEP, "--cache-dir", cache_dir)
        assert "0/1 job(s) cached" in capsys.readouterr().out


class TestProgressLog:
    def test_run_writes_jsonl_progress(self, cache_dir, capsys):
        assert run_cli("run", *SWEEP, "--cache-dir", cache_dir) == 0
        plog = Path(cache_dir) / "progress.jsonl"  # default location
        recs = [json.loads(l) for l in plog.read_text().splitlines()]
        kinds = [r["rec"] for r in recs]
        assert kinds[0] == "start" and kinds[-1] == "end"
        assert recs[0]["total"] == 1 and recs[0]["workers"] >= 1
        assert all("ts" in r for r in recs)
        (job,) = [r for r in recs if r["rec"] == "job"]
        assert job["status"] == "ok"
        assert job["label"] == ["HS", "bodytrack", "baseline"]
        assert job["done"] == 1 and job["total"] == 1
        assert job["wall_time_s"] > 0 and job["attempts"] == 1

    def test_cached_rerun_logs_cached_jobs(self, cache_dir, capsys):
        run_cli("run", *SWEEP, "--cache-dir", cache_dir)
        run_cli("run", *SWEEP, "--cache-dir", cache_dir)
        plog = Path(cache_dir) / "progress.jsonl"
        recs = [json.loads(l) for l in plog.read_text().splitlines()]
        # appended segments: two start markers, last segment is all-cached
        assert [r["rec"] for r in recs].count("start") == 2
        last = recs[[r["rec"] for r in recs].index("start", 1):]
        assert [r["status"] for r in last if r["rec"] == "job"] == ["cached"]

    def test_status_summarises_last_run(self, cache_dir, capsys):
        run_cli("run", *SWEEP, "--cache-dir", cache_dir)
        capsys.readouterr()
        run_cli("status", *SWEEP, "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert "last run: 1/1 job(s) done (1 ok)" in out
        assert "finished in" in out
        assert "s/job" in out

    def test_explicit_progress_log_path(self, cache_dir, tmp_path, capsys):
        plog = tmp_path / "custom.jsonl"
        run_cli("run", *SWEEP, "--cache-dir", cache_dir,
                "--progress-log", str(plog))
        assert plog.exists()
        capsys.readouterr()
        run_cli("status", *SWEEP, "--cache-dir", cache_dir,
                "--progress-log", str(plog))
        assert "last run: 1/1 job(s) done" in capsys.readouterr().out

    def test_status_tolerates_torn_tail_line(self, cache_dir, tmp_path,
                                             capsys):
        plog = tmp_path / "torn.jsonl"
        plog.write_text(
            json.dumps({"rec": "start", "total": 2, "workers": 1}) + "\n"
            + json.dumps({"rec": "job", "status": "ok",
                          "wall_time_s": 0.5, "attempts": 1,
                          "done": 1, "total": 2}) + "\n"
            + '{"rec": "jo'  # crashed writer: torn tail
        )
        run_cli("status", *SWEEP, "--cache-dir", cache_dir,
                "--progress-log", str(plog))
        out = capsys.readouterr().out
        assert "last run: 1/2 job(s) done (1 ok) — running" in out
