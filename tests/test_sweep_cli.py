"""Tests for the ``python -m repro.sweep`` command-line interface."""

import json

import pytest

from repro.sweep.__main__ import main

SWEEP = ["--benchmarks", "HS", "--mechanisms", "baseline",
         "--cycles", "150", "--warmup", "100"]


@pytest.fixture
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


def run_cli(*argv):
    return main(list(argv))


class TestRun:
    def test_run_then_resume_from_cache(self, cache_dir, tmp_path, capsys):
        manifest = tmp_path / "manifest.json"
        rc = run_cli("run", *SWEEP, "--jobs", "1",
                     "--cache-dir", cache_dir, "--manifest", str(manifest))
        assert rc == 0
        data = json.loads(manifest.read_text())
        assert data["totals"] == {"ok": 1, "cached": 0, "failed": 0}
        (job,) = data["jobs"]
        assert job["label"] == ["HS", "bodytrack", "baseline"]
        assert job["status"] == "ok"
        assert job["attempts"] == 1
        assert job["wall_time_s"] > 0

        rc = run_cli("run", *SWEEP, "--jobs", "1", "--resume",
                     "--cache-dir", cache_dir, "--manifest", str(manifest))
        assert rc == 0
        data = json.loads(manifest.read_text())
        assert data["totals"] == {"ok": 0, "cached": 1, "failed": 0}

    def test_force_recomputes(self, cache_dir, capsys):
        assert run_cli("run", *SWEEP, "--cache-dir", cache_dir) == 0
        assert run_cli("run", *SWEEP, "--force", "--cache-dir", cache_dir) == 0
        out = capsys.readouterr().out
        assert "1 simulated, 0 from cache" in out


class TestIntrospection:
    def test_list_shows_cache_state(self, cache_dir, capsys):
        run_cli("list", *SWEEP, "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert "1 job(s)" in out and "missing" in out

        run_cli("run", *SWEEP, "--cache-dir", cache_dir)
        capsys.readouterr()
        run_cli("list", *SWEEP, "--cache-dir", cache_dir)
        out = capsys.readouterr().out
        assert "cached" in out and "missing" not in out

    def test_status_counts(self, cache_dir, capsys):
        run_cli("status", *SWEEP, "--cache-dir", cache_dir)
        assert "0/1 job(s) cached" in capsys.readouterr().out
        run_cli("run", *SWEEP, "--cache-dir", cache_dir)
        capsys.readouterr()
        run_cli("status", *SWEEP, "--cache-dir", cache_dir)
        assert "1/1 job(s) cached" in capsys.readouterr().out

    def test_clean_empties_cache(self, cache_dir, capsys):
        run_cli("run", *SWEEP, "--cache-dir", cache_dir)
        capsys.readouterr()
        assert run_cli("clean", "--cache-dir", cache_dir) == 0
        assert "removed 1" in capsys.readouterr().out
        run_cli("status", *SWEEP, "--cache-dir", cache_dir)
        assert "0/1 job(s) cached" in capsys.readouterr().out
