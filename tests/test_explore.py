"""repro.explore: Pareto mechanics, search spaces, env, hybrid search, CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.explore.env import ExploreEnv
from repro.explore.objectives import OBJECTIVE_NAMES, SENSES, from_prediction
from repro.explore.pareto import (
    FrontierPoint,
    ParetoFrontier,
    crowding_distance,
    default_reference,
    dominates,
    hypervolume,
    non_dominated_sort,
)
from repro.explore.search import explore, nsga2_search, random_search
from repro.explore.space import demo_space, Knob, SearchSpace


def _manifest_no_clock(outcome):
    data = outcome.manifest()
    data.pop("wall_time_s")
    return data


class TestDominance:
    def test_min_min(self):
        assert dominates((1.0, 1.0), (2.0, 2.0), ("min", "min"))
        assert not dominates((2.0, 2.0), (1.0, 1.0), ("min", "min"))

    def test_mixed_senses(self):
        # second objective maximised: (1, 5) beats (2, 3) on both
        assert dominates((1.0, 5.0), (2.0, 3.0), ("min", "max"))
        assert not dominates((1.0, 3.0), (2.0, 5.0), ("min", "max"))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates((1.0, 1.0), (1.0, 1.0), ("min", "min"))

    def test_incomparable(self):
        senses = ("min", "min")
        assert not dominates((1.0, 3.0), (3.0, 1.0), senses)
        assert not dominates((3.0, 1.0), (1.0, 3.0), senses)


class TestNonDominatedSort:
    def test_hand_built_fronts(self):
        senses = ("min", "min")
        rows = [
            (1.0, 4.0),  # front 0
            (2.0, 2.0),  # front 0
            (4.0, 1.0),  # front 0
            (2.0, 5.0),  # dominated by row 0 -> front 1
            (3.0, 3.0),  # dominated by row 1 -> front 1
            (5.0, 5.0),  # dominated by rows 3 and 4 -> front 2
        ]
        fronts = non_dominated_sort(rows, senses)
        assert fronts == [[0, 1, 2], [3, 4], [5]]

    def test_single_front_when_incomparable(self):
        rows = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
        assert non_dominated_sort(rows, ("min", "min")) == [[0, 1, 2]]

    def test_empty(self):
        assert non_dominated_sort([], ("min", "min")) == []


class TestCrowding:
    def test_boundaries_infinite(self):
        rows = [(0.0, 4.0), (1.0, 2.0), (4.0, 0.0)]
        crowd = crowding_distance(rows)
        assert crowd[0] == float("inf")
        assert crowd[2] == float("inf")
        assert 0.0 < crowd[1] < float("inf")

    def test_two_or_fewer_all_infinite(self):
        assert crowding_distance([(1.0, 1.0)]) == [float("inf")]
        assert crowding_distance([(1.0, 2.0), (2.0, 1.0)]) == [
            float("inf"), float("inf")
        ]


class TestHypervolume:
    def test_closed_form_2d(self):
        # min/min: one point at (1, 1) under reference (3, 3) covers 2x2
        assert hypervolume([(1.0, 1.0)], (3.0, 3.0), ("min", "min")) == 4.0

    def test_staircase_2d(self):
        # (1,2) and (2,1) under ref (3,3): 2*1 + 1*2 - 1*1 overlap = 3
        hv = hypervolume([(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0), ("min", "min"))
        assert hv == pytest.approx(3.0)

    def test_max_sense_flips(self):
        # max/max with ref (0, 0): point (2, 3) covers 6
        hv = hypervolume([(2.0, 3.0)], (0.0, 0.0), ("max", "max"))
        assert hv == pytest.approx(6.0)

    def test_point_outside_reference_contributes_nothing(self):
        assert hypervolume([(5.0, 5.0)], (3.0, 3.0), ("min", "min")) == 0.0

    def test_3d_box(self):
        hv = hypervolume(
            [(1.0, 1.0, 1.0)], (2.0, 3.0, 4.0), ("min", "min", "min")
        )
        assert hv == pytest.approx(1.0 * 2.0 * 3.0)

    def test_monotone_in_points(self):
        senses = ("min", "min")
        ref = (10.0, 10.0)
        a = hypervolume([(4.0, 4.0)], ref, senses)
        b = hypervolume([(4.0, 4.0), (2.0, 6.0)], ref, senses)
        assert b > a

    def test_default_reference_margin(self):
        rows = [(0.0, 10.0), (4.0, 2.0)]
        ref = default_reference(rows, ("min", "max"))
        # nadir is (4, 2) with a 10% span margin outward
        assert ref[0] > 4.0
        assert ref[1] < 2.0


class TestParetoFrontier:
    def _point(self, i, vec):
        return FrontierPoint(
            config_hash=f"h{i}", gpu="SC", cpu="canneal", mechanism="baseline",
            values={}, objectives=dict(zip(OBJECTIVE_NAMES, vec)),
        )

    def _vec(self, a, b):
        # (latency min, throughput max, area min, energy min) with the two
        # trailing objectives held constant so 2D intuition applies
        return (a, b, 1.0, 1.0)

    def test_insert_and_evict(self):
        f = ParetoFrontier(OBJECTIVE_NAMES, SENSES)
        assert f.insert(self._point(0, self._vec(5.0, 5.0)))
        # dominated candidate rejected (higher latency, lower throughput)
        assert not f.insert(self._point(1, self._vec(6.0, 4.0)))
        assert len(f) == 1
        # dominating candidate evicts the incumbent
        assert f.insert(self._point(2, self._vec(4.0, 6.0)))
        assert len(f) == 1
        assert f.points[0].config_hash == "h2"

    def test_incomparable_coexist(self):
        f = ParetoFrontier(OBJECTIVE_NAMES, SENSES)
        f.insert(self._point(0, self._vec(1.0, 1.0)))
        f.insert(self._point(1, self._vec(2.0, 2.0)))
        assert len(f) == 2

    def test_round_trip(self):
        f = ParetoFrontier(OBJECTIVE_NAMES, SENSES)
        f.insert(self._point(0, self._vec(1.0, 1.0)))
        f.insert(self._point(1, self._vec(2.0, 2.0)))
        clone = ParetoFrontier.from_dict(f.to_dict())
        assert clone.to_dict() == f.to_dict()


class TestSearchSpace:
    def test_size_and_default(self):
        space = demo_space("mesh4x4")
        assert space.size == 3 * 2 * 2 * 3 * 2 * 3 * 3  # 648
        cfg, gpu, cpu = space.decode(space.default_genome())
        assert gpu == "SC"
        assert cfg.mesh_width == 4 and cfg.n_gpu == 10

    def test_encode_values_inverse(self):
        space = demo_space("mesh4x4")
        g = space.encode({"mechanism": "dr", "vcs_per_port": 4})
        vals = space.values(g)
        assert vals["mechanism"] == "dr" and vals["vcs_per_port"] == 4
        assert space.encode(vals) == g

    def test_inert_genes_collapse_to_one_hash(self):
        space = demo_space("mesh4x4")
        a = space.encode({"mechanism": "baseline",
                          "max_delegations_per_cycle": 1})
        b = space.encode({"mechanism": "baseline",
                          "max_delegations_per_cycle": 4})
        assert a != b
        assert (space.decode(a)[0].config_hash()
                == space.decode(b)[0].config_hash())

    def test_dr_genes_are_not_inert(self):
        space = demo_space("mesh4x4")
        a = space.encode({"mechanism": "dr", "max_delegations_per_cycle": 1})
        b = space.encode({"mechanism": "dr", "max_delegations_per_cycle": 4})
        assert (space.decode(a)[0].config_hash()
                != space.decode(b)[0].config_hash())

    def test_operators_stay_in_range(self):
        space = demo_space("mesh8x8")
        rng = random.Random(3)
        g = space.random_genome(rng)
        for _ in range(50):
            g = space.mutate(g, rng, rate=0.7)
            h = space.crossover(g, space.random_genome(rng), rng)
            space.decode(h)  # raises if any gene is out of range

    def test_reference_genomes_cover_mechanisms_at_high_injection(self):
        space = demo_space("mesh8x8")
        refs = [space.values(g) for g in space.reference_genomes()]
        assert [r["mechanism"] for r in refs] == ["baseline", "dr", "rp"]
        assert all(r["gpu"] == "SC" for r in refs)

    def test_bad_space_name(self):
        with pytest.raises(ValueError):
            demo_space("mesh2x2")

    def test_bad_knob_path_fails_fast(self):
        with pytest.raises(AttributeError):
            SearchSpace(
                name="broken", mesh="4x4",
                knobs=(Knob("x", (1, 2), "noc.not_a_field"),
                       Knob("y", (1, 2), "noc.vcs_per_port")),
            )


class TestExploreEnv:
    def test_memoised_by_design(self):
        space = demo_space("mesh4x4")
        env = ExploreEnv(space)
        a = space.encode({"mechanism": "baseline",
                          "max_delegations_per_cycle": 1})
        b = space.encode({"mechanism": "baseline",
                          "max_delegations_per_cycle": 4})
        r1, r2 = env.evaluate(a), env.evaluate(b)
        assert r1 is r2  # inert-gene twins share one memo entry
        assert env.evaluations == 1

    def test_step_reward_and_done(self):
        space = demo_space("mesh4x4")
        env = ExploreEnv(space, budget=2)
        obs = env.reset()
        assert set(OBJECTIVE_NAMES) <= set(obs["objectives"])
        g = space.encode({"mechanism": "dr"})
        obs, reward, done, info = env.step(g)
        assert reward >= 0.0
        assert done  # 2 unique evaluations reached the budget
        assert info["evaluations"] == 2

    def test_spec_matches_sweep_convention(self):
        space = demo_space("mesh4x4")
        env = ExploreEnv(space, cycles=400, warmup=200)
        spec = env.spec(space.default_genome())
        assert spec.cycles == 400 and spec.warmup == 200
        assert spec.label[0] == "explore"
        cfg, gpu, _cpu = space.decode(space.default_genome())
        assert spec.system_config().config_hash() == cfg.config_hash()


class TestSearchPolicies:
    def test_budget_is_respected(self):
        env = ExploreEnv(demo_space("mesh4x4"))
        records, _ = nsga2_search(env, budget=12, population=6, seed=1)
        assert len(records) <= 12

    def test_random_budget(self):
        env = ExploreEnv(demo_space("mesh4x4"))
        records, history = random_search(env, budget=10, population=4, seed=1)
        assert len(records) == 10
        assert history[-1]["evaluations"] == 10

    def test_anchors_always_evaluated(self):
        space = demo_space("mesh4x4")
        env = ExploreEnv(space)
        records, _ = nsga2_search(env, budget=8, population=4, seed=0)
        anchor_hashes = {
            space.decode(g)[0].config_hash()
            for g in space.reference_genomes()
        }
        assert anchor_hashes <= {r.config_hash for r in records}


class TestDeterminism:
    """Satellite: full-search reproducibility under a pinned --seed."""

    def test_same_seed_identical_manifest(self):
        a = explore("mesh4x4", budget=16, population=8, seed=11,
                    surrogate_only=True)
        b = explore("mesh4x4", budget=16, population=8, seed=11,
                    surrogate_only=True)
        assert _manifest_no_clock(a) == _manifest_no_clock(b)

    def test_different_seed_different_stream(self):
        a = explore("mesh4x4", budget=16, population=8, seed=1,
                    surrogate_only=True)
        b = explore("mesh4x4", budget=16, population=8, seed=2,
                    surrogate_only=True)
        assert ([r.config_hash for r in a.records]
                != [r.config_hash for r in b.records])

    def test_both_algorithms_deterministic(self):
        for algo in ("nsga2", "random"):
            a = explore("mesh4x4", algo=algo, budget=12, population=6,
                        seed=5, surrogate_only=True)
            b = explore("mesh4x4", algo=algo, budget=12, population=6,
                        seed=5, surrogate_only=True)
            assert _manifest_no_clock(a) == _manifest_no_clock(b)


class TestHybridExplore:
    """The surrogate-screen + simulate driver (small windows)."""

    def _run(self, tmp_path, seed=0):
        return explore(
            "mesh4x4", budget=10, population=6, seed=seed,
            cycles=300, warmup=150, jobs=1,
            cache=str(tmp_path / "cache"),
        )

    def test_sim_share_capped(self, tmp_path):
        out = self._run(tmp_path)
        space = demo_space("mesh4x4")
        n_anchors = len(space.reference_genomes())
        cap = max(n_anchors, int(0.2 * out.evaluated))
        assert 0 < out.simulated <= cap
        assert out.simulated <= 0.2 * out.evaluated or out.simulated == n_anchors
        assert out.failed == 0

    def test_anchor_designs_simulated(self, tmp_path):
        out = self._run(tmp_path)
        space = demo_space("mesh4x4")
        sim_hashes = {
            r.config_hash for r in out.records
            if r.sim_objectives is not None
        }
        for g in space.reference_genomes():
            assert space.decode(g)[0].config_hash() in sim_hashes

    def test_frontier_is_simulated_tier(self, tmp_path):
        out = self._run(tmp_path)
        assert len(out.frontier) > 0
        assert all(p.source == "simulated" for p in out.frontier.points)
        assert out.dr_dominance is not None
        assert out.dr_dominance["tier"] == "simulated"

    def test_bit_identical_resume_from_cache(self, tmp_path):
        first = self._run(tmp_path)
        second = self._run(tmp_path)
        # every promoted job replays from the cache bit-identically
        assert second.cached == second.simulated == first.simulated
        a = {r.config_hash: r.sim_objectives for r in first.records
             if r.sim_objectives is not None}
        b = {r.config_hash: r.sim_objectives for r in second.records
             if r.sim_objectives is not None}
        assert a == b

        def strip_cache_flags(outcome):
            data = _manifest_no_clock(outcome)
            data["counts"].pop("cached")
            for rec in data["evaluations"]:
                rec.pop("cached")
            return data

        # the only legitimate delta is the cached-vs-fresh provenance flag
        assert strip_cache_flags(first) == strip_cache_flags(second)


class TestExploreCli:
    def _run_json(self, tmp_path, extra=(), seed="3"):
        from repro.explore.__main__ import main

        out = tmp_path / f"m{seed}{len(tuple(extra))}.json"
        rc = main([
            "run", "--space", "mesh4x4", "--surrogate-only",
            "--budget", "14", "--population", "6", "--seed", seed,
            "--out", str(out), "--format", "json", *extra,
        ])
        assert rc == 0
        return out

    def test_run_writes_manifest(self, tmp_path, capsys):
        out = self._run_json(tmp_path)
        stdout = capsys.readouterr().out
        printed = json.loads(stdout)
        with open(out) as fh:
            on_disk = json.load(fh)
        assert printed["schema"] == "explore-v1"
        assert printed == on_disk
        assert printed["counts"]["evaluated"] <= 14
        assert printed["frontier"]["points"]

    def test_run_seed_reproducible(self, tmp_path, capsys):
        a = self._run_json(tmp_path, seed="9")
        capsys.readouterr()
        again = tmp_path / "again"
        again.mkdir()
        b = self._run_json(again, seed="9")
        capsys.readouterr()
        with open(a) as fh:
            da = json.load(fh)
        with open(b) as fh:
            db = json.load(fh)
        da.pop("wall_time_s"), db.pop("wall_time_s")
        assert da == db

    def test_frontier_inspect_and_compare(self, tmp_path, capsys):
        from repro.explore.__main__ import main

        nsga2 = self._run_json(tmp_path)
        capsys.readouterr()
        rnd = self._run_json(tmp_path, extra=("--algo", "random"))
        capsys.readouterr()
        rc = main(["frontier", str(nsga2), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["frontier"]["points"]
        rc = main(["frontier", str(nsga2), "--compare", str(rnd),
                   "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        cmp = payload["compare"]
        assert cmp["winner"] in (str(nsga2), str(rnd), "tie")
        assert cmp["hypervolume"] >= 0 and cmp["other_hypervolume"] >= 0

    def test_frontier_rejects_non_manifest(self, tmp_path, capsys):
        from repro.explore.__main__ import main

        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        rc = main(["frontier", str(bogus)])
        assert rc == 2
        assert "not an explore manifest" in capsys.readouterr().err

    def test_show(self, capsys):
        from repro.explore.__main__ import main

        rc = main(["show", "--space", "mesh8x8", "--format", "json"])
        desc = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert desc["size"] == 3 * 3 * 2 * 3 * 2 * 2 * 2 * 3 * 3
        assert [o["name"] for o in desc["objectives"]] == list(OBJECTIVE_NAMES)
        assert len(desc["reference_designs"]) == 3


class TestObjectives:
    def test_from_prediction_names_and_area(self):
        from repro.model.compose import predict

        space = demo_space("mesh4x4")
        cfg, gpu, cpu = space.decode(
            space.encode({"mechanism": "dr"})
        )
        obj = from_prediction(cfg, predict(cfg, gpu, cpu))
        assert set(obj) == set(OBJECTIVE_NAMES)
        assert all(v > 0 for v in obj.values())
        # DR carries an area overhead over the plain NoC
        base_cfg, _, _ = space.decode(space.default_genome())
        base_obj = from_prediction(base_cfg, predict(base_cfg, gpu, cpu))
        assert obj["area_mm2"] > base_obj["area_mm2"]
