"""Shared fixtures: small, fast system configurations for unit tests."""

from __future__ import annotations

import pytest

from repro.config import (
    SystemConfig,
    baseline_config,
    delegated_replies_config,
)


def small_config(**overrides) -> SystemConfig:
    """A 4x4-mesh system that simulates quickly.

    Baseline column-major layout: 4 CPU nodes (west column), 2 memory
    nodes, 10 GPU nodes.
    """
    cfg = baseline_config(
        mesh_width=4, mesh_height=4, n_cpu=4, n_mem=2, n_gpu=10
    )
    for name, value in overrides.items():
        setattr(cfg, name, value)
    return cfg


def small_dr_config(**overrides) -> SystemConfig:
    cfg = delegated_replies_config(
        mesh_width=4, mesh_height=4, n_cpu=4, n_mem=2, n_gpu=10
    )
    for name, value in overrides.items():
        setattr(cfg, name, value)
    return cfg


@pytest.fixture
def cfg_small() -> SystemConfig:
    return small_config()


@pytest.fixture
def cfg_small_dr() -> SystemConfig:
    return small_dr_config()


@pytest.fixture
def cfg_table1() -> SystemConfig:
    """The full Table I configuration (8x8, 40/16/8)."""
    return baseline_config()
