"""Tests for the shared-L1 organisations (DC-L1 and DynEB)."""

from repro.config.system import GpuCacheConfig
from repro.gpu.shared_l1 import (
    BUSY,
    DynEBPort,
    HIT,
    MISS,
    PrivateL1,
    SharedL1Cluster,
    SharedL1Port,
)


def small_l1():
    return GpuCacheConfig(size_bytes=4 * 1024)  # 32 lines


class TestPrivateL1:
    def test_hit_miss_and_latency(self):
        l1 = PrivateL1(small_l1())
        state, lat = l1.access(0x10, 0)
        assert state == MISS
        l1.fill(0x10)
        state, lat = l1.access(0x10, 1)
        assert state == HIT
        assert lat == small_l1().hit_latency

    def test_never_busy(self):
        l1 = PrivateL1(small_l1())
        for i in range(10):
            state, _ = l1.access(i, 0)  # all in the same cycle
            assert state in (HIT, MISS)


class TestDcL1Cluster:
    def test_slice_port_conflict_serialises(self):
        cluster = SharedL1Cluster(small_l1(), cores_per_cluster=8, n_slices=4)
        block = 0x40
        s = cluster.slice_of(block)
        st1, _ = cluster.try_access(0, block, cycle=5)
        st2, _ = cluster.try_access(1, block, cycle=5)
        assert st1 == MISS
        assert st2 == BUSY
        st3, _ = cluster.try_access(1, block, cycle=6)
        assert st3 in (HIT, MISS)

    def test_different_slices_no_conflict(self):
        cluster = SharedL1Cluster(small_l1())
        b0, b1 = 0, 4  # (b >> 2) % 4 -> slices 0 and 1
        assert cluster.slice_of(b0) != cluster.slice_of(b1)
        st1, _ = cluster.try_access(0, b0, cycle=3)
        st2, _ = cluster.try_access(1, b1, cycle=3)
        assert BUSY not in (st1, st2)

    def test_shared_capacity_aggregates_private(self):
        cfg = small_l1()
        cluster = SharedL1Cluster(cfg, cores_per_cluster=8, n_slices=4)
        total_lines = sum(
            s.num_sets * s.assoc for s in cluster.slices
        )
        private_lines = cfg.num_sets * cfg.assoc * 8
        assert total_lines == private_lines

    def test_shared_data_stored_once(self):
        cluster = SharedL1Cluster(small_l1())
        p0 = SharedL1Port(cluster, 0)
        p1 = SharedL1Port(cluster, 1)
        p0.fill(0x99)
        assert p1.contains(0x99)  # no duplication across "cores"

    def test_remote_slice_latency_penalty(self):
        cluster = SharedL1Cluster(small_l1(), remote_slice_latency=4)
        block = 0  # slice 0
        cluster.fill(block)
        _, local = cluster.try_access(0, block, cycle=1)   # slot 0 -> slice 0
        _, remote = cluster.try_access(1, block, cycle=2)  # slot 1 -> remote
        assert remote == local + 4

    def test_conflict_rate_tracking(self):
        cluster = SharedL1Cluster(small_l1())
        cluster.try_access(0, 0, cycle=0)
        cluster.try_access(1, 0, cycle=0)
        assert cluster.port_conflicts == 1
        assert 0 < cluster.conflict_rate <= 0.5


class TestDynEB:
    def make_port(self, sample=100):
        cluster = SharedL1Cluster(small_l1())
        return DynEBPort(cluster, 0, small_l1(), sample_cycles=sample), cluster

    def test_starts_shared(self):
        port, _ = self.make_port()
        assert port.mode == "shared"

    def test_reverts_to_private_under_contention(self):
        port, cluster = self.make_port(sample=10)
        # generate heavy same-slice contention
        for cyc in range(30):
            cluster.try_access(0, 0, cycle=cyc)
            cluster.try_access(1, 0, cycle=cyc)
        port.access(0x123, cycle=50)
        assert port.mode == "private"
        assert port.switched_at is not None

    def test_stays_shared_without_contention(self):
        port, cluster = self.make_port(sample=10)
        for cyc in range(30):
            cluster.try_access(0, cyc * 16, cycle=cyc)
        port.access(0x123, cycle=50)
        assert port.mode == "shared"

    def test_private_mode_uses_private_cache(self):
        port, _ = self.make_port(sample=0)
        port.mode = "private"
        port.fill(0x55)
        assert port.private.contains(0x55)
        assert not port.cluster.contains(0x55)

    def test_hit_miss_counters_aggregate(self):
        port, _ = self.make_port()
        port.access(1, cycle=0)
        port.fill(1)
        port.access(1, cycle=1)
        assert port.misses == 1
        assert port.hits == 1
