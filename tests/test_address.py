"""Tests for the PAE-style randomized address mapping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.address import AddressMap, hash_block


class TestAddressMap:
    def test_home_is_a_memory_node(self):
        amap = AddressMap((2, 10, 18, 26))
        for block in range(1000):
            assert amap.home_of(block) in (2, 10, 18, 26)

    def test_deterministic(self):
        amap = AddressMap((2, 10))
        assert [amap.home_of(b) for b in range(100)] == [
            amap.home_of(b) for b in range(100)
        ]

    def test_distribution_is_roughly_uniform(self):
        mem_nodes = tuple(range(8))
        amap = AddressMap(mem_nodes)
        counts = {m: 0 for m in mem_nodes}
        for block in range(8000):
            counts[amap.home_of(block)] += 1
        for m, c in counts.items():
            assert 0.8 * 1000 < c < 1.2 * 1000, f"node {m} skewed: {c}"

    def test_sequential_blocks_do_not_camp(self):
        """PAE's purpose: a streaming access pattern must not hammer one
        controller."""
        amap = AddressMap(tuple(range(8)))
        window = [amap.home_of(b) for b in range(64)]
        assert len(set(window)) >= 6

    def test_empty_mem_nodes_rejected(self):
        with pytest.raises(ValueError):
            AddressMap(())

    def test_slice_index(self):
        amap = AddressMap((5, 9))
        for block in range(50):
            idx = amap.slice_index_of(block)
            assert amap.home_of(block) == (5, 9)[idx]


class TestHash:
    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2 ** 48))
    def test_hash_is_64_bit(self, block):
        assert 0 <= hash_block(block) < 2 ** 64

    def test_avalanche(self):
        # flipping one input bit should change many output bits
        a, b = hash_block(0x1000), hash_block(0x1001)
        assert bin(a ^ b).count("1") > 16
