"""Closed-form sanity checks for the surrogate's queueing layer.

The M/G/1 priority formulas in ``repro.model.queueing`` must behave like
queueing theory says they do — no wait at zero load, divergence as
utilisation approaches 1, and the CPU class never waiting longer than
the GPU class it preempts at switch allocation — and the composed
predictor must reduce to the zero-load path latency when nothing
contends.
"""

import math

from repro.model.compose import predict
from repro.model.queueing import (
    P95_FACTOR,
    ClassLoad,
    p95_of_mean,
    priority_waits,
    total_rho,
)
from conftest import small_config


def loads(cpu_rate, gpu_rate, cpu_ser=1.0, gpu_ser=9.0):
    cpu = ClassLoad()
    cpu.add(cpu_rate, cpu_ser)
    gpu = ClassLoad()
    gpu.add(gpu_rate, gpu_ser)
    return [cpu, gpu]


class TestPriorityWaits:
    def test_zero_load_means_zero_wait(self):
        waits = priority_waits(loads(0.0, 0.0))
        assert waits == [0.0, 0.0]

    def test_light_load_wait_is_residual_service(self):
        # a single class at rho << 1: W = lambda E[S^2] / 2 (1 - rho)
        lam, ser = 0.01, 9.0
        (wait,) = priority_waits([loads(0.0, lam, gpu_ser=ser)[1]])
        expected = 0.5 * lam * ser * ser / (1.0 - lam * ser)
        assert math.isclose(wait, expected, rel_tol=1e-12)

    def test_wait_monotone_in_load(self):
        prev = -1.0
        for rate in (0.01, 0.03, 0.06, 0.09, 0.10):
            waits = priority_waits(loads(0.001, rate))
            assert waits[1] > prev
            prev = waits[1]

    def test_diverges_as_rho_approaches_one(self):
        near = priority_waits(loads(0.0, 0.110))[1]   # rho = 0.99
        far = priority_waits(loads(0.0, 0.090))[1]    # rho = 0.81
        assert near > 20 * far

    def test_saturated_class_waits_forever(self):
        waits = priority_waits(loads(0.001, 0.2))  # gpu rho = 1.8
        assert waits[0] < math.inf  # CPU unaffected by GPU saturation
        assert waits[1] == math.inf

    def test_cpu_priority_wait_never_exceeds_gpu(self):
        for cpu_rate in (0.0, 0.01, 0.05):
            for gpu_rate in (0.0, 0.02, 0.08):
                waits = priority_waits(loads(cpu_rate, gpu_rate))
                assert waits[0] <= waits[1]

    def test_total_rho_mixes_classes(self):
        cls = loads(0.1, 0.05)
        assert math.isclose(total_rho(cls), 0.1 * 1.0 + 0.05 * 9.0)

    def test_p95_factor(self):
        assert p95_of_mean(0.0) == 0.0
        assert math.isclose(p95_of_mean(10.0), 10.0 * P95_FACTOR)
        assert 2.9 < P95_FACTOR < 3.1


class TestComposedZeroLoad:
    def test_unsaturated_latency_is_near_the_free_path(self):
        # with 32x link bandwidth nothing queues: the prediction must sit
        # at the hop + service floor, far below the clogged latencies.
        cfg = small_config()
        cfg.noc.bandwidth_factor = 32.0
        free = predict(cfg, "NN", "blackscholes")
        assert not free.saturated
        assert free.demand_rho < 1.0
        # floor: request + reply hops plus LLC hit latency at minimum
        floor = 2 * 2.25 * (cfg.noc.router_pipeline_cycles
                            + cfg.noc.link_cycles) * 0.5
        assert free.cpu_latency_avg > floor

        cfg_clogged = small_config()
        clogged = predict(cfg_clogged, "NN", "blackscholes")
        assert clogged.saturated
        assert clogged.cpu_latency_avg > 3 * free.cpu_latency_avg

    def test_p95_dominates_the_mean(self):
        pred = predict(small_config(), "HS", "bodytrack")
        assert pred.cpu_latency_p95 > pred.cpu_latency_avg
        assert pred.gpu_latency_p95 > pred.gpu_latency_avg
