"""Public-API stability: repro.api surface, result schema, CLI flags."""

from __future__ import annotations

import dataclasses
import inspect

import pytest
from conftest import small_config

import repro
import repro.api as api
from repro.sim.metrics import SimulationResult

#: the frozen public surface — editing this list IS the API review.
#: run_sweep/JobSpec added with the warm-pool + batching runner so
#: campaign callers get the batch knob without importing repro.sweep.
#: explore/SearchSpace/ParetoFrontier added with the design-space
#: exploration subsystem (repro.explore).
#: available_backends/BackendError added with the backend-selection
#: layer (repro.sim.engines) behind simulate(backend=...).
EXPECTED_API = [
    "BackendError",
    "FaultPlan",
    "JobSpec",
    "ParetoFrontier",
    "SearchSpace",
    "SimulationResult",
    "available_backends",
    "build_system",
    "chaos_plan",
    "explore",
    "predict",
    "run_simulation",
    "run_sweep",
    "simulate",
]

#: SimulationResult's field names; renames must go through
#: SimulationResult._FIELD_RENAMES plus a property alias.
EXPECTED_RESULT_FIELDS = {
    "cycles", "counters", "n_gpu", "n_cpu", "n_mem",
    "gpu_ipc", "cpu_ipc", "cpu_latency_avg",
    "cpu_latency_p50", "cpu_latency_p95", "cpu_latency_p99",
    "gpu_latency_p50", "gpu_latency_p95", "gpu_latency_p99",
    "gpu_data_rate", "mem_blocking_rate", "mem_reply_link_utilization",
    "l1_miss_rate", "remote_hit_fraction", "delegated_fraction",
    "noc_request_packets",
    "fault_retransmits", "fault_lost",
    "fault_recovery_p50", "fault_recovery_p99",
    "stall_breakdown", "telemetry_metrics",
}


class TestApiSurface:
    def test_all_snapshot(self):
        assert api.__all__ == EXPECTED_API
        for name in EXPECTED_API:
            assert getattr(api, name) is not None

    def test_package_level_simulate(self):
        assert "simulate" in repro.__all__
        res = repro.simulate(small_config(), "BP", cycles=300, warmup=150)
        assert isinstance(res, SimulationResult)

    def test_simulate_is_keyword_only_after_workload(self):
        sig = inspect.signature(api.simulate)
        params = list(sig.parameters.values())
        assert [p.name for p in params[:2]] == ["cfg", "workload"]
        assert all(
            p.kind is inspect.Parameter.KEYWORD_ONLY for p in params[2:]
        )
        with pytest.raises(TypeError):
            api.simulate(small_config(), "BP", "canneal")  # noqa: the point

    def test_simulate_smoke(self):
        res = api.simulate(
            small_config(), "BP", cpu="canneal", cycles=300, warmup=150
        )
        assert res.gpu_ipc > 0
        assert res.cpu_latency_avg > 0

    def test_run_sweep_via_api(self):
        spec = api.JobSpec.make(
            small_config(), "BP", "canneal", cycles=200, warmup=120
        )
        out = api.run_sweep([spec], jobs=1, cache=None, batch=1)
        assert isinstance(out[spec.key()], SimulationResult)

    def test_simulate_accepts_fault_plan(self):
        plan = api.chaos_plan(small_config(), 0.1, seed=1,
                              warmup=150, cycles=400)
        res = api.simulate(small_config(), "BP", cpu="canneal",
                           cycles=400, warmup=150, faults=plan)
        assert res.counters.get("fault.drops", 0) > 0


class TestBackendSelection:
    def test_available_backends(self):
        assert api.available_backends() == ("object", "vector")

    def test_simulate_on_vector_backend(self):
        res = api.simulate(small_config(), "BP", cpu="canneal",
                           cycles=300, warmup=150, backend="vector")
        assert res.gpu_ipc > 0
        assert res.cpu_latency_avg > 0

    def test_unknown_backend_one_line_error(self):
        with pytest.raises(api.BackendError) as exc:
            api.simulate(small_config(), "BP", cycles=10, backend="turbo")
        msg = str(exc.value)
        assert "turbo" in msg and "object" in msg and "vector" in msg
        assert "\n" not in msg

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "vector")
        system = api.build_system(small_config(), "BP")
        assert system.backend == "vector"
        assert type(system.fabric).__name__ == "VectorFabric"
        monkeypatch.delenv("REPRO_BACKEND")
        assert api.build_system(small_config(), "BP").backend == "object"

    def test_vector_rejects_telemetry_config(self):
        cfg = small_config()
        cfg.telemetry.enabled = True
        with pytest.raises(api.BackendError) as exc:
            api.simulate(cfg, "BP", cycles=10, backend="vector")
        assert "telemetry" in str(exc.value)
        assert "\n" not in str(exc.value)


class TestResultSchema:
    def test_field_snapshot(self):
        names = {f.name for f in dataclasses.fields(SimulationResult)}
        assert names == EXPECTED_RESULT_FIELDS

    def test_round_trip(self):
        res = api.simulate(small_config(), "BP", cycles=300, warmup=150)
        clone = SimulationResult.from_dict(res.to_dict())
        assert clone.to_dict() == res.to_dict()

    def test_from_dict_maps_legacy_rename(self):
        legacy = SimulationResult(cycles=100).to_dict()
        legacy["cpu_avg_latency"] = legacy.pop("cpu_latency_avg")
        legacy["cpu_avg_latency"] = 42.5
        res = SimulationResult.from_dict(legacy)
        assert res.cpu_latency_avg == 42.5
        # canonical spelling wins when both keys appear
        both = dict(legacy, cpu_latency_avg=7.0)
        assert SimulationResult.from_dict(both).cpu_latency_avg == 7.0

    def test_deprecated_property_alias(self):
        res = SimulationResult(cycles=1, cpu_latency_avg=3.5)
        assert res.cpu_avg_latency == 3.5

    def test_unknown_keys_ignored(self):
        data = SimulationResult(cycles=5).to_dict()
        data["metric_from_the_future"] = 1.0
        assert SimulationResult.from_dict(data).cycles == 5


class TestCliConventions:
    def test_shared_flags_spelled_identically(self):
        """Every repro CLI spells the shared flags the same way."""
        import argparse

        from repro.cli import (
            add_batch_option,
            add_jobs_option,
            add_out_option,
            add_seed_option,
            add_window_options,
        )

        p = argparse.ArgumentParser()
        add_window_options(p, cycles=10, warmup=5)
        add_jobs_option(p)
        add_batch_option(p)
        add_out_option(p, default="x.json")
        add_seed_option(p)
        args = p.parse_args([])
        assert (args.cycles, args.warmup, args.out) == (10, 5, "x.json")
        assert args.jobs is None and args.seed is None
        assert args.batch is None

    def test_deprecated_alias_warns_and_maps(self, capsys):
        import argparse

        from repro.cli import add_deprecated_alias, add_out_option

        p = argparse.ArgumentParser()
        add_out_option(p)
        add_deprecated_alias(p, "--manifest", "--out")
        args = p.parse_args(["--manifest", "m.json"])
        assert args.out == "m.json"
        assert "deprecated" in capsys.readouterr().err

    def test_sweep_manifest_alias(self, capsys, tmp_path, monkeypatch):
        """python -m repro.sweep run --manifest still works, with a nudge."""
        from repro.sweep.__main__ import main

        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "cache"))
        out = tmp_path / "manifest.json"
        rc = main([
            "run", "--benchmarks", "HS", "--mechanisms", "baseline",
            "--cycles", "100", "--warmup", "50",
            "--manifest", str(out),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert out.exists()
        assert "deprecated" in captured.err
