"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestList:
    def test_lists_benchmarks_and_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("2DCON", "HS", "BP", "vips", "fig10_gpu_perf",
                     "fig19_sensitivity", "ablations"):
            assert name in out


class TestRun:
    def test_run_baseline(self, capsys):
        rc = main(["run", "HS", "--cycles", "200", "--warmup", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gpu_ipc" in out
        assert "mechanism:           baseline" in out

    def test_run_dr_prints_breakdown(self, capsys):
        rc = main([
            "run", "HS", "bodytrack", "--mechanism", "dr",
            "--cycles", "200", "--warmup", "100",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "delegated_fraction" in out
        assert "cpu_latency_avg" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["run", "NOPE", "--cycles", "100", "--warmup", "50"])


class TestExperiment:
    def test_experiment_runs_and_prints_table(self, capsys):
        rc = main([
            "experiment", "fig07_adaptive",
            "--cycles", "200", "--warmup", "150", "--benchmarks", "HS",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        rc = main(["experiment", "fig99_nothing"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestArea:
    def test_area_prints_calibrated_numbers(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "2.27" in out
        assert "0.172" in out
