"""Tests for the CPU core model (Netrace-style dependency-driven)."""

from repro.cpu.core import CpuCore
from repro.mem.address import AddressMap
from repro.noc import MeshTopology, MessageType, NocFabric, Packet, TrafficClass
from repro.workloads.cpu import CpuTraceGenerator, cpu_benchmark

from conftest import small_config


class Harness:
    def __init__(self, bench="vips", node=0):
        self.cfg = small_config()
        topo = MeshTopology(4, 4)
        self.fabric = NocFabric(topo, self.cfg.noc, mem_nodes=(4,))
        self.core = CpuCore(
            node_id=node,
            core_index=0,
            cfg=self.cfg,
            trace=CpuTraceGenerator(cpu_benchmark(bench), 0),
            nic=self.fabric.nic(node),
            addr_map=AddressMap((4,)),
        )
        self.mem_seen = []
        self.fabric.nic(4).handler = lambda pkt, cyc: self.mem_seen.append(pkt)

    def run(self, cycles, start=0):
        for cyc in range(start, start + cycles):
            self.core.step(cyc)
            self.fabric.step(cyc)


class TestCpuTraffic:
    def test_requests_are_cpu_class_single_flit(self):
        h = Harness()
        h.run(500)
        assert h.mem_seen
        for p in h.mem_seen:
            assert p.cls is TrafficClass.CPU
            assert p.size_flits == 1
            assert p.mtype is MessageType.READ_REQ

    def test_requests_address_128b_home(self):
        # a 64 B CPU block maps to the home of its 128 B parent
        h = Harness()
        h.run(300)
        assert all(p.dst == 4 for p in h.mem_seen)

    def test_insts_progress_without_memory(self):
        h = Harness()
        h.run(100)
        assert h.core.stats.insts > 0

    def test_outstanding_bounded(self):
        h = Harness(bench="canneal")  # large footprint -> many misses
        h.run(2000)
        assert len(h.core.mshrs) <= h.cfg.cpu_core.max_outstanding


class TestDependencyStalls:
    def test_reply_unblocks_dependent_load(self):
        h = Harness()
        # force a dependent miss deterministically
        h.core.trace.is_dependent = lambda: True
        h.run(300)
        assert h.core._blocked_on is not None
        block = h.core._blocked_on
        h.core.on_packet(
            Packet(4, 0, MessageType.READ_REPLY, TrafficClass.CPU, 5,
                   block=block, created=0),
            400,
        )
        assert h.core._blocked_on is None
        assert h.core.l1.contains(block)

    def test_latency_is_round_trip(self):
        h = Harness()
        h.core.trace.is_dependent = lambda: True
        h.run(200)
        block = h.core._blocked_on
        issued = h.core._issue_cycle[block]
        h.core.on_packet(
            Packet(4, 0, MessageType.READ_REPLY, TrafficClass.CPU, 5,
                   block=block, created=150),
            issued + 123,
        )
        assert h.core.stats.total_latency == 123

    def test_stall_cycles_accumulate_while_blocked(self):
        h = Harness()
        h.core._blocked_on = 0x1234
        before = h.core.stats.stall_cycles
        h.run(50)
        assert h.core.stats.stall_cycles == before + 50

    def test_independent_misses_overlap(self):
        h = Harness(bench="dedup")  # low dep_fraction
        h.core.trace.is_dependent = lambda: False
        h.run(2000)
        # multiple requests in flight at least once
        assert h.core.mshrs.peak >= 2


class TestIpcSensitivity:
    def test_slow_network_lowers_ipc(self):
        """The Netrace property: CPU progress reacts to reply latency."""
        fast = Harness()
        fast.core.trace.is_dependent = lambda: True
        # echo replies instantly
        def fast_mem(pkt, cyc):
            fast.core.on_packet(
                Packet(4, 0, MessageType.READ_REPLY, TrafficClass.CPU, 5,
                       block=pkt.block, created=cyc),
                cyc,
            )
        fast.fabric.nic(4).handler = fast_mem
        fast.run(3000)

        slow = Harness()
        slow.core.trace.is_dependent = lambda: True
        slow.run(3000)  # replies never come
        assert fast.core.stats.insts > 2 * max(1, slow.core.stats.insts)
