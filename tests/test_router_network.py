"""Tests for the wormhole router and network fabric."""

import pytest

from repro.config.system import NocConfig
from repro.noc import (
    MeshTopology,
    MessageType,
    NetKind,
    NocFabric,
    Packet,
    TrafficClass,
)


def make_fabric(width=4, height=4, mem_nodes=(5,), **noc_kw):
    cfg = NocConfig(**noc_kw)
    topo = MeshTopology(width, height)
    fab = NocFabric(topo, cfg, mem_nodes=mem_nodes)
    delivered = []
    for nic in fab.nics:
        nic.handler = lambda pkt, cyc, _d=delivered: _d.append((pkt, cyc))
    return fab, delivered


def run(fab, cycles, start=0):
    for cyc in range(start, start + cycles):
        fab.step(cyc)


class TestDelivery:
    def test_single_flit_delivery(self):
        fab, delivered = make_fabric()
        pkt = Packet(0, 15, MessageType.READ_REQ, TrafficClass.GPU, 1)
        assert fab.nic(0).try_send(pkt, 0)
        run(fab, 100)
        assert [p.pid for p, _ in delivered] == [pkt.pid]
        assert pkt.delivered > 0

    def test_multi_flit_worm_delivery(self):
        fab, delivered = make_fabric()
        pkt = Packet(0, 15, MessageType.READ_REPLY, TrafficClass.GPU, 9)
        fab.nic(0).try_send(pkt, 0)
        run(fab, 200)
        assert len(delivered) == 1
        assert fab.in_flight_flits() == 0

    def test_pipeline_latency_floor(self):
        # 4-cycle routers: a 1-flit packet over h routers needs >= 4h cycles
        fab, delivered = make_fabric()
        pkt = Packet(0, 3, MessageType.READ_REQ, TrafficClass.GPU, 1, created=0)
        fab.nic(0).try_send(pkt, 0)
        run(fab, 100)
        assert pkt.latency >= 4 * 4  # 3 hops + ejection router

    def test_multi_flit_serialization_latency(self):
        fab, _ = make_fabric()
        p1 = Packet(0, 3, MessageType.READ_REQ, TrafficClass.GPU, 1, created=0)
        p9 = Packet(12, 15, MessageType.READ_REPLY, TrafficClass.GPU, 9, created=0)
        fab.nic(0).try_send(p1, 0)
        fab.nic(12).try_send(p9, 0)
        run(fab, 200)
        assert p9.latency >= p1.latency + 8  # 8 extra body flits

    def test_request_and_reply_networks_are_independent(self):
        fab, delivered = make_fabric()
        req = Packet(0, 15, MessageType.READ_REQ, TrafficClass.GPU, 1)
        rep = Packet(15, 0, MessageType.READ_REPLY, TrafficClass.GPU, 9)
        fab.nic(0).try_send(req, 0)
        fab.nic(15).try_send(rep, 0)
        run(fab, 200)
        assert len(delivered) == 2
        assert fab.request_net is not fab.reply_net

    def test_many_packets_all_arrive_exactly_once(self):
        fab, delivered = make_fabric()
        sent = []
        for cyc in range(50):
            for src in range(16):
                dst = (src + 7) % 16
                pkt = Packet(src, dst, MessageType.READ_REQ,
                             TrafficClass.GPU, 1, created=cyc)
                if fab.nic(src).try_send(pkt, cyc):
                    sent.append(pkt.pid)
            fab.step(cyc)
        run(fab, 500, start=50)
        got = [p.pid for p, _ in delivered]
        assert sorted(got) == sorted(sent)
        assert fab.in_flight_flits() == 0


class TestPriority:
    def test_cpu_beats_gpu_under_contention(self):
        fab, delivered = make_fabric()
        # saturate the path 0 -> 3 with GPU replies, then send a CPU reply
        gpu_pkts = [
            Packet(0, 3, MessageType.READ_REPLY, TrafficClass.GPU, 9)
            for _ in range(6)
        ]
        for p in gpu_pkts:
            fab.nic(0).try_send(p, 0)
        cpu = Packet(4, 3, MessageType.READ_REPLY, TrafficClass.CPU, 9)
        fab.nic(4).try_send(cpu, 0)
        run(fab, 400)
        cpu_t = cpu.delivered
        later_gpu = [p for p in gpu_pkts if p.delivered > cpu_t]
        # the CPU packet must overtake at least the GPU tail
        assert later_gpu, "CPU reply never overtook contending GPU replies"


class TestBackpressure:
    def test_buffers_never_exceed_capacity(self):
        fab, _ = make_fabric()
        for cyc in range(100):
            for src in range(16):
                if src == 3:
                    continue
                pkt = Packet(src, 3, MessageType.READ_REPLY,
                             TrafficClass.GPU, 9, created=cyc)
                fab.nic(src).try_send(pkt, cyc)
            fab.step(cyc)
            for net in (fab.request_net, fab.reply_net):
                for router in net.routers:
                    for port in range(router.nports):
                        for vc in range(router.vcs):
                            assert router.occ[port][vc] <= router.vc_cap

    def test_ejection_gate_blocks_worm(self):
        fab, delivered = make_fabric()
        fab.nic(15).eject_gate = lambda pkt: False
        pkt = Packet(0, 15, MessageType.READ_REQ, TrafficClass.GPU, 1)
        fab.nic(0).try_send(pkt, 0)
        run(fab, 200)
        assert not delivered
        assert fab.in_flight_flits() == 1
        fab.nic(15).eject_gate = None
        run(fab, 100, start=200)
        assert len(delivered) == 1

    def test_injection_queue_capacity(self):
        fab, _ = make_fabric(node_injection_queue_packets=2)
        nic = fab.nic(0)
        mk = lambda: Packet(0, 15, MessageType.READ_REQ, TrafficClass.GPU, 1)
        assert nic.try_send(mk(), 0)
        assert nic.try_send(mk(), 0)
        assert not nic.try_send(mk(), 0)


class TestBandwidthFactor:
    def test_double_bandwidth_raises_throughput_substantially(self):
        # VC-count and router-pipeline effects keep the gain sublinear
        # (the paper likewise notes 100% link utilisation is unattainable)
        results = {}
        for bw in (1.0, 2.0):
            fab, delivered = make_fabric(bandwidth_factor=bw)
            for cyc in range(300):
                pkt = Packet(0, 3, MessageType.READ_REPLY,
                             TrafficClass.GPU, 9, created=cyc)
                fab.nic(0).try_send(pkt, cyc)
                fab.step(cyc)
            results[bw] = len(delivered)
        assert results[2.0] >= 1.35 * results[1.0]

    def test_single_stream_approaches_link_rate(self):
        fab, delivered = make_fabric()
        for cyc in range(400):
            pkt = Packet(0, 3, MessageType.READ_REPLY,
                         TrafficClass.GPU, 9, created=cyc)
            fab.nic(0).try_send(pkt, cyc)
            fab.step(cyc)
        flit_rate = len(delivered) * 9 / 400
        assert flit_rate > 0.8


class TestVirtualNetworks:
    def test_shared_physical_network_partitions_vcs(self):
        cfg = NocConfig(separate_physical_networks=False,
                        request_vcs=1, reply_vcs=3)
        topo = MeshTopology(4, 4)
        fab = NocFabric(topo, cfg, mem_nodes=())
        assert fab.request_net is fab.reply_net
        req = Packet(0, 5, MessageType.READ_REQ, TrafficClass.GPU, 1)
        rep = Packet(0, 5, MessageType.READ_REPLY, TrafficClass.GPU, 9)
        assert fab.vc_range_for(req) == (0, 1)
        assert fab.vc_range_for(rep) == (1, 4)

    def test_shared_network_delivers_both_classes(self):
        cfg = NocConfig(separate_physical_networks=False,
                        request_vcs=2, reply_vcs=2)
        topo = MeshTopology(4, 4)
        fab = NocFabric(topo, cfg, mem_nodes=())
        delivered = []
        for nic in fab.nics:
            nic.handler = lambda pkt, cyc: delivered.append(pkt)
        fab.nic(0).try_send(
            Packet(0, 15, MessageType.READ_REQ, TrafficClass.GPU, 1), 0
        )
        fab.nic(15).try_send(
            Packet(15, 0, MessageType.READ_REPLY, TrafficClass.CPU, 5), 0
        )
        for cyc in range(300):
            fab.step(cyc)
        assert len(delivered) == 2
