"""Equivalence harness: the optimised kernel must be behaviour-preserving.

The active-set scheduler, the precomputed routing tables and every hot-path
micro-optimisation are pure performance work: running the same seeded
workload under the optimised stepping and under the naive full-scan
reference stepping (``fabric.set_reference_stepping(True)``) must produce
**bit-identical** counters.  These tests fail on the first counter that
drifts, which pins down perf regressions that silently change behaviour.

The second half asserts flit/packet conservation through the NoC under
heavy delegation pressure: nothing the delegation path converts, rejects
or re-routes may create or lose traffic.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BENCH_CONFIGS
from repro.config.system import DelegationConfig, NocConfig
from repro.core.delegated_replies import DelegatedRepliesMechanism, ReplyMeta
from repro.noc import MeshTopology, MessageType, NocFabric, Packet, TrafficClass
from repro.noc.packet import NetKind
from repro.sim.metrics import collect_counters
from repro.sim.simulator import build_system

from conftest import small_config, small_dr_config


def _fabric_counters(fabric: NocFabric) -> dict:
    """Every observable counter of a fabric, flattened for == comparison."""
    out: dict = {}
    nets = {id(net): net for net in (fabric.request_net, fabric.reply_net)}
    for i, net in enumerate(nets.values()):
        out[f"net{i}.cycles"] = net.cycles
        out[f"net{i}.packets_delivered"] = net.packets_delivered
        out[f"net{i}.flits_delivered"] = net.flits_delivered
        out[f"net{i}.delivered_by_type"] = dict(net.delivered_by_type)
        out[f"net{i}.link_flits"] = [list(row) for row in net.link_flits]
        out[f"net{i}.flits_routed"] = [r.flits_routed for r in net.routers]
        out[f"net{i}.buffered"] = [r.buffered_flits() for r in net.routers]
    for nic in fabric.nics:
        nid = nic.node_id
        out[f"nic{nid}.flits_injected"] = nic.flits_injected
        out[f"nic{nid}.injected_net"] = dict(nic.flits_injected_net)
        out[f"nic{nid}.sent_net"] = dict(nic.packets_sent_net)
        out[f"nic{nid}.received"] = dict(nic.flits_received)
        out[f"nic{nid}.data_flits"] = nic.data_flits_received
        if hasattr(nic, "delegations"):
            out[f"nic{nid}.delegations"] = nic.delegations
            out[f"nic{nid}.blocked"] = nic.blocked_cycles
            out[f"nic{nid}.observed"] = nic.observed_cycles
    return out


def _run_synthetic(config_name: str, cycles: int, reference: bool) -> dict:
    builder, _default = BENCH_CONFIGS[config_name]
    drive, fabric = builder()
    if reference:
        fabric.set_reference_stepping(True)
    for c in range(cycles):
        drive(c)
    return _fabric_counters(fabric)


@pytest.mark.parametrize("config_name", ["mesh8x8", "mesh8x8_dr", "shared_vnet"])
def test_synthetic_counters_bit_identical(config_name):
    """Optimised vs full-scan stepping on the bench traffic generators."""
    opt = _run_synthetic(config_name, 1500, reference=False)
    ref = _run_synthetic(config_name, 1500, reference=True)
    diffs = {k: (ref[k], opt.get(k)) for k in ref if opt.get(k) != ref[k]}
    assert not diffs, f"counters drifted under optimised stepping: {diffs}"


@pytest.mark.parametrize("make_cfg", [small_config, small_dr_config])
def test_full_system_counters_bit_identical(make_cfg):
    """End-to-end: every counter in collect_counters matches both modes."""

    def run(reference: bool) -> dict:
        system = build_system(make_cfg(), "HS", "canneal")
        if reference:
            system.fabric.set_reference_stepping(True)
        system.run(700)
        return collect_counters(system)

    opt = run(False)
    ref = run(True)
    diffs = {k: (ref[k], opt.get(k)) for k in ref if opt.get(k) != ref[k]}
    assert not diffs, f"counters drifted under optimised stepping: {diffs}"


# ---------------------------------------------------------------------------
# conservation under heavy delegation
# ---------------------------------------------------------------------------


def _drain(fabric: NocFabric, start_cycle: int, limit: int = 6000) -> int:
    """Step the fabric with injection stopped until it is empty."""
    cycle = start_cycle
    while cycle < start_cycle + limit:
        fabric.step(cycle)
        cycle += 1
        if fabric.in_flight_flits() == 0 and all(
            not nic.queues[NetKind.REQUEST]
            and not nic.queues[NetKind.REPLY]
            and not nic._inflight[NetKind.REQUEST]
            and not nic._inflight[NetKind.REPLY]
            for nic in fabric.nics
        ):
            return cycle
    raise AssertionError("fabric failed to drain — flits lost or stuck")


def test_packet_conservation_under_heavy_delegation():
    """No flit is created or destroyed while delegation rewrites traffic.

    Memory nodes are hammered until their reply buffers block, forcing the
    delegation path (reply -> 1-flit delegated request conversion) to fire
    constantly; after the sources stop, the fabric must drain completely
    and the delivered totals must match the post-delegation send counts.
    """
    mem_nodes = (3, 7, 11, 15)
    fabric = NocFabric(MeshTopology(4, 4), NocConfig(), mem_nodes=mem_nodes)
    mech = DelegatedRepliesMechanism(DelegationConfig(enabled=True))
    for m in mem_nodes:
        mech.attach(fabric.nic(m))
    for nic in fabric.nics:
        nic.handler = lambda pkt, cycle: None
    compute = [n for n in range(16) if n not in mem_nodes]

    cycle = 0
    for cycle in range(1200):
        # every memory node posts a delegatable 9-flit reply each cycle —
        # far beyond reply-network capacity, so the buffers stay blocked
        for i, m in enumerate(mem_nodes):
            dst = compute[(cycle + i) % len(compute)]
            sharer = compute[(cycle + 2 * i + 1) % len(compute)]
            meta = ReplyMeta(
                llc_hit=True, delegate_to=sharer if sharer != dst else None
            )
            fabric.nic(m).try_send(
                Packet(m, dst, MessageType.READ_REPLY, TrafficClass.GPU, 9,
                       txn=meta),
                cycle,
            )
            src = compute[(3 * cycle + i) % len(compute)]
            fabric.nic(src).try_send(
                Packet(src, m, MessageType.READ_REQ, TrafficClass.GPU, 1),
                cycle,
            )
        fabric.step(cycle)

    delegations = sum(fabric.nic(m).delegations for m in mem_nodes)
    assert delegations > 100, "workload failed to trigger heavy delegation"

    _drain(fabric, cycle + 1)

    nets = {id(net): net for net in (fabric.request_net, fabric.reply_net)}
    delivered_pkts = sum(n.packets_delivered for n in nets.values())
    delivered_flits = sum(n.flits_delivered for n in nets.values())
    sent_pkts = sum(
        nic.packets_sent_net[NetKind.REQUEST]
        + nic.packets_sent_net[NetKind.REPLY]
        for nic in fabric.nics
    )
    injected_flits = sum(nic.flits_injected for nic in fabric.nics)
    # packets_sent_net is adjusted on delegation (reply decremented,
    # request incremented) so sends == deliveries exactly
    assert delivered_pkts == sent_pkts
    assert delivered_flits == injected_flits


class TestBenchMemoryTelemetry:
    """run_bench results carry memory-behaviour signals (BENCH_noc.json)."""

    def test_extras_report_rss_and_gc(self):
        from repro.bench.harness import _GcWatch, _peak_rss_kb, run_bench

        res = run_bench("mesh8x8", cycles=300)
        assert res.extra["peak_rss_kb"] == _peak_rss_kb()
        assert res.extra["peak_rss_kb"] > 0  # Linux: ru_maxrss available
        gc_keys = [k for k in res.extra if k.startswith("gc_gen")]
        assert gc_keys and all(res.extra[k] >= 0 for k in gc_keys)
        d = res.as_dict()
        assert d["peak_rss_kb"] == res.extra["peak_rss_kb"]

    def test_gc_watch_counts_forced_collection(self):
        import gc

        from repro.bench.harness import _GcWatch

        watch = _GcWatch()
        gc.collect()
        deltas = watch.deltas()
        assert deltas["gc_gen2_collections"] >= 1
