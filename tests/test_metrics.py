"""Tests for counter collection, window diffing and derived metrics."""

import pytest

from repro.sim.metrics import (
    SimulationResult,
    collect_counters,
    derive_result,
    diff_counters,
)
from repro.sim.simulator import build_system

import sys
sys.path.insert(0, "tests")
from conftest import small_config, small_dr_config


class TestCollect:
    def test_counters_are_flat_numbers(self):
        system = build_system(small_config(), "HS", "vips")
        system.run(200)
        counters = collect_counters(system)
        assert all(isinstance(v, (int, float)) for v in counters.values())
        assert counters["cycle"] == 200

    def test_counters_monotonic(self):
        system = build_system(small_config(), "HS", "vips")
        system.run(200)
        a = collect_counters(system)
        system.run(200)
        b = collect_counters(system)
        for key in ("cycle", "gpu.insts", "mem.requests", "noc.req_packets"):
            assert b[key] >= a[key]

    def test_rp_counters_present_only_with_probing(self):
        system = build_system(small_config(), "HS")
        counters = collect_counters(system)
        assert counters["rp.probes_sent"] == 0

    def test_frq_merge_counters_exposed(self):
        system = build_system(small_dr_config(), "HS")
        system.run(300)
        counters = collect_counters(system)
        assert "gpu.frq_merge_opportunities" in counters
        assert "gpu.frq_enqueued" in counters


class TestDiff:
    def test_diff_subtracts_baseline(self):
        end = {"cycle": 500.0, "x": 10.0}
        start = {"cycle": 200.0, "x": 4.0}
        assert diff_counters(end, start) == {"cycle": 300.0, "x": 6.0}

    def test_diff_none_baseline_copies(self):
        end = {"cycle": 5.0}
        out = diff_counters(end, None)
        assert out == end and out is not end

    def test_diff_handles_new_keys(self):
        assert diff_counters({"a": 3.0}, {})["a"] == 3.0


class TestDerive:
    def test_zero_window_is_safe(self):
        system = build_system(small_config(), "HS", "vips")
        window = diff_counters(collect_counters(system), collect_counters(system))
        window["cycle"] = 0
        res = derive_result(system, window)
        assert res.gpu_ipc == 0.0
        assert res.cpu_avg_latency == 0.0
        assert res.remote_hit_fraction == 0.0

    def test_breakdown_partition(self):
        res = SimulationResult(
            cycles=100,
            counters={
                "gpu.llc_replies": 60,
                "gpu.c2c_replies": 40,
                "gpu.frq_remote_hits": 30,
                "gpu.frq_delayed_hits": 10,
                "gpu.frq_remote_misses": 5,
            },
        )
        bd = res.miss_breakdown()
        assert bd["remote_hit"] == pytest.approx(0.40)
        assert bd["remote_miss"] == pytest.approx(0.05)
        assert bd["llc"] == pytest.approx(0.55)

    def test_llc_direct_fraction_complements_delegated(self):
        res = SimulationResult(cycles=10)
        res.delegated_fraction = 0.3
        assert res.llc_direct_fraction == pytest.approx(0.7)

    def test_derived_fields_from_live_system(self):
        system = build_system(small_dr_config(), "HS", "vips")
        system.run(400)
        window = collect_counters(system)
        res = derive_result(system, window)
        assert res.n_gpu == 10 and res.n_cpu == 4 and res.n_mem == 2
        assert res.gpu_ipc > 0
        assert 0 <= res.delegated_fraction <= 1.0

    def test_latency_percentiles_derived(self):
        system = build_system(small_config(), "HS", "vips")
        system.run(600)
        window = collect_counters(system)
        res = derive_result(system, window)
        if window.get("cpu.replies", 0):
            assert res.cpu_latency_p50 > 0
            assert res.cpu_latency_p50 <= res.cpu_latency_p95 <= res.cpu_latency_p99
        assert res.gpu_latency_p50 > 0
        assert res.gpu_latency_p50 <= res.gpu_latency_p95 <= res.gpu_latency_p99


class TestSerialization:
    def test_round_trip(self):
        res = SimulationResult(cycles=100, counters={"cpu.replies": 5.0})
        res.cpu_latency_p99 = 42.5
        clone = SimulationResult.from_dict(res.to_dict())
        assert clone == res

    def test_from_dict_ignores_unknown_keys(self):
        # forward compatibility: cached results written by newer code
        # (with extra fields) must still load
        res = SimulationResult(cycles=100)
        data = res.to_dict()
        data["metric_from_the_future"] = 1.25
        clone = SimulationResult.from_dict(data)
        assert clone.cycles == 100
        assert not hasattr(clone, "metric_from_the_future")

    def test_from_dict_defaults_missing_fields(self):
        # backward compatibility: pre-telemetry caches lack the
        # percentile fields
        res = SimulationResult(cycles=100)
        data = res.to_dict()
        del data["cpu_latency_p99"]
        clone = SimulationResult.from_dict(data)
        assert clone.cpu_latency_p99 == 0.0
