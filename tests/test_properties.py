"""Property-based tests on the NoC: conservation, capacity, termination."""

from hypothesis import given, settings, strategies as st

from repro.config.system import NocConfig, RoutingPolicy
from repro.noc import (
    MeshTopology,
    MessageType,
    NocFabric,
    Packet,
    TrafficClass,
)

MSG_CHOICES = [
    (MessageType.READ_REQ, 1),
    (MessageType.READ_REPLY, 9),
    (MessageType.WRITE_REQ, 9),
    (MessageType.WRITE_ACK, 1),
    (MessageType.C2C_REPLY, 9),
]


@st.composite
def traffic(draw):
    """A batch of random packets on a 4x4 mesh."""
    n = draw(st.integers(1, 40))
    pkts = []
    for _ in range(n):
        src = draw(st.integers(0, 15))
        dst = draw(st.integers(0, 15))
        if src == dst:
            dst = (dst + 1) % 16
        mtype, flits = draw(st.sampled_from(MSG_CHOICES))
        cls = draw(st.sampled_from([TrafficClass.CPU, TrafficClass.GPU]))
        pkts.append((src, dst, mtype, flits, cls))
    return pkts


def build(policy=RoutingPolicy.CDR):
    cfg = NocConfig(routing=policy)
    fab = NocFabric(MeshTopology(4, 4), cfg, mem_nodes=(5,))
    delivered = []
    for nic in fab.nics:
        nic.handler = lambda pkt, cyc: delivered.append(pkt)
    return fab, delivered


class TestFlitConservation:
    @settings(max_examples=25, deadline=None)
    @given(traffic())
    def test_everything_injected_is_delivered_once(self, pkts):
        fab, delivered = build()
        sent = []
        for i, (src, dst, mtype, flits, cls) in enumerate(pkts):
            pkt = Packet(src, dst, mtype, cls, flits, created=0)
            if fab.nic(src).try_send(pkt, 0):
                sent.append(pkt)
        for cyc in range(2500):
            fab.step(cyc)
            if fab.in_flight_flits() == 0 and len(delivered) == len(sent):
                break
        assert sorted(p.pid for p in delivered) == sorted(p.pid for p in sent)
        assert fab.in_flight_flits() == 0
        flits_sent = sum(p.size_flits for p in sent)
        assert fab.reply_net.flits_delivered + fab.request_net.flits_delivered == flits_sent

    @settings(max_examples=25, deadline=None)
    @given(traffic())
    def test_buffers_respect_capacity_under_random_traffic(self, pkts):
        fab, _ = build()
        for src, dst, mtype, flits, cls in pkts:
            fab.nic(src).try_send(Packet(src, dst, mtype, cls, flits), 0)
        for cyc in range(200):
            fab.step(cyc)
            for net in {fab.request_net, fab.reply_net}:
                for router in net.routers:
                    for port in range(router.nports):
                        for vc in range(router.vcs):
                            occ = router.occ[port][vc]
                            assert 0 <= occ <= router.vc_cap

    @settings(max_examples=15, deadline=None)
    @given(traffic())
    def test_adaptive_routing_also_terminates(self, pkts):
        """DyXY with the escape VC must deliver everything (deadlock-free)."""
        fab, delivered = build(policy=RoutingPolicy.DYXY)
        sent = 0
        for src, dst, mtype, flits, cls in pkts:
            if fab.nic(src).try_send(Packet(src, dst, mtype, cls, flits), 0):
                sent += 1
        for cyc in range(4000):
            fab.step(cyc)
            if len(delivered) == sent:
                break
        assert len(delivered) == sent
        assert fab.in_flight_flits() == 0


class TestLatencyProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        src=st.integers(0, 15),
        dst=st.integers(0, 15),
        flits=st.integers(1, 9),
    )
    def test_latency_at_least_pipeline_floor(self, src, dst, flits):
        if src == dst:
            return
        fab, delivered = build()
        topo = fab.topology
        pkt = Packet(src, dst, MessageType.READ_REPLY, TrafficClass.GPU,
                     flits, created=0)
        fab.nic(src).try_send(pkt, 0)
        for cyc in range(500):
            fab.step(cyc)
            if delivered:
                break
        hops = topo.min_hops(src, dst) + 1  # + ejection router
        assert pkt.latency >= 4 * hops + (flits - 1)
