"""Bit-identity matrix: ``backend="vector"`` vs the object-kernel oracle.

The vector backend implements the synchronous two-phase semantics of
``NocFabric.set_sync_stepping(True)`` (DESIGN.md §12).  Every test here
drives the *identical* pre-generated packet schedule through both
fabrics and asserts every observable counter — delivered packets/flits
per network, per-type delivery counts, per-router routed/buffered flits,
per-link flit counts, per-NIC injection/ejection counters, delegation
counters and the full latency multiset — is bit-identical.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import _Lcg
from repro.config.system import DelegationConfig, NocConfig
from repro.core.delegated_replies import DelegatedRepliesMechanism, ReplyMeta
from repro.noc import MeshTopology, MessageType, NocFabric, Packet, TrafficClass
from repro.noc.packet import NetKind
from repro.sim.engines import BackendError, build_fabric
from repro.sim.vector.fabric import VectorFabric

# ---------------------------------------------------------------------------
# schedule generation (state-independent: both backends replay it verbatim)
# ---------------------------------------------------------------------------


def _uniform_schedule(n: int, cycles: int, permille: int, seed: int):
    """Per-cycle packet specs, bench-harness style uniform traffic."""
    rng = _Lcg(seed)
    base, frac = divmod(n * permille, 1000)
    sched = []
    for _ in range(cycles):
        k = base + (1 if rng.below(1000) < frac else 0)
        cyc = []
        for _ in range(k):
            node = rng.below(n)
            dst = rng.below(n - 1)
            if dst >= node:
                dst += 1
            if rng.next() & 1:
                cyc.append((node, dst, MessageType.READ_REQ,
                            TrafficClass.GPU, 1, None))
            else:
                cyc.append((node, dst, MessageType.READ_REPLY,
                            TrafficClass.GPU, 9, None))
        sched.append(cyc)
    return sched


def _hotspot_schedule(n, mem_nodes, cycles: int, permille: int, seed: int):
    """Hotspot requests onto memory nodes + delegatable replies back."""
    rng = _Lcg(seed)
    mem_set = set(mem_nodes)
    compute = [node for node in range(n) if node not in mem_set]
    req_base, req_frac = divmod(len(compute) * permille, 1000)
    rep_base, rep_frac = divmod(len(mem_nodes) * permille * 2, 1000)
    sched = []
    for _ in range(cycles):
        cyc = []
        k = req_base + (1 if rng.below(1000) < req_frac else 0)
        for _ in range(k):
            node = compute[rng.below(len(compute))]
            dst = mem_nodes[rng.below(len(mem_nodes))]
            cyc.append((node, dst, MessageType.READ_REQ,
                        TrafficClass.GPU, 1, None))
        k = rep_base + (1 if rng.below(1000) < rep_frac else 0)
        for _ in range(k):
            m = mem_nodes[rng.below(len(mem_nodes))]
            dst = compute[rng.below(len(compute))]
            sharer = compute[rng.below(len(compute))]
            meta = (True, sharer if sharer != dst else None)
            cyc.append((m, dst, MessageType.READ_REPLY,
                        TrafficClass.GPU, 9, meta))
        sched.append(cyc)
    return sched


# ---------------------------------------------------------------------------
# drivers + counter collection
# ---------------------------------------------------------------------------


def _drive(fabric, sched, latencies):
    """Replay a schedule; record delivery latencies via the NIC handlers."""

    def on_deliver(pkt, cycle):
        latencies.append((cycle - pkt.created, pkt.size_flits, int(pkt.mtype)))

    for nic in fabric.nics:
        nic.handler = on_deliver
    for cycle, cyc in enumerate(sched):
        for node, dst, mtype, cls, size, meta in cyc:
            txn = None
            if meta is not None:
                txn = ReplyMeta(llc_hit=meta[0], delegate_to=meta[1])
            fabric.nic(node).try_send(
                Packet(node, dst, mtype, cls, size, txn=txn), cycle
            )
        fabric.step(cycle)
    return len(sched)


def _collect(fabric) -> dict:
    """Every observable counter, via backend-neutral explicit reads."""
    out: dict = {}
    nets = {id(net): net for net in (fabric.request_net, fabric.reply_net)}
    for i, net in enumerate(nets.values()):
        out[f"net{i}.cycles"] = net.cycles
        out[f"net{i}.packets_delivered"] = net.packets_delivered
        out[f"net{i}.flits_delivered"] = net.flits_delivered
        out[f"net{i}.delivered_by_type"] = dict(net.delivered_by_type)
        out[f"net{i}.total_routed"] = net.total_flits_routed()
        out[f"net{i}.flits_routed"] = [r.flits_routed for r in net.routers]
        out[f"net{i}.buffered"] = [r.buffered_flits() for r in net.routers]
        out[f"net{i}.link_flits"] = [list(row) for row in net.link_flits]
    for nic in fabric.nics:
        nid = nic.node_id
        out[f"nic{nid}.flits_injected"] = nic.flits_injected
        for kind in (NetKind.REQUEST, NetKind.REPLY):
            out[f"nic{nid}.injected_{int(kind)}"] = nic.flits_injected_net[kind]
            out[f"nic{nid}.sent_{int(kind)}"] = nic.packets_sent_net[kind]
        for cls in (TrafficClass.CPU, TrafficClass.GPU):
            out[f"nic{nid}.received_{int(cls)}"] = nic.flits_received[cls]
        out[f"nic{nid}.data_flits"] = nic.data_flits_received
        if hasattr(nic, "delegations"):
            out[f"nic{nid}.delegations"] = nic.delegations
            out[f"nic{nid}.blocked"] = nic.blocked_cycles
            out[f"nic{nid}.observed"] = nic.observed_cycles
    out["in_flight"] = fabric.in_flight_flits()
    return out


def _run_backend(backend, dims, cfg, sched, mem_nodes=(), delegation=False):
    topo = MeshTopology(*dims)
    if backend == "object":
        fabric = NocFabric(topo, cfg, mem_nodes=tuple(mem_nodes))
        fabric.set_sync_stepping(True)
    else:
        fabric = VectorFabric(topo, cfg, mem_nodes=tuple(mem_nodes))
    if delegation:
        mech = DelegatedRepliesMechanism(DelegationConfig(enabled=True))
        for m in mem_nodes:
            mech.attach(fabric.nic(m))
    latencies: list = []
    _drive(fabric, sched, latencies)
    counters = _collect(fabric)
    counters["latency_multiset"] = sorted(latencies)
    return counters


def _assert_identical(ref: dict, got: dict) -> None:
    diffs = {k: (ref[k], got.get(k)) for k in ref if got.get(k) != ref[k]}
    assert not diffs, f"vector backend drifted from the oracle: {diffs}"


# ---------------------------------------------------------------------------
# the bit-identity matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dims", [(4, 4), (8, 8)])
@pytest.mark.parametrize("permille,cycles", [(5, 900), (250, 500)])
def test_uniform_bit_identical(dims, permille, cycles):
    """mesh4x4/mesh8x8 x light-load/saturated uniform traffic."""
    n = dims[0] * dims[1]
    sched = _uniform_schedule(n, cycles, permille, seed=dims[0] * permille)
    cfg = NocConfig()
    ref = _run_backend("object", dims, cfg, sched)
    got = _run_backend("vector", dims, cfg, sched)
    _assert_identical(ref, got)


@pytest.mark.parametrize("dims,mem_nodes", [
    ((4, 4), (3, 7, 11, 15)),
    ((8, 8), (7, 15, 23, 31, 39, 47, 55, 63)),
])
@pytest.mark.parametrize("permille", [40, 200])
def test_delegation_bit_identical(dims, mem_nodes, permille):
    """Hotspot + Delegated Replies: the memory-node NIC path (bridged
    through _RouterView on the vector backend) stays bit-identical,
    including delegation/blocked/observed counters."""
    n = dims[0] * dims[1]
    sched = _hotspot_schedule(n, mem_nodes, 600, permille, seed=permille)
    cfg = NocConfig()
    ref = _run_backend("object", dims, cfg, sched,
                       mem_nodes=mem_nodes, delegation=True)
    got = _run_backend("vector", dims, cfg, sched,
                       mem_nodes=mem_nodes, delegation=True)
    _assert_identical(ref, got)


def test_shared_network_bit_identical():
    """Single shared physical network with split VC ranges."""
    cfg = NocConfig(separate_physical_networks=False)
    sched = _uniform_schedule(64, 700, 60, seed=3)
    ref = _run_backend("object", (8, 8), cfg, sched)
    got = _run_backend("vector", (8, 8), cfg, sched)
    _assert_identical(ref, got)


def test_randomized_configs_bit_identical():
    """Property-style case: random NoC shape parameters, both backends."""
    rng = _Lcg(99)
    for trial in range(4):
        cfg = NocConfig(
            vcs_per_port=1 + rng.below(3),
            vc_depth_flits=2 + rng.below(6),
            router_pipeline_cycles=1 + rng.below(4),
            link_cycles=1 + rng.below(2),
            node_injection_queue_packets=2 + rng.below(14),
            separate_physical_networks=bool(rng.next() & 1),
            request_vcs=1 + rng.below(2),
            reply_vcs=1 + rng.below(2),
        )
        dims = (3 + rng.below(3), 3 + rng.below(3))
        permille = 20 + rng.below(300)
        sched = _uniform_schedule(
            dims[0] * dims[1], 400, permille, seed=trial
        )
        ref = _run_backend("object", dims, cfg, sched)
        got = _run_backend("vector", dims, cfg, sched)
        _assert_identical(ref, got)


# ---------------------------------------------------------------------------
# conservation + error surfaces
# ---------------------------------------------------------------------------


def test_vector_packet_conservation():
    """After draining, every injected flit was delivered (vector backend)."""
    mem_nodes = (3, 7, 11, 15)
    sched = _hotspot_schedule(16, mem_nodes, 800, 200, seed=11)
    fabric = VectorFabric(MeshTopology(4, 4), NocConfig(),
                          mem_nodes=mem_nodes)
    mech = DelegatedRepliesMechanism(DelegationConfig(enabled=True))
    for m in mem_nodes:
        mech.attach(fabric.nic(m))
    latencies: list = []
    cycles = _drive(fabric, sched, latencies)
    assert sum(fabric.nic(m).delegations for m in mem_nodes) > 50
    # drain: no new injections, step until empty
    for cycle in range(cycles, cycles + 6000):
        fabric.step(cycle)
        if fabric.in_flight_flits() == 0 and all(
            not fabric.kernel.queues[k][node]
            for k in (0, 1) for node in range(16)
        ) and (fabric.kernel.infl_pkt < 0).all() and all(
            not fabric.nic(m).queues[kind]
            and not fabric.nic(m)._inflight[kind]
            for m in mem_nodes
            for kind in (NetKind.REQUEST, NetKind.REPLY)
        ):
            break
    else:
        raise AssertionError("vector fabric failed to drain")
    nets = {id(net): net for net in (fabric.request_net, fabric.reply_net)}
    delivered_pkts = sum(n.packets_delivered for n in nets.values())
    delivered_flits = sum(n.flits_delivered for n in nets.values())
    sent_pkts = sum(
        nic.packets_sent_net[NetKind.REQUEST]
        + nic.packets_sent_net[NetKind.REPLY]
        for nic in fabric.nics
    )
    injected_flits = sum(nic.flits_injected for nic in fabric.nics)
    assert delivered_pkts == sent_pkts
    assert delivered_flits == injected_flits
    # the packet table fully recycled: nothing leaked
    assert all(obj is None for obj in fabric.kernel.pk_obj)
    assert not fabric.kernel._mem_idx


def test_vector_rejects_adaptive_routing():
    from repro.config.system import RoutingPolicy

    cfg = NocConfig(routing=RoutingPolicy.FOOTPRINT)
    with pytest.raises(BackendError) as exc:
        build_fabric("vector", MeshTopology(4, 4), cfg)
    msg = str(exc.value)
    assert "adaptive" in msg and "\n" not in msg


def test_vector_rejects_telemetry_attach():
    fabric = build_fabric("vector", MeshTopology(4, 4), NocConfig())
    with pytest.raises(BackendError) as exc:
        fabric.attach_telemetry(object())
    assert "telemetry" in str(exc.value)


# ----------------------------------------------------------------------
# full-system bit-identity: HeterogeneousSystem on the vector backend vs
# the object kernel in synchronous (oracle) stepping
# ----------------------------------------------------------------------


def _system_result(cfg, backend, *, faults=None, cycles=400, warmup=150):
    from repro.sim.simulator import build_system, run_simulation

    if backend == "object":
        system = build_system(cfg, "BP", "canneal", faults=faults)
        system.fabric.set_sync_stepping(True)
    else:
        system = build_system(
            cfg, "BP", "canneal", faults=faults, backend="vector"
        )
    return run_simulation(
        cfg, "BP", "canneal", cycles=cycles, warmup=warmup, system=system
    )


@pytest.mark.parametrize("mk_cfg", ["small_config", "small_dr_config"])
def test_system_bit_identical(mk_cfg):
    import conftest

    cfg_fn = getattr(conftest, mk_cfg)
    obj = _system_result(cfg_fn(), "object")
    vec = _system_result(cfg_fn(), "vector")
    assert vec.counters == obj.counters
    assert vec.to_dict() == obj.to_dict()


def test_system_bit_identical_loss_plan():
    import conftest
    from repro.faults.plan import chaos_plan

    cfg = conftest.small_dr_config()
    plan = chaos_plan(cfg, 0.08, seed=3, warmup=150, cycles=400,
                      link_down=False)
    obj = _system_result(cfg, "object", faults=plan)
    vec = _system_result(cfg, "vector", faults=plan)
    assert obj.counters.get("fault.drops", 0) > 0
    assert vec.counters == obj.counters
    assert vec.to_dict() == obj.to_dict()
