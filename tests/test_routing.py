"""Tests for the routing policies (CDR + adaptive schemes)."""

import pytest

from repro.config.system import (
    DimensionOrder,
    NocConfig,
    RoutingPolicy,
)
from repro.noc.packet import MessageType, NetKind, Packet, TrafficClass
from repro.noc.routing import (
    DeterministicRouting,
    DyXYRouting,
    FootprintRouting,
    HARERouting,
    build_routing,
)
from repro.noc.topology import MeshTopology


class FakeNetwork:
    """Congestion oracle for routing tests."""

    def __init__(self, free=None):
        self.free = free or {}

    def downstream_free(self, cur, nxt):
        return self.free.get((cur, nxt), 8)


def req(src=0, dst=15):
    return Packet(src, dst, MessageType.READ_REQ, TrafficClass.GPU, 1)


def rep(src=0, dst=15):
    return Packet(src, dst, MessageType.READ_REPLY, TrafficClass.GPU, 9)


class TestCdr:
    def make(self):
        topo = MeshTopology(4, 4)
        cfg = NocConfig(
            request_order=DimensionOrder.YX,
            reply_order=DimensionOrder.XY,
        )
        return DeterministicRouting(topo, cfg), topo

    def test_requests_use_request_order(self):
        routing, topo = self.make()
        # YX from (0,0) to (3,3): go Y first -> router 4
        assert routing.next_hop(FakeNetwork(), 0, req()) == 4

    def test_replies_use_reply_order(self):
        routing, topo = self.make()
        # XY from (0,0) to (3,3): go X first -> router 1
        assert routing.next_hop(FakeNetwork(), 0, rep()) == 1

    def test_classes_take_disjoint_turns(self):
        """CDR's purpose: requests and replies bend at different corners,
        separating CPU and GPU traffic (Section V)."""
        routing, topo = self.make()
        path_req, path_rep = [0], [0]
        while path_req[-1] != 15:
            path_req.append(routing.next_hop(FakeNetwork(), path_req[-1], req()))
        while path_rep[-1] != 15:
            path_rep.append(routing.next_hop(FakeNetwork(), path_rep[-1], rep()))
        assert set(path_req[1:-1]).isdisjoint(set(path_rep[1:-1]))

    def test_not_adaptive(self):
        routing, _ = self.make()
        assert not routing.adaptive


class TestDyXY:
    def make(self, free=None):
        topo = MeshTopology(4, 4)
        return DyXYRouting(topo, NocConfig()), FakeNetwork(free)

    def test_prefers_less_congested_direction(self):
        routing, net = self.make(free={(0, 1): 1, (0, 4): 7})
        assert routing.next_hop(net, 0, req(0, 15)) == 4
        routing2, net2 = self.make(free={(0, 1): 7, (0, 4): 1})
        assert routing2.next_hop(net2, 0, req(0, 15)) == 1

    def test_single_candidate_falls_back_to_dor(self):
        routing, net = self.make()
        # destination in the same row: only the X direction is minimal
        assert routing.next_hop(net, 0, req(0, 3)) == 1

    def test_is_adaptive(self):
        routing, _ = self.make()
        assert routing.adaptive


class TestFootprint:
    def test_sticks_with_dor_below_threshold(self):
        topo = MeshTopology(4, 4)
        routing = FootprintRouting(topo, NocConfig(), threshold=3)
        # DOR (XY for requests here) is slightly worse: stay on DOR
        cfg = NocConfig(request_order=DimensionOrder.XY)
        routing = FootprintRouting(topo, cfg, threshold=3)
        net = FakeNetwork(free={(0, 1): 5, (0, 4): 7})
        assert routing.next_hop(net, 0, req(0, 15)) == 1

    def test_deviates_past_threshold(self):
        topo = MeshTopology(4, 4)
        cfg = NocConfig(request_order=DimensionOrder.XY)
        routing = FootprintRouting(topo, cfg, threshold=3)
        net = FakeNetwork(free={(0, 1): 0, (0, 4): 8})
        assert routing.next_hop(net, 0, req(0, 15)) == 4


class TestHare:
    def test_history_smooths_congestion(self):
        topo = MeshTopology(4, 4)
        routing = HARERouting(topo, NocConfig(), alpha=0.9)
        # one spike on (0,1) barely moves its EWMA (history dominates)
        calm = FakeNetwork(free={(0, 1): 8, (0, 4): 8})
        for _ in range(5):
            routing.next_hop(calm, 0, req(0, 15))
        spike = FakeNetwork(free={(0, 1): 0, (0, 4): 8})
        routing.next_hop(spike, 0, req(0, 15))
        assert routing._history[(0, 1)] < -6  # still remembered as free

    def test_sustained_congestion_changes_choice(self):
        topo = MeshTopology(4, 4)
        routing = HARERouting(topo, NocConfig(), alpha=0.5)
        congested = FakeNetwork(free={(0, 1): 0, (0, 4): 8})
        for _ in range(10):
            choice = routing.next_hop(congested, 0, req(0, 15))
        assert choice == 4


class TestFactory:
    @pytest.mark.parametrize(
        "policy,cls",
        [
            (RoutingPolicy.CDR, DeterministicRouting),
            (RoutingPolicy.DYXY, DyXYRouting),
            (RoutingPolicy.FOOTPRINT, FootprintRouting),
            (RoutingPolicy.HARE, HARERouting),
        ],
    )
    def test_build_routing(self, policy, cls):
        cfg = NocConfig(routing=policy)
        routing = build_routing(MeshTopology(4, 4), cfg)
        assert isinstance(routing, cls)
