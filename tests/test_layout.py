"""Tests for the chip layouts of Figure 1."""

import pytest

from repro.config import (
    DimensionOrder,
    Layout,
    baseline_config,
)
from repro.sim.layout import (
    DEFAULT_ORDERS,
    apply_default_orders,
    build_layout,
)

from conftest import small_config


class TestBaselineLayout:
    def test_counts(self):
        p = build_layout(baseline_config())
        assert len(p.cpu_nodes) == 16
        assert len(p.mem_nodes) == 8
        assert len(p.gpu_nodes) == 40

    def test_nodes_partition_the_grid(self):
        p = build_layout(baseline_config())
        all_nodes = set(p.cpu_nodes) | set(p.mem_nodes) | set(p.gpu_nodes)
        assert all_nodes == set(range(64))
        assert len(p.cpu_nodes) + len(p.mem_nodes) + len(p.gpu_nodes) == 64

    def test_memory_column_between_cpus_and_gpus(self):
        # Fig. 1a: CPU columns 0-1, memory column 2, GPU columns 3-7
        p = build_layout(baseline_config())
        assert all(n % 8 in (0, 1) for n in p.cpu_nodes)
        assert all(n % 8 == 2 for n in p.mem_nodes)
        assert all(n % 8 >= 3 for n in p.gpu_nodes)

    def test_role_of(self):
        p = build_layout(baseline_config())
        assert p.role_of(p.mem_nodes[0]) == "mem"
        assert p.role_of(p.cpu_nodes[0]) == "cpu"
        assert p.role_of(p.gpu_nodes[0]) == "gpu"


class TestAlternativeLayouts:
    def test_edge_puts_memory_in_top_row(self):
        p = build_layout(baseline_config(layout=Layout.EDGE))
        assert all(n < 8 for n in p.mem_nodes)  # row 0

    def test_clustered_cpus_are_compact(self):
        p = build_layout(baseline_config(layout=Layout.CLUSTERED))
        # 16 CPUs in a 4x4 corner: max coordinate 3
        assert all(n % 8 <= 3 and n // 8 <= 3 for n in p.cpu_nodes)

    def test_distributed_memory_is_spread(self):
        p = build_layout(baseline_config(layout=Layout.DISTRIBUTED))
        rows = {n // 8 for n in p.mem_nodes}
        cols = {n % 8 for n in p.mem_nodes}
        assert len(rows) >= 3 and len(cols) >= 3

    @pytest.mark.parametrize("layout", list(Layout))
    def test_all_layouts_partition(self, layout):
        p = build_layout(baseline_config(layout=layout))
        nodes = list(p.cpu_nodes) + list(p.mem_nodes) + list(p.gpu_nodes)
        assert sorted(nodes) == list(range(64))


class TestNodeMixFlexibility:
    @pytest.mark.parametrize(
        "n_cpu,n_gpu,n_mem",
        [(8, 48, 8), (24, 32, 8), (8, 52, 4), (8, 40, 16)],
    )
    def test_baseline_layout_handles_node_mixes(self, n_cpu, n_gpu, n_mem):
        cfg = baseline_config(n_cpu=n_cpu, n_gpu=n_gpu, n_mem=n_mem)
        p = build_layout(cfg)
        assert len(p.cpu_nodes) == n_cpu
        assert len(p.mem_nodes) == n_mem
        assert len(p.gpu_nodes) == n_gpu

    def test_small_mesh_layout(self):
        p = build_layout(small_config())
        assert len(p.cpu_nodes) == 4
        assert len(p.mem_nodes) == 2
        assert len(p.gpu_nodes) == 10

    @pytest.mark.parametrize("side,n_cpu,n_mem", [(10, 25, 12), (12, 36, 18)])
    def test_scaled_meshes(self, side, n_cpu, n_mem):
        n = side * side
        cfg = baseline_config(
            mesh_width=side, mesh_height=side,
            n_cpu=n_cpu, n_mem=n_mem, n_gpu=n - n_cpu - n_mem,
        )
        p = build_layout(cfg)
        assert len(p.gpu_nodes) == n - n_cpu - n_mem


class TestRoutingOrders:
    def test_section_v_defaults(self):
        assert DEFAULT_ORDERS[Layout.BASELINE] == (
            DimensionOrder.YX, DimensionOrder.XY,
        )
        assert DEFAULT_ORDERS[Layout.EDGE] == (
            DimensionOrder.XY, DimensionOrder.YX,
        )
        assert DEFAULT_ORDERS[Layout.DISTRIBUTED] == (
            DimensionOrder.XY, DimensionOrder.XY,
        )

    def test_apply_default_orders_mutates_config(self):
        cfg = baseline_config(layout=Layout.EDGE)
        apply_default_orders(cfg)
        assert cfg.noc.request_order is DimensionOrder.XY
        assert cfg.noc.reply_order is DimensionOrder.YX
