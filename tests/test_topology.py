"""Tests for the four NoC topologies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config.system import DimensionOrder, Topology
from repro.noc.topology import (
    CrossbarTopology,
    DragonflyTopology,
    FlattenedButterflyTopology,
    MeshTopology,
    build_topology,
)

ORDERS = [DimensionOrder.XY, DimensionOrder.YX]


def walk(topo, src, dst, order):
    """Follow route_next until destination; returns the hop count."""
    cur, hops = src, 0
    while cur != dst:
        nxt = topo.route_next(cur, dst, order)
        assert nxt in topo.neighbors(cur), f"{cur}->{nxt} is not a link"
        cur = nxt
        hops += 1
        assert hops <= topo.n, "routing loop"
    return hops


class TestMesh:
    def test_link_count(self):
        topo = MeshTopology(8, 8)
        assert len(topo.links()) == 2 * 7 * 8

    def test_coords_roundtrip(self):
        topo = MeshTopology(8, 8)
        for r in range(64):
            x, y = topo.coords(r)
            assert topo.router_at(x, y) == r

    def test_xy_goes_x_first(self):
        topo = MeshTopology(8, 8)
        nxt = topo.route_next(topo.router_at(0, 0), topo.router_at(3, 3),
                              DimensionOrder.XY)
        assert topo.coords(nxt) == (1, 0)

    def test_yx_goes_y_first(self):
        topo = MeshTopology(8, 8)
        nxt = topo.route_next(topo.router_at(0, 0), topo.router_at(3, 3),
                              DimensionOrder.YX)
        assert topo.coords(nxt) == (0, 1)

    def test_min_hops_is_manhattan(self):
        topo = MeshTopology(8, 8)
        assert topo.min_hops(0, 63) == 14

    def test_adaptive_candidates_are_minimal(self):
        topo = MeshTopology(4, 4)
        cands = topo.adaptive_candidates(0, 15)
        assert sorted(cands) == [1, 4]

    def test_adaptive_single_dimension(self):
        topo = MeshTopology(4, 4)
        assert topo.adaptive_candidates(0, 3) == [1]

    @settings(max_examples=60, deadline=None)
    @given(
        src=st.integers(0, 63),
        dst=st.integers(0, 63),
        order=st.sampled_from(ORDERS),
    )
    def test_routing_reaches_destination(self, src, dst, order):
        if src == dst:
            return
        topo = MeshTopology(8, 8)
        assert walk(topo, src, dst, order) == topo.min_hops(src, dst)


class TestCrossbar:
    def test_single_hop_everywhere(self):
        topo = CrossbarTopology(16)
        for dst in range(1, 16):
            assert topo.route_next(0, dst, DimensionOrder.XY) == dst
            assert topo.min_hops(0, dst) == 1

    def test_complete_graph_links(self):
        topo = CrossbarTopology(8)
        assert len(topo.links()) == 8 * 7 // 2


class TestFlattenedButterfly:
    def test_row_and_column_full_connectivity(self):
        topo = FlattenedButterflyTopology(4, 4)
        # router 0 connects to everything in row 0 and column 0
        assert set(topo.neighbors(0)) == {1, 2, 3, 4, 8, 12}

    def test_two_hop_diameter(self):
        topo = FlattenedButterflyTopology(8, 8)
        for order in ORDERS:
            assert walk(topo, 0, 63, order) == 2

    def test_one_hop_same_row(self):
        topo = FlattenedButterflyTopology(8, 8)
        assert topo.min_hops(0, 7) == 1


class TestDragonfly:
    def test_group_internal_full_connectivity(self):
        topo = DragonflyTopology(64, group_size=8)
        for a in range(8):
            for b in range(8):
                if a != b:
                    assert b in topo.neighbors(a)

    def test_every_group_pair_has_gateway(self):
        topo = DragonflyTopology(64, group_size=8)
        for g in range(8):
            for t in range(8):
                if g != t:
                    gw = topo._gateway[(g, t)]
                    assert topo.group_of(gw) == g

    def test_global_links_are_symmetric(self):
        topo = DragonflyTopology(64, group_size=8)
        for (g, t), gw in topo._gateway.items():
            remote = topo._gateway[(t, g)]
            assert remote in topo.neighbors(gw)

    @settings(max_examples=60, deadline=None)
    @given(src=st.integers(0, 63), dst=st.integers(0, 63))
    def test_routing_reaches_destination(self, src, dst):
        if src == dst:
            return
        topo = DragonflyTopology(64, group_size=8)
        hops = walk(topo, src, dst, DimensionOrder.XY)
        assert hops <= 3  # local + global + local

    def test_invalid_group_size_rejected(self):
        with pytest.raises(ValueError):
            DragonflyTopology(63, group_size=8)


class TestBuildTopology:
    @pytest.mark.parametrize("kind", list(Topology))
    def test_factory_builds_all_kinds(self, kind):
        topo = build_topology(kind, 8, 8)
        assert topo.n == 64
        assert topo.kind is kind

    @pytest.mark.parametrize("kind", list(Topology))
    def test_every_node_has_local_attachment_point(self, kind):
        # the clogging argument: one injection/ejection point per node
        topo = build_topology(kind, 8, 8)
        for r in range(topo.n):
            assert len(topo.neighbors(r)) >= 1
