"""Tests for the Netrace-style CPU trace file format and replayer."""

import pytest

from repro.cpu.trace_file import (
    TraceRecord,
    TraceReplayer,
    capture_trace,
    iter_trace,
    read_trace,
    write_trace,
)
from repro.workloads.cpu import cpu_benchmark


class TestRecordFormat:
    def test_json_roundtrip(self):
        rec = TraceRecord(rid=5, block=0x1234, gap=7, dep=4)
        assert TraceRecord.from_json(rec.to_json()) == rec

    def test_dep_omitted_when_none(self):
        rec = TraceRecord(rid=0, block=1, gap=2)
        assert "dep" not in rec.to_json()
        assert TraceRecord.from_json(rec.to_json()).dep is None

    def test_forward_dependency_rejected(self):
        bad = TraceRecord(rid=3, block=1, gap=2, dep=7).to_json()
        with pytest.raises(ValueError, match="later record"):
            TraceRecord.from_json(bad)


class TestCapture:
    def test_capture_length_and_monotonic_ids(self):
        records = capture_trace(cpu_benchmark("vips"), 0, 200)
        assert len(records) == 200
        assert [r.rid for r in records] == list(range(200))

    def test_dependencies_are_backward_only(self):
        records = capture_trace(cpu_benchmark("canneal"), 0, 300)
        for r in records:
            if r.dep is not None:
                assert r.dep < r.rid

    def test_dep_density_tracks_profile(self):
        sensitive = capture_trace(cpu_benchmark("vips"), 0, 1000)
        insensitive = capture_trace(cpu_benchmark("dedup"), 0, 1000)
        dep = lambda rs: sum(r.dep is not None for r in rs)
        assert dep(sensitive) > 2 * dep(insensitive)

    def test_capture_is_deterministic(self):
        a = capture_trace(cpu_benchmark("vips"), 1, 100, seed=9)
        b = capture_trace(cpu_benchmark("vips"), 1, 100, seed=9)
        assert a == b


class TestFileIo:
    def test_write_read_roundtrip(self, tmp_path):
        records = capture_trace(cpu_benchmark("ferret"), 2, 150)
        path = tmp_path / "ferret.trace"
        write_trace(records, path)
        assert read_trace(path) == records

    def test_streaming_iteration(self, tmp_path):
        records = capture_trace(cpu_benchmark("ferret"), 2, 50)
        path = tmp_path / "t.trace"
        write_trace(records, path)
        assert list(iter_trace(path)) == records

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text('{"id":0,"block":1,"gap":2}\n\n{"id":1,"block":2,"gap":2}\n')
        assert len(read_trace(path)) == 2


class TestReplayer:
    def test_replayer_drives_a_cpu_core(self):
        """The replayer is a drop-in generator for CpuCore."""
        from repro.cpu.core import CpuCore
        from repro.mem.address import AddressMap
        from repro.noc import MeshTopology, NocFabric

        import sys
        sys.path.insert(0, "tests")
        from conftest import small_config

        profile = cpu_benchmark("vips")
        records = capture_trace(profile, 0, 500)
        replayer = TraceReplayer(records, profile)
        cfg = small_config()
        fabric = NocFabric(MeshTopology(4, 4), cfg.noc, mem_nodes=(4,))
        core = CpuCore(0, 0, cfg, replayer, fabric.nic(0), AddressMap((4,)))
        seen = []
        fabric.nic(4).handler = lambda pkt, cyc: seen.append(pkt)
        for cyc in range(600):
            core.step(cyc)
            fabric.step(cyc)
        assert seen, "trace replay produced no network traffic"
        assert {p.block for p in seen} <= {r.block for r in records}

    def test_replayer_loops(self):
        profile = cpu_benchmark("dedup")
        records = capture_trace(profile, 0, 3)
        rep = TraceReplayer(records, profile)
        blocks = [rep.next_access()[0] for _ in range(7)]
        assert blocks[:3] == blocks[3:6]
        assert rep.replays == 2

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayer([], cpu_benchmark("vips"))

    def test_dependency_reported_per_record(self):
        profile = cpu_benchmark("vips")
        records = [
            TraceRecord(0, 10, 2),
            TraceRecord(1, 11, 2, dep=0),
        ]
        rep = TraceReplayer(records, profile)
        rep.next_access()
        assert not rep.is_dependent()
        rep.next_access()
        assert rep.is_dependent()
