"""Tests for repro.telemetry.blame: stall attribution and blame chains.

The two load-bearing guarantees:

* **Conservation** — every cycle a head worm is blocked is charged to
  exactly one stall class, so per-router charged totals equal the exact
  count of blocked head-worm cycles (presence minus moves), and the
  event-driven scheduler charges bit-identically to the full-scan
  reference despite sleeping through stalls.
* **Read-only** — attribution and blame walking never perturb the
  simulation: counters stay bit-identical with stall attribution on,
  and everything is off (and free) when telemetry is disabled.
"""

import json

from repro.noc import router as router_mod
from repro.sim.metrics import collect_counters
from repro.sim.simulator import build_system, run_simulation
from repro.sweep.runner import stall_shares
from repro.telemetry import read_trace
from repro.telemetry.blame import (
    ANY_CLS,
    CREDIT,
    N_CLASSES,
    PIPELINE,
    REPLY_BUFFER,
    STALL_CLASSES,
    BlameAccumulator,
    StallTable,
    classify_head,
    survey_stalls,
    walk_chain,
)

import sys
sys.path.insert(0, "tests")
from conftest import small_config


class TestTaxonomy:
    def test_eight_classes_fixed_order(self):
        assert STALL_CLASSES == (
            "pipeline", "route", "vc_alloc", "credit", "switch",
            "serialization", "eject", "reply_buffer",
        )
        assert N_CLASSES == 8

    def test_router_charge_indices_pinned(self):
        # router.py duplicates the first seven charge indices (importing
        # blame there would be circular); this pins them together
        for name in STALL_CLASSES[:-1]:
            assert getattr(router_mod, f"_ST_{name.upper()}") == \
                STALL_CLASSES.index(name)

    def test_reply_buffer_is_memory_side_only(self):
        assert REPLY_BUFFER == len(STALL_CLASSES) - 1
        assert not hasattr(router_mod, "_ST_REPLY_BUFFER")


class TestStallTable:
    KEY = ("request", 3, 1, 0)  # net, rid, port, cls

    def test_same_class_reobserved_is_noop_until_advance(self):
        st = StallTable()
        for cycle in (10, 11, 12):
            st.observe("request", 3, 1, 0, 0, CREDIT, cycle)
        assert st.counts == {}  # deferred: nothing charged yet
        st.advance("request", 3, 1, 0, 13)
        assert st.counts[self.KEY][CREDIT] == 3

    def test_class_change_charges_old_class(self):
        st = StallTable()
        st.observe("request", 3, 1, 0, 0, PIPELINE, 5)
        st.observe("request", 3, 1, 0, 0, CREDIT, 8)   # 3 pipeline cycles
        st.advance("request", 3, 1, 0, 10)             # 2 credit cycles
        row = st.counts[self.KEY]
        assert row[PIPELINE] == 3 and row[CREDIT] == 2
        assert sum(row) == 5

    def test_zero_span_charges_nothing(self):
        st = StallTable()
        st.observe("request", 3, 1, 0, 0, CREDIT, 10)
        st.advance("request", 3, 1, 0, 10)  # same cycle: 0 blocked cycles
        assert st.counts == {}

    def test_advance_without_record_is_noop(self):
        st = StallTable()
        st.advance("request", 3, 1, 0, 10)
        assert st.counts == {}

    def test_flush_charges_but_keeps_records_open(self):
        st = StallTable()
        st.observe("request", 3, 1, 0, 0, CREDIT, 10)
        st.flush(14)
        assert st.counts[self.KEY][CREDIT] == 4
        st.advance("request", 3, 1, 0, 17)  # remainder since the flush
        assert st.counts[self.KEY][CREDIT] == 7

    def test_direct_charge_and_any_cls(self):
        st = StallTable()
        st.charge("mem", 5, 0, ANY_CLS, REPLY_BUFFER)
        st.charge("mem", 5, 0, ANY_CLS, REPLY_BUFFER, n=3)
        assert st.counts[("mem", 5, 0, ANY_CLS)][REPLY_BUFFER] == 4

    def test_diff_reports_only_changes(self):
        st = StallTable()
        st.charge("mem", 5, 0, ANY_CLS, REPLY_BUFFER)
        base = st.snapshot()
        st.charge("mem", 5, 0, ANY_CLS, REPLY_BUFFER, n=2)
        st.charge("mem", 6, 0, ANY_CLS, REPLY_BUFFER)
        d = st.diff(base)
        assert d[("mem", 5, 0, ANY_CLS)][REPLY_BUFFER] == 2
        assert d[("mem", 6, 0, ANY_CLS)][REPLY_BUFFER] == 1
        assert st.diff(st.snapshot()) == {}


def _stalled_system(reference=False):
    """SC/bodytrack on the small mesh: the canonical clogging workload."""
    cfg = small_config()
    cfg.telemetry.enabled = True
    cfg.telemetry.mode = "full"
    cfg.telemetry.probe_interval = 100
    system = build_system(cfg, "SC", "bodytrack")
    if reference:
        system.fabric.set_reference_stepping(True)
    return system


def _router_totals(st):
    """Charged stall cycles per (net, router), memory-side rows excluded."""
    out = {}
    for (net, rid, _port, _cls), row in st.counts.items():
        if net == "mem":
            continue
        out[(net, rid)] = out.get((net, rid), 0) + sum(row)
    return out


class TestConservation:
    N = 600

    def test_charges_equal_blocked_head_cycles(self):
        # ground truth, cycle by cycle: a head worm in an active VC either
        # moves a flit or is blocked.  Blocked cycles per router must equal
        # the stall cycles charged — i.e. exactly one class per blocked
        # head per cycle, no double or missed charging.
        system = _stalled_system(reference=True)
        nets = system.fabric._net_list
        expected = {}
        prev = {}
        for net in nets:
            for r in net.routers:
                expected[(net.name, r.rid)] = 0
        for _ in range(self.N):
            pres = {}
            for net in nets:
                for r in net.routers:
                    k = (net.name, r.rid)
                    pres[k] = sum(1 for q in r.active.values() if q)
                    prev[k] = r.flits_routed
            system.run(1)
            for net in nets:
                for r in net.routers:
                    k = (net.name, r.rid)
                    expected[k] += pres[k] - (r.flits_routed - prev[k])
        st = system.telemetry.stalls
        st.flush(system.cycle)
        actual = _router_totals(st)
        assert sum(expected.values()) > 1000  # SC saturates: non-trivial
        for k in expected:
            assert actual.get(k, 0) == expected[k], k
        assert all(n >= 0 for row in st.counts.values() for n in row)

    def test_event_driven_matches_full_scan(self):
        # the optimised scheduler sleeps through stalls; deferred charging
        # must still produce bit-identical stall tables
        ref = _stalled_system(reference=True)
        opt = _stalled_system(reference=False)
        ref.run(self.N)
        opt.run(self.N)
        ref.telemetry.stalls.flush(ref.cycle)
        opt.telemetry.stalls.flush(opt.cycle)
        assert opt.telemetry.stalls.counts == ref.telemetry.stalls.counts
        assert collect_counters(opt) == collect_counters(ref)


class TestDisabled:
    def test_no_telemetry_means_no_stall_state(self):
        system = build_system(small_config(), "SC", "bodytrack")
        assert system.telemetry is None
        res = run_simulation(small_config(), "SC", "bodytrack",
                             cycles=300, warmup=100)
        assert res.stall_breakdown == {}

    def test_stall_attribution_off_is_bit_identical(self):
        base = run_simulation(small_config(), "SC", "bodytrack",
                              cycles=300, warmup=100)
        cfg = small_config()
        cfg.telemetry.enabled = True
        cfg.telemetry.stall_attribution = False
        res = run_simulation(cfg, "SC", "bodytrack", cycles=300, warmup=100)
        assert res.stall_breakdown == {}
        assert res.counters == base.counters

    def test_collector_skips_table_when_off(self):
        cfg = small_config()
        cfg.telemetry.enabled = True
        cfg.telemetry.stall_attribution = False
        system = build_system(cfg, "SC", "bodytrack")
        assert system.telemetry.stalls is None
        system.run(200)  # hooks must tolerate the None table


class TestBreakdown:
    def test_enabled_run_reports_cpu_and_gpu_groups(self):
        cfg = small_config()
        cfg.telemetry.enabled = True
        cfg.telemetry.mode = "full"
        res = run_simulation(cfg, "SC", "bodytrack", cycles=400, warmup=200)
        assert set(res.stall_breakdown) >= {"CPU", "GPU"}
        for group, classes in res.stall_breakdown.items():
            assert set(classes) <= set(STALL_CLASSES)
            assert all(n > 0 for n in classes.values())
        assert sum(res.stall_breakdown["GPU"].values()) > 0

    def test_breakdown_excludes_warmup(self):
        cfg = small_config()
        cfg.telemetry.enabled = True
        cfg.telemetry.mode = "full"
        long = run_simulation(cfg, "SC", "bodytrack", cycles=400, warmup=200)
        short = run_simulation(cfg, "SC", "bodytrack", cycles=100, warmup=200)
        total = lambda r: sum(
            n for g in r.stall_breakdown.values() for n in g.values()
        )
        assert total(short) < total(long)

    def test_stall_shares_normalised(self):
        shares = stall_shares({
            "CPU": {"credit": 30, "eject": 10},
            "GPU": {},
            "mem": {"reply_buffer": 7},
        })
        assert shares["CPU"] == {"credit": 0.75, "eject": 0.25}
        assert shares["mem"] == {"reply_buffer": 1.0}
        assert "GPU" not in shares  # empty groups dropped
        assert stall_shares({}) == {}


class TestBlameChains:
    def _saturated(self):
        system = _stalled_system()
        system.run(800)
        return system

    def test_classify_matches_walk_and_is_readonly(self):
        system = self._saturated()
        nets = system.fabric._net_list
        before = collect_counters(system)
        checked = 0
        for net in nets:
            for r in net.routers:
                for (port, vc), q in list(r.active.items()):
                    if not q:
                        continue
                    klass, nxt = classify_head(r, port, vc, system.cycle)
                    if klass is None:
                        continue
                    chain = walk_chain(r, port, vc, system.cycle)
                    assert chain[0]["class"] == klass
                    assert chain[0]["node"] == r.rid
                    if klass in ("credit", "vc_alloc"):
                        assert nxt is not None
                    checked += 1
        assert checked > 10  # SC at cycle 800: plenty of blocked heads
        assert collect_counters(system) == before  # walker is read-only

    def test_survey_groups_by_terminal(self):
        system = self._saturated()
        groups = survey_stalls(system.fabric._net_list, system.cycle)
        assert groups
        total_chains = sum(g["chains"] for g in groups.values())
        assert total_chains > 10
        for (node, tclass), g in groups.items():
            assert g["sample"][-1]["node"] == node
            assert g["sample"][-1]["class"] == tclass
            assert len(g["sample"]) == g["max_depth"]
            assert sum(g["victims"].values()) == g["chains"]

    def test_chain_terminates_at_reply_buffer(self):
        # the Fig. 3 loop: on saturated SC some chain must bottom out at
        # a memory node whose reply injection buffer is full
        system = self._saturated()
        groups = survey_stalls(system.fabric._net_list, system.cycle)
        terminals = {tclass for (_node, tclass) in groups}
        assert "reply_buffer" in terminals
        (node, _), g = next(
            (k, g) for k, g in groups.items() if k[1] == "reply_buffer"
        )
        assert node in {n.node_id for n in system.memory_nodes}
        assert g["sample"][-1] == {
            "node": node, "net": "mem", "class": "reply_buffer"
        }
        # the hop before the terminal is the closed ejection gate
        assert g["sample"][-2]["class"] == "eject"


class TestBlameAccumulator:
    def _group(self, chains, depth, cls="CPU"):
        sample = [{"node": 0, "net": "request", "class": "x"}] * depth
        return {
            "chains": chains,
            "victims": {cls: chains},
            "max_depth": depth,
            "sample": sample,
        }

    def test_majority_terminal_wins(self):
        acc = BlameAccumulator(5)
        acc.feed({(5, "eject"): self._group(3, 2),
                  (5, "reply_buffer"): self._group(8, 6),
                  (9, "credit"): self._group(99, 9)})  # other node: ignored
        rc = acc.root_cause()
        assert rc["node"] == 5
        assert rc["class"] == "reply_buffer"
        assert rc["chains"] == 8 and rc["total_chains"] == 11
        assert rc["max_depth"] == 6 and len(rc["sample"]) == 6
        assert rc["walks"] == 1

    def test_reply_buffer_wins_ties(self):
        acc = BlameAccumulator(5)
        acc.feed({(5, "eject"): self._group(4, 3),
                  (5, "reply_buffer"): self._group(4, 3)})
        assert acc.root_cause()["class"] == "reply_buffer"

    def test_accumulates_across_probes(self):
        acc = BlameAccumulator(5)
        acc.feed({(5, "eject"): self._group(2, 2, cls="CPU")})
        acc.feed({(5, "eject"): self._group(3, 4, cls="GPU")})
        rc = acc.root_cause()
        assert rc["chains"] == 5
        assert rc["victims"] == {"CPU": 2, "GPU": 3}
        assert rc["walks"] == 2

    def test_no_terminating_chains_is_explained(self):
        acc = BlameAccumulator(5)
        acc.feed({(9, "eject"): self._group(4, 2)})
        rc = acc.root_cause()
        assert rc["chains"] == 0
        assert "injection-bandwidth" in rc["note"]


class TestEpisodeRootCause:
    def test_saturated_run_attributes_reply_buffer(self, tmp_path):
        # the acceptance scenario: saturated mesh, clogging episodes must
        # carry root_cause records naming a memory node's reply buffer
        cfg = small_config()
        cfg.telemetry.enabled = True
        cfg.telemetry.mode = "full"
        cfg.telemetry.trace_path = str(tmp_path / "trace.jsonl")
        cfg.telemetry.probe_interval = 100
        cfg.telemetry.clog_threshold = 0.8
        cfg.telemetry.clog_min_windows = 2
        res = run_simulation(cfg, "SC", "bodytrack", cycles=1500, warmup=500)
        recs = list(read_trace(cfg.telemetry.trace_path))
        mem_nodes = next(r for r in recs if r.get("rec") == "meta")["mem_nodes"]

        stalls = [r for r in recs if r.get("rec") == "stall"]
        assert stalls and any(r["net"] == "mem" for r in stalls)

        clogs = [r for r in recs if r.get("rec") == "clog"]
        attributed = [r for r in clogs if r.get("root_cause")]
        assert attributed
        assert any(r["root_cause"]["class"] == "reply_buffer"
                   for r in attributed)
        for r in attributed:
            rc = r["root_cause"]
            assert rc["node"] == r["node"]
            assert rc["node"] in mem_nodes
        # trace records are JSON round-trippable (sample chains included)
        json.dumps(attributed)
        # and the same run surfaces a measured-window breakdown
        assert res.stall_breakdown.get("CPU")
