"""repro.faults: determinism, packet conservation, recovery and the CLI."""

from __future__ import annotations

import json

import pytest
from conftest import small_config, small_dr_config

from repro.faults import (
    FaultPlan,
    FlitCorrupt,
    FlitDrop,
    LinkDown,
    LinkUp,
    PartitionedTopologyError,
    RouterFreeze,
    chaos_plan,
    event_from_dict,
    quiesce,
)
from repro.sim.simulator import build_system, run_simulation

_GPU, _CPU = "BP", "canneal"


def _run(cfg, plan, cycles=1200, warmup=400):
    system = build_system(cfg, _GPU, _CPU, faults=plan)
    result = run_simulation(
        cfg, _GPU, _CPU, cycles=cycles, warmup=warmup, system=system
    )
    return system, result


def _drop_plan(cfg, p=0.2, seed=3):
    """FlitDrop on every reply link out of each memory node."""
    from repro.noc.topology import build_topology
    from repro.sim.layout import build_layout

    topo = build_topology(cfg.noc.topology, cfg.mesh_width, cfg.mesh_height)
    layout = build_layout(cfg)
    events = [
        FlitDrop(at=0, a=mem, b=nb, p=p, net="reply")
        for mem in layout.mem_nodes
        for nb in topo.neighbors(mem)
    ]
    return FaultPlan(events=events, seed=seed)


class TestFaultPlan:
    def test_round_trip(self):
        plan = FaultPlan(
            events=[
                LinkDown(at=10, a=1, b=2),
                LinkUp(at=50, a=1, b=2),
                RouterFreeze(at=5, router=6, cycles=100),
                FlitDrop(at=0, a=3, b=7, p=0.1),
                FlitCorrupt(at=0, a=3, b=7, p=0.05),
            ],
            seed=11,
        )
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone.canonical_json() == plan.canonical_json()
        assert clone.plan_hash() == plan.plan_hash()
        assert clone.seed == 11 and len(clone.events) == 5

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-event kind"):
            event_from_dict({"kind": "meteor_strike", "at": 0})

    def test_bad_net_rejected(self):
        with pytest.raises(ValueError, match="net must be one of"):
            FaultPlan(events=[LinkDown(at=0, a=0, b=1, net="sideband")])

    def test_chaos_plan_deterministic(self):
        cfg = small_config()
        a = chaos_plan(cfg, 0.1, seed=4, warmup=500, cycles=2000)
        b = chaos_plan(cfg, 0.1, seed=4, warmup=500, cycles=2000)
        assert a.plan_hash() == b.plan_hash()
        assert a.active
        assert not chaos_plan(cfg, 0.0).active


class TestDeterminism:
    def test_same_plan_same_seed_bit_identical(self):
        plan = chaos_plan(small_config(), 0.15, seed=9, warmup=400,
                          cycles=1200)
        _, a = _run(small_config(), plan)
        _, b = _run(small_config(), plan)
        assert a.counters == b.counters

    def test_different_seed_diverges(self):
        base = chaos_plan(small_config(), 0.15, seed=9, warmup=400,
                          cycles=1200)
        other = FaultPlan.from_dict({**base.to_dict(), "seed": 10})
        _, a = _run(small_config(), base)
        _, b = _run(small_config(), other)
        assert a.counters != b.counters

    def test_empty_plan_identical_to_no_faults(self):
        """An installed-but-empty plan must not perturb the simulation."""
        _, clean = _run(small_config(), None)
        _, armed = _run(small_config(), FaultPlan())
        stripped = {
            k: v for k, v in armed.counters.items()
            if not k.startswith("fault.")
        }
        assert stripped == clean.counters
        assert all(
            v == 0 for k, v in armed.counters.items()
            if k.startswith("fault.")
        )


class TestRecovery:
    def test_drop_conservation_baseline(self):
        cfg = small_config()
        system, _ = _run(cfg, _drop_plan(cfg, p=0.2))
        leftover = quiesce(system)
        s = system.faults.summary()
        assert s["drops"] > 0
        assert s["retransmits"] > 0
        assert s["lost"] == 0
        assert s["outstanding"] == 0
        assert leftover == 0

    def test_drop_conservation_delegated(self):
        """DR's extra reply paths (C2C, DNF fallback) must also conserve."""
        cfg = small_dr_config()
        system, _ = _run(cfg, _drop_plan(cfg, p=0.2))
        leftover = quiesce(system)
        s = system.faults.summary()
        assert s["drops"] > 0
        assert s["lost"] == 0
        assert leftover == 0

    def test_corrupt_discarded_at_ejection(self):
        cfg = small_config()
        from repro.noc.topology import build_topology
        from repro.sim.layout import build_layout

        topo = build_topology(cfg.noc.topology, cfg.mesh_width,
                              cfg.mesh_height)
        layout = build_layout(cfg)
        events = [
            FlitCorrupt(at=0, a=mem, b=nb, p=0.2, net="reply")
            for mem in layout.mem_nodes
            for nb in topo.neighbors(mem)
        ]
        system, _ = _run(cfg, FaultPlan(events=events, seed=5))
        leftover = quiesce(system)
        s = system.faults.summary()
        assert s["corrupts"] > 0
        assert s["discarded"] > 0
        assert s["lost"] == 0 and leftover == 0

    def test_watchdog_fires_on_frozen_router(self):
        """A hung router holding flits trips the no-progress watchdog."""
        cfg = small_config()
        # freeze an interior router mid-run; tighten the watchdog so it
        # trips well inside the window.  Every fire expires (and resends)
        # all outstanding requests, so give the retry budget enough
        # depth to outlast the freeze — the point here is detection plus
        # eventual recovery, not the retry-exhaustion path.
        plan = FaultPlan(
            events=[RouterFreeze(at=450, router=5, cycles=1200)],
            watchdog_interval=32,
            watchdog_checks=4,
            max_retries=50,
        )
        system, _ = _run(cfg, plan, cycles=2600, warmup=400)
        s = system.faults.summary()
        assert s["watchdog_fires"] > 0
        leftover = quiesce(system)
        assert system.faults.summary()["lost"] == 0
        assert leftover == 0

    def test_link_down_detour_delivers(self):
        """Traffic detours around a link that is down from cycle 0."""
        cfg = small_config()
        # interior horizontal link on the 4x4 mesh (5 <-> 6)
        plan = FaultPlan(events=[LinkDown(at=0, a=5, b=6)])
        system, result = _run(cfg, plan)
        s = system.faults.summary()
        assert s["links_downed"] >= 1
        assert result.gpu_ipc > 0
        leftover = quiesce(system)
        assert system.faults.summary()["lost"] == 0
        assert leftover == 0

    def test_partition_fails_fast(self):
        cfg = small_config()
        # cut both links of corner router 0 -> unreachable island
        plan = FaultPlan(events=[
            LinkDown(at=0, a=0, b=1),
            LinkDown(at=0, a=0, b=4),
        ])
        with pytest.raises(PartitionedTopologyError):
            _run(cfg, plan, cycles=50, warmup=10)


class TestChaosSweepJob:
    def test_plan_changes_sweep_key(self):
        from repro.sweep import JobSpec

        cfg = small_config()
        plan = chaos_plan(cfg, 0.1, seed=1, warmup=400, cycles=1200)
        clean = JobSpec.make(cfg, _GPU, _CPU, cycles=1200, warmup=400)
        chaotic = JobSpec.make(cfg, _GPU, _CPU, cycles=1200, warmup=400,
                               faults=plan)
        assert clean.key() != chaotic.key()
        assert chaotic.fault_plan().plan_hash() == plan.plan_hash()
        assert clean.fault_plan() is None
        # wire format round-trips the plan
        assert JobSpec.from_dict(chaotic.to_dict()).key() == chaotic.key()


class TestFaultsCli:
    def test_plan_then_run_round_trip(self, tmp_path, capsys):
        from repro.faults.__main__ import main

        out = tmp_path / "plan.json"
        assert main(["plan", "--intensity", "0.1", "--seed", "2",
                     "--out", str(out)]) == 0
        plan = FaultPlan.from_dict(json.loads(out.read_text()))
        assert plan.active

        rc = main(["run", "--gpu", "BP", "--mechanism", "dr",
                   "--cycles", "600", "--warmup", "200",
                   "--plan", str(out)])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "OK: every injected fault recovered" in stdout

    def test_run_reports_counters(self, capsys):
        from repro.faults.__main__ import main

        rc = main(["run", "--gpu", "BP", "--cycles", "600",
                   "--warmup", "200", "--intensity", "0.1", "--seed", "4"])
        stdout = capsys.readouterr().out
        assert rc == 0
        assert "retransmits" in stdout and "lost" in stdout

    def test_run_emits_json(self, capsys):
        from repro.faults.__main__ import main

        rc = main(["run", "--gpu", "BP", "--cycles", "600",
                   "--warmup", "200", "--intensity", "0.1", "--seed", "4",
                   "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True
        assert payload["faults"]["lost"] == 0
        assert payload["plan_events"] > 0
        assert payload["mechanism"] == "dr"

    def test_sweep_emits_json(self, capsys):
        from repro.faults.__main__ import main

        rc = main(["sweep", "--benchmarks", "BP", "--cycles", "400",
                   "--warmup", "200", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["rows"] and "data" in payload
