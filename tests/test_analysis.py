"""Tests for the area/energy models and report formatting."""

import pytest

from repro.analysis.area import (
    core_pointer_area,
    delegated_replies_overhead,
    frq_area,
    noc_area,
    router_area,
)
from repro.analysis.energy import EnergyReport, energy_report
from repro.analysis.report import amean, format_table, geomean, hmean
from repro.config import Topology, baseline_config
from repro.sim.metrics import SimulationResult


class TestAreaCalibration:
    """The model must land on the paper's published absolute numbers."""

    def test_baseline_mesh_area(self):
        assert noc_area(baseline_config()).total == pytest.approx(2.27, abs=0.05)

    def test_double_bandwidth_mesh_area(self):
        cfg = baseline_config()
        cfg.noc.bandwidth_factor = 2.0
        assert noc_area(cfg).total == pytest.approx(5.76, abs=0.1)

    def test_double_bandwidth_ratio_is_2_5x(self):
        base = noc_area(baseline_config()).total
        cfg = baseline_config()
        cfg.noc.bandwidth_factor = 2.0
        assert noc_area(cfg).total / base == pytest.approx(2.5, abs=0.1)

    def test_core_pointer_area(self):
        assert core_pointer_area(baseline_config()) == pytest.approx(0.08, abs=0.005)

    def test_frq_area(self):
        assert frq_area(baseline_config()) == pytest.approx(0.092, abs=0.005)

    def test_dr_total_overhead(self):
        ov = delegated_replies_overhead(baseline_config())
        assert ov["total"] == pytest.approx(0.172, abs=0.01)

    def test_dr_is_5_percent_of_double_bw_extra(self):
        cfg = baseline_config()
        base = noc_area(cfg).total
        cfg2 = baseline_config()
        cfg2.noc.bandwidth_factor = 2.0
        extra = noc_area(cfg2).total - base
        ratio = delegated_replies_overhead(cfg)["total"] / extra
        assert 0.03 < ratio < 0.07  # "only 5% of the area overhead"

    def test_crossbar_quadratic_blowup(self):
        cfg = baseline_config()
        cfg.noc.topology = Topology.CROSSBAR
        assert noc_area(cfg).total > 5 * noc_area(baseline_config()).total

    def test_router_area_monotonic_in_width(self):
        assert router_area(5, 2, 4, 32) > router_area(5, 2, 4, 16)

    def test_pointer_area_scales_with_llc(self):
        cfg = baseline_config()
        cfg.llc.slice_size_bytes *= 2
        assert core_pointer_area(cfg) == pytest.approx(0.16, abs=0.01)


class TestEnergyModel:
    def _result(self, flits, insts, cycles=1000):
        return SimulationResult(
            cycles=cycles,
            counters={
                "noc.req_flits_routed": flits / 2,
                "noc.rep_flits_routed": flits / 2,
                "gpu.insts": insts,
                "cpu.insts": 0,
            },
        )

    def test_more_flits_more_noc_energy(self):
        cfg = baseline_config()
        lo = energy_report(self._result(1000, 10_000), cfg)
        hi = energy_report(self._result(5000, 10_000), cfg)
        assert hi.noc_dynamic_uj > lo.noc_dynamic_uj

    def test_faster_execution_cuts_system_energy_per_inst(self):
        cfg = baseline_config()
        slow = energy_report(self._result(1000, 10_000), cfg)
        fast = energy_report(self._result(1000, 14_000), cfg)
        assert fast.system_pj_per_inst < slow.system_pj_per_inst

    def test_report_dict_roundtrip(self):
        cfg = baseline_config()
        rep = energy_report(self._result(100, 100), cfg)
        d = rep.as_dict()
        assert set(d) == {
            "noc_dynamic_uj", "noc_dynamic_pj_per_inst",
            "system_pj_per_inst", "insts", "cycles",
        }


class TestMeans:
    def test_amean(self):
        assert amean([1, 2, 3]) == 2

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_hmean(self):
        assert hmean([1, 1]) == pytest.approx(1.0)
        assert hmean([2, 6]) == pytest.approx(3.0)

    def test_means_ignore_nonpositive_where_needed(self):
        assert geomean([0, 4]) == pytest.approx(4.0)
        assert hmean([]) == 0.0


class TestFormatTable:
    def test_renders_rows_and_mean(self):
        rows = [("a", {"x": 1.0}), ("b", {"x": 3.0})]
        out = format_table("T", rows, mean="amean")
        assert "== T ==" in out
        assert "a" in out and "b" in out
        assert "2.000" in out  # the mean row

    def test_missing_cells_render_dash(self):
        rows = [("a", {"x": 1.0, "y": 2.0}), ("b", {"x": 3.0})]
        out = format_table("T", rows, columns=["x", "y"], mean=None)
        b_line = [l for l in out.splitlines() if l.startswith("b")][0]
        assert b_line.rstrip().endswith("-")

    def test_empty_rows(self):
        assert "(no data)" in format_table("T", [])
