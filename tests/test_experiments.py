"""Smoke tests for the per-figure experiment modules.

Tiny windows and benchmark subsets: these verify plumbing, normalisation
and output shape, not the paper-scale numbers (the benchmark harness under
``benchmarks/`` regenerates those).
"""

import pytest

from repro.experiments import (
    area_energy,
    clear_sweep_cache,
    fig02_locality,
    fig05_topology,
    fig06_avcp,
    fig07_adaptive,
    fig09_layout,
    fig10_gpu_perf,
    fig11_data_rate,
    fig12_cpu_latency,
    fig13_cpu_perf,
    fig14_miss_breakdown,
    fig15_shared_l1,
    fig16_topology_dr,
    fig17_layout_dr,
    fig19_sensitivity,
    node_mix,
)
from repro.experiments.common import (
    cpu_corunners,
    default_benchmarks,
    mechanism_config,
    mechanism_sweep,
)

FAST = dict(cycles=400, warmup=250)
BENCH2 = ["HS", "SC"]


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


class TestCommon:
    def test_default_benchmarks_full(self):
        assert len(default_benchmarks()) == 11

    def test_default_benchmarks_subset_keeps_extremes(self):
        subset = default_benchmarks(subset=4)
        assert subset == ["HS", "SC", "3DCON", "NN"]

    def test_cpu_corunners_follow_table_ii(self):
        assert cpu_corunners("HS", 2) == ["bodytrack", "ferret"]

    def test_mechanism_config_unknown_rejected(self):
        with pytest.raises(ValueError):
            mechanism_config("bogus")

    def test_sweep_is_cached(self):
        s1 = mechanism_sweep(("HS",), 1, 300, 200, mechanisms=("baseline",))
        s2 = mechanism_sweep(("HS",), 1, 300, 200, mechanisms=("baseline",))
        assert s1 is s2

    def test_sweep_keys(self):
        s = mechanism_sweep(("HS",), 1, 300, 200, mechanisms=("baseline", "dr"))
        assert ("HS", "bodytrack", "baseline") in s
        assert ("HS", "bodytrack", "dr") in s


class TestFigureModules:
    def test_fig02(self):
        r = fig02_locality.run(benchmarks=BENCH2, **FAST)
        assert len(r.rows) == 2
        for _, v in r.rows:
            assert 0 <= v["remote_l1_fraction"] <= 1

    def test_fig05(self):
        r = fig05_topology.run(benchmarks=["HS"], bandwidths=(1.0,), **FAST)
        assert len(r.rows) == 4  # one per topology
        mesh_row = dict(r.rows)["mesh-1x"]
        assert mesh_row["hm_gpu_speedup"] == pytest.approx(1.0)

    def test_fig06(self):
        r = fig06_avcp.run(benchmarks=["HS"], **FAST)
        (label, values), = r.rows
        assert "1req+3rep" in values and "avcp_vs_symmetric" in values

    def test_fig07(self):
        r = fig07_adaptive.run(benchmarks=["HS"], **FAST)
        (_, values), = r.rows
        assert set(values) == {"dyxy", "footprint", "hare"}

    def test_fig09(self):
        r = fig09_layout.run(benchmarks=["HS"], **FAST)
        assert len(r.rows) == 7
        ref = dict(r.rows)["Baseline YX-XY"]
        assert ref["gpu_perf"] == pytest.approx(1.0)
        assert ref["cpu_perf"] == pytest.approx(1.0)

    def test_fig10_to_fig14_share_one_sweep(self):
        r10 = fig10_gpu_perf.run(benchmarks=BENCH2, **FAST)
        r11 = fig11_data_rate.run(benchmarks=BENCH2, **FAST)
        r14 = fig14_miss_breakdown.run(benchmarks=BENCH2, **FAST)
        assert len(r10.rows) == len(r11.rows) == len(r14.rows) == 2
        assert r10.data["dr_mean_speedup"] > 0
        for _, v in r14.rows:
            total = v["llc"] + v["remote_hit"] + v["remote_miss"]
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_fig12_fig13_group_by_cpu(self):
        r12 = fig12_cpu_latency.run(benchmarks=["HS"], n_mixes=2, **FAST)
        r13 = fig13_cpu_perf.run(benchmarks=["HS"], n_mixes=2, **FAST)
        labels = [lbl for lbl, _ in r12.rows]
        assert set(labels) == {"bodytrack", "ferret"}
        assert len(r13.rows) == 2

    def test_fig15(self):
        r = fig15_shared_l1.run(benchmarks=["HS"], **FAST)
        (_, values), = r.rows
        assert "dyneb+dr-rr" in values

    def test_fig16(self):
        r = fig16_topology_dr.run(benchmarks=["HS"], **FAST,
                                  topologies=list(fig16_topology_dr.TOPOLOGIES)[:2])
        assert len(r.rows) == 2

    def test_fig17(self):
        r = fig17_layout_dr.run(benchmarks=["HS"], **FAST)
        assert len(r.rows) == 4
        for _, v in r.rows:
            assert "gpu_dr_speedup" in v and "cpu_dr_speedup" in v

    def test_fig19_single_panel(self):
        r = fig19_sensitivity.run(benchmarks=["HS"],
                                  panels=["injection_buffer"], **FAST)
        assert len(r.rows) == 3

    def test_node_mix(self):
        r = node_mix.run(benchmarks=["HS"], **FAST)
        assert len(r.rows) >= 4

    def test_area_energy(self):
        r = area_energy.run(benchmarks=["HS"], **FAST)
        d = dict(r.rows)
        assert d["baseline_noc_mm2"]["value"] == pytest.approx(2.27, abs=0.05)
        assert d["dr_total_mm2"]["value"] == pytest.approx(0.172, abs=0.01)
        assert d["rp_request_count"]["ratio"] > 1.5  # RP inflates requests

    def test_result_text_is_renderable(self):
        r = fig02_locality.run(benchmarks=["HS"], **FAST)
        assert r.text.startswith("==")
        assert str(r) == r.text


class TestCallTimeWindowDefaults:
    """REPRO_CYCLES/REPRO_WARMUP are read at call time, not import time."""

    def test_defaults_follow_env_after_import(self, monkeypatch):
        import repro.experiments as experiments
        from repro.experiments import common

        monkeypatch.setenv("REPRO_CYCLES", "555")
        monkeypatch.setenv("REPRO_WARMUP", "333")
        assert common.default_cycles() == 555
        assert common.default_warmup() == 333
        # the legacy module constants resolve dynamically too
        assert common.DEFAULT_CYCLES == 555
        assert experiments.DEFAULT_WARMUP == 333
        monkeypatch.delenv("REPRO_CYCLES")
        assert common.default_cycles() == 3000

    def test_mechanism_sweep_uses_env_windows(self, monkeypatch):
        monkeypatch.setenv("REPRO_CYCLES", "180")
        monkeypatch.setenv("REPRO_WARMUP", "120")
        sweep = mechanism_sweep(("HS",), 1, mechanisms=("baseline",))
        assert sweep[("HS", "bodytrack", "baseline")].cycles == 180
