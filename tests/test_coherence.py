"""Tests for the MESI directory and the GPU software-coherence controller."""

import pytest

from repro.coherence.mesi import MesiDirectory, MesiState
from repro.coherence.software import SoftwareCoherenceController


class TestMesiReads:
    def test_first_reader_gets_exclusive(self):
        d = MesiDirectory()
        action = d.get_shared(1, 0x10)
        assert action.grant is MesiState.EXCLUSIVE
        assert action.fetch_from is None
        assert d.owner_of(0x10) == 1

    def test_second_reader_downgrades_owner(self):
        d = MesiDirectory()
        d.get_shared(1, 0x10)
        action = d.get_shared(2, 0x10)
        assert action.grant is MesiState.SHARED
        assert action.fetch_from == 1
        assert d.owner_of(0x10) is None
        assert d.sharers_of(0x10) == {1, 2}

    def test_third_reader_joins_sharers_quietly(self):
        d = MesiDirectory()
        d.get_shared(1, 0x10)
        d.get_shared(2, 0x10)
        action = d.get_shared(3, 0x10)
        assert action.fetch_from is None
        assert d.sharers_of(0x10) == {1, 2, 3}


class TestMesiWrites:
    def test_getm_invalidates_all_sharers(self):
        d = MesiDirectory()
        d.get_shared(1, 0x10)
        d.get_shared(2, 0x10)
        d.get_shared(3, 0x10)
        action = d.get_modified(4, 0x10)
        assert set(action.invalidate) == {1, 2, 3}
        assert action.grant is MesiState.MODIFIED
        assert d.owner_of(0x10) == 4
        assert d.sharers_of(0x10) == set()

    def test_getm_fetches_from_owner(self):
        d = MesiDirectory()
        d.get_shared(1, 0x10)     # 1 holds E
        action = d.get_modified(2, 0x10)
        assert action.fetch_from == 1
        assert d.owner_of(0x10) == 2

    def test_upgrade_from_own_shared_copy(self):
        d = MesiDirectory()
        d.get_shared(1, 0x10)
        d.get_shared(2, 0x10)
        action = d.get_modified(1, 0x10)
        assert set(action.invalidate) == {2}
        assert action.fetch_from is None

    def test_putm_requires_ownership(self):
        d = MesiDirectory()
        d.get_modified(1, 0x10)
        d.put_modified(1, 0x10)
        assert d.state_of(0x10) is MesiState.INVALID
        with pytest.raises(ValueError):
            d.put_modified(2, 0x10)


class TestMesiEviction:
    def test_silent_shared_eviction(self):
        d = MesiDirectory()
        d.get_shared(1, 0x10)
        d.get_shared(2, 0x10)
        d.evict_shared(1, 0x10)
        assert d.sharers_of(0x10) == {2}

    def test_last_eviction_frees_directory_entry(self):
        d = MesiDirectory()
        d.get_shared(1, 0x10)
        d.get_shared(2, 0x10)
        d.evict_shared(1, 0x10)
        d.evict_shared(2, 0x10)
        assert d.tracked_blocks() == 0

    def test_eviction_of_untracked_block_is_noop(self):
        d = MesiDirectory()
        d.evict_shared(1, 0x99)
        assert d.tracked_blocks() == 0


class TestMesiStats:
    def test_counters(self):
        d = MesiDirectory()
        d.get_shared(1, 0x10)
        d.get_shared(2, 0x10)
        d.get_modified(3, 0x10)
        assert d.stats.gets == 2
        assert d.stats.getm == 1
        assert d.stats.invalidations_sent == 2
        assert d.stats.owner_fetches == 1


class _FakeCore:
    def __init__(self):
        self.flushed = 0
        self.stall_until = 0

    def flush_l1(self):
        self.flushed += 1
        return 7


class _FakeMem:
    def flush_pointers(self):
        return 3


class TestSoftwareCoherence:
    def test_kernel_boundary_flushes_everything(self):
        cores = [_FakeCore(), _FakeCore()]
        mems = [_FakeMem()]
        ctl = SoftwareCoherenceController(cores, mems, flush_penalty=50)
        ctl.kernel_boundary(cycle=100)
        assert all(c.flushed == 1 for c in cores)
        assert all(c.stall_until == 150 for c in cores)
        assert ctl.stats.lines_invalidated == 14
        assert ctl.stats.pointers_dropped == 3
        assert ctl.stats.flushes == 1

    def test_flush_penalty_never_shortens_existing_stall(self):
        core = _FakeCore()
        core.stall_until = 1_000
        ctl = SoftwareCoherenceController([core], [], flush_penalty=10)
        ctl.kernel_boundary(cycle=0)
        assert core.stall_until == 1_000
