"""Tests for the JSON config-file layer."""

import json

import pytest

from repro.config import Layout, Mechanism, SystemConfig, Topology
from repro.config.loader import (
    ConfigError,
    config_from_dict,
    dump_config,
    load_config,
    save_config,
)


class TestFromDict:
    def test_empty_dict_gives_table1_defaults(self):
        cfg = config_from_dict({})
        assert cfg == SystemConfig()

    def test_top_level_enum_field(self):
        cfg = config_from_dict({"mechanism": "delegated_replies"})
        assert cfg.mechanism is Mechanism.DELEGATED_REPLIES

    def test_nested_sections(self):
        cfg = config_from_dict(
            {
                "noc": {"channel_width_bytes": 8, "topology": "dragonfly"},
                "gpu_l1": {"size_bytes": 16384},
                "delegation": {"enabled": True},
            }
        )
        assert cfg.noc.channel_width_bytes == 8
        assert cfg.noc.topology is Topology.DRAGONFLY
        assert cfg.gpu_l1.size_bytes == 16384
        assert cfg.delegation.enabled

    def test_unknown_key_fails_loudly(self):
        with pytest.raises(ConfigError, match="unknown config key"):
            config_from_dict({"nocc": {}})

    def test_unknown_nested_key_fails_with_path(self):
        with pytest.raises(ConfigError, match="chanel_width"):
            config_from_dict({"noc": {"chanel_width": 8}})

    def test_bad_enum_value_lists_options(self):
        with pytest.raises(ConfigError, match="torus"):
            config_from_dict({"noc": {"topology": "torus"}})

    def test_section_needs_object(self):
        with pytest.raises(ConfigError, match="section"):
            config_from_dict({"noc": 5})

    def test_bool_field_rejects_non_bool(self):
        with pytest.raises(ConfigError, match="boolean"):
            config_from_dict({"delegation": {"enabled": 1}})

    def test_node_mix_revalidated(self):
        with pytest.raises(ValueError):
            config_from_dict({"n_gpu": 41})

    def test_int_to_float_coercion(self):
        cfg = config_from_dict({"noc": {"bandwidth_factor": 2}})
        assert cfg.noc.bandwidth_factor == 2.0
        assert isinstance(cfg.noc.bandwidth_factor, float)


class TestRoundTrip:
    def test_dump_and_rebuild(self):
        cfg = config_from_dict(
            {"layout": "edge", "noc": {"vcs_per_port": 4}}
        )
        data = dump_config(cfg)
        rebuilt = config_from_dict(data)
        assert rebuilt == cfg
        assert data["layout"] == "edge"

    def test_file_roundtrip(self, tmp_path):
        cfg = config_from_dict({"mechanism": "realistic_probing"})
        path = tmp_path / "system.json"
        save_config(cfg, path)
        loaded = load_config(path)
        assert loaded == cfg
        # the file is plain JSON a human can edit
        raw = json.loads(path.read_text())
        assert raw["mechanism"] == "realistic_probing"

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigError):
            load_config(path)

    def test_loaded_config_drives_a_simulation(self, tmp_path):
        from repro.sim.simulator import run_simulation

        path = tmp_path / "small.json"
        path.write_text(json.dumps({
            "mesh_width": 4, "mesh_height": 4,
            "n_gpu": 10, "n_cpu": 4, "n_mem": 2,
            "mechanism": "delegated_replies",
            "delegation": {"enabled": True},
        }))
        cfg = load_config(path)
        res = run_simulation(cfg, "HS", None, cycles=300, warmup=200)
        assert res.gpu_ipc > 0
