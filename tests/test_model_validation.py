"""Accuracy and screening contracts for the analytical surrogate.

Two pinned guarantees ride tier-1:

* the surrogate stays within its accuracy budget against the real
  simulator on the ``mesh4x4`` validation grid (the same gate CI's
  ``model_validate.sh`` enforces), and
* the hybrid sweep's surrogate screening keeps at most half of a
  saturation sweep, always keeps an unclogged anchor, and the jobs it
  does run produce bit-identical results to an unscreened sweep.
"""

import json

import pytest

from repro.model.compose import Prediction, RHO_CAP, predict
from repro.model.saturation import assess, keep_mask, screening_score
from repro.model.validate import (
    MEDIAN_ERROR_BUDGET,
    grid_specs,
    mesh4x4_config,
    spearman,
    validate,
)
from repro.sweep import JobSpec, ResultCache, SweepRunner


def bw_sweep_specs(cycles=400, warmup=200):
    """NN across link bandwidths: spans clogged -> free (the knee)."""
    specs = []
    for bwf in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0):
        cfg = mesh4x4_config()
        cfg.noc.bandwidth_factor = bwf
        specs.append(
            JobSpec.make(
                cfg, "NN", "blackscholes", cycles=cycles, warmup=warmup,
                label=("bw", f"{bwf:g}x"),
            )
        )
    return specs


def synthetic(rho):
    return Prediction(
        gpu="X", cpu="y", mechanism="baseline",
        demand_rho=rho, saturated=rho > 1.0,
    )


class TestSpearman:
    def test_perfect_and_reversed(self):
        a = [1.0, 2.0, 3.0, 4.0]
        assert spearman(a, [10.0, 20.0, 30.0, 40.0]) == pytest.approx(1.0)
        assert spearman(a, [4.0, 3.0, 2.0, 1.0]) == pytest.approx(-1.0)

    def test_ties_and_degenerate(self):
        assert spearman([1.0, 1.0], [1.0, 2.0]) == 0.0
        assert spearman([1.0], [1.0]) == 0.0


class TestKeepMask:
    def test_keeps_everything_saturated(self):
        preds = [synthetic(r) for r in (1.5, 2.0, 7.0)]
        assert keep_mask(preds) == [True, True, True]

    def test_drops_far_field_but_anchors_one(self):
        preds = [synthetic(r) for r in (3.0, 0.9, 0.2, 0.1)]
        mask = keep_mask(preds)
        assert mask[0] and mask[1]      # clogged + knee guard band
        assert not mask[2]              # far field screened out
        assert mask[3]                  # lowest point kept as anchor
        assert sum(mask) == 3

    def test_band_widens_the_keep_set(self):
        preds = [synthetic(r) for r in (0.6, 0.05)]
        assert keep_mask(preds, band=0.1) == [False, True]  # 0.6 < 0.738
        assert keep_mask(preds, band=0.5) == [True, True]

    def test_empty(self):
        assert keep_mask([]) == []

    def test_score_is_demand_rho(self):
        assert screening_score(synthetic(1.7)) == 1.7


class TestAssess:
    def test_clogged_verdict_names_the_bottleneck(self):
        pred = predict(mesh4x4_config(), "HS", "bodytrack")
        rep = assess(pred)
        assert rep.saturated
        assert rep.demand_rho > 1.0
        assert rep.bottleneck and rep.bottleneck in rep.verdict
        # carried load is throttled to RHO_CAP, so the bottleneck link
        # shows up at the plateau (near-saturated), not above CLOGGED_RHO
        assert rep.bottleneck in {**rep.clogged_links, **rep.near_links}

    def test_unsaturated_verdict(self):
        cfg = mesh4x4_config()
        cfg.noc.bandwidth_factor = 32.0
        rep = assess(predict(cfg, "NN", "blackscholes"))
        assert not rep.saturated
        assert not rep.clogged_links


class TestScreening:
    def test_screen_keeps_at_most_half_of_a_saturation_sweep(self):
        specs = bw_sweep_specs()
        decision = SweepRunner(cache=None).screen(specs)
        assert 0 < len(decision.kept) <= len(specs) // 2
        # saturated low-bandwidth points simulate, far field is skipped
        kept_labels = {s.label for s in decision.kept}
        assert ("bw", "1x") in kept_labels
        assert ("bw", "2x") in kept_labels
        # the anchor is the least-loaded point of the far field
        anchored = [s for s, p in decision.skipped if p.demand_rho < 1.0]
        assert len(anchored) == len(decision.skipped)
        records = decision.skipped_records()
        assert len(records) == len(decision.skipped)
        assert all(r["demand_rho"] < 1.0 for r in records)
        assert all(r["key"] for r in records)

    def test_kept_jobs_are_bit_identical_to_an_unscreened_sweep(self, tmp_path):
        specs = bw_sweep_specs()

        full_runner = SweepRunner(cache=ResultCache(tmp_path / "full"), jobs=2)
        try:
            full = full_runner.run(specs)
        finally:
            full_runner.close()

        runner = SweepRunner(cache=ResultCache(tmp_path / "screened"), jobs=2)
        try:
            decision = runner.screen(specs)
            screened = runner.run(decision.kept)
        finally:
            runner.close()

        assert set(screened) == {s.key() for s in decision.kept}
        for spec in decision.kept:
            a = full[spec.key()].result.to_dict()
            b = screened[spec.key()].result.to_dict()
            assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestValidationBudget:
    def test_mesh4x4_median_error_within_budget(self, tmp_path):
        report = validate(
            "mesh4x4", jobs=2, cache=ResultCache(tmp_path / "cache")
        )
        assert report.n_points == len(grid_specs("mesh4x4"))
        assert report.median_rel_err <= MEDIAN_ERROR_BUDGET
        assert report.spearman >= 0.9
        assert report.predict_ms_per_point < 50.0
        assert report.passed
        d = report.to_dict()
        assert d["passed"] is True
        assert len(d["points"]) == report.n_points

    def test_grid_specs_are_cache_stable(self):
        keys = [s.key() for s in grid_specs("mesh4x4")]
        assert keys == [s.key() for s in grid_specs("mesh4x4")]
        with pytest.raises(ValueError):
            grid_specs("nope")


def test_rho_cap_documented_range():
    # the screening threshold derives from RHO_CAP; pin the contract the
    # docs and tests above assume.
    assert 0.7 < RHO_CAP < 1.0
