"""Tests for the Delegated Replies mechanism and the RP probe engine."""

import pytest

from repro.config.system import DelegationConfig, ProbingConfig
from repro.core.delegated_replies import (
    DelegatedRepliesMechanism,
    ReplyMeta,
    is_delegatable,
)
from repro.core.realistic_probing import ProbeEngine
from repro.noc.packet import MessageType, Packet, TrafficClass


def reply(dst=9, block=0x40, meta=None, cls=TrafficClass.GPU,
          mtype=MessageType.READ_REPLY):
    pkt = Packet(4, dst, mtype, cls, 9, block=block)
    pkt.txn = meta
    return pkt


class TestDelegationPolicy:
    def setup_method(self):
        self.mech = DelegatedRepliesMechanism(DelegationConfig(enabled=True))

    def test_delegatable_reply_becomes_1flit_request(self):
        pkt = reply(dst=9, block=0x40, meta=ReplyMeta(True, delegate_to=7))
        d = self.mech._delegate(pkt, 100)
        assert d is not None
        assert d.mtype is MessageType.DELEGATED_REQ
        assert d.size_flits == 1
        assert d.dst == 7            # towards the likely sharer
        assert d.requester == 9      # sender ID = requesting core
        assert d.block == 0x40
        assert self.mech.stats.delegations == 1

    def test_meta_without_target_not_delegated(self):
        pkt = reply(meta=ReplyMeta(True, None))
        assert self.mech._delegate(pkt, 0) is None

    def test_missing_meta_not_delegated(self):
        assert self.mech._delegate(reply(meta=None), 0) is None

    def test_cpu_reply_never_delegated(self):
        pkt = reply(meta=ReplyMeta(True, delegate_to=7), cls=TrafficClass.CPU)
        assert self.mech._delegate(pkt, 0) is None

    def test_write_ack_never_delegated(self):
        pkt = Packet(4, 9, MessageType.WRITE_ACK, TrafficClass.GPU, 1)
        pkt.txn = ReplyMeta(True, delegate_to=7)
        assert self.mech._delegate(pkt, 0) is None

    def test_is_delegatable_helper(self):
        assert is_delegatable(ReplyMeta(True, delegate_to=3))
        assert not is_delegatable(ReplyMeta(True, None))
        assert not is_delegatable("something else")

    def test_attach_configures_nic_policy(self):
        class FakeNic:
            delegation_policy = None
            delegate_only_when_blocked = None
            max_delegations_per_cycle = None

        nic = FakeNic()
        self.mech.attach(nic)
        assert nic.delegation_policy is not None
        assert nic.delegate_only_when_blocked == self.mech.cfg.only_when_blocked


class TestProbeEngine:
    def make(self, width=4):
        cfg = ProbingConfig(enabled=True, probe_width=width)
        gpu_nodes = list(range(20, 30))
        return ProbeEngine(cfg, 25, gpu_nodes), gpu_nodes

    def test_targets_exclude_self(self):
        eng, nodes = self.make()
        targets = eng.targets_for(0x10)
        assert 25 not in targets
        assert len(targets) == 4
        assert len(set(targets)) == 4

    def test_targets_are_neighbours(self):
        eng, nodes = self.make(width=2)
        assert set(eng.targets_for(0)) == {24, 26}

    def test_probe_width_capped_by_core_count(self):
        cfg = ProbingConfig(enabled=True, probe_width=50)
        eng = ProbeEngine(cfg, 1, [0, 1, 2])
        assert len(eng.targets_for(0)) == 2

    def test_nack_countdown_triggers_fallback(self):
        eng, _ = self.make(width=3)
        eng.begin(0x7, 3)
        assert not eng.on_nack(0x7)
        assert not eng.on_nack(0x7)
        assert eng.on_nack(0x7)          # all probes missed
        assert eng.stats.fallbacks == 1
        assert not eng.is_probing(0x7)

    def test_data_cancels_pending_nacks(self):
        eng, _ = self.make(width=3)
        eng.begin(0x7, 3)
        eng.on_data(0x7)
        assert eng.stats.probe_hits == 1
        assert not eng.on_nack(0x7)      # stale NACK ignored
        assert eng.stats.fallbacks == 0

    def test_predictor_biased_by_region(self):
        eng, _ = self.make()
        shared = sum(eng.should_probe((1 << 32) + i) for i in range(500))
        private = sum(eng.should_probe((2 << 32) + i) for i in range(500))
        assert shared > private * 2
