"""Tests for the synthetic workload generators and Table II mixes."""

import pytest

from repro.workloads import (
    CPU_BENCHMARKS,
    GPU_BENCHMARKS,
    CpuTraceGenerator,
    GpuTraceGenerator,
    SharedWavefront,
    TABLE_II,
    cpu_benchmark,
    gpu_benchmark,
    mixes_for_gpu,
    workload_mixes,
)
from repro.workloads.gpu import _PRIVATE_REGION, _SHARED_REGION


class TestTableII:
    def test_eleven_gpu_benchmarks(self):
        assert len(GPU_BENCHMARKS) == 11
        assert set(TABLE_II) == set(GPU_BENCHMARKS)

    def test_thirty_three_mixes(self):
        assert len(workload_mixes()) == 33

    def test_each_gpu_bench_has_three_corunners(self):
        for gpu, cpus in TABLE_II.items():
            assert len(cpus) == 3
            for c in cpus:
                assert c in CPU_BENCHMARKS

    def test_table_ii_rows_match_paper(self):
        assert TABLE_II["HS"] == ("bodytrack", "ferret", "x264")
        assert TABLE_II["BP"] == ("blackscholes", "bodytrack", "ferret")
        assert TABLE_II["2DCON"] == ("blackscholes", "canneal", "dedup")

    def test_grid_dims_match_paper(self):
        assert gpu_benchmark("HS").grid_dim == (342, 342, 1)
        assert gpu_benchmark("BP").grid_dim == (1, 16384, 1)
        assert gpu_benchmark("MM").grid_dim == (1000, 2000, 1)

    def test_lookup_is_case_insensitive(self):
        assert gpu_benchmark("hs").name == "HS"
        assert cpu_benchmark("VIPS").name == "vips"

    def test_unknown_benchmarks_raise(self):
        with pytest.raises(KeyError):
            gpu_benchmark("NOPE")
        with pytest.raises(KeyError):
            cpu_benchmark("nope")

    def test_mixes_for_gpu(self):
        mixes = mixes_for_gpu("HS")
        assert [m.cpu.name for m in mixes] == ["bodytrack", "ferret", "x264"]
        assert mixes[0].name == "HS+bodytrack"


class TestGpuGenerator:
    def make(self, bench="HS", core=0, seed=42, wavefront=None):
        profile = gpu_benchmark(bench)
        wf = wavefront or SharedWavefront(profile)
        return GpuTraceGenerator(profile, core, wf, seed=seed)

    def test_deterministic_given_seed(self):
        a = [self.make(seed=7).next_access() for _ in range(1)]
        g1, g2 = self.make(seed=7), self.make(seed=7)
        s1 = [g1.next_access() for _ in range(100)]
        # fresh wavefronts per generator; rebuild both identically
        g2 = self.make(seed=7)
        s2 = [g2.next_access() for _ in range(100)]
        assert s1 == s2

    def test_different_cores_differ(self):
        profile = gpu_benchmark("HS")
        wf = SharedWavefront(profile)
        g0 = GpuTraceGenerator(profile, 0, wf)
        g1 = GpuTraceGenerator(profile, 1, wf)
        s0 = [g0.next_access()[0] for _ in range(50)]
        s1 = [g1.next_access()[0] for _ in range(50)]
        assert s0 != s1

    def test_addresses_live_in_their_regions(self):
        g = self.make()
        for _ in range(500):
            block, _ = g.next_access()
            assert block >= _SHARED_REGION

    def test_private_blocks_disjoint_across_cores(self):
        profile = gpu_benchmark("SC")  # mostly private
        wf = SharedWavefront(profile)
        gens = [GpuTraceGenerator(profile, c, wf) for c in range(4)]
        privates = [set() for _ in gens]
        for g, seen in zip(gens, privates):
            for _ in range(400):
                b, _ = g.next_access()
                if b >= _PRIVATE_REGION:
                    seen.add(b)
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (privates[i] & privates[j])

    def test_write_fraction_tracks_profile(self):
        g = self.make(bench="BP")
        writes = sum(g.next_access()[1] for _ in range(4000))
        frac = writes / 4000
        assert 0.25 < frac < 0.55  # profile says 0.42

    def test_read_only_shared_data(self):
        # non-BP benchmarks never write the shared region
        g = self.make(bench="HS")
        for _ in range(2000):
            block, is_write = g.next_access()
            if _SHARED_REGION <= block < _PRIVATE_REGION:
                assert not is_write

    def test_wavefront_creates_overlap(self):
        """Cores sampling the wavefront around the same time see the same
        blocks — the source of inter-core locality (Fig. 2)."""
        profile = gpu_benchmark("HS")
        wf = SharedWavefront(profile)
        g0 = GpuTraceGenerator(profile, 0, wf)
        g1 = GpuTraceGenerator(profile, 1, wf)
        s0, s1 = set(), set()
        for _ in range(300):
            b0, _ = g0.next_access()
            b1, _ = g1.next_access()
            if b0 < _PRIVATE_REGION:
                s0.add(b0)
            if b1 < _PRIVATE_REGION:
                s1.add(b1)
        overlap = len(s0 & s1) / max(1, min(len(s0), len(s1)))
        assert overlap > 0.3

    def test_lag_produces_old_blocks(self):
        profile = gpu_benchmark("3DCON")
        assert profile.p_lag > 0
        wf = SharedWavefront(profile)
        g = GpuTraceGenerator(profile, 0, wf)
        for _ in range(2000):
            g.next_access()
        # the wavefront advanced well past its lag distance
        assert wf.pos > profile.lag_distance / 2


class TestCpuGenerator:
    def test_reads_only(self):
        g = CpuTraceGenerator(cpu_benchmark("vips"), 0)
        assert all(not g.next_access()[1] for _ in range(200))

    def test_deterministic(self):
        g1 = CpuTraceGenerator(cpu_benchmark("dedup"), 3, seed=5)
        g2 = CpuTraceGenerator(cpu_benchmark("dedup"), 3, seed=5)
        assert [g1.next_access() for _ in range(100)] == [
            g2.next_access() for _ in range(100)
        ]

    def test_cores_have_disjoint_footprints(self):
        a = CpuTraceGenerator(cpu_benchmark("vips"), 0)
        b = CpuTraceGenerator(cpu_benchmark("vips"), 1)
        sa = {a.next_access()[0] for _ in range(500)}
        sb = {b.next_access()[0] for _ in range(500)}
        assert not (sa & sb)

    def test_dependency_fraction_ordering(self):
        # vips is the most latency-sensitive, dedup the least (Fig. 13)
        assert (
            cpu_benchmark("vips").dep_fraction
            > cpu_benchmark("bodytrack").dep_fraction
            > cpu_benchmark("dedup").dep_fraction
        )

    def test_reuse_produces_locality(self):
        g = CpuTraceGenerator(cpu_benchmark("swaptions"), 0)
        blocks = [g.next_access()[0] for _ in range(1000)]
        assert len(set(blocks)) < 700  # substantial reuse
