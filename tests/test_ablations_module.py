"""Smoke test for the ablations experiment module."""

from repro.experiments import ablations


def test_ablations_smoke():
    result = ablations.run(benchmarks=["HS"], cycles=300, warmup=200)
    rows = dict(result.rows)
    expected = {
        "delegate_on_block (paper)",
        "delegate_always",
        "frq_2_entries",
        "frq_4_entries",
        "frq_8_entries",
        "frq_16_entries",
        "no_pointer_invalidation",
        "frq_merging (paper rejects)",
        "delegations_per_cycle_1",
        "delegations_per_cycle_2",
        "delegations_per_cycle_4",
        "pointer_accuracy",
        "frq_same_block_rate",
    }
    assert set(rows) == expected
    for label in expected - {"pointer_accuracy", "frq_same_block_rate"}:
        assert rows[label]["dr_speedup"] > 0
    assert 0.0 <= rows["frq_same_block_rate"]["dr_speedup"] <= 1.0
    assert "Ablations" in result.text
