"""Tests for the ``repro.sweep`` subsystem.

Covers spec hashing, the on-disk result cache, the runner's retry and
resume behaviour, the warm-pool/batching executor (pool reuse across
retry rounds, chunked submission, crash recovery, kill-mid-batch
resume), and the determinism contract: a parallel sweep must produce
byte-identical ``SimulationResult`` payloads to the one-worker path and
to the pre-refactor sequential ``run_simulation`` loop.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.config import baseline_config, delegated_replies_config
from repro.sim.simulator import run_simulation
from repro.sweep import (
    JobOutcome,
    JobSpec,
    ResultCache,
    SweepError,
    SweepRunner,
    dedupe,
    default_batch,
    default_jobs,
    mechanism_jobs,
    run_job_batch,
    run_sweep,
)
from repro.sweep.runner import stall_shares

TINY = dict(cycles=200, warmup=120)


def tiny_spec(**overrides) -> JobSpec:
    kwargs = dict(
        config=baseline_config(), gpu="HS", cpu="bodytrack", **TINY
    )
    kwargs.update(overrides)
    return JobSpec.make(**kwargs)


def result_bytes(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestJobSpec:
    def test_hashable_and_deduplicates(self):
        a, b = tiny_spec(), tiny_spec()
        assert a == b
        assert len({a, b}) == 1
        assert dedupe([a, b]) == [a]

    def test_key_is_stable(self):
        assert tiny_spec().key() == tiny_spec().key()

    def test_label_excluded_from_key(self):
        assert tiny_spec().key() == tiny_spec(label=("x", "y")).key()

    def test_key_tracks_inputs(self):
        base = tiny_spec()
        assert base.key() != tiny_spec(config=delegated_replies_config()).key()
        assert base.key() != tiny_spec(cycles=TINY["cycles"] + 1).key()
        assert base.key() != tiny_spec(gpu="SC").key()
        assert base.key() != tiny_spec(cpu=None).key()

    def test_salt_invalidates_keys(self, monkeypatch):
        before = tiny_spec().key()
        monkeypatch.setenv("REPRO_SWEEP_SALT", "different-code")
        assert tiny_spec().key() != before

    def test_wire_round_trip(self):
        spec = tiny_spec(label=("HS", "bodytrack", "baseline"))
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key() == spec.key()

    def test_system_config_round_trips(self):
        cfg = delegated_replies_config()
        assert JobSpec.make(cfg, "HS", **TINY).system_config() == cfg


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert not cache.contains("0" * 64)

    def test_put_get_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        result = run_simulation(spec.system_config(), "HS", "bodytrack", **TINY)
        key = cache.put(spec, result, meta={"wall_time_s": 0.1})
        assert key == spec.key()
        assert cache.contains(key)
        assert result_bytes(cache.get(key)) == result_bytes(result)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        p = cache.path(key)
        p.parent.mkdir(parents=True)
        p.write_text("{not json")
        assert cache.get(key) is None
        assert not p.exists()  # evicted

    def test_clear_and_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        result = run_simulation(spec.system_config(), "HS", "bodytrack", **TINY)
        cache.put(spec, result)
        assert list(cache.keys()) == [spec.key()]
        assert cache.size_bytes() > 0
        assert cache.clear() == 1
        assert list(cache.keys()) == []


def _ok_payload(spec_dict):
    """Stand-in worker: a fake result derived from the spec (no simulation)."""
    from repro.sim.metrics import SimulationResult

    spec = JobSpec.from_dict(spec_dict)
    result = SimulationResult(cycles=spec.cycles, counters={"gpu.insts": 7.0})
    return {"result": result.to_dict(), "wall_time_s": 0.01}


# -- module-level workers for real-pool tests (must pickle by reference) --

#: directory the cross-process first-attempt flags live in
_FLAG_ENV = "REPRO_TEST_SWEEP_FLAGDIR"


def _attempt_flag(spec_dict) -> Path:
    spec = JobSpec.from_dict(spec_dict)
    return Path(os.environ[_FLAG_ENV]) / spec.key()


def _flaky_worker(spec_dict):
    """Fail each job's first attempt (flagged on disk), then succeed."""
    flag = _attempt_flag(spec_dict)
    if not flag.exists():
        flag.write_text("seen")
        raise RuntimeError("transient first-attempt failure")
    return _ok_payload(spec_dict)


def _crash_g0_once_worker(spec_dict):
    """Kill the worker process on job g0's first attempt; others dawdle.

    The dawdling keeps every other job in flight when g0 takes its
    worker down, so the whole round fails with ``BrokenProcessPool``
    and the retry round must rebuild the pool.
    """
    spec = JobSpec.from_dict(spec_dict)
    if spec.gpu == "g0":
        flag = _attempt_flag(spec_dict)
        if not flag.exists():
            flag.write_text("seen")
            os._exit(1)
    else:
        time.sleep(0.05)
    return _ok_payload(spec_dict)


def _slow_ok_worker(spec_dict):
    time.sleep(0.03)
    return _ok_payload(spec_dict)


def _sc_fails_worker(spec_dict):
    if JobSpec.from_dict(spec_dict).gpu == "SC":
        raise RuntimeError("boom")
    return _ok_payload(spec_dict)


class TestRunner:
    def test_inline_success_persists_to_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache, jobs=1, worker=_ok_payload)
        spec = tiny_spec()
        outcomes = runner.run([spec])
        out = outcomes[spec.key()]
        assert out.status == "ok" and out.attempts == 1
        assert cache.contains(spec.key())

    def test_retries_then_succeeds(self, tmp_path):
        calls = {"n": 0}

        def flaky(spec_dict):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return _ok_payload(spec_dict)

        runner = SweepRunner(
            cache=ResultCache(tmp_path), jobs=1, max_retries=2,
            backoff_base_s=0.0, worker=flaky,
        )
        out = runner.run([tiny_spec()])[tiny_spec().key()]
        assert out.status == "ok"
        assert out.attempts == 3

    def test_backoff_is_capped(self):
        runner = SweepRunner(backoff_base_s=1.0, backoff_cap_s=2.5)
        assert runner._backoff(1) == 1.0
        assert runner._backoff(2) == 2.0
        assert runner._backoff(3) == 2.5
        assert runner._backoff(10) == 2.5

    def test_exhausted_retries_fail_without_aborting(self, tmp_path):
        def broken(spec_dict):
            spec = JobSpec.from_dict(spec_dict)
            if spec.gpu == "SC":
                raise RuntimeError("boom")
            return _ok_payload(spec_dict)

        good, bad = tiny_spec(), tiny_spec(gpu="SC")
        runner = SweepRunner(
            cache=ResultCache(tmp_path), jobs=1, max_retries=1,
            backoff_base_s=0.0, worker=broken,
        )
        outcomes = runner.run([good, bad])
        assert outcomes[good.key()].status == "ok"
        failed = outcomes[bad.key()]
        assert failed.status == "failed"
        assert failed.attempts == 2
        assert "boom" in failed.error

    def test_run_sweep_raises_on_failure(self):
        bad = tiny_spec(gpu="NO_SUCH_BENCH")
        with pytest.raises(SweepError, match="NO_SUCH_BENCH"):
            run_sweep([bad], jobs=1, cache=None, max_retries=0)

    def test_resume_serves_from_cache_without_workers(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        first = SweepRunner(cache=cache, jobs=1, worker=_ok_payload).run([spec])

        def must_not_run(spec_dict):
            raise AssertionError("worker invoked despite cached result")

        second = SweepRunner(cache=cache, jobs=1, worker=must_not_run).run([spec])
        out = second[spec.key()]
        assert out.status == "cached"
        assert result_bytes(out.result) == result_bytes(first[spec.key()].result)

    def test_force_recompute_ignores_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        SweepRunner(cache=cache, jobs=1, worker=_ok_payload).run([spec])
        runner = SweepRunner(
            cache=cache, jobs=1, worker=_ok_payload, use_cache=False
        )
        assert runner.run([spec])[spec.key()].status == "ok"

    def test_progress_telemetry(self, tmp_path):
        seen = []

        def progress(outcome, done, total):
            seen.append((outcome.status, done, total))

        specs = [tiny_spec(), tiny_spec(gpu="SC")]
        SweepRunner(
            cache=ResultCache(tmp_path), jobs=1, worker=_ok_payload,
            progress=progress,
        ).run(specs)
        assert seen == [("ok", 1, 2), ("ok", 2, 2)]

    def test_auto_cache_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "c"))
        spec = tiny_spec()
        run_sweep([spec])
        assert ResultCache(tmp_path / "c").contains(spec.key())


class TestDeterminism:
    """--jobs 4 == --jobs 1 == the pre-refactor sequential path."""

    def test_parallel_serial_and_legacy_paths_bit_identical(self):
        specs = mechanism_jobs(["HS"], n_mixes=1, **TINY)
        assert len(specs) == 3  # baseline, rp, dr

        # pre-refactor sequential path: a bare run_simulation loop
        legacy = {
            spec.key(): run_simulation(
                spec.system_config(), spec.gpu, spec.cpu, **TINY
            )
            for spec in specs
        }
        serial = run_sweep(specs, jobs=1, cache=None)
        # jobs=4 with an explicit batch exercises the chunked pool path
        parallel = run_sweep(specs, jobs=4, cache=None, batch=2)

        for spec in specs:
            k = spec.key()
            assert (
                result_bytes(serial[k])
                == result_bytes(parallel[k])
                == result_bytes(legacy[k])
            ), f"results diverge for {spec.describe()}"


class TestEnvKnobs:
    """REPRO_SWEEP_JOBS / REPRO_SWEEP_BATCH parsing, incl. garbage values."""

    def test_default_jobs_garbage_warns_and_falls_back(
        self, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "two")
        assert default_jobs() == 1
        assert "REPRO_SWEEP_JOBS" in capsys.readouterr().err

        monkeypatch.setenv("REPRO_SWEEP_JOBS", "")
        assert default_jobs() == 1
        assert "REPRO_SWEEP_JOBS" in capsys.readouterr().err

        # a garbage value must not crash runner construction either
        runner = SweepRunner(jobs=None)
        assert runner.jobs == 1

    def test_default_jobs_valid_values(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_JOBS", raising=False)
        assert default_jobs() == 1
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "0")
        assert default_jobs() == 1  # clamped

    def test_default_batch(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_SWEEP_BATCH", raising=False)
        assert default_batch() is None  # adaptive
        monkeypatch.setenv("REPRO_SWEEP_BATCH", "8")
        assert default_batch() == 8
        monkeypatch.setenv("REPRO_SWEEP_BATCH", "garbage")
        assert default_batch() is None
        assert "REPRO_SWEEP_BATCH" in capsys.readouterr().err


class TestStallShares:
    """Largest-remainder apportionment: every group sums to exactly 1.0."""

    def test_three_way_split_sums_to_one(self):
        shares = stall_shares({"CPU": {"a": 1, "b": 1, "c": 1}})
        # independent round() gave 3 x 0.3333 = 0.9999; the leftover
        # unit goes to the largest remainder (name-ordered tie-break)
        assert shares["CPU"] == {"a": 0.3334, "b": 0.3333, "c": 0.3333}
        assert round(sum(shares["CPU"].values()), 10) == 1.0

    def test_many_way_splits_sum_to_one(self):
        for n_classes in (2, 3, 6, 7, 9, 13):
            breakdown = {"g": {f"c{i}": i + 1 for i in range(n_classes)}}
            shares = stall_shares(breakdown)["g"]
            assert round(sum(shares.values()), 10) == 1.0, shares
            for v in shares.values():
                assert v == round(v, 4)

    def test_exact_splits_unchanged(self):
        shares = stall_shares({
            "CPU": {"credit": 30, "eject": 10},
            "mem": {"reply_buffer": 7},
        })
        assert shares["CPU"] == {"credit": 0.75, "eject": 0.25}
        assert shares["mem"] == {"reply_buffer": 1.0}


class TestSweepError:
    def test_truncation_reports_overflow_count(self):
        outs = [
            JobOutcome(spec=tiny_spec(gpu=f"g{i}"), key=str(i), error="boom")
            for i in range(8)
        ]
        msg = str(SweepError(outs))
        assert "8 sweep job(s) failed" in msg
        assert "(and 3 more)" in msg

    def test_no_overflow_marker_at_five_or_fewer(self):
        outs = [
            JobOutcome(spec=tiny_spec(gpu=f"g{i}"), key=str(i), error="boom")
            for i in range(5)
        ]
        assert "more)" not in str(SweepError(outs))


class TestRetryBackoff:
    def test_first_retry_is_immediate_later_retries_back_off(
        self, monkeypatch
    ):
        sleeps = []
        monkeypatch.setattr(
            "repro.sweep.runner.time.sleep", lambda s: sleeps.append(s)
        )

        def always_fails(spec_dict):
            raise RuntimeError("deterministic")

        runner = SweepRunner(
            jobs=1, max_retries=3, backoff_base_s=0.25, worker=always_fails
        )
        out = runner.run([tiny_spec()])[tiny_spec().key()]
        assert out.status == "failed" and out.attempts == 4
        # rounds 0 and 1 run back to back; only carried-over failures
        # (rounds 2 and 3) wait out the capped exponential backoff
        assert sleeps == [0.25, 0.5]


class TestWarmPoolAndBatching:
    """Pool lifecycle and chunked submission over real worker processes."""

    @pytest.fixture
    def flag_dir(self, tmp_path, monkeypatch):
        d = tmp_path / "flags"
        d.mkdir()
        monkeypatch.setenv(_FLAG_ENV, str(d))
        return d

    def test_adaptive_chunk_size(self):
        runner = SweepRunner(jobs=4)
        assert runner._chunk_size(1, 4) == 1
        assert runner._chunk_size(16, 4) == 1
        assert runner._chunk_size(64, 4) == 4
        assert runner._chunk_size(100_000, 4) == 32  # capped
        assert SweepRunner(jobs=4, batch=7)._chunk_size(100_000, 4) == 7

    def test_run_job_batch_isolates_per_job_errors(self):
        dicts = [tiny_spec().to_dict(), tiny_spec(gpu="SC").to_dict()]
        res = run_job_batch(_sc_fails_worker, dicts)
        assert res[0]["ok"] is True
        assert res[1]["ok"] is False and "boom" in res[1]["error"]

    def test_warm_pool_reused_across_retry_rounds(self, flag_dir):
        specs = [tiny_spec(gpu=f"g{i}") for i in range(4)]
        # a 30s backoff base doubles as the immediate-first-retry check:
        # the run can only finish quickly if round 1 skips the sleep
        runner = SweepRunner(
            jobs=2, max_retries=1, backoff_base_s=30.0, worker=_flaky_worker
        )
        t0 = time.perf_counter()
        outcomes = runner.run(specs)
        wall = time.perf_counter() - t0
        runner.close()
        assert all(
            o.status == "ok" and o.attempts == 2 for o in outcomes.values()
        )
        assert runner.pools_created == 1, "retry round rebuilt the pool"
        assert wall < 20, "first retry should not sleep the 30s backoff"

    def test_batched_chunk_failures_stay_per_job(self, tmp_path):
        cache = ResultCache(tmp_path)
        good = [tiny_spec(gpu=g) for g in ("HS", "BP", "3DCON")]
        bad = tiny_spec(gpu="SC")
        runner = SweepRunner(
            cache=cache, jobs=2, batch=4, max_retries=0,
            worker=_sc_fails_worker,
        )
        outcomes = runner.run(good + [bad])
        runner.close()
        for spec in good:
            assert outcomes[spec.key()].status == "ok"
            assert cache.contains(spec.key())
        assert outcomes[bad.key()].status == "failed"
        assert "boom" in outcomes[bad.key()].error

    def test_worker_crash_fails_round_and_rebuilds_pool(self, flag_dir):
        specs = [tiny_spec(gpu=f"g{i}") for i in range(4)]
        runner = SweepRunner(
            jobs=2, max_retries=1, backoff_base_s=0.0,
            worker=_crash_g0_once_worker,
        )
        outcomes = runner.run(specs)
        runner.close()
        assert all(o.status == "ok" for o in outcomes.values())
        g0 = next(o for o in outcomes.values() if o.spec.gpu == "g0")
        assert g0.attempts == 2
        assert runner.pools_created == 2, "broken pool was not rebuilt"

    def test_kill_mid_batch_resume_recovers_cached_jobs(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [tiny_spec(gpu=f"g{i}") for i in range(6)]
        reported = []

        def interrupt_after_two(outcome, done, total):
            reported.append(outcome)
            if len(reported) == 2:
                raise KeyboardInterrupt

        runner = SweepRunner(
            cache=cache, jobs=2, batch=1, max_retries=0,
            worker=_slow_ok_worker, progress=interrupt_after_two,
        )
        with pytest.raises(KeyboardInterrupt):
            runner.run(specs)
        # every job persisted before the interrupt must be recoverable
        assert len(reported) == 2
        for out in reported:
            assert cache.contains(out.key)

        resumed_runner = SweepRunner(
            cache=cache, jobs=2, batch=2, worker=_slow_ok_worker
        )
        resumed = resumed_runner.run(specs)
        resumed_runner.close()
        statuses = [o.status for o in resumed.values()]
        assert set(statuses) <= {"ok", "cached"}
        assert statuses.count("cached") >= 2

    def test_pool_survives_across_run_calls(self, tmp_path):
        runner = SweepRunner(jobs=2, worker=_slow_ok_worker)
        first = runner.run([tiny_spec(gpu=f"a{i}") for i in range(3)])
        second = runner.run([tiny_spec(gpu=f"b{i}") for i in range(3)])
        runner.close()
        assert all(o.status == "ok" for o in first.values())
        assert all(o.status == "ok" for o in second.values())
        assert runner.pools_created == 1

    def test_context_manager_closes_pool(self):
        with SweepRunner(jobs=2, worker=_slow_ok_worker) as runner:
            runner.warm()
            assert runner._pool is not None
        assert runner._pool is None
