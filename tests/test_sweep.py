"""Tests for the ``repro.sweep`` subsystem.

Covers spec hashing, the on-disk result cache, the runner's retry and
resume behaviour, and the determinism contract: a parallel sweep must
produce byte-identical ``SimulationResult`` payloads to the one-worker
path and to the pre-refactor sequential ``run_simulation`` loop.
"""

import json

import pytest

from repro.config import baseline_config, delegated_replies_config
from repro.sim.simulator import run_simulation
from repro.sweep import (
    JobSpec,
    ResultCache,
    SweepError,
    SweepRunner,
    dedupe,
    mechanism_jobs,
    run_sweep,
)

TINY = dict(cycles=200, warmup=120)


def tiny_spec(**overrides) -> JobSpec:
    kwargs = dict(
        config=baseline_config(), gpu="HS", cpu="bodytrack", **TINY
    )
    kwargs.update(overrides)
    return JobSpec.make(**kwargs)


def result_bytes(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestJobSpec:
    def test_hashable_and_deduplicates(self):
        a, b = tiny_spec(), tiny_spec()
        assert a == b
        assert len({a, b}) == 1
        assert dedupe([a, b]) == [a]

    def test_key_is_stable(self):
        assert tiny_spec().key() == tiny_spec().key()

    def test_label_excluded_from_key(self):
        assert tiny_spec().key() == tiny_spec(label=("x", "y")).key()

    def test_key_tracks_inputs(self):
        base = tiny_spec()
        assert base.key() != tiny_spec(config=delegated_replies_config()).key()
        assert base.key() != tiny_spec(cycles=TINY["cycles"] + 1).key()
        assert base.key() != tiny_spec(gpu="SC").key()
        assert base.key() != tiny_spec(cpu=None).key()

    def test_salt_invalidates_keys(self, monkeypatch):
        before = tiny_spec().key()
        monkeypatch.setenv("REPRO_SWEEP_SALT", "different-code")
        assert tiny_spec().key() != before

    def test_wire_round_trip(self):
        spec = tiny_spec(label=("HS", "bodytrack", "baseline"))
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key() == spec.key()

    def test_system_config_round_trips(self):
        cfg = delegated_replies_config()
        assert JobSpec.make(cfg, "HS", **TINY).system_config() == cfg


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert not cache.contains("0" * 64)

    def test_put_get_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        result = run_simulation(spec.system_config(), "HS", "bodytrack", **TINY)
        key = cache.put(spec, result, meta={"wall_time_s": 0.1})
        assert key == spec.key()
        assert cache.contains(key)
        assert result_bytes(cache.get(key)) == result_bytes(result)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        p = cache.path(key)
        p.parent.mkdir(parents=True)
        p.write_text("{not json")
        assert cache.get(key) is None
        assert not p.exists()  # evicted

    def test_clear_and_keys(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        result = run_simulation(spec.system_config(), "HS", "bodytrack", **TINY)
        cache.put(spec, result)
        assert list(cache.keys()) == [spec.key()]
        assert cache.size_bytes() > 0
        assert cache.clear() == 1
        assert list(cache.keys()) == []


def _ok_payload(spec_dict):
    """Stand-in worker: a fake result derived from the spec (no simulation)."""
    from repro.sim.metrics import SimulationResult

    spec = JobSpec.from_dict(spec_dict)
    result = SimulationResult(cycles=spec.cycles, counters={"gpu.insts": 7.0})
    return {"result": result.to_dict(), "wall_time_s": 0.01}


class TestRunner:
    def test_inline_success_persists_to_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SweepRunner(cache=cache, jobs=1, worker=_ok_payload)
        spec = tiny_spec()
        outcomes = runner.run([spec])
        out = outcomes[spec.key()]
        assert out.status == "ok" and out.attempts == 1
        assert cache.contains(spec.key())

    def test_retries_then_succeeds(self, tmp_path):
        calls = {"n": 0}

        def flaky(spec_dict):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return _ok_payload(spec_dict)

        runner = SweepRunner(
            cache=ResultCache(tmp_path), jobs=1, max_retries=2,
            backoff_base_s=0.0, worker=flaky,
        )
        out = runner.run([tiny_spec()])[tiny_spec().key()]
        assert out.status == "ok"
        assert out.attempts == 3

    def test_backoff_is_capped(self):
        runner = SweepRunner(backoff_base_s=1.0, backoff_cap_s=2.5)
        assert runner._backoff(1) == 1.0
        assert runner._backoff(2) == 2.0
        assert runner._backoff(3) == 2.5
        assert runner._backoff(10) == 2.5

    def test_exhausted_retries_fail_without_aborting(self, tmp_path):
        def broken(spec_dict):
            spec = JobSpec.from_dict(spec_dict)
            if spec.gpu == "SC":
                raise RuntimeError("boom")
            return _ok_payload(spec_dict)

        good, bad = tiny_spec(), tiny_spec(gpu="SC")
        runner = SweepRunner(
            cache=ResultCache(tmp_path), jobs=1, max_retries=1,
            backoff_base_s=0.0, worker=broken,
        )
        outcomes = runner.run([good, bad])
        assert outcomes[good.key()].status == "ok"
        failed = outcomes[bad.key()]
        assert failed.status == "failed"
        assert failed.attempts == 2
        assert "boom" in failed.error

    def test_run_sweep_raises_on_failure(self):
        bad = tiny_spec(gpu="NO_SUCH_BENCH")
        with pytest.raises(SweepError, match="NO_SUCH_BENCH"):
            run_sweep([bad], jobs=1, cache=None, max_retries=0)

    def test_resume_serves_from_cache_without_workers(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        first = SweepRunner(cache=cache, jobs=1, worker=_ok_payload).run([spec])

        def must_not_run(spec_dict):
            raise AssertionError("worker invoked despite cached result")

        second = SweepRunner(cache=cache, jobs=1, worker=must_not_run).run([spec])
        out = second[spec.key()]
        assert out.status == "cached"
        assert result_bytes(out.result) == result_bytes(first[spec.key()].result)

    def test_force_recompute_ignores_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = tiny_spec()
        SweepRunner(cache=cache, jobs=1, worker=_ok_payload).run([spec])
        runner = SweepRunner(
            cache=cache, jobs=1, worker=_ok_payload, use_cache=False
        )
        assert runner.run([spec])[spec.key()].status == "ok"

    def test_progress_telemetry(self, tmp_path):
        seen = []

        def progress(outcome, done, total):
            seen.append((outcome.status, done, total))

        specs = [tiny_spec(), tiny_spec(gpu="SC")]
        SweepRunner(
            cache=ResultCache(tmp_path), jobs=1, worker=_ok_payload,
            progress=progress,
        ).run(specs)
        assert seen == [("ok", 1, 2), ("ok", 2, 2)]

    def test_auto_cache_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "c"))
        spec = tiny_spec()
        run_sweep([spec])
        assert ResultCache(tmp_path / "c").contains(spec.key())


class TestDeterminism:
    """Satellite: --jobs 4 == --jobs 1 == the pre-refactor sequential path."""

    def test_parallel_serial_and_legacy_paths_bit_identical(self):
        specs = mechanism_jobs(["HS"], n_mixes=1, **TINY)
        assert len(specs) == 3  # baseline, rp, dr

        # pre-refactor sequential path: a bare run_simulation loop
        legacy = {
            spec.key(): run_simulation(
                spec.system_config(), spec.gpu, spec.cpu, **TINY
            )
            for spec in specs
        }
        serial = run_sweep(specs, jobs=1, cache=None)
        parallel = run_sweep(specs, jobs=4, cache=None)

        for spec in specs:
            k = spec.key()
            assert (
                result_bytes(serial[k])
                == result_bytes(parallel[k])
                == result_bytes(legacy[k])
            ), f"results diverge for {spec.describe()}"
