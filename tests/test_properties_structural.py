"""Property-based tests on structural components (no full-system runs)."""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import MshrFile
from repro.config.loader import config_from_dict, dump_config
from repro.config.system import DimensionOrder, Topology
from repro.noc.topology import build_topology
from repro.workloads.gpu import (
    GpuTraceGenerator,
    SharedWavefront,
    gpu_benchmark,
    GPU_BENCHMARK_NAMES,
)


class TestTopologyProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        kind=st.sampled_from(list(Topology)),
        src=st.integers(0, 63),
        dst=st.integers(0, 63),
        order=st.sampled_from(list(DimensionOrder)),
    )
    def test_route_next_always_reaches_destination(self, kind, src, dst, order):
        if src == dst:
            return
        topo = build_topology(kind, 8, 8)
        cur, hops = src, 0
        while cur != dst:
            nxt = topo.route_next(cur, dst, order)
            assert nxt in topo.neighbors(cur)
            cur, hops = nxt, hops + 1
            assert hops <= topo.n
        assert hops >= topo.min_hops(src, dst)

    @settings(max_examples=30, deadline=None)
    @given(kind=st.sampled_from(list(Topology)))
    def test_adjacency_is_symmetric(self, kind):
        topo = build_topology(kind, 8, 8)
        for a in range(topo.n):
            for b in topo.neighbors(a):
                assert a in topo.neighbors(b)

    @settings(max_examples=20, deadline=None)
    @given(
        kind=st.sampled_from(list(Topology)),
        src=st.integers(0, 63),
        dst=st.integers(0, 63),
    )
    def test_min_hops_symmetry(self, kind, src, dst):
        topo = build_topology(kind, 8, 8)
        assert topo.min_hops(src, dst) == topo.min_hops(dst, src)


class TestMshrProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 7)),
            min_size=1,
            max_size=60,
        )
    )
    def test_waiters_conserved(self, ops):
        """Every waiter added is returned by exactly one release."""
        m = MshrFile(64)
        added, released = [], []
        for i, (block, _) in enumerate(ops):
            tag = (block, i)
            if m.has(block):
                m.add_waiter(block, tag)
            else:
                m.allocate(block, tag)
            added.append(tag)
        for block in list(m.outstanding_blocks()):
            released.extend(m.release(block))
        assert sorted(released) == sorted(added)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=50))
    def test_remove_waiters_preserves_the_rest(self, blocks):
        m = MshrFile(64)
        for i, block in enumerate(blocks):
            tag = ("remote" if i % 2 else "local", i)
            if m.has(block):
                m.add_waiter(block, tag)
            else:
                m.allocate(block, tag)
        for block in list(m.outstanding_blocks()):
            before = m.waiters(block)
            removed = m.remove_waiters(block, lambda w: w[0] == "remote")
            remaining = m.waiters(block)
            assert all(w[0] == "remote" for w in removed)
            assert all(w[0] == "local" for w in remaining)
            assert len(removed) + len(remaining) == len(before)


class TestConfigRoundTripProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        width=st.sampled_from([8, 16, 32]),
        vcs=st.integers(1, 4),
        depth=st.integers(1, 8),
        topology=st.sampled_from([t.value for t in Topology]),
    )
    def test_dump_load_identity(self, width, vcs, depth, topology):
        cfg = config_from_dict(
            {
                "noc": {
                    "channel_width_bytes": width,
                    "vcs_per_port": vcs,
                    "vc_depth_flits": depth,
                    "topology": topology,
                }
            }
        )
        assert config_from_dict(dump_config(cfg)) == cfg


class TestGeneratorProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        bench=st.sampled_from(GPU_BENCHMARK_NAMES),
        seed=st.integers(0, 1000),
    )
    def test_streams_deterministic_and_region_bound(self, bench, seed):
        profile = gpu_benchmark(bench)
        mk = lambda: GpuTraceGenerator(
            profile, 3, SharedWavefront(profile), seed=seed
        )
        g1, g2 = mk(), mk()
        for _ in range(50):
            a, b = g1.next_access(), g2.next_access()
            assert a == b
            block, is_write = a
            assert block >= (1 << 32)  # inside a declared region
            if not profile.writes_shared and block < (2 << 32):
                assert not is_write  # shared region is read-only
