"""Tests for the set-associative cache and MSHR file."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import MshrFile, SetAssociativeCache


class TestCacheBasics:
    def test_miss_then_hit(self):
        c = SetAssociativeCache(4, 2)
        assert not c.lookup(0x10)
        c.insert(0x10)
        assert c.lookup(0x10)
        assert (c.hits, c.misses) == (1, 1)

    def test_contains_does_not_touch_counters(self):
        c = SetAssociativeCache(4, 2)
        c.insert(0x10)
        assert c.contains(0x10)
        assert not c.contains(0x11)
        assert c.accesses == 0

    def test_lru_eviction_order(self):
        c = SetAssociativeCache(1, 2)
        c.insert(1)
        c.insert(2)
        assert c.lookup(1)       # 1 is now MRU
        victim = c.insert(3)
        assert victim == 2       # 2 was LRU

    def test_insert_existing_refreshes_lru(self):
        c = SetAssociativeCache(1, 2)
        c.insert(1)
        c.insert(2)
        assert c.insert(1) is None  # refresh, no eviction
        victim = c.insert(3)
        assert victim == 2

    def test_set_mapping_isolates_sets(self):
        c = SetAssociativeCache(2, 1)
        c.insert(0)  # set 0
        c.insert(1)  # set 1
        assert c.contains(0) and c.contains(1)

    def test_invalidate(self):
        c = SetAssociativeCache(4, 2)
        c.insert(5)
        assert c.invalidate(5)
        assert not c.contains(5)
        assert not c.invalidate(5)

    def test_flush_reports_dropped_lines(self):
        c = SetAssociativeCache(4, 2)
        for b in range(6):
            c.insert(b)
        assert c.flush() == 6
        assert c.occupancy() == 0

    def test_metadata_roundtrip(self):
        c = SetAssociativeCache(4, 2)
        c.insert(9, meta=17)
        assert c.meta(9) == 17
        c.set_meta(9, 23)
        assert c.meta(9) == 23

    def test_meta_of_absent_block_is_none(self):
        c = SetAssociativeCache(4, 2)
        assert c.meta(1234) is None

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 2)
        with pytest.raises(ValueError):
            SetAssociativeCache(2, 0)

    def test_hit_rate(self):
        c = SetAssociativeCache(4, 2)
        c.insert(1)
        c.lookup(1)
        c.lookup(2)
        assert c.hit_rate == 0.5


class TestCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, blocks):
        c = SetAssociativeCache(4, 2)
        for b in blocks:
            if not c.lookup(b):
                c.insert(b)
        assert c.occupancy() <= 8
        per_set = {}
        for b in c.blocks():
            per_set.setdefault(b % 4, []).append(b)
        for s, items in per_set.items():
            assert len(items) <= 2
            assert len(set(items)) == len(items), "duplicate tags in a set"

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=100))
    def test_inserted_block_is_always_resident(self, blocks):
        c = SetAssociativeCache(8, 4)
        for b in blocks:
            c.insert(b)
            assert c.contains(b)


class TestMshrFile:
    def test_allocate_and_release(self):
        m = MshrFile(4)
        m.allocate(0x10, "w0")
        assert m.has(0x10)
        assert m.release(0x10) == ["w0"]
        assert not m.has(0x10)

    def test_secondary_miss_merging(self):
        m = MshrFile(4)
        m.allocate(0x10, "w0")
        m.add_waiter(0x10, "w1")
        m.add_waiter(0x10, "w2")
        assert m.release(0x10) == ["w0", "w1", "w2"]
        assert len(m) == 0

    def test_double_allocate_rejected(self):
        m = MshrFile(4)
        m.allocate(1, "a")
        with pytest.raises(ValueError):
            m.allocate(1, "b")

    def test_capacity_enforced(self):
        m = MshrFile(2)
        m.allocate(1, "a")
        m.allocate(2, "b")
        assert m.full
        with pytest.raises(RuntimeError):
            m.allocate(3, "c")

    def test_peak_tracking(self):
        m = MshrFile(4)
        m.allocate(1, "a")
        m.allocate(2, "b")
        m.release(1)
        assert m.peak == 2

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            MshrFile(0)

    def test_waiters_view_is_a_copy(self):
        m = MshrFile(2)
        m.allocate(1, "a")
        view = m.waiters(1)
        view.append("bogus")
        assert m.waiters(1) == ["a"]
