"""Tests for the memory-node endpoint (LLC + controller behind the NIC)."""

from repro.core.delegated_replies import ReplyMeta
from repro.noc import MeshTopology, MessageType, NocFabric, Packet, TrafficClass
from repro.noc.nic import MemoryNodeNic
from repro.sim.memory_node import MemoryNode

from conftest import small_config


class Harness:
    def __init__(self, delegation=False, node=4):
        self.cfg = small_config()
        topo = MeshTopology(4, 4)
        self.fabric = NocFabric(topo, self.cfg.noc, mem_nodes=(node,))
        nic = self.fabric.nic(node)
        assert isinstance(nic, MemoryNodeNic)
        self.mem = MemoryNode(
            node_id=node,
            cfg=self.cfg,
            nic=nic,
            gpu_nodes={8, 9, 10, 11, 12, 13, 14, 15},
            delegation_enabled=delegation,
        )
        self.replies = {}
        for n in range(16):
            if n != node:
                self.fabric.nic(n).handler = (
                    lambda pkt, cyc, _n=n: self.replies.setdefault(_n, []).append(pkt)
                )

    def inject(self, pkt, cycle=0):
        self.mem.on_packet(pkt, cycle)

    def run(self, cycles, start=0):
        for cyc in range(start, start + cycles):
            self.mem.step(cyc)
            self.fabric.step(cyc)

    def replies_at(self, node):
        return self.replies.get(node, [])


def gpu_read(src, block, dnf=False):
    mtype = MessageType.DNF_REQ if dnf else MessageType.READ_REQ
    pkt = Packet(src, 4, mtype, TrafficClass.GPU, 1, block=block)
    return pkt


class TestRequestReplyFlow:
    def test_gpu_read_produces_9_flit_reply(self):
        h = Harness()
        h.inject(gpu_read(9, 0x100))
        h.run(400)
        (reply,) = h.replies_at(9)
        assert reply.mtype is MessageType.READ_REPLY
        assert reply.size_flits == 9
        assert reply.block == 0x100

    def test_cpu_read_produces_5_flit_reply_with_original_block(self):
        h = Harness()
        pkt = Packet(0, 4, MessageType.READ_REQ, TrafficClass.CPU, 1,
                     block=0x201)  # 64 B block id
        h.inject(pkt)
        h.run(400)
        (reply,) = h.replies_at(0)
        assert reply.size_flits == 5
        assert reply.block == 0x201          # requester's view echoed
        assert h.mem.llc.cache.contains(0x100)  # stored at 128 B granularity

    def test_write_produces_single_flit_ack(self):
        h = Harness()
        pkt = Packet(9, 4, MessageType.WRITE_REQ, TrafficClass.GPU, 9,
                     block=0x300)
        h.inject(pkt)
        h.run(200)
        (ack,) = h.replies_at(9)
        assert ack.mtype is MessageType.WRITE_ACK
        assert ack.size_flits == 1


class TestDelegationMetadata:
    def _warm(self, h, requester, block):
        h.inject(gpu_read(requester, block))
        h.run(400)
        h.replies.clear()

    def test_second_reader_gets_delegation_target(self):
        h = Harness(delegation=True)
        self._warm(h, 9, 0x100)
        h.inject(gpu_read(10, 0x100), cycle=400)
        h.run(200, start=400)
        (reply,) = h.replies_at(10)
        assert isinstance(reply.txn, ReplyMeta)
        assert reply.txn.llc_hit
        assert reply.txn.delegate_to == 9

    def test_same_reader_not_delegatable(self):
        h = Harness(delegation=True)
        self._warm(h, 9, 0x100)
        h.inject(gpu_read(9, 0x100), cycle=400)
        h.run(200, start=400)
        (reply,) = h.replies_at(9)
        assert reply.txn.delegate_to is None

    def test_dnf_request_never_redelegated(self):
        # Section IV: the DNF bit tells the LLC to process the request and
        # not forward it again
        h = Harness(delegation=True)
        self._warm(h, 9, 0x100)
        h.inject(gpu_read(10, 0x100, dnf=True), cycle=400)
        h.run(200, start=400)
        (reply,) = h.replies_at(10)
        assert reply.txn.delegate_to is None
        # and the pointer moved to the (original) requester
        assert h.mem.llc.pointer_of(0x100) == 10

    def test_llc_miss_not_delegatable(self):
        h = Harness(delegation=True)
        h.inject(gpu_read(9, 0x500))
        h.run(400)
        (reply,) = h.replies_at(9)
        assert not reply.txn.llc_hit
        assert reply.txn.delegate_to is None

    def test_cpu_requester_pointer_ineligible(self):
        h = Harness(delegation=True)
        self._warm(h, 9, 0x100)
        # CPU reads the sibling 64 B half: no delegation for CPU replies
        pkt = Packet(0, 4, MessageType.READ_REQ, TrafficClass.CPU, 1,
                     block=0x200)  # 128 B block 0x100
        h.inject(pkt, cycle=400)
        h.run(200, start=400)
        (reply,) = h.replies_at(0)
        assert reply.txn.delegate_to is None

    def test_baseline_never_delegates(self):
        h = Harness(delegation=False)
        self._warm(h, 9, 0x100)
        h.inject(gpu_read(10, 0x100), cycle=400)
        h.run(200, start=400)
        (reply,) = h.replies_at(10)
        assert reply.txn.delegate_to is None


class TestBackpressure:
    def test_eject_gate_follows_llc_capacity(self):
        h = Harness()
        probe = Packet(9, 4, MessageType.READ_REQ, TrafficClass.GPU, 1,
                       block=1)
        assert h.mem.nic.can_eject(probe)
        for i in range(h.cfg.llc.input_queue):
            assert h.mem.llc.enqueue(_mk_req(100 + i))
        assert not h.mem.nic.can_eject(probe)

    def test_overflow_queue_preserves_requests(self):
        h = Harness()
        for i in range(h.cfg.llc.input_queue + 4):
            h.inject(gpu_read(9, 0x1000 + i))
        h.run(2000)
        assert len(h.replies_at(9)) == h.cfg.llc.input_queue + 4


def _mk_req(block):
    from repro.cache.llc import LlcRequest
    return LlcRequest(
        requester=9, block=block, is_write=False,
        cls=TrafficClass.GPU, gpu_core=True, orig_block=block,
    )


class TestPointerLifecycle:
    def test_flush_pointers(self):
        h = Harness(delegation=True)
        h.inject(gpu_read(9, 0x10))
        h.run(400)
        assert h.mem.llc.pointer_of(0x10) == 9
        assert h.mem.flush_pointers() == 1
        assert h.mem.llc.pointer_of(0x10) is None

    def test_write_kills_pointer(self):
        h = Harness(delegation=True)
        h.inject(gpu_read(9, 0x10))
        h.run(400)
        h.inject(Packet(10, 4, MessageType.WRITE_REQ, TrafficClass.GPU, 9,
                        block=0x10), cycle=400)
        h.run(200, start=400)
        assert h.mem.llc.pointer_of(0x10) is None
