"""Tests for the Forwarded Request Queue (Section IV, Fig. 8)."""

import pytest

from repro.gpu.frq import ForwardedRequestQueue


class TestFrqBasics:
    def test_fifo_order(self):
        q = ForwardedRequestQueue(4)
        q.push(1, 0x10, 0)
        q.push(2, 0x20, 1)
        assert q.pop() == (1, 0x10, 0)
        assert q.pop() == (2, 0x20, 1)

    def test_capacity_and_rejection(self):
        q = ForwardedRequestQueue(2)
        assert q.push(1, 1, 0)
        assert q.push(2, 2, 0)
        assert q.full
        assert not q.push(3, 3, 0)
        assert q.rejected == 1
        assert len(q) == 2

    def test_peek_does_not_remove(self):
        q = ForwardedRequestQueue(4)
        q.push(1, 0x10, 5)
        assert q.peek() == (1, 0x10, 5)
        assert len(q) == 1

    def test_peek_empty_returns_none(self):
        assert ForwardedRequestQueue(4).peek() is None

    def test_no_merging_of_same_block(self):
        # the paper deliberately does NOT merge FRQ entries (only 4.8%
        # of entries share a block and merging needs NoC multicast)
        q = ForwardedRequestQueue(4)
        q.push(1, 0x10, 0)
        q.push(2, 0x10, 0)
        assert len(q) == 2

    def test_stats_tracking(self):
        q = ForwardedRequestQueue(8)
        for i in range(5):
            q.push(i, i, 0)
        q.pop()
        q.push(9, 9, 1)
        assert q.total_enqueued == 6
        assert q.peak == 5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ForwardedRequestQueue(0)

    def test_paper_default_is_8_entries(self):
        from repro.config import baseline_config
        assert baseline_config().gpu_l1.frq_entries == 8
