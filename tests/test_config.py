"""Tests for the configuration layer (Table I)."""

import dataclasses

import pytest

from repro.config import (
    DimensionOrder,
    Layout,
    Mechanism,
    NocConfig,
    SystemConfig,
    Topology,
    baseline_config,
    delegated_replies_config,
    realistic_probing_config,
)


class TestTable1Defaults:
    def test_node_counts(self):
        cfg = baseline_config()
        assert cfg.n_gpu == 40
        assert cfg.n_cpu == 16
        assert cfg.n_mem == 8
        assert cfg.n_nodes == 64

    def test_mesh_is_8x8(self):
        cfg = baseline_config()
        assert (cfg.mesh_width, cfg.mesh_height) == (8, 8)
        assert cfg.noc.topology is Topology.MESH

    def test_gpu_l1_geometry(self):
        l1 = baseline_config().gpu_l1
        assert l1.size_bytes == 48 * 1024
        assert l1.assoc == 4
        assert l1.line_bytes == 128
        assert l1.num_sets == 96

    def test_cpu_l1_geometry(self):
        l1 = baseline_config().cpu_l1
        assert l1.size_bytes == 32 * 1024
        assert l1.line_bytes == 64
        assert l1.num_sets == 128

    def test_llc_geometry(self):
        llc = baseline_config().llc
        assert llc.slice_size_bytes == 1024 * 1024
        assert llc.assoc == 16
        assert llc.sets_per_slice == 512

    def test_gddr5_timings(self):
        d = baseline_config().dram
        assert (d.t_cl, d.t_rp, d.t_rc, d.t_ras) == (12, 12, 40, 28)
        assert (d.t_rcd, d.t_rrd, d.t_ccd, d.t_wr) == (12, 6, 2, 12)
        assert d.banks == 16

    def test_noc_parameters(self):
        noc = baseline_config().noc
        assert noc.channel_width_bytes == 16
        assert noc.vcs_per_port == 2
        assert noc.vc_depth_flits == 4
        assert noc.router_pipeline_cycles == 4
        assert noc.cpu_priority

    def test_baseline_cdr_orders(self):
        noc = baseline_config().noc
        assert noc.request_order is DimensionOrder.YX
        assert noc.reply_order is DimensionOrder.XY

    def test_warps_per_core(self):
        assert baseline_config().gpu_core.warps == 48


class TestFlitSizing:
    """Section II: a reply is a header flit plus 8 data flits for 128 B."""

    def test_gpu_reply_is_9_flits(self):
        noc = NocConfig()
        assert noc.flits_for(128) == 9

    def test_cpu_reply_is_5_flits(self):
        assert NocConfig().flits_for(64) == 5

    def test_request_is_1_flit(self):
        assert NocConfig().flits_for(0) == 1

    def test_wider_channel_fewer_flits(self):
        noc = NocConfig(channel_width_bytes=32)
        assert noc.flits_for(128) == 5

    def test_narrow_channel_more_flits(self):
        noc = NocConfig(channel_width_bytes=8)
        assert noc.flits_for(128) == 17

    def test_partial_flit_rounds_up(self):
        assert NocConfig().flits_for(100) == 1 + 7


class TestFactories:
    def test_baseline_mechanism(self):
        assert baseline_config().mechanism is Mechanism.BASELINE

    def test_dr_factory_enables_delegation(self):
        cfg = delegated_replies_config()
        assert cfg.mechanism is Mechanism.DELEGATED_REPLIES
        assert cfg.delegation.enabled

    def test_rp_factory_enables_probing(self):
        cfg = realistic_probing_config()
        assert cfg.mechanism is Mechanism.REALISTIC_PROBING
        assert cfg.probing.enabled

    def test_factory_overrides(self):
        cfg = baseline_config(layout=Layout.EDGE)
        assert cfg.layout is Layout.EDGE


class TestCopySemantics:
    def test_copy_is_deep_for_nested_configs(self):
        a = baseline_config()
        b = a.copy()
        b.noc.channel_width_bytes = 8
        assert a.noc.channel_width_bytes == 16

    def test_copy_override_unknown_field_raises(self):
        with pytest.raises(AttributeError):
            baseline_config().copy(not_a_field=1)

    def test_invalid_node_mix_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(n_gpu=40, n_cpu=16, n_mem=9)

    def test_config_is_dataclass(self):
        assert dataclasses.is_dataclass(SystemConfig)


class TestStableSerialisation:
    """`to_dict`/`config_hash`: the sweep cache key's foundation."""

    def test_to_dict_is_json_compatible(self):
        import json

        d = delegated_replies_config().to_dict()
        assert d["mechanism"] == "delegated_replies"
        assert d["delegation"]["enabled"] is True
        json.dumps(d)  # no enums or dataclasses left behind

    def test_round_trips_through_loader(self):
        from repro.config import config_from_dict

        for factory in (baseline_config, delegated_replies_config,
                        realistic_probing_config):
            cfg = factory()
            again = config_from_dict(cfg.to_dict())
            assert again == cfg
            assert again.config_hash() == cfg.config_hash()

    def test_hash_is_order_independent(self):
        from repro.config import config_from_dict

        a = config_from_dict(
            {"mechanism": "delegated_replies",
             "noc": {"channel_width_bytes": 8, "vcs_per_port": 4}}
        )
        b = config_from_dict(
            {"noc": {"vcs_per_port": 4, "channel_width_bytes": 8},
             "mechanism": "delegated_replies"}
        )
        assert a.config_hash() == b.config_hash()

    def test_hash_tracks_every_layer(self):
        base = baseline_config()
        top = base.copy(layout=Layout.EDGE)
        nested = baseline_config()
        nested.dram.banks = 8
        hashes = {base.config_hash(), top.config_hash(),
                  nested.config_hash(),
                  delegated_replies_config().config_hash()}
        assert len(hashes) == 4

    def test_hash_is_stable_across_calls(self):
        cfg = baseline_config()
        assert cfg.config_hash() == cfg.config_hash()
        assert len(cfg.config_hash()) == 64
