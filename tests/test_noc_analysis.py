"""Tests for the NoC utilization analysis utilities."""

from repro.config.system import NocConfig
from repro.noc import MeshTopology, MessageType, NocFabric, Packet, TrafficClass
from repro.noc.analysis import (
    hottest_links,
    link_loads,
    link_utilization_summary,
    node_injection_loads,
    render_mesh_heatmap,
)
from repro.noc.topology import CrossbarTopology
from repro.sim.simulator import build_system

import sys
sys.path.insert(0, "tests")
from conftest import small_config


def loaded_fabric(cycles=300):
    fab = NocFabric(MeshTopology(4, 4), NocConfig(), mem_nodes=(5,))
    for nic in fab.nics:
        nic.handler = lambda pkt, cyc: None
    for cyc in range(cycles):
        pkt = Packet(0, 3, MessageType.READ_REPLY, TrafficClass.GPU, 9,
                     created=cyc)
        fab.nic(0).try_send(pkt, cyc)
        fab.step(cyc)
    return fab


class TestLinkLoads:
    def test_every_directed_link_reported(self):
        fab = loaded_fabric(10)
        loads = link_loads(fab.reply_net)
        assert len(loads) == 2 * len(fab.topology.links())

    def test_utilization_bounded(self):
        fab = loaded_fabric()
        for load in link_loads(fab.reply_net):
            assert 0.0 <= load.utilization <= 1.0

    def test_hot_path_identified(self):
        fab = loaded_fabric()
        hot = hottest_links(fab.reply_net, n=3)
        # the stream 0 -> 3 runs along the top row
        hot_pairs = {(l.src, l.dst) for l in hot}
        assert hot_pairs <= {(0, 1), (1, 2), (2, 3)}
        assert hot[0].utilization >= hot[-1].utilization

    def test_idle_network_summary(self):
        fab = NocFabric(MeshTopology(4, 4), NocConfig(), mem_nodes=())
        s = link_utilization_summary(fab.reply_net)
        assert s["mean"] == 0.0 and s["links"] > 0

    def test_summary_statistics(self):
        # one hot path among many idle links: p95 may be zero, the mean
        # and max must not be
        fab = loaded_fabric()
        s = link_utilization_summary(fab.reply_net)
        assert s["max"] >= s["p95"]
        assert s["max"] >= s["mean"] > 0


class TestInjectionLoads:
    def test_source_node_dominates(self):
        fab = loaded_fabric()
        loads = dict(node_injection_loads(fab.reply_net))
        assert loads[0] == max(loads.values())
        assert loads[0] > 0.5


class TestHeatmap:
    def test_renders_grid_with_roles(self):
        system = build_system(small_config(), "HS", "vips")
        system.run(300)
        art = render_mesh_heatmap(system.fabric.reply_net, system.layout)
        lines = art.splitlines()
        assert len(lines) == 4 + 1  # 4 rows + legend
        joined = "".join(lines[:-1])
        assert "M" in joined and "C" in joined and "G" in joined

    def test_non_mesh_degrades_to_table(self):
        # no 2-D arrangement to draw: the heatmap degrades to a
        # per-router load table instead of raising
        fab = NocFabric(CrossbarTopology(16), NocConfig(), mem_nodes=())
        out = render_mesh_heatmap(fab.reply_net)
        assert "CrossbarTopology" in out
        assert "per-router load table" in out
        lines = out.splitlines()
        # header lines + one row per router + peak legend
        assert len(lines) == 2 + 16 + 1
        assert any(line.lstrip().startswith("15 ") for line in lines)

    def test_non_mesh_table_reflects_traffic(self):
        fab = NocFabric(CrossbarTopology(8), NocConfig(), mem_nodes=())
        for nic in fab.nics:
            nic.handler = lambda pkt, cyc: None
        for cyc in range(50):
            fab.nic(0).try_send(
                Packet(0, 5, MessageType.READ_REPLY, TrafficClass.GPU, 9,
                       created=cyc),
                cyc,
            )
            fab.step(cyc)
        out = render_mesh_heatmap(fab.reply_net)
        assert "#" in out  # some router saw flits
