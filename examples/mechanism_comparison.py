#!/usr/bin/env python
"""Mechanism shoot-out: baseline vs Realistic Probing vs Delegated Replies.

Reproduces the core of the paper's evaluation on a benchmark subset:
per-benchmark GPU speedups (Fig. 10), the request-count inflation that
sinks RP's energy efficiency (Section VII), and the area bill of each
alternative (Sections III-B / IV).

Run:  python examples/mechanism_comparison.py
"""

from repro.analysis.area import delegated_replies_overhead, noc_area
from repro.analysis.energy import energy_report
from repro.config import (
    baseline_config,
    delegated_replies_config,
    realistic_probing_config,
)
from repro import run_simulation

BENCHMARKS = ["HS", "2DCON", "SC", "NN"]
CPU = "bodytrack"
CYCLES = 2_500
WARMUP = 1_800


def main() -> None:
    print(f"{'bench':6s} {'RP speedup':>10s} {'DR speedup':>10s} "
          f"{'RP req x':>9s} {'DR deleg%':>9s}")
    for bench in BENCHMARKS:
        base = run_simulation(baseline_config(), bench, CPU,
                              cycles=CYCLES, warmup=WARMUP)
        rp = run_simulation(realistic_probing_config(), bench, CPU,
                            cycles=CYCLES, warmup=WARMUP)
        dr = run_simulation(delegated_replies_config(), bench, CPU,
                            cycles=CYCLES, warmup=WARMUP)
        print(
            f"{bench:6s} {rp.gpu_ipc / base.gpu_ipc:>10.2f} "
            f"{dr.gpu_ipc / base.gpu_ipc:>10.2f} "
            f"{rp.noc_request_packets / base.noc_request_packets:>9.1f} "
            f"{dr.delegated_fraction:>9.0%}"
        )

    print("\nHardware cost (from the DSENT/CACTI-style models):")
    cfg = baseline_config()
    base_area = noc_area(cfg).total
    cfg2 = baseline_config()
    cfg2.noc.bandwidth_factor = 2.0
    double_area = noc_area(cfg2).total
    dr_cost = delegated_replies_overhead(cfg)
    print(f"  baseline NoC:           {base_area:6.2f} mm2")
    print(f"  2x-bandwidth NoC:       {double_area:6.2f} mm2 "
          f"({double_area / base_area:.1f}x)")
    print(f"  Delegated Replies:      {dr_cost['total']:6.3f} mm2 "
          f"({dr_cost['total'] / (double_area - base_area):.0%} of the "
          f"2x NoC's extra area)")


if __name__ == "__main__":
    main()
