#!/usr/bin/env python
"""Visualise where the network is hot — and what delegation moves.

Runs the baseline and Delegated Replies side by side and prints an ASCII
heatmap of per-router traffic on the reply network plus the hottest
links.  On the baseline, the memory column (M) glows: every reply
squeezes through those routers.  Under Delegated Replies a large share of
the reply traffic becomes GPU-to-GPU and the heat spreads over the GPU
region — the paper's "many-to-few becomes many-to-many" in one picture.

Run:  python examples/noc_heatmap.py
"""

from repro import baseline_config, delegated_replies_config
from repro.noc.analysis import (
    hottest_links,
    link_utilization_summary,
    render_mesh_heatmap,
)
from repro.sim.simulator import build_system

CYCLES = 2_500


def show(title: str, cfg) -> None:
    system = build_system(cfg, "HS", "bodytrack")
    system.run(CYCLES)
    net = system.fabric.reply_net
    print(f"--- {title} (reply network, {CYCLES} cycles) ---")
    print(render_mesh_heatmap(net, system.layout))
    summary = link_utilization_summary(net)
    print(f"link utilization: mean={summary['mean']:.2f} "
          f"max={summary['max']:.2f}")
    print("hottest links (src->dst @ util):")
    for load in hottest_links(net, n=5):
        print(f"  {load.src:2d}->{load.dst:2d} @ {load.utilization:.2f}")
    blocking = sum(
        nic.blocking_rate for nic in system.fabric.nics
        if hasattr(nic, "blocking_rate")
    ) / len(system.memory_nodes)
    print(f"memory-node blocking rate: {blocking:.2f}\n")


def main() -> None:
    show("baseline", baseline_config())
    show("Delegated Replies", delegated_replies_config())


if __name__ == "__main__":
    main()
