#!/usr/bin/env python
"""Design-space exploration: performance per mm2 across NoC designs.

Uses the public API the way an architect would: sweep topology and
bandwidth, simulate GPU throughput, price each design with the area model,
and print the cost-performance frontier — making the paper's headline
trade-off concrete (doubling NoC bandwidth works but costs 2.5x area;
Delegated Replies buys similar relief for 0.172 mm2).

Run:  python examples/design_space.py
"""

from repro import run_simulation
from repro.analysis.area import delegated_replies_overhead, noc_area
from repro.config import Topology, baseline_config, delegated_replies_config

BENCH, CPU = "HS", "bodytrack"
CYCLES, WARMUP = 2_000, 1_500


def simulate(cfg):
    return run_simulation(cfg, BENCH, CPU, cycles=CYCLES, warmup=WARMUP)


def main() -> None:
    designs = []
    for topo in (Topology.MESH, Topology.FLATTENED_BUTTERFLY):
        for bw in (1.0, 2.0):
            cfg = baseline_config()
            cfg.noc.topology = topo
            cfg.noc.bandwidth_factor = bw
            label = f"{topo.value}-{bw:g}x"
            designs.append((label, cfg, 0.0))
    dr_cfg = delegated_replies_config()
    dr_extra = delegated_replies_overhead(dr_cfg)["total"]
    designs.append(("mesh-1x + Delegated Replies", dr_cfg, dr_extra))

    baseline_ipc = None
    print(f"{'design':30s} {'area mm2':>9s} {'GPU IPC':>8s} "
          f"{'speedup':>8s} {'perf/mm2':>9s}")
    for label, cfg, extra in designs:
        area = noc_area(cfg).total + extra
        res = simulate(cfg)
        if baseline_ipc is None:
            baseline_ipc = res.gpu_ipc
        speedup = res.gpu_ipc / baseline_ipc
        print(f"{label:30s} {area:>9.2f} {res.gpu_ipc:>8.3f} "
              f"{speedup:>8.2f} {speedup / area:>9.3f}")

    print("\nDelegated Replies dominates the frontier: near-2x-bandwidth "
          "performance at ~baseline area.")


if __name__ == "__main__":
    main()
