#!/usr/bin/env python
"""Quickstart: Delegated Replies vs the baseline on one workload.

Builds the paper's 64-node CPU-GPU system (Table I), runs the HS +
bodytrack workload mix with and without Delegated Replies, and prints the
headline metrics: GPU IPC, delivered data bandwidth, memory-node blocking
rate and CPU network latency.

Run:  python examples/quickstart.py
"""

from repro import baseline_config, delegated_replies_config, run_simulation

CYCLES = 3_000
WARMUP = 2_000


def main() -> None:
    print("Simulating baseline (this takes ~10s)...")
    base = run_simulation(
        baseline_config(), "HS", "bodytrack", cycles=CYCLES, warmup=WARMUP
    )
    print("Simulating Delegated Replies...")
    dr = run_simulation(
        delegated_replies_config(), "HS", "bodytrack",
        cycles=CYCLES, warmup=WARMUP,
    )

    print()
    print(f"{'metric':34s} {'baseline':>10s} {'DR':>10s}")
    rows = [
        ("GPU IPC (per core)", base.gpu_ipc, dr.gpu_ipc),
        ("GPU data rate (flits/cyc/core)", base.gpu_data_rate, dr.gpu_data_rate),
        ("memory-node blocking rate", base.mem_blocking_rate, dr.mem_blocking_rate),
        ("CPU round-trip latency (cyc)", base.cpu_latency_avg, dr.cpu_latency_avg),
        ("CPU IPC (per core)", base.cpu_ipc, dr.cpu_ipc),
    ]
    for name, b, d in rows:
        print(f"{name:34s} {b:10.3f} {d:10.3f}")

    print()
    print(f"GPU speedup:            {dr.gpu_ipc / base.gpu_ipc:.2f}x "
          f"(paper: 1.68x for HS)")
    print(f"CPU latency reduction:  "
          f"{(1 - dr.cpu_latency_avg / base.cpu_latency_avg) * 100:.0f}%")
    print(f"Delegated fraction of L1 misses: {dr.delegated_fraction:.0%} "
          f"(remote hit rate {dr.remote_hit_fraction:.0%})")


if __name__ == "__main__":
    main()
