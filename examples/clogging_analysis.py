#!/usr/bin/env python
"""Network-clogging anatomy: the paper's Section II motivation.

Demonstrates *why* heterogeneous architectures clog: many bandwidth-hungry
GPU cores overwhelm the few memory nodes' reply links, and the resulting
back-pressure spills onto latency-sensitive CPU traffic.  The script
sweeps GPU memory intensity (the compute gap between memory operations)
and reports, at each point:

* reply-link utilisation of the memory nodes (the bottleneck),
* memory-node blocking rate (full injection buffers, Fig. 3),
* GPU IPC (bandwidth-starved), and
* CPU round-trip latency (collateral damage).

Run:  python examples/clogging_analysis.py
"""

import dataclasses

from repro import baseline_config, run_simulation
from repro.workloads import gpu_benchmark

CYCLES = 2_000
WARMUP = 1_500


def main() -> None:
    base_profile = gpu_benchmark("MM")
    print("Sweeping GPU memory intensity (smaller gap = more intense)\n")
    print(f"{'compute gap':>11s} {'reply util':>10s} {'blocking':>9s} "
          f"{'data rate':>9s} {'CPU latency':>11s}")
    for gap in (4000, 1500, 500, 100, 3):
        profile = dataclasses.replace(base_profile, compute_gap=gap)
        res = run_simulation(
            baseline_config(), profile, "vips", cycles=CYCLES, warmup=WARMUP
        )
        print(
            f"{gap:>11d} {res.mem_reply_link_utilization:>10.2f} "
            f"{res.mem_blocking_rate:>9.2f} {res.gpu_data_rate:>9.3f} "
            f"{res.cpu_latency_avg:>11.0f}"
        )
    print(
        "\nAs intensity rises the reply links saturate, the memory nodes"
        "\nblock, and CPU latency climbs even though CPU traffic has"
        "\npriority - the paper's network-clogging phenomenon."
    )


if __name__ == "__main__":
    main()
