#!/usr/bin/env bash
# CI check: the fault-injection layer recovers everything it breaks.
# A chaos run on the paper's 8x8 mesh (delegated replies, the mechanism
# with the most reply-path moving parts) injects flit drops/corruption
# on every memory reply link plus a mid-run interior link outage; the
# harness must report nonzero retransmits and ZERO lost transactions,
# and the post-run quiesce must drain the network completely (the CLI
# exits 1 otherwise).  The caller wraps this script in `timeout 60`.
set -euo pipefail

OUT=/tmp/chaos-smoke.txt

# plan round-trip: emit a chaos plan, replay it from the file
python -m repro.faults plan --intensity 0.1 --seed 1 \
  --cycles 1200 --warmup 400 --out /tmp/chaos-plan.json
python -m repro.faults run --gpu SC --mechanism dr \
  --cycles 1200 --warmup 400 --plan /tmp/chaos-plan.json \
  | tee "$OUT"

# the plan's LinkDown + FlitDrop events actually landed
grep -Eq "links_downed: [1-9]" "$OUT"
grep -Eq "drops: [1-9]" "$OUT"
# recovery did real work and lost nothing
grep -Eq "retransmits: [1-9]" "$OUT"
grep -Eq "lost: 0$" "$OUT"
grep -q "OK: every injected fault recovered" "$OUT"

# determinism: the same plan twice gives identical fault counters
python -m repro.faults run --gpu SC --mechanism dr \
  --cycles 1200 --warmup 400 --plan /tmp/chaos-plan.json > /tmp/chaos-2.txt
diff "$OUT" /tmp/chaos-2.txt
echo "chaos smoke OK"
