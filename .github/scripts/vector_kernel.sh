#!/usr/bin/env bash
# CI gate: the vector (struct-of-arrays) backend must stay bit-identical
# to the object kernel's synchronous oracle AND meaningfully faster.
#
# Two stages:
#   1. The bit-identity matrix (tests/test_vector_kernel.py): object vs
#      vector counters, histograms and delegation stats on mesh4x4 /
#      mesh8x8 x {baseline, DR} x {light, saturated} plus the
#      randomized-config property case and the full-system runs
#      (fault-free and loss-plan chaos).
#   2. A saturated 16x16 probe, timed back-to-back in one process on
#      both backends: vector must deliver >= 3x the object kernel's
#      cycles/sec (typical margin is ~7x, so 3x only trips on a real
#      regression, not runner noise).
# Identity failures are deterministic bugs (no retry); the speed stage
# gets one retry to ride out a noisy shared runner.
# The caller wraps this script in `timeout 90`.
set -euo pipefail

python -m pytest tests/test_vector_kernel.py -x -q

speed_once() {
  python - <<'EOF'
import sys
from repro.bench.harness import run_bench

CYCLES = 500
vec = run_bench("mesh16x16_sat_vec", cycles=CYCLES, backend="vector")
obj = run_bench("mesh16x16_sat_vec", cycles=CYCLES, backend="object")
ratio = vec.cycles_per_sec / obj.cycles_per_sec
print(f"mesh16x16 saturated probe: object {obj.cycles_per_sec:.0f} cyc/s, "
      f"vector {vec.cycles_per_sec:.0f} cyc/s ({ratio:.2f}x)")
if ratio < 3.0:
    print(f"FAIL: vector/object ratio {ratio:.2f}x < 3x")
    sys.exit(1)
print("vector kernel speed OK")
EOF
}

if speed_once; then
  exit 0
fi
echo "--- ratio under 3x; retrying once (noisy runner guard) ---"
speed_once
