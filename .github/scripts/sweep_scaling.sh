#!/usr/bin/env bash
# CI check: the sweep fabric's parallel scaling must never regress again.
#
# Runs the sweep-throughput bench (quick mode, 2 workers) and fails if
# the fabric's measured parallel_speedup drops below 1.2x.  The speedup
# is measured on calibrated fixed-duration probe jobs (see
# repro.bench.harness.run_sweep_throughput), so the gate is stable on
# single-core shared runners while still catching every fabric
# regression the old cold-pool runner exhibited (0.893x, slower than
# serial).  The caller wraps this script in `timeout 90`.
set -euo pipefail

OUT=/tmp/BENCH_sweep_scaling.json
rm -f "$OUT"

python -m repro.bench --quick --configs sweep_throughput --jobs 2 \
  --out "$OUT"

python - "$OUT" <<'PY'
import json
import sys

cfg = json.load(open(sys.argv[1]))["configs"]["sweep_throughput"]
speedup = cfg["parallel_speedup"]
scaling = cfg["scaling"]
print(f"fabric scaling: {scaling} (headline @2 workers: {speedup}x, "
      f"sim_speedup: {cfg['sim_speedup']}x)")
assert speedup >= 1.2, (
    f"sweep fabric parallel_speedup regressed: {speedup} < 1.2 "
    f"(scaling: {scaling})"
)
print(f"ok: parallel_speedup {speedup} >= 1.2 with 2 workers")
PY
