#!/usr/bin/env bash
# CI check: a traced simulation produces a trace the telemetry CLI can
# report on, including per-class latency percentiles and at least one
# detected clogging episode on the paper's high-GPU-load scenario
# (SC on the 8x8 mesh saturates the memory nodes' reply paths).
# The caller wraps this script in `timeout 60`.
set -euo pipefail

TRACE=/tmp/telemetry-smoke.bin
rm -f "$TRACE"

python -m repro.telemetry trace --out "$TRACE" --format bin \
  --gpu SC --mechanism baseline --cycles 1500 --warmup 500 \
  --probe-interval 100

echo "--- report ---"
python -m repro.telemetry report "$TRACE" | tee /tmp/telemetry-report.txt
echo "--- events ---"
python -m repro.telemetry events "$TRACE" | tee /tmp/telemetry-events.txt
echo "--- blame ---"
python -m repro.telemetry blame "$TRACE" | tee /tmp/telemetry-blame.txt

# per-class latency percentiles are present for both networks
grep -q "latency percentiles" /tmp/telemetry-report.txt
grep -q "reply *GPU" /tmp/telemetry-report.txt
grep -q "request *CPU" /tmp/telemetry-report.txt
# the clogging detector fired on the canonical clogging workload
grep -q "clogging episode(s)" /tmp/telemetry-events.txt
# stall attribution produced the blame matrix and the heatmap
grep -q "per-router stall cycles" /tmp/telemetry-blame.txt
grep -q "mesh stall heatmap" /tmp/telemetry-blame.txt
# at least one episode's blame chain walk named a memory node's full
# reply injection buffer as the root cause (the paper's Fig. 3 loop)
awk '/episode root causes/,0' /tmp/telemetry-blame.txt | grep -q "reply_buffer"
echo "telemetry smoke OK"
