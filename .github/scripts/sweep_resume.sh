#!/usr/bin/env bash
# CI check: a mini-sweep killed mid-run resumes from the on-disk cache.
#
# Starts a 9-job mechanism sweep (3 GPU benchmarks x 3 mechanisms) on two
# workers, interrupts it once a few jobs have landed in the cache, then
# re-runs with --resume and asserts the second run reused cached jobs and
# completed everything.  The caller wraps this script in `timeout 90`.
set -euo pipefail

BENCHES="HS,SC,3DCON"
CACHE=/tmp/sweep-cache
MANIFEST=/tmp/sweep-manifest.json
rm -rf "$CACHE" "$MANIFEST"

python -m repro.sweep run --jobs 2 --benchmarks "$BENCHES" \
  --cache-dir "$CACHE" &
pid=$!
sleep 12
# SIGTERM, not SIGINT: background jobs of a non-interactive shell ignore
# SIGINT; the sweep CLI maps SIGTERM onto the same graceful interrupt
kill "$pid" 2>/dev/null || true
wait "$pid" || true

echo "--- after interrupt ---"
python -m repro.sweep status --benchmarks "$BENCHES" --cache-dir "$CACHE"

echo "--- resume ---"
python -m repro.sweep run --jobs 2 --resume --benchmarks "$BENCHES" \
  --cache-dir "$CACHE" --manifest "$MANIFEST"

python - "$MANIFEST" <<'PY'
import json
import sys

totals = json.load(open(sys.argv[1]))["totals"]
assert totals["failed"] == 0, totals
assert totals["cached"] > 0, f"resume reused no cached jobs: {totals}"
assert totals["ok"] + totals["cached"] == 9, totals
print(f"resume reused {totals['cached']} cached job(s), "
      f"simulated {totals['ok']} fresh")
PY
