#!/usr/bin/env bash
# CI gate: light-mode telemetry must stay cheap enough to leave on.
#
# Runs the telemetry_overhead bench (mesh8x8_dr, identical seeded
# traffic, off vs light vs full, warm-up round then min of per-round
# paired ratios over interleaved repeats) and fails if
#   * light-mode overhead_pct >= 10    (the always-on budget), or
#   * the off and light runs are not bit-identical (telemetry observing
#     a run must never change it).
# A noisy shared runner can blow a single timing; one retry keeps the
# gate strict on the code without gating on the machine's mood.
# The caller wraps this script in `timeout 90`.
set -euo pipefail

run_once() {
  python - <<'EOF'
import json, sys
from repro.bench.harness import run_telemetry_overhead

res = run_telemetry_overhead(cycles=1200, repeats=5)
extra = res.extra
print(json.dumps(extra, indent=2))
if not extra["bit_identical"]:
    print("FAIL: light-mode run is not bit-identical with telemetry off")
    sys.exit(2)
if extra["overhead_pct"] >= 10:
    print(f"FAIL: light-mode overhead {extra['overhead_pct']}% >= 10%")
    sys.exit(1)
print(f"telemetry overhead OK: light {extra['overhead_pct']}%, "
      f"full {extra['full_overhead_pct']}%")
EOF
}

if run_once; then
  exit 0
fi
status=$?
if [ "$status" -eq 2 ]; then
  # bit-identity is deterministic: no retry, a failure is a real bug
  exit 2
fi
echo "--- overhead above budget; retrying once (noisy runner guard) ---"
run_once
