#!/usr/bin/env bash
# CI check: the analytical surrogate stays within its accuracy and
# latency budgets on the mesh4x4 smoke grid (8 short simulations, both
# surrogate and simulator sides run from scratch in well under the 90s
# wrapper timeout).  `python -m repro.model validate` exits nonzero when
# the median relative error on cpu_latency_avg exceeds 25% or a
# prediction takes more than 50ms, so the budget gate is the exit code.
set -euo pipefail

export REPRO_SWEEP_CACHE="${REPRO_SWEEP_CACHE:-/tmp/model-validate-cache}"
rm -rf "$REPRO_SWEEP_CACHE"

python -m repro.model validate --grid mesh4x4 --jobs 2 \
  --out /tmp/model-validate.json | tee /tmp/model-validate.txt

# the report carries every budget input it was judged on
grep -q '"passed": true' /tmp/model-validate.json
grep -q "PASS" /tmp/model-validate.txt

# the screening preview runs on the same grid without simulating
python -m repro.model screen --grid mesh4x4 --format json \
  > /tmp/model-screen.json
grep -q '"kept"' /tmp/model-screen.json
echo "model validate smoke OK"
