#!/usr/bin/env bash
# CI check: the explore subsystem finds a better frontier than chance.
# A tiny surrogate-only NSGA-II search over the mesh4x4 demo space must
# (a) produce a non-empty Pareto frontier, (b) reproduce itself exactly
# under the same --seed, and (c) beat uniform random sampling at the
# same evaluation budget when both frontiers are scored by hypervolume
# at a shared (union-of-evaluations) reference point.  Surrogate-only
# keeps the whole thing analytical; the caller wraps this script in
# `timeout 90`.  The budget/population/seed triple is pinned: the search
# is a pure function of it, so this gate is deterministic.
set -euo pipefail

SPACE=mesh4x4
BUDGET=32
POP=12
SEED=0

python -m repro.explore run --space "$SPACE" --surrogate-only \
  --algo nsga2 --budget "$BUDGET" --population "$POP" --seed "$SEED" \
  --out /tmp/explore-nsga2.json --format json > /dev/null
python -m repro.explore run --space "$SPACE" --surrogate-only \
  --algo random --budget "$BUDGET" --population "$POP" --seed "$SEED" \
  --out /tmp/explore-random.json --format json > /dev/null

# same seed, same manifest (modulo wall time): the search is reproducible
python -m repro.explore run --space "$SPACE" --surrogate-only \
  --algo nsga2 --budget "$BUDGET" --population "$POP" --seed "$SEED" \
  --out /tmp/explore-nsga2-again.json --format json > /dev/null
python - <<'EOF'
import json

def load(path):
    with open(path) as fh:
        data = json.load(fh)
    data.pop("wall_time_s")
    return data

a = load("/tmp/explore-nsga2.json")
b = load("/tmp/explore-nsga2-again.json")
assert a == b, "same seed must reproduce the identical manifest"

n = len(a["frontier"]["points"])
assert n > 0, "nsga2 frontier is empty"
print(f"frontier: {n} points, {a['counts']['evaluated']} evaluated")
EOF

# nsga2 must beat random at equal budget under a shared reference
python -m repro.explore frontier /tmp/explore-nsga2.json \
  --compare /tmp/explore-random.json --format json > /tmp/explore-cmp.json
python - <<'EOF'
import json

with open("/tmp/explore-cmp.json") as fh:
    cmp = json.load(fh)["compare"]
hv, other = cmp["hypervolume"], cmp["other_hypervolume"]
print(f"hypervolume: nsga2 {hv:.6g} vs random {other:.6g}")
assert cmp["winner"] == "/tmp/explore-nsga2.json", (
    f"nsga2 ({hv}) did not beat random ({other}) at equal budget"
)
EOF
echo "explore smoke OK"
