"""Per-packet trace sinks: the Netrace-style exchange format.

A *trace* is an append-only stream of event records.  Packet lifecycle
events (``inject``, ``vc_alloc``, ``head``, ``deliver``, ``delegate``)
carry a fixed tuple of packet fields; aggregate records (``meta``,
``win``, ``hist``, ``clog``, ``summary``) carry free-form payloads.  Two
backends implement the same :class:`TraceSink` protocol:

* :class:`JsonlTraceSink` — one JSON object per line; greppable,
  diffable, loads into pandas with one call.
* :class:`BinaryTraceSink` — packet events as 42-byte packed structs
  behind a magic header; aggregate records as length-prefixed JSON
  blobs.  ~6x smaller than JSONL for packet-dominated traces.

:func:`read_trace` auto-detects the backend from the file's magic and
yields identical dicts for both — plus a third format, the ``RDMP``
flight-recorder ring dumps of :mod:`repro.telemetry.ring` — so every
consumer (the CLI, tests, notebooks) is backend-agnostic.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Optional, Union

#: packet lifecycle event codes (binary tag byte; JSONL uses the names).
PACKET_EVENTS = ("inject", "vc_alloc", "head", "deliver", "delegate")
_EVENT_CODE = {name: i for i, name in enumerate(PACKET_EVENTS)}

#: binary file magic + format version
MAGIC = b"RTEL"
VERSION = 1

#: tag byte marking a length-prefixed JSON aggregate record
_JSON_TAG = 0xFE

#: packet-event payload: cycle, pid, src, dst, block, mtype, cls, net,
#: flits, value (latency on deliver, delegate target on delegate, -1 else)
_PACKET_STRUCT = struct.Struct("<QQiiqBBBHi")


class TraceSink:
    """Protocol for trace backends (duck-typed; subclassing optional)."""

    def packet_event(self, event: str, cycle: int, pkt, value: int = -1) -> None:
        raise NotImplementedError

    def record(self, payload: Dict[str, Any]) -> None:
        """Write one aggregate (non-packet) record."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


def _packet_dict(event: str, cycle: int, pkt, value: int) -> Dict[str, Any]:
    d = {
        "ev": event,
        "cycle": cycle,
        "pid": pkt.pid,
        "src": pkt.src,
        "dst": pkt.dst,
        "block": pkt.block,
        "mtype": pkt.mtype.name,
        "cls": pkt.cls.name,
        "net": "request" if int(pkt.net) == 0 else "reply",
        "flits": pkt.size_flits,
    }
    if value >= 0:
        d["value"] = value
    return d


class JsonlTraceSink(TraceSink):
    """One JSON object per line; human-greppable."""

    def __init__(self, path: Union[str, Path, IO[str]]) -> None:
        if hasattr(path, "write"):
            self._fh: IO[str] = path  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(path, "w")
            self._owns = True

    def packet_event(self, event: str, cycle: int, pkt, value: int = -1) -> None:
        self._fh.write(json.dumps(_packet_dict(event, cycle, pkt, value)))
        self._fh.write("\n")

    def record(self, payload: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(payload))
        self._fh.write("\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class BinaryTraceSink(TraceSink):
    """Compact packed-struct backend for packet-dominated traces."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._fh = open(path, "wb")
        self._fh.write(MAGIC + struct.pack("<H", VERSION))

    def packet_event(self, event: str, cycle: int, pkt, value: int = -1) -> None:
        self._fh.write(bytes((_EVENT_CODE[event],)))
        self._fh.write(
            _PACKET_STRUCT.pack(
                cycle,
                pkt.pid,
                pkt.src,
                pkt.dst,
                pkt.block,
                int(pkt.mtype),
                int(pkt.cls),
                int(pkt.net),
                pkt.size_flits,
                value,
            )
        )

    def record(self, payload: Dict[str, Any]) -> None:
        blob = json.dumps(payload).encode("utf-8")
        self._fh.write(bytes((_JSON_TAG,)) + struct.pack("<I", len(blob)) + blob)

    def close(self) -> None:
        self._fh.flush()
        self._fh.close()


class NullTraceSink(TraceSink):
    """Discards everything (histograms/probes only, no per-packet I/O)."""

    def packet_event(self, event: str, cycle: int, pkt, value: int = -1) -> None:
        return None

    def record(self, payload: Dict[str, Any]) -> None:
        return None

    def close(self) -> None:
        return None


def open_sink(path: Union[str, Path], fmt: str = "jsonl") -> TraceSink:
    """Open a trace sink of the requested format (``jsonl`` or ``bin``)."""
    if fmt == "jsonl":
        return JsonlTraceSink(path)
    if fmt == "bin":
        return BinaryTraceSink(path)
    raise ValueError(f"unknown trace format {fmt!r}; choose jsonl or bin")


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------

# lazy imports keep this module usable without the noc package (pure readers)
_MTYPE_NAMES: Optional[List[str]] = None
_CLS_NAMES: Optional[List[str]] = None


def _enum_names() -> None:
    global _MTYPE_NAMES, _CLS_NAMES
    if _MTYPE_NAMES is None:
        from repro.noc.packet import MessageType, TrafficClass

        _MTYPE_NAMES = [m.name for m in MessageType]
        _CLS_NAMES = [c.name for c in TrafficClass]


def _read_binary(fh: IO[bytes]) -> Iterator[Dict[str, Any]]:
    _enum_names()
    size = _PACKET_STRUCT.size
    while True:
        tag = fh.read(1)
        if not tag:
            return
        if tag[0] == _JSON_TAG:
            (length,) = struct.unpack("<I", fh.read(4))
            yield json.loads(fh.read(length).decode("utf-8"))
            continue
        buf = fh.read(size)
        if len(buf) < size:
            return  # truncated tail record (interrupted run): stop cleanly
        cycle, pid, src, dst, block, mtype, cls, net, flits, value = (
            _PACKET_STRUCT.unpack(buf)
        )
        d = {
            "ev": PACKET_EVENTS[tag[0]],
            "cycle": cycle,
            "pid": pid,
            "src": src,
            "dst": dst,
            "block": block,
            "mtype": _MTYPE_NAMES[mtype],  # type: ignore[index]
            "cls": _CLS_NAMES[cls],  # type: ignore[index]
            "net": "request" if net == 0 else "reply",
            "flits": flits,
        }
        if value >= 0:
            d["value"] = value
        yield d


def read_trace(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield every record of a trace file, whatever its backend.

    Auto-detects the three on-disk formats from the file's magic: ``RTEL``
    packed binary traces, ``RDMP`` ring/flight-recorder dumps and (the
    fallback) JSONL.  Unknown schema versions raise ``ValueError`` with a
    one-line diagnosis — the CLI surfaces it as an ``error:`` line.
    """
    # the dump reader is imported lazily, mirroring the enum-name imports:
    # plain-JSONL consumers stay importable without the ring module
    from repro.telemetry.ring import DUMP_MAGIC, read_dump

    path = Path(path)
    with open(path, "rb") as probe:
        head = probe.read(max(len(MAGIC), len(DUMP_MAGIC)))
    if head[: len(MAGIC)] == MAGIC:
        with open(path, "rb") as fh:
            fh.read(len(MAGIC))
            (version,) = struct.unpack("<H", fh.read(2))
            if version != VERSION:
                raise ValueError(
                    f"RTEL trace version v{version} is not supported "
                    f"(this reader speaks v{VERSION})"
                )
            yield from _read_binary(fh)
        return
    if head[: len(DUMP_MAGIC)] == DUMP_MAGIC:
        from repro.telemetry.collector import TRACE_SCHEMA

        yield from read_dump(path, max_schema=TRACE_SCHEMA)
        return
    with open(path) as fh:
        first = True
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if first:
                first = False
                if record.get("rec") == "meta":
                    from repro.telemetry.collector import TRACE_SCHEMA

                    schema = record.get("schema", 1)
                    if isinstance(schema, int) and schema > TRACE_SCHEMA:
                        raise ValueError(
                            f"trace schema v{schema} is newer than this "
                            f"reader (supports <= v{TRACE_SCHEMA})"
                        )
            yield record
