"""Ring-buffer event pipeline: the telemetry hot path.

Per-event dict/record construction is what made always-on telemetry
cost ~45% on saturated meshes.  The hooks now append one fixed-width
raw tuple per event into a bounded per-network ring and everything
record-shaped (sampling, JSON/struct serialisation, bit-packing)
happens in deferred batches at window/finalize boundaries, off the
per-event path.

The ring is a ``collections.deque(maxlen=capacity)``: appends and
evictions are single C calls, which measures ~6x cheaper per event than
bit-packing into a preallocated ``array('q')`` in CPython — the packing
arithmetic itself (six shifts and ors per event) dominated the packed
variant, so packing is deferred to dump time where it amortises against
file I/O.  The bounded deque still gives the ring contract: the most
recent ``capacity`` events per network are always retained.

That retention is the **flight recorder**: when the clogging detector
opens an episode (or a fault fires) the collector dumps the retained
events as a compact ``RDMP`` file — bit-packed five-word records, the
layout below — that :func:`repro.telemetry.trace.read_trace` decodes
like any other trace.

In-memory event tuples are ``EVENT_FIELDS`` wide::

    (code, mtype, cls, net, flits, src, dst, cycle, pid, block, value)

``RDMP`` packs each into five 64-bit words (63 bits used in the first;
the sign bit stays clear so signed i64 never overflows)::

    w0  bits  0-3   event code (index into PACKET_EVENTS)
        bits  4-8   message type
        bit   9     traffic class
        bit   10    network kind (0 request / 1 reply)
        bits 11-22  packet size in flits
        bits 23-42  source node
        bits 43-62  destination node
    w1  cycle
    w2  packet id
    w3  block address
    w4  value (-1 = none; latency on deliver, target on delegate)
"""

from __future__ import annotations

import json
import struct
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Tuple, Union

#: fields per in-memory ring event tuple.
EVENT_FIELDS = 11

#: 64-bit words per packed ``RDMP`` dump event.
STRIDE = 5

#: ``RDMP`` flight-/ring-dump file magic; the u16 after it carries the
#: trace schema version (``repro.telemetry.collector.TRACE_SCHEMA``).
DUMP_MAGIC = b"RDMP"

_DUMP_HEAD = struct.Struct("<HI")  # schema version, meta-blob length
_DUMP_COUNT = struct.Struct("<I")  # packed event count
_EVENT_WORDS = struct.Struct("<5q")

# w0 field offsets/masks (see module docstring)
_MTYPE_SHIFT = 4
_CLS_SHIFT = 9
_NET_SHIFT = 10
_FLITS_SHIFT = 11
_SRC_SHIFT = 23
_DST_SHIFT = 43
_CODE_MASK = 0xF
_MTYPE_MASK = 0x1F
_FLITS_MASK = 0xFFF
_NODE_MASK = 0xFFFFF


def pack_w0(code: int, mtype: int, cls: int, net: int, flits: int,
            src: int, dst: int) -> int:
    """Pack the small event fields into the first dump word."""
    return (
        code
        | (mtype << _MTYPE_SHIFT)
        | (cls << _CLS_SHIFT)
        | (net << _NET_SHIFT)
        | (flits << _FLITS_SHIFT)
        | (src << _SRC_SHIFT)
        | (dst << _DST_SHIFT)
    )


def unpack_w0(w0: int):
    """``(code, mtype, cls, net, flits, src, dst)`` from a packed word."""
    return (
        w0 & _CODE_MASK,
        (w0 >> _MTYPE_SHIFT) & _MTYPE_MASK,
        (w0 >> _CLS_SHIFT) & 1,
        (w0 >> _NET_SHIFT) & 1,
        (w0 >> _FLITS_SHIFT) & _FLITS_MASK,
        (w0 >> _SRC_SHIFT) & _NODE_MASK,
        (w0 >> _DST_SHIFT) & _NODE_MASK,
    )


class EventRing:
    """Bounded ring of fixed-width telemetry event tuples.

    Hooks append to :attr:`events` directly (``ring.events.append(ev)``
    — one C call; a wrapper method per event would double the cost).
    The deque silently retains the most recent ``capacity`` events,
    which is exactly the flight-recorder contract.

    A *tracing* collector additionally maintains :attr:`head` (events
    ever appended) and :attr:`drained` (events already flushed to the
    sink) and flushes via :meth:`take_pending` before ``head - drained``
    reaches ``capacity``, so trace mode never loses an event to ring
    eviction.  The non-tracing path touches neither counter.
    """

    __slots__ = ("capacity", "events", "head", "drained")

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = max(2, int(capacity))
        self.events: deque = deque(maxlen=self.capacity)
        self.head = 0
        self.drained = 0

    def append(self, ev: Tuple) -> None:
        """Append one event tuple (hot paths inline ``events.append``)."""
        self.events.append(ev)

    def __len__(self) -> int:
        return len(self.events)

    def snapshot(self) -> List[Tuple]:
        """Every retained event, oldest first (the flight-recorder view)."""
        return list(self.events)

    def take_pending(self) -> List[Tuple]:
        """Sink-undrained events, oldest first; marks them drained.

        Valid on the tracing path only (where ``head`` is maintained and
        the drain cadence guarantees no undrained event was evicted): the
        pending events are the last ``head - drained`` entries.  Events
        stay in the deque for the flight recorder.
        """
        n = self.head - self.drained
        if n <= 0:
            return []
        self.drained = self.head
        evs = list(self.events)
        return evs[-n:] if n < len(evs) else evs


def merge_events(*batches: Iterable[Tuple]) -> List[Tuple]:
    """Merge per-ring event batches into one cycle-ordered stream.

    Each batch is already cycle-sorted (appends are monotone in cycle),
    so a stable sort on the cycle field recovers a deterministic global
    order: ties keep batch order (request-net events before reply-net).
    """
    if len(batches) == 1:
        return list(batches[0])
    merged: List[Tuple] = []
    for batch in batches:
        merged.extend(batch)
    merged.sort(key=lambda ev: ev[7])
    return merged


def write_dump(
    path: Union[str, Path],
    meta: Dict[str, Any],
    events: Iterable[Tuple],
    schema: int,
) -> None:
    """Write a ring dump: magic, schema, JSON meta blob, packed events.

    ``events`` are in-memory ring tuples (:data:`EVENT_FIELDS` wide);
    each is bit-packed into :data:`STRIDE` words here, off the hot path.
    """
    events = list(events)
    blob = json.dumps(meta).encode("utf-8")
    with open(path, "wb") as fh:
        fh.write(DUMP_MAGIC)
        fh.write(_DUMP_HEAD.pack(schema, len(blob)))
        fh.write(blob)
        fh.write(_DUMP_COUNT.pack(len(events)))
        pack = _EVENT_WORDS.pack
        for code, mtype, cls, net, flits, src, dst, cycle, pid, block, value in events:
            fh.write(
                pack(
                    pack_w0(code, mtype, cls, net, flits, src, dst),
                    cycle, pid, block, value,
                )
            )


def read_dump(path: Union[str, Path], max_schema: int) -> Iterator[Dict]:
    """Yield trace-shaped records from an ``RDMP`` ring dump.

    The first record is the embedded ``meta`` blob (with ``rec="meta"``
    and the file's ``schema``); packed events follow as the same dicts
    :func:`repro.telemetry.trace.read_trace` yields for ``RTEL`` traces.
    Raises ``ValueError`` on schema versions newer than ``max_schema``.
    """
    from repro.telemetry.trace import PACKET_EVENTS

    mtype_names, cls_names = _enum_names()
    with open(path, "rb") as fh:
        magic = fh.read(len(DUMP_MAGIC))
        if magic != DUMP_MAGIC:
            raise ValueError(f"not a ring dump (bad magic {magic!r})")
        schema, blob_len = _DUMP_HEAD.unpack(fh.read(_DUMP_HEAD.size))
        if schema > max_schema:
            raise ValueError(
                f"ring dump schema v{schema} is newer than this reader "
                f"(supports <= v{max_schema})"
            )
        meta = json.loads(fh.read(blob_len).decode("utf-8"))
        meta.setdefault("rec", "meta")
        meta.setdefault("schema", schema)
        yield meta
        (count,) = _DUMP_COUNT.unpack(fh.read(_DUMP_COUNT.size))
        size = _EVENT_WORDS.size
        for _ in range(count):
            buf = fh.read(size)
            if len(buf) < size:
                return  # truncated tail (interrupted dump): stop cleanly
            w0, cycle, pid, block, value = _EVENT_WORDS.unpack(buf)
            code, mtype, cls, net, flits, src, dst = unpack_w0(w0)
            d = {
                "ev": PACKET_EVENTS[code],
                "cycle": cycle,
                "pid": pid,
                "src": src,
                "dst": dst,
                "block": block,
                "mtype": mtype_names[mtype],
                "cls": cls_names[cls],
                "net": "request" if net == 0 else "reply",
                "flits": flits,
            }
            if value >= 0:
                d["value"] = value
            yield d


def _enum_names():
    from repro.noc.packet import MessageType, TrafficClass

    return [m.name for m in MessageType], [c.name for c in TrafficClass]
