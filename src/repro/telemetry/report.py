"""Render reports from telemetry trace files.

Pure consumers of the :func:`repro.telemetry.trace.read_trace` record
stream — no simulator imports, so traces can be inspected anywhere.  The
loader is streaming: packet events are folded into counters/histograms as
they are read, so multi-million-event traces never materialise in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.blame import STALL_CLASSES
from repro.telemetry.hist import LogHistogram
from repro.telemetry.trace import PACKET_EVENTS, read_trace

#: histogram keys are (net, cls) name pairs, e.g. ("reply", "CPU").
HistKey = Tuple[str, str]


@dataclass
class TraceSummary:
    """Everything the renderers need, folded out of one trace pass."""

    path: str = ""
    meta: Dict = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    hists: Dict[HistKey, LogHistogram] = field(default_factory=dict)
    windows: List[Dict] = field(default_factory=list)
    episodes: List[Dict] = field(default_factory=list)
    #: per-(net, router, port, class) stall-attribution records.
    stalls: List[Dict] = field(default_factory=list)
    summary: Optional[Dict] = None
    #: total records read — 0 distinguishes an empty/unreadable trace.
    records: int = 0


def load_summary(path: Union[str, Path]) -> TraceSummary:
    """Fold a trace file into a :class:`TraceSummary`.

    Full-population ``hist`` records (written at finalize) take precedence
    over histograms rebuilt from (possibly sampled) ``deliver`` events;
    the rebuilt ones only back-fill truncated traces.
    """
    out = TraceSummary(path=str(path))
    out.events = {name: 0 for name in PACKET_EVENTS}
    sampled: Dict[HistKey, LogHistogram] = {}
    exact: Dict[HistKey, LogHistogram] = {}
    for record in read_trace(path):
        out.records += 1
        kind = record.get("rec")
        if kind is None:  # packet event
            event = record["ev"]
            out.events[event] = out.events.get(event, 0) + 1
            if event == "deliver" and "value" in record:
                key = (record["net"], record["cls"])
                hist = sampled.get(key)
                if hist is None:
                    hist = sampled[key] = LogHistogram()
                hist.record(record["value"])
        elif kind == "win":
            out.windows.append(record)
        elif kind == "clog":
            out.episodes.append(record)
        elif kind == "stall":
            out.stalls.append(record)
        elif kind == "hist":
            exact[(record["net"], record["cls"])] = LogHistogram.from_dict(record)
        elif kind == "meta":
            out.meta = record
        elif kind == "summary":
            out.summary = record
    out.hists = dict(sampled)
    out.hists.update(exact)
    return out


# ---------------------------------------------------------------------------
# machine payloads (--format json)
# ---------------------------------------------------------------------------


def _hist_rows(
    s: TraceSummary,
    net: Optional[str] = None,
    cls: Optional[str] = None,
) -> List[Dict]:
    rows = []
    for (hnet, hcls), hist in sorted(s.hists.items()):
        if net is not None and hnet != net:
            continue
        if cls is not None and hcls != cls:
            continue
        rows.append({"net": hnet, "cls": hcls, **hist.summary()})
    return rows


def _fold_stalls(s: TraceSummary):
    """Aggregate stall records per (net, router) and memory node.

    Shared between the human blame table and the JSON payload so both
    views always report the same numbers.
    """
    routers: Dict[Tuple[str, int], Dict[str, int]] = {}
    mem_rows: Dict[int, List[int]] = {}
    for rec in s.stalls:
        net, rid = rec["net"], rec["router"]
        if net == "mem":
            row = mem_rows.setdefault(rid, [0, 0])
            row[min(1, rec["port"])] += sum(rec["classes"].values())
            continue
        agg = routers.setdefault((net, rid), {})
        for name, n in rec["classes"].items():
            agg[name] = agg.get(name, 0) + n
    return routers, mem_rows


def payload_report(s: TraceSummary) -> Dict:
    """The ``report`` view as a JSON-able dict."""
    payload = {
        "path": s.path,
        "meta": dict(s.meta),
        "records": s.records,
        "events": {k: v for k, v in s.events.items() if v},
        "latency": _hist_rows(s),
        "windows": len(s.windows),
        "episodes": len(s.episodes),
    }
    if s.episodes:
        payload["worst_episode"] = max(
            s.episodes, key=lambda e: e.get("severity", 0.0)
        )
    return payload


def payload_hist(
    s: TraceSummary,
    net: Optional[str] = None,
    cls: Optional[str] = None,
) -> Dict:
    """The ``hist`` view: per-(net, class) summaries plus full buckets."""
    rows = []
    for (hnet, hcls), hist in sorted(s.hists.items()):
        if net is not None and hnet != net:
            continue
        if cls is not None and hcls != cls:
            continue
        rows.append({
            "net": hnet,
            "cls": hcls,
            "summary": hist.summary(),
            "hist": hist.to_dict(),
        })
    return {"path": s.path, "histograms": rows}


def payload_timeline(s: TraceSummary) -> Dict:
    """The ``timeline`` view: the raw per-window records."""
    return {"path": s.path, "windows": list(s.windows)}


def payload_events(s: TraceSummary) -> Dict:
    """The ``events`` view: the clogging-episode records."""
    episodes = sorted(s.episodes, key=lambda e: (e["start"], e["node"]))
    return {"path": s.path, "episodes": episodes}


def payload_blame(s: TraceSummary) -> Dict:
    """The ``blame`` view: per-router stall totals, memory pressure and
    attributed episodes."""
    routers, mem_rows = _fold_stalls(s)
    router_rows = [
        {"net": net, "router": rid, "total": sum(agg.values()),
         "classes": dict(agg)}
        for (net, rid), agg in sorted(
            routers.items(), key=lambda kv: (-sum(kv[1].values()), kv[0])
        )
    ]
    mem = [
        {"node": node, "inject_blocked": blocked, "drain_refused": refused}
        for node, (blocked, refused) in sorted(mem_rows.items())
    ]
    return {
        "path": s.path,
        "stall_attribution": s.meta.get("stall_attribution", True),
        "routers": router_rows,
        "mem": mem,
        "episodes": sorted(s.episodes, key=lambda e: (e["start"], e["node"])),
    }


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------


def _bar(value: float, width: int = 12) -> str:
    filled = min(width, max(0, round(value * width)))
    return "#" * filled + "." * (width - filled)


def render_report(s: TraceSummary) -> str:
    """The headline view: meta, event totals, per-class latency table."""
    lines = [f"telemetry report: {s.path}"]
    if s.meta:
        lines.append(
            f"  {s.meta.get('nodes', '?')} nodes, mem nodes "
            f"{s.meta.get('mem_nodes', [])}, sample rate "
            f"{s.meta.get('sample_rate', 1.0)}, probe interval "
            f"{s.meta.get('probe_interval', '?')}"
        )
    counts = ", ".join(f"{k}={v}" for k, v in s.events.items() if v)
    lines.append(f"  events: {counts or 'none'}")
    lines.append("")
    lines.append("  latency percentiles (cycles) per network / class:")
    header = (
        f"  {'net':<8} {'cls':<4} {'count':>8} {'mean':>8} "
        f"{'p50':>7} {'p95':>7} {'p99':>7} {'p99.9':>8} {'max':>7}"
    )
    lines.append(header)
    if not s.hists:
        lines.append("  (no delivered packets recorded)")
    for (net, cls), hist in sorted(s.hists.items()):
        info = hist.summary()
        lines.append(
            f"  {net:<8} {cls:<4} {info['count']:>8} {info['mean']:>8.1f} "
            f"{info['p50']:>7.0f} {info['p95']:>7.0f} {info['p99']:>7.0f} "
            f"{info['p99.9']:>8.0f} {info['max']:>7}"
        )
    lines.append("")
    lines.append(
        f"  windows: {len(s.windows)}   clogging episodes: {len(s.episodes)}"
    )
    if s.episodes:
        worst = max(s.episodes, key=lambda e: e.get("severity", 0.0))
        lines.append(
            f"  worst episode: node {worst['node']} cycles "
            f"{worst['start']}-{worst['end']} severity {worst['severity']}"
        )
    return "\n".join(lines)


def render_hist(
    s: TraceSummary,
    net: Optional[str] = None,
    cls: Optional[str] = None,
) -> str:
    """ASCII latency histograms, optionally filtered by net/class."""
    lines: List[str] = []
    for (hnet, hcls), hist in sorted(s.hists.items()):
        if net is not None and hnet != net:
            continue
        if cls is not None and hcls != cls:
            continue
        info = hist.summary()
        lines.append(
            f"{hnet}/{hcls}: n={info['count']} mean={info['mean']} "
            f"p50={info['p50']:.0f} p99={info['p99']:.0f}"
        )
        lines.append(hist.ascii())
        lines.append("")
    return "\n".join(lines).rstrip() or "(no matching histograms)"


def render_timeline(s: TraceSummary) -> str:
    """Per-window link-occupancy / injection-rate timeline."""
    if not s.windows:
        return "(no window records in trace)"
    net_names = sorted(s.windows[0].get("nets", {}))
    header = f"{'cycle':>8}  " + "".join(
        f"{name + ' util':>22}  " for name in net_names
    ) + f"{'inj/cyc':>8}  {'mem occ(max)':>18}"
    lines = [header]
    for win in s.windows:
        cells = [f"{win['cycle']:>8}  "]
        for name in net_names:
            util = win["nets"].get(name, {}).get("link_util", 0.0)
            cells.append(f"{util:>7.3f} [{_bar(util)}]  ")
        cells.append(f"{win.get('inj_rate', 0.0):>8.3f}  ")
        mem = win.get("mem", {})
        if mem:
            occ = max(entry.get("occ", 0.0) for entry in mem.values())
            cells.append(f"{occ:>4.2f} [{_bar(occ)}]")
        lines.append("".join(cells).rstrip())
    return "\n".join(lines)


def _chain_text(chain: List[Dict]) -> str:
    """One blame chain as ``node(class) -> ... -> node[class]``."""
    parts = []
    for i, hop in enumerate(chain):
        node, klass = hop.get("node", "?"), hop.get("class", "?")
        if i == len(chain) - 1:
            parts.append(f"{node}[{klass}]")
        else:
            parts.append(f"{node}({klass})")
    return " -> ".join(parts)


def render_blame(s: TraceSummary) -> str:
    """Stall-attribution view: per-router blame matrix, mesh heatmap,
    memory-side pressure counters and the episode root-cause table."""
    if not s.stalls:
        if s.meta.get("stall_attribution") is False:
            return "stall attribution was disabled for this trace"
        return "no stall records in trace (nothing ever blocked)"
    # fold per (net, router) over ports and traffic classes
    routers, mem_rows = _fold_stalls(s)
    node_total: Dict[int, int] = {}
    for (_net, rid), agg in routers.items():
        node_total[rid] = node_total.get(rid, 0) + sum(agg.values())
    lines = [f"blame report: {s.path}", ""]
    cols = [c for c in STALL_CLASSES
            if any(c in agg for agg in routers.values())]
    lines.append("  per-router stall cycles (blocked head-worm cycles "
                 "by class; top 12 by total):")
    header = f"  {'net':<8} {'router':>6} {'total':>9}"
    for c in cols:
        header += f" {c:>13}"
    lines.append(header)
    ranked = sorted(
        routers.items(), key=lambda kv: -sum(kv[1].values())
    )
    for (net, rid), agg in ranked[:12]:
        row = f"  {net:<8} {rid:>6} {sum(agg.values()):>9}"
        for c in cols:
            row += f" {agg.get(c, 0):>13}"
        lines.append(row)
    if len(ranked) > 12:
        lines.append(f"  ... {len(ranked) - 12} more routers with stalls")
    mesh = s.meta.get("mesh")
    if mesh and node_total:
        width, height = mesh
        mem_nodes = set(s.meta.get("mem_nodes", []))
        values = [float(node_total.get(n, 0)) for n in range(width * height)]
        roles = ["M" if n in mem_nodes else "G" for n in range(width * height)]
        peak = int(max(values))
        lines.append("")
        lines.append("  mesh stall heatmap (shade ~ total stall cycles; "
                     f"peak router = {peak}):")
        # imported lazily: the reader CLI stays trace-only until a mesh
        # view is actually drawn
        from repro.noc.analysis import render_value_heatmap

        for hline in render_value_heatmap(
            values, width, height, roles=roles
        ).splitlines():
            lines.append("  " + hline)
    if mem_rows:
        lines.append("")
        lines.append("  memory-node reply-buffer pressure (cycles):")
        lines.append(f"  {'node':>6} {'inject-blocked':>15} {'drain-refused':>14}")
        for node in sorted(mem_rows):
            blocked, refused = mem_rows[node]
            lines.append(f"  {node:>6} {blocked:>15} {refused:>14}")
    lines.append("")
    attributed = [e for e in s.episodes if "root_cause" in e]
    if not s.episodes:
        lines.append("  no clogging episodes detected")
    else:
        lines.append(f"  episode root causes ({len(attributed)}/"
                     f"{len(s.episodes)} episodes attributed):")
        lines.append(
            f"  {'node':>6} {'start':>9} {'end':>9} {'severity':>9} "
            f"{'root cause':>12} {'chains':>7} {'depth':>6}  victims"
        )
        best_sample = None
        best_depth = 0
        for e in sorted(s.episodes, key=lambda e: (e["start"], e["node"])):
            rc = e.get("root_cause")
            if rc is None:
                lines.append(
                    f"  {e['node']:>6} {e['start']:>9} {e['end']:>9} "
                    f"{e['severity']:>9.3f} {'-':>12} {'-':>7} {'-':>6}"
                )
                continue
            victims = ", ".join(
                f"{k}:{v}" for k, v in sorted(rc.get("victims", {}).items())
            )
            lines.append(
                f"  {e['node']:>6} {e['start']:>9} {e['end']:>9} "
                f"{e['severity']:>9.3f} {rc['class']:>12} "
                f"{rc.get('chains', 0):>7} {rc.get('max_depth', 0):>6}  "
                f"{victims}"
            )
            sample = rc.get("sample")
            if sample and rc.get("max_depth", 0) >= best_depth:
                best_depth = rc.get("max_depth", 0)
                best_sample = sample
        if best_sample:
            lines.append("")
            lines.append("  deepest blame chain (victim first, culprit last):")
            lines.append("    " + _chain_text(best_sample))
    return "\n".join(lines)


def render_events(s: TraceSummary) -> str:
    """Clogging-episode table."""
    if not s.episodes:
        return "no clogging episodes detected"
    lines = [
        f"{len(s.episodes)} clogging episode(s)",
        f"{'node':>6} {'start':>10} {'end':>10} {'windows':>8} "
        f"{'severity':>9} {'peak':>7}",
    ]
    for episode in sorted(
        s.episodes, key=lambda e: (e["start"], e["node"])
    ):
        lines.append(
            f"{episode['node']:>6} {episode['start']:>10} "
            f"{episode['end']:>10} {episode['windows']:>8} "
            f"{episode['severity']:>9.3f} {episode['peak']:>7.3f}"
        )
    return "\n".join(lines)
