"""Render reports from telemetry trace files.

Pure consumers of the :func:`repro.telemetry.trace.read_trace` record
stream — no simulator imports, so traces can be inspected anywhere.  The
loader is streaming: packet events are folded into counters/histograms as
they are read, so multi-million-event traces never materialise in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.hist import LogHistogram
from repro.telemetry.trace import PACKET_EVENTS, read_trace

#: histogram keys are (net, cls) name pairs, e.g. ("reply", "CPU").
HistKey = Tuple[str, str]


@dataclass
class TraceSummary:
    """Everything the renderers need, folded out of one trace pass."""

    path: str = ""
    meta: Dict = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    hists: Dict[HistKey, LogHistogram] = field(default_factory=dict)
    windows: List[Dict] = field(default_factory=list)
    episodes: List[Dict] = field(default_factory=list)
    summary: Optional[Dict] = None


def load_summary(path: Union[str, Path]) -> TraceSummary:
    """Fold a trace file into a :class:`TraceSummary`.

    Full-population ``hist`` records (written at finalize) take precedence
    over histograms rebuilt from (possibly sampled) ``deliver`` events;
    the rebuilt ones only back-fill truncated traces.
    """
    out = TraceSummary(path=str(path))
    out.events = {name: 0 for name in PACKET_EVENTS}
    sampled: Dict[HistKey, LogHistogram] = {}
    exact: Dict[HistKey, LogHistogram] = {}
    for record in read_trace(path):
        kind = record.get("rec")
        if kind is None:  # packet event
            event = record["ev"]
            out.events[event] = out.events.get(event, 0) + 1
            if event == "deliver" and "value" in record:
                key = (record["net"], record["cls"])
                hist = sampled.get(key)
                if hist is None:
                    hist = sampled[key] = LogHistogram()
                hist.record(record["value"])
        elif kind == "win":
            out.windows.append(record)
        elif kind == "clog":
            out.episodes.append(record)
        elif kind == "hist":
            exact[(record["net"], record["cls"])] = LogHistogram.from_dict(record)
        elif kind == "meta":
            out.meta = record
        elif kind == "summary":
            out.summary = record
    out.hists = dict(sampled)
    out.hists.update(exact)
    return out


# ---------------------------------------------------------------------------
# renderers
# ---------------------------------------------------------------------------


def _bar(value: float, width: int = 12) -> str:
    filled = min(width, max(0, round(value * width)))
    return "#" * filled + "." * (width - filled)


def render_report(s: TraceSummary) -> str:
    """The headline view: meta, event totals, per-class latency table."""
    lines = [f"telemetry report: {s.path}"]
    if s.meta:
        lines.append(
            f"  {s.meta.get('nodes', '?')} nodes, mem nodes "
            f"{s.meta.get('mem_nodes', [])}, sample rate "
            f"{s.meta.get('sample_rate', 1.0)}, probe interval "
            f"{s.meta.get('probe_interval', '?')}"
        )
    counts = ", ".join(f"{k}={v}" for k, v in s.events.items() if v)
    lines.append(f"  events: {counts or 'none'}")
    lines.append("")
    lines.append("  latency percentiles (cycles) per network / class:")
    header = (
        f"  {'net':<8} {'cls':<4} {'count':>8} {'mean':>8} "
        f"{'p50':>7} {'p95':>7} {'p99':>7} {'p99.9':>8} {'max':>7}"
    )
    lines.append(header)
    if not s.hists:
        lines.append("  (no delivered packets recorded)")
    for (net, cls), hist in sorted(s.hists.items()):
        info = hist.summary()
        lines.append(
            f"  {net:<8} {cls:<4} {info['count']:>8} {info['mean']:>8.1f} "
            f"{info['p50']:>7.0f} {info['p95']:>7.0f} {info['p99']:>7.0f} "
            f"{info['p99.9']:>8.0f} {info['max']:>7}"
        )
    lines.append("")
    lines.append(
        f"  windows: {len(s.windows)}   clogging episodes: {len(s.episodes)}"
    )
    if s.episodes:
        worst = max(s.episodes, key=lambda e: e.get("severity", 0.0))
        lines.append(
            f"  worst episode: node {worst['node']} cycles "
            f"{worst['start']}-{worst['end']} severity {worst['severity']}"
        )
    return "\n".join(lines)


def render_hist(
    s: TraceSummary,
    net: Optional[str] = None,
    cls: Optional[str] = None,
) -> str:
    """ASCII latency histograms, optionally filtered by net/class."""
    lines: List[str] = []
    for (hnet, hcls), hist in sorted(s.hists.items()):
        if net is not None and hnet != net:
            continue
        if cls is not None and hcls != cls:
            continue
        info = hist.summary()
        lines.append(
            f"{hnet}/{hcls}: n={info['count']} mean={info['mean']} "
            f"p50={info['p50']:.0f} p99={info['p99']:.0f}"
        )
        lines.append(hist.ascii())
        lines.append("")
    return "\n".join(lines).rstrip() or "(no matching histograms)"


def render_timeline(s: TraceSummary) -> str:
    """Per-window link-occupancy / injection-rate timeline."""
    if not s.windows:
        return "(no window records in trace)"
    net_names = sorted(s.windows[0].get("nets", {}))
    header = f"{'cycle':>8}  " + "".join(
        f"{name + ' util':>22}  " for name in net_names
    ) + f"{'inj/cyc':>8}  {'mem occ(max)':>18}"
    lines = [header]
    for win in s.windows:
        cells = [f"{win['cycle']:>8}  "]
        for name in net_names:
            util = win["nets"].get(name, {}).get("link_util", 0.0)
            cells.append(f"{util:>7.3f} [{_bar(util)}]  ")
        cells.append(f"{win.get('inj_rate', 0.0):>8.3f}  ")
        mem = win.get("mem", {})
        if mem:
            occ = max(entry.get("occ", 0.0) for entry in mem.values())
            cells.append(f"{occ:>4.2f} [{_bar(occ)}]")
        lines.append("".join(cells).rstrip())
    return "\n".join(lines)


def render_events(s: TraceSummary) -> str:
    """Clogging-episode table."""
    if not s.episodes:
        return "no clogging episodes detected"
    lines = [
        f"{len(s.episodes)} clogging episode(s)",
        f"{'node':>6} {'start':>10} {'end':>10} {'windows':>8} "
        f"{'severity':>9} {'peak':>7}",
    ]
    for episode in sorted(
        s.episodes, key=lambda e: (e["start"], e["node"])
    ):
        lines.append(
            f"{episode['node']:>6} {episode['start']:>10} "
            f"{episode['end']:>10} {episode['windows']:>8} "
            f"{episode['severity']:>9.3f} {episode['peak']:>7.3f}"
        )
    return "\n".join(lines)
