"""CLI entry point: ``python -m repro.telemetry``.

Subcommands::

    trace     run a traced simulation and write a trace file
    report    headline view: events, per-class latency percentiles, episodes
    hist      ASCII latency histograms (filter with --net / --cls)
    timeline  per-window link-occupancy / injection-rate timeline
    events    clogging-episode table
    blame     stall-attribution matrix, mesh heatmap, episode root causes

Example — produce and inspect a trace of the paper's clogging scenario::

    python -m repro.telemetry trace --out /tmp/sc.jsonl --gpu SC
    python -m repro.telemetry report /tmp/sc.jsonl
    python -m repro.telemetry events /tmp/sc.jsonl
"""

from __future__ import annotations

import argparse
import struct
import sys

from repro.cli import (
    add_format_option,
    add_out_option,
    add_seed_option,
    add_window_options,
    emit,
)
from repro.telemetry.report import (
    load_summary,
    payload_blame,
    payload_events,
    payload_hist,
    payload_report,
    payload_timeline,
    render_blame,
    render_events,
    render_hist,
    render_report,
    render_timeline,
)


def _add_trace_parser(sub) -> None:
    p = sub.add_parser(
        "trace", help="run a traced simulation and write a trace file"
    )
    add_out_option(p, required=True, help="trace output path")
    p.add_argument("--format", choices=("jsonl", "bin"), default="jsonl")
    p.add_argument("--gpu", default="SC",
                   help="GPU benchmark (default SC, the clogging-heavy one)")
    p.add_argument("--cpu", default=None,
                   help="CPU co-runner (default: the benchmark's first "
                        "Table II mix)")
    p.add_argument("--mechanism", choices=("baseline", "rp", "dr"),
                   default="baseline")
    add_window_options(p, cycles=2000, warmup=1000)
    add_seed_option(p)
    p.add_argument("--sample-rate", type=float, default=1.0)
    p.add_argument("--probe-interval", type=int, default=200)
    p.add_argument("--clog-threshold", type=float, default=0.9)
    p.add_argument("--clog-min-windows", type=int, default=2)
    p.add_argument("--mode", choices=("light", "full"), default="full",
                   help="instrumentation tier; the CLI defaults to full "
                        "(exact stall attribution for the blame reports) "
                        "where the config default is light")
    p.add_argument("--flight-dir", default="",
                   help="directory for flight-recorder RDMP dumps "
                        "(written when a clogging episode opens or a "
                        "fault fires; default: no dumps)")


def cmd_trace(args) -> int:
    # simulator imports are deferred so the reader subcommands stay light
    from repro.experiments.common import cpu_corunners, mechanism_config
    from repro.sim.simulator import run_simulation

    cfg = mechanism_config(args.mechanism)
    if args.seed is not None:
        cfg.seed = args.seed
    tel = cfg.telemetry
    tel.enabled = True
    tel.trace_path = args.out
    tel.trace_format = args.format
    tel.sample_rate = args.sample_rate
    tel.probe_interval = args.probe_interval
    tel.clog_threshold = args.clog_threshold
    tel.clog_min_windows = args.clog_min_windows
    tel.mode = args.mode
    tel.flight_dir = args.flight_dir
    cpu = args.cpu or cpu_corunners(args.gpu, 1)[0]
    result = run_simulation(
        cfg, args.gpu, cpu, cycles=args.cycles, warmup=args.warmup
    )
    print(
        f"traced {args.gpu}/{cpu}/{args.mechanism}: "
        f"{args.warmup}+{args.cycles} cycles -> {args.out}"
    )
    print(
        f"  cpu latency: avg {result.cpu_latency_avg:.1f}  "
        f"p50 {result.cpu_latency_p50:.0f}  "
        f"p95 {result.cpu_latency_p95:.0f}  "
        f"p99 {result.cpu_latency_p99:.0f}"
    )
    print(
        f"  mem blocking rate {result.mem_blocking_rate:.3f}  "
        f"delegated fraction {result.delegated_fraction:.3f}"
    )
    if args.flight_dir:
        dumps = int(result.telemetry_metrics.get("flight.dumps", 0))
        print(f"  flight dumps: {dumps} -> {args.flight_dir}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="per-packet tracing, latency histograms and "
        "clogging-event reports",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_trace_parser(sub)
    for name, help_text in (
        ("report", "headline report from a trace file"),
        ("hist", "ASCII latency histograms"),
        ("timeline", "windowed link-occupancy timeline"),
        ("events", "clogging-episode table"),
        ("blame", "stall-attribution matrix and episode root causes"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("trace", help="trace file (jsonl or bin)")
        if name == "hist":
            p.add_argument("--net", choices=("request", "reply"), default=None)
            p.add_argument("--cls", choices=("CPU", "GPU"), default=None)
        # the shared table/json switch; note the `trace` subcommand's
        # --format is a different thing (jsonl/bin trace encoding)
        add_format_option(p)
    args = parser.parse_args(argv)

    if args.command == "trace":
        return cmd_trace(args)
    # a broken trace gets a one-line diagnosis, not a traceback: missing
    # file (OSError), truncated/garbled JSON or text (ValueError covers
    # json.JSONDecodeError and UnicodeDecodeError), torn binary framing
    # (struct.error)
    try:
        summary = load_summary(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace {args.trace!r}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    except (ValueError, struct.error) as exc:
        print(f"error: {args.trace!r} is not a readable trace "
              f"(truncated or not a trace file): {exc}", file=sys.stderr)
        return 2
    if summary.records == 0:
        print(f"error: trace {args.trace!r} is empty (no records)",
              file=sys.stderr)
        return 2
    if args.command == "report":
        emit(args.format, payload_report(summary),
             lambda: render_report(summary))
    elif args.command == "hist":
        emit(args.format, payload_hist(summary, net=args.net, cls=args.cls),
             lambda: render_hist(summary, net=args.net, cls=args.cls))
    elif args.command == "timeline":
        emit(args.format, payload_timeline(summary),
             lambda: render_timeline(summary))
    elif args.command == "events":
        emit(args.format, payload_events(summary),
             lambda: render_events(summary))
    elif args.command == "blame":
        emit(args.format, payload_blame(summary),
             lambda: render_blame(summary))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... report trace | head`
        sys.exit(0)
