"""The telemetry collector: hooks, window probes and clogging detection.

One :class:`TelemetryCollector` instance is attached to a
:class:`~repro.noc.network.NocFabric` (``fabric.attach_telemetry``); the
NICs, routers and networks then call its ``on_*`` hooks from the five
packet lifecycle points (inject, VC allocation, head arrival at the
destination router, delivery, delegation).  Every hook site is a single
``is not None`` check when telemetry is disabled, which is what keeps the
disabled path near-zero-cost and bit-identical to an uninstrumented run.

The collector maintains three kinds of state:

* per-(network, class) :class:`~repro.telemetry.hist.LogHistogram` of
  delivered packet latencies — the *full* population, independent of the
  packet-trace sampling rate;
* windowed probes (every ``probe_interval`` cycles) of link utilisation,
  delivered/injected flit rates, router buffer occupancy and per-memory-
  node reply-buffer pressure, each emitted as a ``win`` trace record;
* a :class:`CloggingDetector` fed the per-memory-node pressure signal,
  emitting ``clog`` episode records (start/end/severity) as they close.

Everything the collector reads is a counter the simulator already
maintains; it never mutates simulation state, so enabling telemetry
cannot change results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.config.system import TelemetryConfig
from repro.telemetry.blame import (
    ANY_CLS,
    BlameAccumulator,
    REPLY_BUFFER,
    STALL_CLASSES,
    StallTable,
    survey_stalls,
)
from repro.telemetry.hist import LogHistogram
from repro.telemetry.trace import NullTraceSink, PACKET_EVENTS, open_sink

#: schema version stamped into every trace's ``meta`` record.
TRACE_SCHEMA = 1


class CloggingDetector:
    """Turns a windowed per-node pressure signal into clogging episodes.

    A node whose signal is ``>= threshold`` for at least ``min_windows``
    consecutive windows is *clogged*; the episode closes when the signal
    drops below the threshold (or at finalize).  ``severity`` is the mean
    signal over the episode, ``peak`` its maximum.
    """

    def __init__(self, threshold: float, min_windows: int) -> None:
        self.threshold = threshold
        self.min_windows = max(1, int(min_windows))
        #: node -> open-episode accumulator
        self._open: Dict[int, Dict[str, float]] = {}
        self.episodes: List[Dict] = []

    def update(self, node: int, start: int, end: int, signal: float) -> Optional[Dict]:
        """Feed one window ``[start, end]``; returns an episode if one closed."""
        st = self._open.get(node)
        if signal >= self.threshold:
            if st is None:
                self._open[node] = {
                    "start": start, "windows": 1, "sum": signal, "peak": signal,
                    "end": end,
                }
            else:
                st["windows"] += 1
                st["sum"] += signal
                st["end"] = end
                if signal > st["peak"]:
                    st["peak"] = signal
            return None
        if st is not None:
            del self._open[node]
            return self._close(node, st)
        return None

    def _close(self, node: int, st: Dict[str, float]) -> Optional[Dict]:
        if st["windows"] < self.min_windows:
            return None
        episode = {
            "rec": "clog",
            "node": node,
            "start": int(st["start"]),
            "end": int(st["end"]),
            "windows": int(st["windows"]),
            "severity": round(st["sum"] / st["windows"], 4),
            "peak": round(st["peak"], 4),
        }
        self.episodes.append(episode)
        return episode

    def flush(self) -> List[Dict]:
        """Close every still-open episode (end of run)."""
        closed = []
        for node in sorted(self._open):
            episode = self._close(node, self._open[node])
            if episode is not None:
                closed.append(episode)
        self._open.clear()
        return closed


class TelemetryCollector:
    """Observability state attached to one fabric for one run."""

    def __init__(
        self,
        cfg: TelemetryConfig,
        fabric,
        mem_nodes: Tuple[int, ...] = (),
    ) -> None:
        self.cfg = cfg
        self.fabric = fabric
        self.mem_nodes = tuple(mem_nodes)
        if cfg.trace_path:
            self.sink = open_sink(cfg.trace_path, cfg.trace_format)
            self._tracing = True
        else:
            self.sink = NullTraceSink()
            self._tracing = False
        rate = min(1.0, max(0.0, cfg.sample_rate))
        self._sample_all = rate >= 1.0
        self._sample_below = int(rate * (1 << 32))
        #: (net_kind int, class int) -> latency histogram (full population)
        self.hists: Dict[Tuple[int, int], LogHistogram] = {}
        self.detector = CloggingDetector(cfg.clog_threshold, cfg.clog_min_windows)
        #: stall attribution (None when cfg.stall_attribution is False):
        #: per-(net, router, port, class) blocked-head-worm cycle counters
        self.stalls: Optional[StallTable] = (
            StallTable() if cfg.stall_attribution else None
        )
        self._stall_base: Dict = {}
        #: node -> blame accumulator for its currently-hot episode
        self._blame: Dict[int, BlameAccumulator] = {}
        self.windows: List[Dict] = []
        self.events: Dict[str, int] = {name: 0 for name in PACKET_EVENTS}
        self.interval = max(1, int(cfg.probe_interval))
        self._window_start = 0
        self._next_probe = self.interval - 1
        self._finalized = False
        # previous-probe snapshots of the monotone counters we rate-diff
        nets = tuple(fabric._net_list)
        self._nets = nets
        self._net_links = tuple(
            sum(r.nports - 1 for r in net.routers) for net in nets
        )
        self._prev_flits = [net.total_flits_routed() for net in nets]
        self._prev_pkts = [net.packets_delivered for net in nets]
        self._prev_ej = [net.flits_delivered for net in nets]
        self._prev_inj = sum(nic.flits_injected for nic in fabric.nics)
        self._prev_blocked = {
            node: fabric.nics[node].blocked_cycles for node in self.mem_nodes
        }
        meta = {
            "rec": "meta",
            "schema": TRACE_SCHEMA,
            "nodes": fabric.topology.n,
            "mem_nodes": list(self.mem_nodes),
            "separate_networks": fabric.separate_networks,
            "sample_rate": rate,
            "probe_interval": self.interval,
            "clog_threshold": cfg.clog_threshold,
            "clog_min_windows": self.detector.min_windows,
            "stall_attribution": self.stalls is not None,
        }
        width = getattr(fabric.topology, "width", 0)
        height = getattr(fabric.topology, "height", 0)
        if width and height:
            meta["mesh"] = [width, height]
        self.sink.record(meta)

    # -- sampling -------------------------------------------------------

    def _sampled(self, pid: int) -> bool:
        """Stateless per-packet sampling decision (Knuth hash of the pid),
        so a packet's whole lifecycle is kept or dropped together and the
        simulation's RNG streams are never perturbed."""
        if self._sample_all:
            return True
        return ((pid * 2654435761) & 0xFFFFFFFF) < self._sample_below

    # -- packet lifecycle hooks ----------------------------------------

    def on_inject(self, pkt, cycle: int) -> None:
        """A NIC accepted ``pkt`` into its injection queue."""
        self.events["inject"] += 1
        if self._tracing and self._sampled(pkt.pid):
            self.sink.packet_event("inject", cycle, pkt)

    def on_vc_alloc(self, pkt, cycle: int, vc: int) -> None:
        """``pkt``'s header won an injection VC and entered the network."""
        self.events["vc_alloc"] += 1
        if self._tracing and self._sampled(pkt.pid):
            self.sink.packet_event("vc_alloc", cycle, pkt, value=vc)

    def on_head(self, pkt, cycle: int) -> None:
        """``pkt``'s header flit reached its destination router."""
        self.events["head"] += 1
        if self._tracing and self._sampled(pkt.pid):
            self.sink.packet_event("head", cycle, pkt)

    def on_deliver(self, pkt, cycle: int) -> None:
        """``pkt`` fully ejected at its destination NIC."""
        self.events["deliver"] += 1
        latency = cycle - pkt.created if pkt.created >= 0 else 0
        key = (int(pkt.net), int(pkt.cls))
        hist = self.hists.get(key)
        if hist is None:
            hist = self.hists[key] = LogHistogram()
        hist.record(latency)
        if self._tracing and self._sampled(pkt.pid):
            self.sink.packet_event("deliver", cycle, pkt, value=latency)

    def on_delegate(self, reply, delegated, cycle: int) -> None:
        """A memory node converted ``reply`` into ``delegated`` (1-flit
        delegated request); the trace value is the delegate target node."""
        self.events["delegate"] += 1
        if self._tracing and self._sampled(reply.pid):
            self.sink.packet_event("delegate", cycle, reply, value=delegated.dst)

    # -- fault-injection hooks (repro.faults) ---------------------------

    def on_fault_event(self, rec: Dict) -> None:
        """The fault controller reports a discard, watchdog fire, etc.

        ``rec`` is a complete trace record (``rec="fault"``) whose
        ``fault`` key names the event (``flit_drop`` / ``flit_corrupt`` /
        ``fault_stall``); it is counted in :attr:`events` and written to
        the trace sink unsampled — faults are rare and every one matters.
        """
        name = rec.get("fault", "fault")
        self.events[name] = self.events.get(name, 0) + 1
        if self._tracing:
            self.sink.record(rec)

    # -- stall-attribution hooks ----------------------------------------

    def on_stall(self, router, port: int, vc: int, pkt, klass: int, cycle: int) -> None:
        """Head worm of ``router``'s input VC ``(port, vc)`` is blocked on
        stall class ``klass`` this cycle (deferred charging; see
        :class:`~repro.telemetry.blame.StallTable`)."""
        st = self.stalls
        if st is not None:
            st.observe(
                router.net.name, router.rid, port, vc, int(pkt.cls), klass, cycle
            )

    def on_advance(self, router, port: int, vc: int, cycle: int) -> None:
        """A flit of ``(port, vc)``'s head worm moved: close its record."""
        st = self.stalls
        if st is not None:
            st.advance(router.net.name, router.rid, port, vc, cycle)

    def on_mem_reply_stall(self, node: int, cycle: int) -> None:
        """Memory node ``node``'s reply injection buffer cannot take one
        more reply this cycle (the NIC-side blocked-cycle signal)."""
        st = self.stalls
        if st is not None:
            st.charge("mem", node, 0, ANY_CLS, REPLY_BUFFER)

    def on_reply_backpressure(self, node: int, cycle: int) -> None:
        """Memory node ``node``'s LLC holds a finished result it cannot
        post because the reply buffer is full (drain-side signal)."""
        st = self.stalls
        if st is not None:
            st.charge("mem", node, 1, ANY_CLS, REPLY_BUFFER)

    # -- windowed probes -------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Called once per simulated cycle (after the fabric stepped)."""
        if cycle >= self._next_probe:
            self._probe(cycle)
            self._next_probe = cycle + self.interval

    def _probe(self, cycle: int) -> None:
        interval = max(1, cycle - self._window_start + 1)
        record: Dict = {
            "rec": "win",
            "cycle": cycle,
            "interval": interval,
            "nets": {},
        }
        for i, net in enumerate(self._nets):
            flits = net.total_flits_routed()
            pkts = net.packets_delivered
            ej = net.flits_delivered
            links = self._net_links[i]
            util = (
                (flits - self._prev_flits[i])
                / (interval * links * net.bandwidth)
                if links
                else 0.0
            )
            record["nets"][net.name] = {
                "flits": flits - self._prev_flits[i],
                "pkts": pkts - self._prev_pkts[i],
                "ej_rate": round((ej - self._prev_ej[i]) / interval, 4),
                "link_util": round(util, 4),
                "buffered": net.buffered_flits(),
            }
            self._prev_flits[i] = flits
            self._prev_pkts[i] = pkts
            self._prev_ej[i] = ej
        inj = sum(nic.flits_injected for nic in self.fabric.nics)
        record["inj_rate"] = round((inj - self._prev_inj) / interval, 4)
        self._prev_inj = inj
        mem: Dict[str, Dict[str, float]] = {}
        signals: Dict[int, float] = {}
        for node in self.mem_nodes:
            nic = self.fabric.nics[node]
            occupancy = nic._reply_occ / max(1, nic.reply_buffer_flits)
            blocked = (
                nic.blocked_cycles - self._prev_blocked[node]
            ) / interval
            self._prev_blocked[node] = nic.blocked_cycles
            mem[str(node)] = {
                "occ": round(occupancy, 4),
                "blocked": round(blocked, 4),
            }
            signals[node] = max(occupancy, blocked)
        # one blame survey per probe covers every hot node: walk all
        # blocked head worms once, then fold the chains into each hot
        # node's accumulator so a closing episode can name its root cause
        hot = [n for n, s in signals.items() if s >= self.detector.threshold]
        if hot and self.stalls is not None:
            groups = survey_stalls(self._nets, cycle)
            for node in hot:
                acc = self._blame.get(node)
                if acc is None:
                    acc = self._blame[node] = BlameAccumulator(node)
                acc.feed(groups)
        for node in self.mem_nodes:
            episode = self.detector.update(
                node, self._window_start, cycle, signals[node]
            )
            if episode is not None:
                acc = self._blame.pop(node, None)
                if acc is not None:
                    episode["root_cause"] = acc.root_cause()
                self.sink.record(episode)
            elif signals[node] < self.detector.threshold:
                # hot blip too short to count as an episode: drop its blame
                self._blame.pop(node, None)
        if mem:
            record["mem"] = mem
        self.windows.append(record)
        self.sink.record(record)
        self._window_start = cycle + 1

    # -- measured-window stall accounting ---------------------------------

    def mark_window_start(self, cycle: int) -> None:
        """Snapshot stall counters at the start of the measured window so
        :meth:`stall_breakdown` reports measured-window cycles only."""
        st = self.stalls
        if st is not None:
            st.flush(cycle)
            self._stall_base = st.snapshot()

    def stall_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Measured-window stall cycles aggregated by victim group.

        ``{"CPU" | "GPU" | "mem": {stall class: cycles}}`` — CPU/GPU rows
        sum the router-side counters over the victim worm's traffic
        class; the ``mem`` row carries the memory-side reply-buffer
        pressure counters.  Empty when stall attribution is off.
        """
        st = self.stalls
        if st is None:
            return {}
        out: Dict[str, Dict[str, int]] = {}
        for (net, _rid, _port, cls), row in st.diff(self._stall_base).items():
            if net == "mem":
                group = "mem"
            else:
                group = "CPU" if cls == 0 else "GPU"
            bucket = out.setdefault(group, {})
            for idx, n in enumerate(row):
                if n:
                    name = STALL_CLASSES[idx]
                    bucket[name] = bucket.get(name, 0) + n
        return out

    # -- end of run -------------------------------------------------------

    def latency_histogram(self, net: int, cls: int) -> LogHistogram:
        """The (possibly empty) histogram for one (net, class) pair."""
        return self.hists.get((int(net), int(cls)), LogHistogram())

    def finalize(self, cycle: int) -> None:
        """Flush open episodes, write histogram + summary records, close."""
        if self._finalized:
            return
        self._finalized = True
        st = self.stalls
        if st is not None:
            st.flush(cycle)
        for episode in self.detector.flush():
            acc = self._blame.pop(episode["node"], None)
            if acc is not None:
                episode["root_cause"] = acc.root_cause()
            self.sink.record(episode)
        for (net, cls), hist in sorted(self.hists.items()):
            payload = hist.to_dict()
            payload.update(
                {
                    "rec": "hist",
                    "net": "request" if net == 0 else "reply",
                    "cls": "CPU" if cls == 0 else "GPU",
                }
            )
            self.sink.record(payload)
        if st is not None:
            for (net, rid, port, cls), row in sorted(st.counts.items()):
                classes = {
                    STALL_CLASSES[i]: n for i, n in enumerate(row) if n
                }
                if not classes:
                    continue
                self.sink.record(
                    {
                        "rec": "stall",
                        "net": net,
                        "router": rid,
                        "port": port,
                        "cls": "CPU" if cls == 0 else
                               ("GPU" if cls == 1 else "any"),
                        "classes": classes,
                    }
                )
        self.sink.record(
            {
                "rec": "summary",
                "cycle": cycle,
                "events": dict(self.events),
                "windows": len(self.windows),
                "episodes": len(self.detector.episodes),
            }
        )
        self.sink.close()
