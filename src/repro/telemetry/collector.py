"""The telemetry collector: hooks, window probes and clogging detection.

One :class:`TelemetryCollector` instance is attached to a
:class:`~repro.noc.network.NocFabric` (``fabric.attach_telemetry``); the
NICs, routers and networks then call its ``on_*`` hooks from the five
packet lifecycle points (inject, VC allocation, head arrival at the
destination router, delivery, delegation).  Every hook site is a single
``is not None`` check when telemetry is disabled, which is what keeps the
disabled path near-zero-cost and bit-identical to an uninstrumented run.

The *enabled* hot path is a ring-buffer event pipeline
(:mod:`repro.telemetry.ring`): each hook bumps a preallocated per-code
counter, folds delivered latencies into preallocated bucket-counter rows
(no dict lookups, no ``LogHistogram`` objects on the hot path) and
appends one fixed-width raw tuple to the per-network event ring — a
single C-level deque append.  Sampling, sink serialisation and dump
bit-packing all happen in deferred batches at window/finalize
boundaries.  The ring doubles as a **flight recorder**: it always
retains the most recent events, and the collector dumps them as a
packed ``RDMP`` file when the clogging detector *opens* an episode or a
fault fires.

Two instrumentation tiers (``TelemetryConfig.mode``):

* ``"light"`` (default) — rings, histograms, windowed probes, clogging
  detection with probe-time blame chains, flight recorder, metrics
  registry.  Cheap enough to leave on everywhere.
* ``"full"`` — adds exact per-cycle stall attribution (the
  :class:`~repro.telemetry.blame.StallTable` charged per blocked
  head-worm cycle), which dominates telemetry cost on saturated meshes.

Everything the collector reads is a counter the simulator already
maintains; it never mutates simulation state, so enabling telemetry
cannot change results.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.config.system import TelemetryConfig
from repro.telemetry.blame import (
    ANY_CLS,
    BlameAccumulator,
    REPLY_BUFFER,
    STALL_CLASSES,
    StallTable,
    survey_stalls,
)
from repro.telemetry.hist import LogHistogram
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.ring import EventRing, merge_events, write_dump
from repro.telemetry.trace import NullTraceSink, PACKET_EVENTS, open_sink

#: schema version stamped into every trace's ``meta`` record (v2: packed
#: ring pipeline, ``RDMP`` flight dumps, ``metrics`` in the summary).
TRACE_SCHEMA = 2

#: counter-array histogram row length: covers every bucket index a
#: 64-bit latency can map to at the default 2^5 sub-bucket resolution.
_HIST_BUCKETS = 1920

#: hard cap on flight-recorder dump files per run (noise guard).
_MAX_FLIGHT_DUMPS = 8

class _EventView:
    """Mutable packet stand-in for deferred ``sink.packet_event`` calls.

    One instance is reused for every drained ring event — sinks consume
    the fields synchronously, so no aliasing can be observed.  The enum
    fields carry the live packet's real enum members (ring tuples store
    them verbatim), so sinks see exactly what a live Packet gives them.
    """

    __slots__ = ("pid", "src", "dst", "block", "mtype", "cls", "net",
                 "size_flits")


class CloggingDetector:
    """Turns a windowed per-node pressure signal into clogging episodes.

    A node whose signal is ``>= threshold`` for at least ``min_windows``
    consecutive windows is *clogged*; the episode closes when the signal
    drops below the threshold (or at finalize).  ``severity`` is the mean
    signal over the episode, ``peak`` its maximum.  The optional
    ``on_open`` callback fires the moment an episode *opens* (its hot
    streak first reaches ``min_windows``) — the flight recorder's dump
    trigger, which cannot wait for the close.
    """

    def __init__(self, threshold: float, min_windows: int) -> None:
        self.threshold = threshold
        self.min_windows = max(1, int(min_windows))
        #: node -> open-episode accumulator
        self._open: Dict[int, Dict[str, float]] = {}
        self.episodes: List[Dict] = []
        #: called with ``(node, end_cycle)`` when an episode opens.
        self.on_open: Optional[Callable[[int, int], None]] = None

    def update(self, node: int, start: int, end: int, signal: float) -> Optional[Dict]:
        """Feed one window ``[start, end]``; returns an episode if one closed."""
        st = self._open.get(node)
        if signal >= self.threshold:
            if st is None:
                self._open[node] = {
                    "start": start, "windows": 1, "sum": signal, "peak": signal,
                    "end": end,
                }
                if self.min_windows == 1 and self.on_open is not None:
                    self.on_open(node, end)
            else:
                st["windows"] += 1
                st["sum"] += signal
                st["end"] = end
                if signal > st["peak"]:
                    st["peak"] = signal
                if st["windows"] == self.min_windows and self.on_open is not None:
                    self.on_open(node, end)
            return None
        if st is not None:
            del self._open[node]
            return self._close(node, st)
        return None

    def _close(self, node: int, st: Dict[str, float]) -> Optional[Dict]:
        if st["windows"] < self.min_windows:
            return None
        episode = {
            "rec": "clog",
            "node": node,
            "start": int(st["start"]),
            "end": int(st["end"]),
            "windows": int(st["windows"]),
            "severity": round(st["sum"] / st["windows"], 4),
            "peak": round(st["peak"], 4),
        }
        self.episodes.append(episode)
        return episode

    def flush(self) -> List[Dict]:
        """Close every still-open episode (end of run)."""
        closed = []
        for node in sorted(self._open):
            episode = self._close(node, self._open[node])
            if episode is not None:
                closed.append(episode)
        self._open.clear()
        return closed


class TelemetryCollector:
    """Observability state attached to one fabric for one run."""

    def __init__(
        self,
        cfg: TelemetryConfig,
        fabric,
        mem_nodes: Tuple[int, ...] = (),
    ) -> None:
        if cfg.mode not in ("light", "full"):
            raise ValueError(
                f"unknown telemetry mode {cfg.mode!r}; choose light or full"
            )
        self.cfg = cfg
        self.fabric = fabric
        self.mem_nodes = tuple(mem_nodes)
        if cfg.trace_path:
            self.sink = open_sink(cfg.trace_path, cfg.trace_format)
            self._tracing = True
        else:
            self.sink = NullTraceSink()
            self._tracing = False
        rate = min(1.0, max(0.0, cfg.sample_rate))
        self._sample_all = rate >= 1.0
        self._sample_below = int(rate * (1 << 32))
        self.detector = CloggingDetector(cfg.clog_threshold, cfg.clog_min_windows)
        self.detector.on_open = self._on_clog_open
        #: exact stall attribution (None unless ``mode == "full"`` and
        #: ``stall_attribution``): per-(net, router, port, class)
        #: blocked-head-worm cycle counters
        self.stalls: Optional[StallTable] = (
            StallTable()
            if cfg.mode == "full" and cfg.stall_attribution
            else None
        )
        self._stall_base: Dict = {}
        #: node -> blame accumulator for its currently-hot episode
        self._blame: Dict[int, BlameAccumulator] = {}
        self.windows: List[Dict] = []
        #: per-code packet-event counts (indexed like PACKET_EVENTS);
        #: exact whatever the ring does, because they are bumped at
        #: append time, not reconstructed from (overwritable) ring slots
        self._ev: List[int] = [0] * len(PACKET_EVENTS)
        self._fault_events: Dict[str, int] = {}
        #: counter-array latency histograms: row per (net, cls) pair,
        #: indexed ``(net << 1) | cls``; plus exact latency totals
        self._hist_rows: List[List[int]] = [
            [0] * _HIST_BUCKETS for _ in range(4)
        ]
        self._hist_tot: List[int] = [0, 0, 0, 0]
        #: bounded event rings (request, reply), or None when neither the
        #: flight recorder nor a trace sink needs them
        if cfg.flight_recorder or self._tracing:
            self._rings: Optional[List[EventRing]] = [
                EventRing(cfg.ring_events), EventRing(cfg.ring_events)
            ]
        else:
            self._rings = None
        self._view = _EventView()
        self._trace_records = 0
        self._flight_dir = cfg.flight_dir
        self.flight_dumps: List[str] = []
        self.metrics = MetricsRegistry()
        self.interval = max(1, int(cfg.probe_interval))
        self._window_start = 0
        self._next_probe = self.interval - 1
        self._finalized = False
        # previous-probe snapshots of the monotone counters we rate-diff
        nets = tuple(fabric._net_list)
        self._nets = nets
        self._net_links = tuple(
            sum(r.nports - 1 for r in net.routers) for net in nets
        )
        self._prev_flits = [net.total_flits_routed() for net in nets]
        self._prev_pkts = [net.packets_delivered for net in nets]
        self._prev_ej = [net.flits_delivered for net in nets]
        self._prev_inj = sum(nic.flits_injected for nic in fabric.nics)
        self._prev_blocked = {
            node: fabric.nics[node].blocked_cycles for node in self.mem_nodes
        }
        self._meta = meta = {
            "rec": "meta",
            "schema": TRACE_SCHEMA,
            "nodes": fabric.topology.n,
            "mem_nodes": list(self.mem_nodes),
            "separate_networks": fabric.separate_networks,
            "mode": cfg.mode,
            "sample_rate": rate,
            "probe_interval": self.interval,
            "clog_threshold": cfg.clog_threshold,
            "clog_min_windows": self.detector.min_windows,
            "stall_attribution": self.stalls is not None,
            "flight_recorder": self._rings is not None and cfg.flight_recorder,
            "ring_events": self._rings[0].capacity if self._rings else 0,
        }
        width = getattr(fabric.topology, "width", 0)
        height = getattr(fabric.topology, "height", 0)
        if width and height:
            meta["mesh"] = [width, height]
        self.sink.record(meta)

    # -- sampling -------------------------------------------------------

    def _sampled(self, pid: int) -> bool:
        """Stateless per-packet sampling decision (Knuth hash of the pid),
        so a packet's whole lifecycle is kept or dropped together and the
        simulation's RNG streams are never perturbed.  Applied at ring
        *drain* time — the hot path appends unconditionally."""
        if self._sample_all:
            return True
        return ((pid * 2654435761) & 0xFFFFFFFF) < self._sample_below

    # -- packet lifecycle hooks ----------------------------------------
    #
    # Shape of every hook: bump the per-code counter, then (when rings
    # exist) append one raw fixed-width tuple straight into the deque —
    # a single C call, no packing, no dicts.  Bit-packing happens only
    # at dump time (repro.telemetry.ring.write_dump); tracing runs also
    # maintain the head/drained counters so drains fire before the ring
    # would evict an unflushed event.

    def on_inject(self, pkt, cycle: int) -> None:
        """A NIC accepted ``pkt`` into its injection queue."""
        self._ev[0] += 1
        rings = self._rings
        if rings is not None:
            ring = rings[pkt.net]
            ring.events.append(
                (0, pkt.mtype, pkt.cls, pkt.net, pkt.size_flits,
                 pkt.src, pkt.dst, cycle, pkt.pid, pkt.block, -1)
            )
            if self._tracing:
                ring.head += 1
                if ring.head - ring.drained >= ring.capacity:
                    self._drain_events()

    def on_vc_alloc(self, pkt, cycle: int, vc: int) -> None:
        """``pkt``'s header won an injection VC and entered the network."""
        self._ev[1] += 1
        rings = self._rings
        if rings is not None:
            ring = rings[pkt.net]
            ring.events.append(
                (1, pkt.mtype, pkt.cls, pkt.net, pkt.size_flits,
                 pkt.src, pkt.dst, cycle, pkt.pid, pkt.block, vc)
            )
            if self._tracing:
                ring.head += 1
                if ring.head - ring.drained >= ring.capacity:
                    self._drain_events()

    def on_head(self, pkt, cycle: int) -> None:
        """``pkt``'s header flit reached its destination router."""
        self._ev[2] += 1
        rings = self._rings
        if rings is not None:
            ring = rings[pkt.net]
            ring.events.append(
                (2, pkt.mtype, pkt.cls, pkt.net, pkt.size_flits,
                 pkt.src, pkt.dst, cycle, pkt.pid, pkt.block, -1)
            )
            if self._tracing:
                ring.head += 1
                if ring.head - ring.drained >= ring.capacity:
                    self._drain_events()

    def on_deliver(self, pkt, cycle: int) -> None:
        """``pkt`` fully ejected at its destination NIC."""
        self._ev[3] += 1
        latency = cycle - pkt.created
        if latency < 0 or pkt.created < 0:
            latency = 0
        # inline bucket_index(latency) on the preallocated counter row
        key = (pkt.net << 1) | pkt.cls
        row = self._hist_rows[key]
        if latency < 64:
            row[latency] += 1
        else:
            shift = latency.bit_length() - 6
            row[((shift + 1) << 5) + ((latency >> shift) & 31)] += 1
        self._hist_tot[key] += latency
        rings = self._rings
        if rings is not None:
            ring = rings[pkt.net]
            ring.events.append(
                (3, pkt.mtype, pkt.cls, pkt.net, pkt.size_flits,
                 pkt.src, pkt.dst, cycle, pkt.pid, pkt.block, latency)
            )
            if self._tracing:
                ring.head += 1
                if ring.head - ring.drained >= ring.capacity:
                    self._drain_events()

    def on_delegate(self, reply, delegated, cycle: int) -> None:
        """A memory node converted ``reply`` into ``delegated`` (1-flit
        delegated request); the trace value is the delegate target node."""
        self._ev[4] += 1
        rings = self._rings
        if rings is not None:
            ring = rings[reply.net]
            ring.events.append(
                (4, reply.mtype, reply.cls, reply.net, reply.size_flits,
                 reply.src, reply.dst, cycle, reply.pid, reply.block,
                 delegated.dst)
            )
            if self._tracing:
                ring.head += 1
                if ring.head - ring.drained >= ring.capacity:
                    self._drain_events()

    @property
    def events(self) -> Dict[str, int]:
        """Event counts: the five lifecycle events plus any fault events."""
        out = {name: self._ev[i] for i, name in enumerate(PACKET_EVENTS)}
        out.update(self._fault_events)
        return out

    # -- fault-injection hooks (repro.faults) ---------------------------

    def on_fault_event(self, rec: Dict) -> None:
        """The fault controller reports a discard, watchdog fire, etc.

        ``rec`` is a complete trace record (``rec="fault"``) whose
        ``fault`` key names the event (``flit_drop`` / ``flit_corrupt`` /
        ``fault_stall``); it is counted in :attr:`events`, written to the
        trace sink unsampled (faults are rare and every one matters) and
        — first occurrence per run — triggers a flight-recorder dump of
        the events leading up to it.
        """
        name = rec.get("fault", "fault")
        first = name not in self._fault_events
        self._fault_events[name] = self._fault_events.get(name, 0) + 1
        if self._tracing:
            self.sink.record(rec)
        if first:
            self._flight_dump(f"fault-{name}", rec.get("cycle", -1))

    # -- stall-attribution hooks (mode == "full" only) -------------------

    def on_stall(self, router, port: int, vc: int, pkt, klass: int, cycle: int) -> None:
        """Head worm of ``router``'s input VC ``(port, vc)`` is blocked on
        stall class ``klass`` this cycle (deferred charging; see
        :class:`~repro.telemetry.blame.StallTable`)."""
        st = self.stalls
        if st is not None:
            st.observe(
                router.net.name, router.rid, port, vc, int(pkt.cls), klass, cycle
            )

    def on_advance(self, router, port: int, vc: int, cycle: int) -> None:
        """A flit of ``(port, vc)``'s head worm moved: close its record."""
        st = self.stalls
        if st is not None:
            st.advance(router.net.name, router.rid, port, vc, cycle)

    def on_mem_reply_stall(self, node: int, cycle: int) -> None:
        """Memory node ``node``'s reply injection buffer cannot take one
        more reply this cycle (the NIC-side blocked-cycle signal)."""
        st = self.stalls
        if st is not None:
            st.charge("mem", node, 0, ANY_CLS, REPLY_BUFFER)

    def on_reply_backpressure(self, node: int, cycle: int) -> None:
        """Memory node ``node``'s LLC holds a finished result it cannot
        post because the reply buffer is full (drain-side signal)."""
        st = self.stalls
        if st is not None:
            st.charge("mem", node, 1, ANY_CLS, REPLY_BUFFER)

    # -- deferred ring drains and flight dumps ---------------------------

    def _drain_events(self) -> None:
        """Flush undrained ring events to the trace sink, in cycle order.

        Called at window/finalize boundaries, and from the hooks when a
        tracing ring is about to overwrite an undrained slot — so a
        traced run loses nothing to ring wraparound.  Sampling happens
        here, off the hot path.
        """
        rings = self._rings
        if rings is None or not self._tracing:
            return
        batches = [b for b in (ring.take_pending() for ring in rings) if b]
        if not batches:
            return
        sink = self.sink
        view = self._view
        sample_all = self._sample_all
        below = self._sample_below
        written = 0
        for ev in merge_events(*batches):
            pid = ev[8]
            if not sample_all and ((pid * 2654435761) & 0xFFFFFFFF) >= below:
                continue
            view.pid = pid
            view.mtype = ev[1]
            view.cls = ev[2]
            view.net = ev[3]
            view.size_flits = ev[4]
            view.src = ev[5]
            view.dst = ev[6]
            view.block = ev[9]
            sink.packet_event(PACKET_EVENTS[ev[0]], ev[7], view, value=ev[10])
            written += 1
        self._trace_records += written

    def _on_clog_open(self, node: int, cycle: int) -> None:
        """Detector callback: a node's hot streak reached ``min_windows``."""
        self._flight_dump("clog", cycle, node=node)

    def _flight_dump(self, trigger: str, cycle: int,
                     node: Optional[int] = None) -> Optional[str]:
        """Dump the retained ring events as one ``RDMP`` file.

        No-op unless the flight recorder is on and ``flight_dir`` is set;
        at most :data:`_MAX_FLIGHT_DUMPS` files per run.  Returns the
        dump path (also appended to :attr:`flight_dumps`) or None.
        """
        rings = self._rings
        if (
            rings is None
            or not self.cfg.flight_recorder
            or not self._flight_dir
            or len(self.flight_dumps) >= _MAX_FLIGHT_DUMPS
        ):
            return None
        events = merge_events(*(r.snapshot() for r in rings))
        meta = dict(self._meta)
        meta.update(
            {
                "dump": trigger,
                "dump_cycle": cycle,
                "events_retained": len(events),
            }
        )
        if node is not None:
            meta["dump_node"] = node
        suffix = "" if node is None else f"-n{node}"
        directory = Path(self._flight_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"flight-c{cycle}-{trigger}{suffix}.rdmp"
        write_dump(path, meta, events, TRACE_SCHEMA)
        self.flight_dumps.append(str(path))
        self.metrics.counter("flight.dumps").inc()
        if self._tracing:
            self.sink.record(
                {"rec": "flight", "trigger": trigger, "cycle": cycle,
                 "node": node, "path": str(path)}
            )
        return str(path)

    # -- windowed probes -------------------------------------------------

    def on_cycle(self, cycle: int) -> None:
        """Called once per simulated cycle (after the fabric stepped)."""
        if cycle >= self._next_probe:
            self._probe(cycle)
            self._next_probe = cycle + self.interval

    def _probe(self, cycle: int) -> None:
        if self._tracing:
            # batch boundary: packet events stream out before the window
            # record that closes over them
            self._drain_events()
        interval = max(1, cycle - self._window_start + 1)
        record: Dict = {
            "rec": "win",
            "cycle": cycle,
            "interval": interval,
            "nets": {},
        }
        for i, net in enumerate(self._nets):
            flits = net.total_flits_routed()
            pkts = net.packets_delivered
            ej = net.flits_delivered
            links = self._net_links[i]
            util = (
                (flits - self._prev_flits[i])
                / (interval * links * net.bandwidth)
                if links
                else 0.0
            )
            record["nets"][net.name] = {
                "flits": flits - self._prev_flits[i],
                "pkts": pkts - self._prev_pkts[i],
                "ej_rate": round((ej - self._prev_ej[i]) / interval, 4),
                "link_util": round(util, 4),
                "buffered": net.buffered_flits(),
            }
            self._prev_flits[i] = flits
            self._prev_pkts[i] = pkts
            self._prev_ej[i] = ej
        inj = sum(nic.flits_injected for nic in self.fabric.nics)
        record["inj_rate"] = round((inj - self._prev_inj) / interval, 4)
        self._prev_inj = inj
        mem: Dict[str, Dict[str, float]] = {}
        signals: Dict[int, float] = {}
        for node in self.mem_nodes:
            nic = self.fabric.nics[node]
            occupancy = nic._reply_occ / max(1, nic.reply_buffer_flits)
            blocked = (
                nic.blocked_cycles - self._prev_blocked[node]
            ) / interval
            self._prev_blocked[node] = nic.blocked_cycles
            mem[str(node)] = {
                "occ": round(occupancy, 4),
                "blocked": round(blocked, 4),
            }
            signals[node] = max(occupancy, blocked)
        # one blame survey per probe covers every hot node: walk all
        # blocked head worms once, then fold the chains into each hot
        # node's accumulator so a closing episode can name its root cause.
        # The survey is read-only and windowed, so it runs in light mode
        # too — episodes carry root causes even without the StallTable.
        hot = [n for n, s in signals.items() if s >= self.detector.threshold]
        if hot:
            groups = survey_stalls(self._nets, cycle)
            for node in hot:
                acc = self._blame.get(node)
                if acc is None:
                    acc = self._blame[node] = BlameAccumulator(node)
                acc.feed(groups)
        for node in self.mem_nodes:
            episode = self.detector.update(
                node, self._window_start, cycle, signals[node]
            )
            if episode is not None:
                acc = self._blame.pop(node, None)
                if acc is not None:
                    episode["root_cause"] = acc.root_cause()
                self.sink.record(episode)
            elif signals[node] < self.detector.threshold:
                # hot blip too short to count as an episode: drop its blame
                self._blame.pop(node, None)
        if mem:
            record["mem"] = mem
        self.windows.append(record)
        self.sink.record(record)
        self._window_start = cycle + 1

    # -- measured-window stall accounting ---------------------------------

    def mark_window_start(self, cycle: int) -> None:
        """Snapshot stall counters at the start of the measured window so
        :meth:`stall_breakdown` reports measured-window cycles only."""
        st = self.stalls
        if st is not None:
            st.flush(cycle)
            self._stall_base = st.snapshot()

    def stall_breakdown(self) -> Dict[str, Dict[str, int]]:
        """Measured-window stall cycles aggregated by victim group.

        ``{"CPU" | "GPU" | "mem": {stall class: cycles}}`` — CPU/GPU rows
        sum the router-side counters over the victim worm's traffic
        class; the ``mem`` row carries the memory-side reply-buffer
        pressure counters.  Empty when stall attribution is off (always
        in ``light`` mode).
        """
        st = self.stalls
        if st is None:
            return {}
        out: Dict[str, Dict[str, int]] = {}
        for (net, _rid, _port, cls), row in st.diff(self._stall_base).items():
            if net == "mem":
                group = "mem"
            else:
                group = "CPU" if cls == 0 else "GPU"
            bucket = out.setdefault(group, {})
            for idx, n in enumerate(row):
                if n:
                    name = STALL_CLASSES[idx]
                    bucket[name] = bucket.get(name, 0) + n
        return out

    # -- end of run -------------------------------------------------------

    def latency_histogram(self, net: int, cls: int) -> LogHistogram:
        """The (possibly empty) histogram for one (net, class) pair.

        Rebuilt on demand from the counter-array row: bucket counts and
        the total are exact; min/max carry bucket resolution.
        """
        return self._row_histogram((int(net) << 1) | int(cls))

    def _row_histogram(self, key: int) -> LogHistogram:
        row = self._hist_rows[key]
        hist = LogHistogram.from_sparse(
            {idx: n for idx, n in enumerate(row) if n}
        )
        hist.total = self._hist_tot[key]
        return hist

    def metrics_snapshot(self) -> Dict[str, float]:
        """Flat metrics dict: registered counters/gauges plus the
        collector's own built-ins (event counts, windows, episodes,
        flight dumps, trace records)."""
        m = self.metrics
        for i, name in enumerate(PACKET_EVENTS):
            m.gauge(f"events.{name}").set(self._ev[i])
        for name, n in self._fault_events.items():
            m.gauge(f"events.{name}").set(n)
        m.gauge("windows").set(len(self.windows))
        m.gauge("clog_episodes").set(len(self.detector.episodes))
        m.gauge("trace_records").set(self._trace_records)
        rings = self._rings
        if rings is not None:
            m.gauge("ring_retained").set(sum(len(r) for r in rings))
        return m.snapshot()

    def finalize(self, cycle: int) -> None:
        """Flush rings and open episodes, write histogram + summary
        records, close the sink."""
        if self._finalized:
            return
        self._finalized = True
        self._drain_events()
        st = self.stalls
        if st is not None:
            st.flush(cycle)
        for episode in self.detector.flush():
            acc = self._blame.pop(episode["node"], None)
            if acc is not None:
                episode["root_cause"] = acc.root_cause()
            self.sink.record(episode)
        for key in range(4):
            hist = self._row_histogram(key)
            if not hist.count:
                continue
            payload = hist.to_dict()
            payload.update(
                {
                    "rec": "hist",
                    "net": "request" if (key >> 1) == 0 else "reply",
                    "cls": "CPU" if (key & 1) == 0 else "GPU",
                }
            )
            self.sink.record(payload)
        if st is not None:
            for (net, rid, port, cls), row in sorted(st.counts.items()):
                classes = {
                    STALL_CLASSES[i]: n for i, n in enumerate(row) if n
                }
                if not classes:
                    continue
                self.sink.record(
                    {
                        "rec": "stall",
                        "net": net,
                        "router": rid,
                        "port": port,
                        "cls": "CPU" if cls == 0 else
                               ("GPU" if cls == 1 else "any"),
                        "classes": classes,
                    }
                )
        self.sink.record(
            {
                "rec": "summary",
                "cycle": cycle,
                "events": self.events,
                "windows": len(self.windows),
                "episodes": len(self.detector.episodes),
                "metrics": self.metrics_snapshot(),
            }
        )
        self.sink.close()
