"""A small registry of cheap named counters and gauges.

Subsystems that want a number in ``SimulationResult`` and sweep
manifests without growing the counter-snapshot machinery register it
here: a :class:`Counter` or :class:`Gauge` handle is one attribute
lookup plus an integer add to update, and :meth:`MetricsRegistry.snapshot`
folds every registered metric into one plain dict at the end of a run.

Metrics are observability state, never simulation state: they live on
the :class:`~repro.telemetry.collector.TelemetryCollector`, flow into
``SimulationResult.telemetry_metrics`` (kept out of ``counters`` so the
telemetry-on/off bit-identity guarantee is untouched) and into the
``metrics.telemetry`` block of sweep manifests.
"""

from __future__ import annotations

from typing import Dict, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A named point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value


class MetricsRegistry:
    """Named counters/gauges with one flat snapshot at the end of a run."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge]] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name`` (idempotent)."""
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = Counter(name)
        elif not isinstance(m, Counter):
            raise TypeError(f"metric {name!r} is a {type(m).__name__}, "
                            "not a Counter")
        return m

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name`` (idempotent)."""
        m = self._metrics.get(name)
        if m is None:
            m = self._metrics[name] = Gauge(name)
        elif not isinstance(m, Gauge):
            raise TypeError(f"metric {name!r} is a {type(m).__name__}, "
                            "not a Gauge")
        return m

    def snapshot(self) -> Dict[str, Number]:
        """``{name: value}`` for every registered metric, sorted by name."""
        return {name: self._metrics[name].value
                for name in sorted(self._metrics)}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics
