"""Opt-in observability: packet traces, latency histograms, clog events.

The paper's argument is about tails and episodes — reply packets clogging
VCs, CPU requests stalling behind them — which window-averaged counters
cannot show.  This package adds the missing instruments:

* :class:`~repro.telemetry.hist.LogHistogram` — streaming HDR-style
  latency histograms (p50/p95/p99/p99.9 without raw samples); always on
  in the CPU/GPU cores and surfaced through ``SimulationResult``.
* :class:`~repro.telemetry.collector.TelemetryCollector` — per-packet
  lifecycle events through a packed :class:`~repro.telemetry.ring.EventRing`
  pipeline (decoded and flushed to a :class:`~repro.telemetry.trace.TraceSink`
  in deferred batches, with deterministic sampling), windowed
  link/buffer/injection probes, a clogging-event detector, an always-on
  flight recorder that dumps the retained ring as ``RDMP`` files when an
  episode opens or a fault fires, and a
  :class:`~repro.telemetry.metrics.MetricsRegistry` of cheap named
  counters/gauges.  Enabled via ``SystemConfig.telemetry``; two tiers
  (``mode="light"`` / ``"full"``); bit-identical and near-zero-cost when
  disabled.
* :class:`~repro.telemetry.blame.StallTable` and the blame chain walker —
  per-(router, port, class) stall attribution for every cycle a head worm
  fails to advance, plus hop-by-hop backpressure chains that attach
  ``root_cause`` records to clogging episodes.
* ``python -m repro.telemetry {trace,report,hist,timeline,events,blame}``
  — run a traced simulation and render reports from trace files.
"""

from repro.telemetry.blame import (
    BlameAccumulator,
    STALL_CLASSES,
    StallTable,
    classify_head,
    survey_stalls,
    walk_chain,
)
from repro.telemetry.collector import CloggingDetector, TelemetryCollector
from repro.telemetry.hist import (
    DEFAULT_SUB_BITS,
    LogHistogram,
    bucket_bounds,
    bucket_index,
)
from repro.telemetry.metrics import Counter, Gauge, MetricsRegistry
from repro.telemetry.ring import (
    EventRing,
    merge_events,
    pack_w0,
    read_dump,
    unpack_w0,
    write_dump,
)
from repro.telemetry.report import (
    TraceSummary,
    load_summary,
    render_blame,
    render_events,
    render_hist,
    render_report,
    render_timeline,
)
from repro.telemetry.trace import (
    BinaryTraceSink,
    JsonlTraceSink,
    NullTraceSink,
    PACKET_EVENTS,
    TraceSink,
    open_sink,
    read_trace,
)

__all__ = [
    "BinaryTraceSink",
    "BlameAccumulator",
    "CloggingDetector",
    "Counter",
    "DEFAULT_SUB_BITS",
    "EventRing",
    "Gauge",
    "JsonlTraceSink",
    "LogHistogram",
    "MetricsRegistry",
    "NullTraceSink",
    "PACKET_EVENTS",
    "STALL_CLASSES",
    "StallTable",
    "TelemetryCollector",
    "TraceSink",
    "TraceSummary",
    "bucket_bounds",
    "bucket_index",
    "classify_head",
    "load_summary",
    "merge_events",
    "open_sink",
    "pack_w0",
    "read_dump",
    "read_trace",
    "unpack_w0",
    "write_dump",
    "render_blame",
    "render_events",
    "render_hist",
    "render_report",
    "render_timeline",
    "survey_stalls",
    "walk_chain",
]
