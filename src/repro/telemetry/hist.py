"""Streaming log-bucketed (HDR-style) latency histograms.

The paper's argument is about *tails*: a handful of CPU requests stuck
behind clogged reply VCs dominate perceived latency while the mean moves
little (Fig. 12).  Storing every sample is out of the question for
million-packet runs, so :class:`LogHistogram` keeps log-linear buckets:
values below ``2^(sub_bits+1)`` get exact unit buckets, larger values
share ``2^sub_bits`` sub-buckets per power of two.  Any quantile is then
recoverable with bounded *relative* error ``2^-sub_bits`` (3.1% at the
default ``sub_bits=5``) from O(log(max) * 2^sub_bits) integer counters.

Histograms are pure value aggregates: merging, diffing (for
warmup-window subtraction) and (de)serialisation are all bucket-wise
integer arithmetic, so they compose with the simulator's
snapshot-and-diff metrics pipeline and round-trip losslessly through the
sweep result cache.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: default sub-bucket resolution: 2^5 = 32 sub-buckets per octave,
#: relative quantile error bounded by 2^-5 = 3.125%.
DEFAULT_SUB_BITS = 5


def bucket_index(value: int, sub_bits: int = DEFAULT_SUB_BITS) -> int:
    """Bucket index of a non-negative integer value (log-linear layout)."""
    if value < 0:
        value = 0
    if value < (1 << (sub_bits + 1)):
        return value
    shift = value.bit_length() - (sub_bits + 1)
    return ((shift + 1) << sub_bits) + ((value >> shift) & ((1 << sub_bits) - 1))


def bucket_bounds(index: int, sub_bits: int = DEFAULT_SUB_BITS) -> Tuple[int, int]:
    """``[lo, hi)`` value range covered by bucket ``index``."""
    base = 1 << (sub_bits + 1)
    if index < base:
        return index, index + 1
    shift = (index >> sub_bits) - 1
    mantissa = index & ((1 << sub_bits) - 1)
    lo = ((1 << sub_bits) + mantissa) << shift
    return lo, lo + (1 << shift)


class LogHistogram:
    """Streaming histogram over non-negative integers (cycles, flits...)."""

    __slots__ = ("sub_bits", "buckets", "count", "total", "min", "max")

    def __init__(self, sub_bits: int = DEFAULT_SUB_BITS) -> None:
        self.sub_bits = sub_bits
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    # -- recording ------------------------------------------------------

    def record(self, value: int, n: int = 1) -> None:
        if value < 0:
            value = 0
        idx = bucket_index(value, self.sub_bits)
        self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += n
        self.total += value * n
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    # -- queries --------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate value of the ``p``-th percentile (0 < p <= 100).

        Returns the midpoint of the bucket holding the sample of rank
        ``ceil(p/100 * count)``; the relative error is bounded by the
        bucket resolution (``2^-sub_bits``).
        """
        if self.count == 0:
            return 0.0
        rank = max(1, -(-int(p * self.count) // 100))  # ceil(p/100 * n)
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                lo, hi = bucket_bounds(idx, self.sub_bits)
                return (lo + hi - 1) / 2.0
        lo, hi = bucket_bounds(max(self.buckets), self.sub_bits)
        return (lo + hi - 1) / 2.0

    def percentiles(self, ps: Iterable[float]) -> Dict[float, float]:
        return {p: self.percentile(p) for p in ps}

    def summary(self) -> Dict[str, float]:
        """The standard report block: count/mean/min/max + tail quantiles."""
        return {
            "count": self.count,
            "mean": round(self.mean, 2),
            "min": self.min or 0,
            "max": self.max or 0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "p99.9": self.percentile(99.9),
        }

    # -- composition ----------------------------------------------------

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Accumulate ``other`` into this histogram (same resolution)."""
        if other.sub_bits != self.sub_bits:
            raise ValueError("cannot merge histograms of different resolution")
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound
        return self

    # -- (de)serialisation ---------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "sub_bits": self.sub_bits,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LogHistogram":
        hist = cls(int(data.get("sub_bits", DEFAULT_SUB_BITS)))
        hist.buckets = {int(k): int(v) for k, v in dict(data["buckets"]).items()}
        hist.count = int(data.get("count", sum(hist.buckets.values())))
        hist.total = int(data.get("total", 0))
        hist.min = None if data.get("min") is None else int(data["min"])  # type: ignore[arg-type]
        hist.max = None if data.get("max") is None else int(data["max"])  # type: ignore[arg-type]
        return hist

    @classmethod
    def from_sparse(
        cls, buckets: Mapping[int, int], sub_bits: int = DEFAULT_SUB_BITS
    ) -> "LogHistogram":
        """Rebuild from bare ``{bucket_index: count}`` pairs.

        ``count`` is exact; ``total``/``min``/``max`` are reconstructed
        from bucket bounds (bucket-resolution accuracy), which is all the
        percentile queries need.  Zero/negative counts are dropped, so
        windowed counter diffs feed in directly.
        """
        hist = cls(sub_bits)
        for idx, n in buckets.items():
            n = int(n)
            if n <= 0:
                continue
            idx = int(idx)
            hist.buckets[idx] = hist.buckets.get(idx, 0) + n
            lo, hi = bucket_bounds(idx, sub_bits)
            mid = (lo + hi - 1) // 2
            hist.count += n
            hist.total += mid * n
            if hist.min is None or lo < hist.min:
                hist.min = lo
            if hist.max is None or hi - 1 > hist.max:
                hist.max = hi - 1
        return hist

    def sparse(self) -> Dict[int, int]:
        """Bare ``{bucket_index: count}`` pairs (for counter flattening)."""
        return dict(self.buckets)

    # -- rendering ------------------------------------------------------

    def ascii(self, width: int = 40, max_rows: int = 24) -> str:
        """Plain-text bar chart of the bucket distribution."""
        if not self.buckets:
            return "(empty histogram)"
        rows: List[str] = []
        items = sorted(self.buckets.items())
        if len(items) > max_rows:
            # coarsen adjacent buckets to fit the row budget
            step = -(-len(items) // max_rows)
            merged = []
            for i in range(0, len(items), step):
                chunk = items[i : i + step]
                merged.append((chunk[0][0], chunk[-1][0], sum(c for _, c in chunk)))
        else:
            merged = [(idx, idx, n) for idx, n in items]
        peak = max(n for _, _, n in merged)
        for lo_idx, hi_idx, n in merged:
            lo, _ = bucket_bounds(lo_idx, self.sub_bits)
            _, hi = bucket_bounds(hi_idx, self.sub_bits)
            bar = "#" * max(1, round(n / peak * width))
            rows.append(f"{lo:>8}-{hi - 1:<8} {n:>8} {bar}")
        return "\n".join(rows)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(n={self.count}, mean={self.mean:.1f}, "
            f"p99={self.percentile(99):.0f})"
        )
