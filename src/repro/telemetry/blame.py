"""Stall attribution and backpressure blame analysis.

Two layers turn "the network is slow" into "node 23's reply buffer is the
culprit":

* **Stall attribution** (:class:`StallTable`): every cycle a head worm
  fails to advance, the router charges the cycle to exactly one class of
  a fixed taxonomy (:data:`STALL_CLASSES`).  Charging is *deferred*: the
  collector keeps one open record per blocked input VC and only charges
  when the stall class changes or the worm advances.  Repeated
  same-class observations are no-ops, and a router sleeping through an
  event-driven scheduling gap is charged correctly on wake — any event
  that could change a head worm's stall class also wakes its router, so
  the class is invariant over the gap.  Full-scan and event-driven runs
  therefore produce identical totals, and per-router totals equal the
  exact count of blocked head-worm cycles (the conservation property the
  tests enforce).

* **Blame chains** (:func:`walk_chain` / :func:`survey_stalls`): for a
  clogging episode the walker follows each blocked head worm downstream
  — credit and VC-allocation stalls name the downstream VC whose head
  worm is the blocker — until it reaches a terminal stall (ejection
  gate, switch loss, pipeline dwell, ...).  Chains that end at a memory
  node whose reply injection buffer cannot take one more reply are
  extended one step to a ``reply_buffer`` root: that is the paper's
  Figure 3 loop, where replies that cannot inject close the ejection
  gate and strand request worms hop by hop upstream.

Everything here is read-only over live router state; the walker never
mutates the simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.noc.nic import MemoryNodeNic
from repro.noc.packet import NetKind
from repro.noc.router import LOCAL_PORT, _AVAIL, _PKT, _READY

#: the fixed stall taxonomy, in charge-index order.
STALL_CLASSES = (
    "pipeline",       # header dwelling in the router pipeline
    "route",          # route computation found no admissible output port
    "vc_alloc",       # no downstream VC allocatable (held or credit-full)
    "credit",         # established worm out of downstream credits
    "switch",         # lost switch allocation to a higher-priority worm
    "serialization",  # head worm waiting for its own upstream flits
    "eject",          # ejection gate / NIC backpressure at the endpoint
    "reply_buffer",   # memory-node reply injection buffer full (Fig. 3)
)

# charge indices (module-level so the router hooks pay no lookup)
PIPELINE, ROUTE, VC_ALLOC, CREDIT, SWITCH, SERIALIZATION, EJECT, REPLY_BUFFER = (
    range(8)
)
N_CLASSES = len(STALL_CLASSES)

#: pseudo traffic class for memory-side counters (no single packet class)
ANY_CLS = -1


class StallTable:
    """Per-(net, router, port, class) stall-cycle counters.

    ``counts`` maps ``(net_name, router, port, traffic_cls)`` to a list of
    per-stall-class cycle counts.  ``_open`` holds the deferred records:
    ``(net_name, router, port, vc) -> [stall_class, since_cycle, cls]``.
    """

    __slots__ = ("counts", "_open")

    def __init__(self) -> None:
        self.counts: Dict[Tuple[str, int, int, int], List[int]] = {}
        self._open: Dict[Tuple[str, int, int, int], List[int]] = {}

    # -- deferred charging (router head worms) -------------------------

    def observe(
        self,
        net: str,
        rid: int,
        port: int,
        vc: int,
        cls: int,
        klass: int,
        cycle: int,
    ) -> None:
        """The head worm of ``(port, vc)`` is blocked on ``klass`` at
        ``cycle``.  Same-class re-observations are no-ops; a class change
        charges the elapsed span to the old class and reopens."""
        key = (net, rid, port, vc)
        rec = self._open.get(key)
        if rec is None:
            self._open[key] = [klass, cycle, cls]
            return
        if rec[0] == klass:
            return
        self._charge(key, rec, cycle)
        rec[0] = klass
        rec[1] = cycle
        rec[2] = cls

    def advance(self, net: str, rid: int, port: int, vc: int, cycle: int) -> None:
        """A flit of ``(port, vc)``'s head worm moved: close its record,
        charging every cycle since the stall began."""
        rec = self._open.pop((net, rid, port, vc), None)
        if rec is not None:
            self._charge((net, rid, port, vc), rec, cycle)

    def _charge(
        self, key: Tuple[str, int, int, int], rec: List[int], cycle: int
    ) -> None:
        n = cycle - rec[1]
        if n <= 0:
            return
        ckey = (key[0], key[1], key[2], rec[2])
        row = self.counts.get(ckey)
        if row is None:
            row = self.counts[ckey] = [0] * N_CLASSES
        row[rec[0]] += n

    # -- direct charging (per-cycle memory-side counters) ---------------

    def charge(
        self, net: str, rid: int, port: int, cls: int, klass: int, n: int = 1
    ) -> None:
        ckey = (net, rid, port, cls)
        row = self.counts.get(ckey)
        if row is None:
            row = self.counts[ckey] = [0] * N_CLASSES
        row[klass] += n

    # -- windows / finalize ---------------------------------------------

    def flush(self, cycle: int) -> None:
        """Charge every open record up to ``cycle`` (records stay open so
        accounting can continue across a window boundary)."""
        for key, rec in self._open.items():
            self._charge(key, rec, cycle)
            rec[1] = cycle

    def snapshot(self) -> Dict[Tuple[str, int, int, int], List[int]]:
        return {k: list(v) for k, v in self.counts.items()}

    def diff(
        self, base: Dict[Tuple[str, int, int, int], List[int]]
    ) -> Dict[Tuple[str, int, int, int], List[int]]:
        out = {}
        for key, row in self.counts.items():
            prev = base.get(key)
            d = list(row) if prev is None else [a - b for a, b in zip(row, prev)]
            if any(d):
                out[key] = d
        return out


# ---------------------------------------------------------------------------
# blame chains: read-only re-classification + downstream walking
# ---------------------------------------------------------------------------

#: continuation key: (downstream router, downstream input port, vc)
NextHop = Optional[Tuple[object, int, int]]


def classify_head(router, port: int, vc: int, cycle: int) -> Tuple[Optional[str], NextHop]:
    """Why can the head worm of input VC ``(port, vc)`` not advance?

    Read-only re-derivation of the arbitration checks in
    :meth:`repro.noc.router.Router._arbitrate_once`.  Returns ``(stall
    class name, next hop)``; class ``None`` means the worm is movable
    this cycle (at worst it loses switch allocation).  The next hop is
    set for ``credit``/``vc_alloc`` stalls — the downstream VC whose head
    worm is the blocker.  Heads whose route is not yet computed are
    approximated with the dimension-order port (exact for CDR configs).
    """
    q = router.buf[port][vc]
    if not q:
        return None, None
    head = q[0]
    pkt = head[_PKT]
    if head[_AVAIL] == 0:
        return STALL_CLASSES[SERIALIZATION], None
    if cycle < head[_READY]:
        return STALL_CLASSES[PIPELINE], None
    net = router.net
    oport = router.route_out[port][vc]
    if oport < 0:
        oport = net.dor_port(router, pkt)
    if oport == LOCAL_PORT:
        if router.sent[port][vc] == 0 and not net.nics[router.rid].can_eject(pkt):
            return STALL_CLASSES[EJECT], None
        return None, None
    down, dport = router.downstream[oport]
    ovc = router.out_vc[port][vc]
    if ovc >= 0:
        if down.occ[dport][ovc] >= down.vc_cap:
            return STALL_CLASSES[CREDIT], (down, dport, ovc)
        owner = down.owner[dport][ovc]
        if owner is not None and owner is not pkt:
            return STALL_CLASSES[VC_ALLOC], (down, dport, ovc)
        return None, None
    # header without an allocated VC: scan the candidates read-only
    vlo, vhi = net.vc_range(pkt)
    escape_only = net.escape_vc_active
    blocker = -1
    for cand in range(vlo, vhi):
        if escape_only and cand == vlo and oport != net.dor_port(router, pkt):
            continue
        if down.owner[dport][cand] is None and down.occ[dport][cand] < down.vc_cap:
            return None, None  # allocatable this cycle: movable
        if blocker < 0:
            blocker = cand
    if blocker < 0:
        return STALL_CLASSES[ROUTE], None  # escape-only port with no VC
    return STALL_CLASSES[VC_ALLOC], (down, dport, blocker)


def walk_chain(router, port: int, vc: int, cycle: int, max_hops: int = 64) -> List[Dict]:
    """Follow one blocked head worm downstream to its terminal blocker.

    Returns the chain as hop dicts, upstream victim first; the last entry
    is the terminal blocker (its ``class`` the root stall class).  Chains
    whose terminal is an ejection stall at a memory node with a full
    reply injection buffer gain a final ``reply_buffer`` hop — the
    paper's Figure 3 causal loop closed.
    """
    hops: List[Dict] = []
    visited = set()
    r, p, v = router, port, vc
    while True:
        key = (id(r), p, v)
        if key in visited:
            hops.append({"node": r.rid, "net": r.net.name, "class": "cyclic"})
            break
        visited.add(key)
        q = r.buf[p][v]
        if not q:
            hops.append({"node": r.rid, "net": r.net.name, "class": "drained"})
            break
        klass, nxt = classify_head(r, p, v, cycle)
        pkt = q[0][_PKT]
        hops.append(
            {
                "node": r.rid,
                "net": r.net.name,
                "port": p,
                "vc": v,
                "cls": pkt.cls.name,
                "dst": pkt.dst,
                "class": klass or "moving",
            }
        )
        if (
            klass in ("credit", "vc_alloc")
            and nxt is not None
            and len(hops) < max_hops
        ):
            r, p, v = nxt
            continue
        break
    term = hops[-1]
    if term["class"] == "eject":
        nic = r.net.nics[term["node"]]
        if isinstance(nic, MemoryNodeNic) and not nic.can_enqueue(NetKind.REPLY):
            hops.append(
                {"node": term["node"], "net": "mem", "class": "reply_buffer"}
            )
    return hops


def survey_stalls(nets, cycle: int, max_hops: int = 64) -> Dict[Tuple[int, str], Dict]:
    """Walk every blocked head worm across ``nets`` and group the chains
    by terminal blocker.

    Returns ``{(terminal node, terminal class): group}`` where each group
    counts chains, per-traffic-class victims, the deepest chain length
    and keeps that deepest chain as a sample.
    """
    groups: Dict[Tuple[int, str], Dict] = {}
    for net in nets:
        for router in net.routers:
            if not router.active:
                continue
            for (port, vc), q in router.active.items():
                if not q:
                    continue
                klass, _ = classify_head(router, port, vc, cycle)
                if klass is None:
                    continue
                chain = walk_chain(router, port, vc, cycle, max_hops=max_hops)
                term = chain[-1]
                gkey = (term["node"], term["class"])
                g = groups.get(gkey)
                if g is None:
                    g = groups[gkey] = {
                        "chains": 0,
                        "victims": {},
                        "max_depth": 0,
                        "sample": chain,
                    }
                g["chains"] += 1
                cls = chain[0].get("cls", "?")
                g["victims"][cls] = g["victims"].get(cls, 0) + 1
                depth = len(chain)
                if depth > g["max_depth"]:
                    g["max_depth"] = depth
                    g["sample"] = chain
    return groups


class BlameAccumulator:
    """Aggregates per-probe blame surveys over one clogging episode."""

    def __init__(self, node: int) -> None:
        self.node = node
        self.walks = 0
        #: terminal stall class -> {"chains", "victims", "max_depth"}
        self.terminals: Dict[str, Dict] = {}
        self._sample: Optional[List[Dict]] = None
        self._sample_depth = 0

    def feed(self, groups: Dict[Tuple[int, str], Dict]) -> None:
        """Fold in one survey: only chains terminating at this node."""
        self.walks += 1
        for (tnode, tclass), g in groups.items():
            if tnode != self.node:
                continue
            t = self.terminals.get(tclass)
            if t is None:
                t = self.terminals[tclass] = {
                    "chains": 0,
                    "victims": {},
                    "max_depth": 0,
                }
            t["chains"] += g["chains"]
            for cls, n in g["victims"].items():
                t["victims"][cls] = t["victims"].get(cls, 0) + n
            if g["max_depth"] > t["max_depth"]:
                t["max_depth"] = g["max_depth"]
            if g["max_depth"] > self._sample_depth:
                self._sample_depth = g["max_depth"]
                self._sample = g["sample"]

    def root_cause(self) -> Dict:
        """The episode's blame verdict: the terminal stall class that
        blocked the most chains at this node (reply-buffer wins ties —
        it is the causal root of every ejection stall it feeds)."""
        if not self.terminals:
            return {
                "node": self.node,
                "class": "reply_buffer",
                "chains": 0,
                "walks": self.walks,
                "note": "no blocked chains terminated here "
                "(injection-bandwidth bound)",
            }
        tclass, t = max(
            self.terminals.items(),
            key=lambda kv: (kv[1]["chains"], kv[0] == "reply_buffer"),
        )
        out = {
            "node": self.node,
            "class": tclass,
            "chains": t["chains"],
            "total_chains": sum(x["chains"] for x in self.terminals.values()),
            "victims": dict(t["victims"]),
            "max_depth": t["max_depth"],
            "walks": self.walks,
        }
        if self._sample is not None:
            out["sample"] = self._sample
        return out
