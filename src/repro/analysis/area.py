"""DSENT/CACTI-style analytic area models (Sections III-B and IV).

The paper uses DSENT v0.91 [54] for NoC area/power and CACTI 6.5 [47] for
the core-pointer storage, both at a 22 nm node.  Neither tool is
redistributable, so this module implements the scaling laws those tools
embody, calibrated to the paper's published absolute numbers:

* baseline mesh NoC area           2.27 mm²
* double-bandwidth mesh NoC area   5.76 mm²  (2.5x — crossbar area grows
  quadratically with channel width, buffers linearly)
* Delegated Replies NoC additions  0.092 mm² (the 40 FRQs)
* core-pointer storage             0.08 mm²  (6-bit pointers, 8 MB LLC)
* total Delegated Replies overhead 0.172 mm² (≈5% of the 2x-NoC's extra
  3.49 mm²)

The router model follows DSENT's decomposition: input buffers scale with
``vcs x depth x width``, the crossbar with ``ports² x width²``, the
allocator with ``ports x vcs``; link (wire) area scales with width and
length (4.3 mm links, per Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.system import SystemConfig
from repro.noc.topology import build_topology

#: technology-dependent coefficients (mm² units), calibrated so the
#: baseline 8x8 mesh (two physical networks, 2 VCs x 4 flits x 16 B)
#: lands on the paper's 2.27 mm² and the double-width mesh on 5.76 mm².
BUFFER_MM2_PER_BYTE = 1.2207e-5
CROSSBAR_MM2_PER_PORT2_BYTE2 = 1.0135e-6
ALLOCATOR_MM2_PER_PORT_VC = 1.302e-4
LINK_MM2_PER_BYTE_MM = 1.7358e-5
LINK_LENGTH_MM = 4.3

#: CACTI-style SRAM density for the (large, regular) pointer array and the
#: (tiny, peripheral-dominated) FRQ queues at 22 nm
POINTER_SRAM_MM2_PER_BIT = 2.0345e-7
FRQ_MM2_PER_BIT = 4.5e-6


@dataclass
class AreaReport:
    """NoC area decomposition in mm²."""

    buffers: float
    crossbars: float
    allocators: float
    links: float

    @property
    def total(self) -> float:
        return self.buffers + self.crossbars + self.allocators + self.links

    def as_dict(self) -> Dict[str, float]:
        return {
            "buffers": self.buffers,
            "crossbars": self.crossbars,
            "allocators": self.allocators,
            "links": self.links,
            "total": self.total,
        }


def router_area(ports: int, vcs: int, vc_depth: int, width_bytes: float) -> float:
    """Area of one router (mm²)."""
    buffers = BUFFER_MM2_PER_BYTE * ports * vcs * vc_depth * width_bytes
    crossbar = CROSSBAR_MM2_PER_PORT2_BYTE2 * (ports ** 2) * (width_bytes ** 2)
    allocator = ALLOCATOR_MM2_PER_PORT_VC * ports * vcs
    return buffers + crossbar + allocator


def noc_area(cfg: SystemConfig) -> AreaReport:
    """Total NoC area for the configured topology and channel width.

    Covers both physical networks (or the one shared network with the
    combined VC count).  ``bandwidth_factor`` scales the effective channel
    width, reproducing the paper's 2x-bandwidth experiments.
    """
    noc = cfg.noc
    width = noc.channel_width_bytes * noc.bandwidth_factor
    topo = build_topology(noc.topology, cfg.mesh_width, cfg.mesh_height)
    if noc.separate_physical_networks:
        networks = 2
        vcs = noc.vcs_per_port
    else:
        networks = 1
        vcs = noc.request_vcs + noc.reply_vcs
    buffers = crossbars = allocators = 0.0
    for rid in range(topo.n):
        ports = 1 + len(topo.neighbors(rid))
        buffers += BUFFER_MM2_PER_BYTE * ports * vcs * noc.vc_depth_flits * width
        crossbars += CROSSBAR_MM2_PER_PORT2_BYTE2 * (ports ** 2) * (width ** 2)
        allocators += ALLOCATOR_MM2_PER_PORT_VC * ports * vcs
    n_links = len(topo.links())
    links = LINK_MM2_PER_BYTE_MM * width * LINK_LENGTH_MM * n_links * 2  # both directions
    return AreaReport(
        buffers=buffers * networks,
        crossbars=crossbars * networks,
        allocators=allocators * networks,
        links=links * networks,
    )


def core_pointer_area(cfg: SystemConfig) -> float:
    """CACTI-style area of the LLC core-pointer storage (mm²).

    One 6-bit pointer per LLC line for 40 GPU cores; with an 8 MB LLC of
    128 B lines the paper reports 0.08 mm².
    """
    bits_per_pointer = max(1, (cfg.n_gpu - 1).bit_length())
    total_lines = (
        cfg.llc.slice_size_bytes // cfg.llc.line_bytes
    ) * cfg.n_mem
    return total_lines * bits_per_pointer * POINTER_SRAM_MM2_PER_BIT


def frq_area(cfg: SystemConfig) -> float:
    """DSENT-style area of the FRQs across all GPU cores (mm²).

    Each FRQ entry stores a requester id, a 48-bit block address and
    bookkeeping (~64 bits); the paper reports 0.092 mm² for 40 cores x 8
    entries.
    """
    bits_per_entry = 64
    return cfg.n_gpu * cfg.gpu_l1.frq_entries * bits_per_entry * FRQ_MM2_PER_BIT


def delegated_replies_overhead(cfg: SystemConfig) -> Dict[str, float]:
    """Total hardware overhead of Delegated Replies (Section IV)."""
    pointers = core_pointer_area(cfg)
    frqs = frq_area(cfg)
    return {
        "core_pointers": pointers,
        "frqs": frqs,
        "total": pointers + frqs,
    }
