"""Activity-based NoC and system energy model (Section VII).

DSENT computes NoC power from activity factors collected during timing
simulation; we do the same with the simulator's flit/hop counters:

* *NoC dynamic energy* = link energy per flit-hop + router energy per
  routed flit.  Delegated Replies *reduces* it slightly (multi-flit
  replies travel fewer hops core-to-core than from the memory nodes) while
  RP *increases* it (5.9x request inflation from probing) — both effects
  emerge from the counters.
* *System energy* combines static power (which dominates and scales with
  execution time, i.e. inversely with IPC for fixed work) with dynamic
  per-instruction energy.  The paper's total-system reductions (-13.6%
  for Delegated Replies, -7.4% for RP) are "primarily due to shorter
  execution time"; the constants below are calibrated to DSENT's
  22 nm outputs so that relationship holds.

Energies are reported *per unit of work* (per instruction), which is the
correct basis for comparing configurations that make different progress in
the same simulated window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config.system import SystemConfig
from repro.sim.metrics import SimulationResult

#: 22 nm-class energy coefficients
LINK_ENERGY_PJ_PER_FLIT_HOP = 82.0     # 128-bit flit over a 4.3 mm link
ROUTER_ENERGY_PJ_PER_FLIT = 50.0       # buffer write/read + crossbar + alloc
#: chip-level constants (GPU SMs dominate; Fermi-class SM at 22 nm)
STATIC_POWER_W = 80.0
CLOCK_HZ = 1.4e9
DYNAMIC_PJ_PER_INST = 7300.0           # per GPU-warp instruction equivalent


@dataclass
class EnergyReport:
    """Energy accounting for one simulation window."""

    noc_dynamic_uj: float          # NoC dynamic energy in the window (uJ)
    noc_dynamic_pj_per_inst: float
    system_pj_per_inst: float      # static + dynamic, per instruction
    insts: float
    cycles: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "noc_dynamic_uj": self.noc_dynamic_uj,
            "noc_dynamic_pj_per_inst": self.noc_dynamic_pj_per_inst,
            "system_pj_per_inst": self.system_pj_per_inst,
            "insts": self.insts,
            "cycles": self.cycles,
        }


def energy_report(result: SimulationResult, cfg: SystemConfig) -> EnergyReport:
    """Compute the window's energy from the simulation counters."""
    c = result.counters
    flits_routed = c.get("noc.req_flits_routed", 0) + c.get(
        "noc.rep_flits_routed", 0
    )
    # every routed flit traversed one link into the router that counted it,
    # so flits_routed doubles as the flit-hop count
    noc_dynamic_pj = flits_routed * (
        LINK_ENERGY_PJ_PER_FLIT_HOP + ROUTER_ENERGY_PJ_PER_FLIT
    )
    insts = max(1.0, c.get("gpu.insts", 0) + c.get("cpu.insts", 0))
    seconds = result.cycles / CLOCK_HZ
    static_pj = STATIC_POWER_W * seconds * 1e12
    system_pj_per_inst = (static_pj + noc_dynamic_pj) / insts + DYNAMIC_PJ_PER_INST
    return EnergyReport(
        noc_dynamic_uj=noc_dynamic_pj / 1e6,
        noc_dynamic_pj_per_inst=noc_dynamic_pj / insts,
        system_pj_per_inst=system_pj_per_inst,
        insts=insts,
        cycles=result.cycles,
    )
