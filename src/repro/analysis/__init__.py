"""Area/energy models (DSENT/CACTI-style) and report formatting."""

from repro.analysis.area import (
    AreaReport,
    core_pointer_area,
    delegated_replies_overhead,
    frq_area,
    noc_area,
    router_area,
)
from repro.analysis.energy import EnergyReport, energy_report
from repro.analysis.report import amean, format_table, geomean, hmean

__all__ = [
    "AreaReport",
    "EnergyReport",
    "amean",
    "core_pointer_area",
    "delegated_replies_overhead",
    "energy_report",
    "format_table",
    "frq_area",
    "geomean",
    "hmean",
    "noc_area",
    "router_area",
]
