"""Plain-text table formatting for experiment outputs.

Every experiment module returns rows of (label, {column: value}); this
module renders them the way the paper's figures/tables read: one row per
benchmark or configuration, a geometric/harmonic mean line where the paper
reports one.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

Row = Tuple[str, Mapping[str, float]]


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def hmean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return len(vals) / sum(1.0 / v for v in vals)


def amean(values: Iterable[float]) -> float:
    vals = list(values)
    return sum(vals) / len(vals) if vals else 0.0


def format_table(
    title: str,
    rows: Sequence[Row],
    columns: Optional[Sequence[str]] = None,
    mean: Optional[str] = "amean",
    label_header: str = "workload",
    precision: int = 3,
) -> str:
    """Render rows as an aligned text table with an optional mean row."""
    if not rows:
        return f"== {title} ==\n(no data)\n"
    if columns is None:
        columns = list(rows[0][1].keys())
    label_w = max(len(label_header), max(len(r[0]) for r in rows), 6)
    col_w = {c: max(len(c), precision + 6) for c in columns}
    out: List[str] = [f"== {title} =="]
    header = f"{label_header:<{label_w}}  " + "  ".join(
        f"{c:>{col_w[c]}}" for c in columns
    )
    out.append(header)
    out.append("-" * len(header))
    for label, values in rows:
        cells = []
        for c in columns:
            v = values.get(c)
            cells.append(
                f"{v:>{col_w[c]}.{precision}f}"
                if isinstance(v, (int, float))
                else f"{'-':>{col_w[c]}}"
            )
        out.append(f"{label:<{label_w}}  " + "  ".join(cells))
    if mean is not None:
        fn = {"amean": amean, "geomean": geomean, "hmean": hmean}[mean]
        cells = []
        for c in columns:
            vals = [
                r[1][c]
                for r in rows
                if isinstance(r[1].get(c), (int, float))
            ]
            cells.append(f"{fn(vals):>{col_w[c]}.{precision}f}")
        out.append("-" * len(header))
        out.append(f"{mean:<{label_w}}  " + "  ".join(cells))
    out.append("")
    return "\n".join(out)
