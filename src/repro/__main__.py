"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``                     — benchmarks, mixes and experiments
* ``run GPU [CPU]``            — simulate one workload mix
* ``experiment NAME``          — regenerate one paper figure/table
* ``area``                     — print the area model's numbers

Examples::

    python -m repro run HS bodytrack --mechanism dr --cycles 3000
    python -m repro experiment fig10_gpu_perf
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list(_args) -> int:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.workloads import CPU_BENCHMARK_NAMES, GPU_BENCHMARK_NAMES, TABLE_II

    print("GPU benchmarks (Table II):")
    for name in GPU_BENCHMARK_NAMES:
        print(f"  {name:6s} co-runs with {', '.join(TABLE_II[name])}")
    print("\nCPU benchmarks (Parsec):")
    print("  " + ", ".join(CPU_BENCHMARK_NAMES))
    print("\nExperiments:")
    for module in ALL_EXPERIMENTS:
        name = module.__name__.rsplit(".", 1)[-1]
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:22s} {doc}")
    return 0


def _cmd_run(args) -> int:
    from repro.experiments.common import mechanism_config
    from repro.sim.simulator import run_simulation

    cfg = mechanism_config(args.mechanism)
    result = run_simulation(
        cfg, args.gpu, args.cpu, cycles=args.cycles, warmup=args.warmup
    )
    print(f"workload:            {args.gpu}"
          + (f" + {args.cpu}" if args.cpu else ""))
    print(f"mechanism:           {args.mechanism}")
    print(f"gpu_ipc:             {result.gpu_ipc:.4f}")
    print(f"gpu_data_rate:       {result.gpu_data_rate:.4f} flits/cyc/core")
    print(f"mem_blocking_rate:   {result.mem_blocking_rate:.3f}")
    if args.cpu:
        print(f"cpu_ipc:             {result.cpu_ipc:.4f}")
        print(f"cpu_latency_avg:     {result.cpu_latency_avg:.1f} cycles")
    if args.mechanism == "dr":
        bd = result.miss_breakdown()
        print(f"delegated_fraction:  {result.delegated_fraction:.3f}")
        print(f"miss breakdown:      llc={bd['llc']:.2f} "
              f"remote_hit={bd['remote_hit']:.2f} "
              f"remote_miss={bd['remote_miss']:.2f}")
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    try:
        module = importlib.import_module(f"repro.experiments.{args.name}")
    except ImportError:
        print(f"unknown experiment {args.name!r}; see `python -m repro list`",
              file=sys.stderr)
        return 2
    kwargs = {}
    if args.cycles:
        kwargs["cycles"] = args.cycles
    if args.warmup:
        kwargs["warmup"] = args.warmup
    if args.benchmarks:
        kwargs["benchmarks"] = args.benchmarks.split(",")
    result = module.run(**kwargs)
    print(result.text)
    return 0


def _cmd_area(_args) -> int:
    from repro.analysis.area import delegated_replies_overhead, noc_area
    from repro.config import baseline_config

    cfg = baseline_config()
    base = noc_area(cfg)
    cfg2 = baseline_config()
    cfg2.noc.bandwidth_factor = 2.0
    double = noc_area(cfg2)
    dr = delegated_replies_overhead(cfg)
    print(f"baseline NoC:      {base.total:.2f} mm2  {base.as_dict()}")
    print(f"2x-bandwidth NoC:  {double.total:.2f} mm2 "
          f"({double.total / base.total:.2f}x)")
    print(f"Delegated Replies: {dr['total']:.3f} mm2 "
          f"(pointers {dr['core_pointers']:.3f} + FRQs {dr['frqs']:.3f})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Delegated Replies (HPCA 2022) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and experiments")

    run_p = sub.add_parser("run", help="simulate one workload mix")
    run_p.add_argument("gpu", help="GPU benchmark (Table II name)")
    run_p.add_argument("cpu", nargs="?", default=None,
                       help="CPU benchmark (Parsec name)")
    run_p.add_argument("--mechanism", choices=["baseline", "rp", "dr"],
                       default="baseline")
    run_p.add_argument("--cycles", type=int, default=3000)
    run_p.add_argument("--warmup", type=int, default=2000)

    exp_p = sub.add_parser("experiment", help="regenerate a paper figure")
    exp_p.add_argument("name", help="experiment module, e.g. fig10_gpu_perf")
    exp_p.add_argument("--cycles", type=int, default=None)
    exp_p.add_argument("--warmup", type=int, default=None)
    exp_p.add_argument("--benchmarks", default=None,
                       help="comma-separated GPU benchmark subset")

    sub.add_parser("area", help="print the area model's numbers")

    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "area": _cmd_area,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
