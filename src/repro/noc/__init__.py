"""Cycle-level wormhole Network-on-Chip simulator.

Implements the paper's NoC substrate: flit-level wormhole flow control with
virtual channels and credit-based backpressure, physically separate (or
virtual) request/reply networks, CPU-over-GPU priority, CDR and adaptive
routing, and the mesh / crossbar / flattened-butterfly / Dragonfly
topologies.
"""

from repro.noc.analysis import (
    LinkLoad,
    hottest_links,
    link_loads,
    link_utilization_summary,
    node_injection_loads,
    render_mesh_heatmap,
)
from repro.noc.network import NocFabric, PhysicalNetwork
from repro.noc.nic import MemoryNodeNic, NodeInterface
from repro.noc.packet import (
    MessageType,
    NetKind,
    Packet,
    REQUEST_NET_TYPES,
    TrafficClass,
)
from repro.noc.router import LOCAL_PORT, Router
from repro.noc.routing import (
    DeterministicRouting,
    DyXYRouting,
    FootprintRouting,
    HARERouting,
    RoutingAlgorithm,
    build_routing,
)
from repro.noc.topology import (
    BaseTopology,
    CrossbarTopology,
    DragonflyTopology,
    FlattenedButterflyTopology,
    MeshTopology,
    build_topology,
)

__all__ = [
    "BaseTopology",
    "LinkLoad",
    "hottest_links",
    "link_loads",
    "link_utilization_summary",
    "node_injection_loads",
    "render_mesh_heatmap",
    "CrossbarTopology",
    "DeterministicRouting",
    "DragonflyTopology",
    "DyXYRouting",
    "FlattenedButterflyTopology",
    "FootprintRouting",
    "HARERouting",
    "LOCAL_PORT",
    "MemoryNodeNic",
    "MeshTopology",
    "MessageType",
    "NetKind",
    "NocFabric",
    "NodeInterface",
    "Packet",
    "PhysicalNetwork",
    "REQUEST_NET_TYPES",
    "Router",
    "RoutingAlgorithm",
    "TrafficClass",
    "build_routing",
    "build_topology",
]
