"""Node interfaces (NICs): injection queues, ejection and delegation hooks.

Each node owns one :class:`NodeInterface` with a per-network injection
queue.  Compute nodes use packet-count-bounded queues; memory nodes use a
flit-bounded *reply injection buffer* — the resource whose exhaustion is the
paper's definition of a *blocked* memory node (Figure 3).

The memory-node NIC implements the two scheduler behaviours the paper
builds on:

* CPU replies are selected before GPU replies (priority-based scheduling is
  only effective once replies actually reach this buffer — Section II), and
* when the reply network cannot accept a flit this cycle, the oldest
  *delegatable* reply is converted into a 1-flit delegated request on the
  (under-utilised) request network (Figure 4).  The delegation decision
  itself lives in :mod:`repro.core.delegated_replies` and is attached as a
  policy hook.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.noc.packet import NetKind, Packet, TrafficClass
from repro.noc.router import LOCAL_PORT

#: both network kinds, in injection order (hoisted off the hot path)
_NET_KINDS = (NetKind.REQUEST, NetKind.REPLY)


class NodeInterface:
    """Injection/ejection interface of a compute (CPU or GPU) node."""

    def __init__(self, node_id: int, fabric, queue_packets: int) -> None:
        self.node_id = node_id
        self.fabric = fabric
        self.queue_packets = queue_packets
        self.queues: Dict[NetKind, Deque[Packet]] = {
            NetKind.REQUEST: deque(),
            NetKind.REPLY: deque(),
        }
        #: per-network in-flight injections: vc -> [packet, flits_pushed].
        #: Multiple packets inject concurrently on different VCs, which is
        #: what lets a 2x-bandwidth link actually carry two worms.
        self._inflight: Dict[NetKind, Dict[int, List]] = {
            NetKind.REQUEST: {},
            NetKind.REPLY: {},
        }
        #: called with (packet, cycle) when a packet is fully ejected here.
        self.handler: Optional[Callable[[Packet, int], None]] = None
        #: attached :class:`~repro.telemetry.collector.TelemetryCollector`
        #: (None when telemetry is disabled; every hook site is one check).
        self.telemetry = None
        #: the collector again iff stall attribution is on (mode
        #: ``full``), else None — the per-cycle memory-side stall hooks
        #: gate on this so light mode pays nothing for them.
        self.stall_tel = None
        #: attached :class:`~repro.faults.controller.FaultController`
        #: retransmit guard (None unless a fault plan with events is
        #: installed; same single-check gating as telemetry).
        self.fault_guard = None
        #: optional admission control for ejection (e.g. a full FRQ refuses
        #: delegated requests, back-pressuring the request network); see the
        #: ``eject_gate`` property below.
        self._eject_gate_fn: Optional[Callable[[Packet], bool]] = None
        self.flits_injected = 0
        self.flits_injected_net: Dict[NetKind, int] = {
            NetKind.REQUEST: 0,
            NetKind.REPLY: 0,
        }
        self.packets_sent_net: Dict[NetKind, int] = {
            NetKind.REQUEST: 0,
            NetKind.REPLY: 0,
        }
        self.flits_received: Dict[TrafficClass, int] = {
            TrafficClass.CPU: 0,
            TrafficClass.GPU: 0,
        }
        self.data_flits_received = 0

    # -- endpoint-facing API -------------------------------------------

    def can_enqueue(self, net: NetKind) -> bool:
        return len(self.queues[net]) < self.queue_packets

    def try_send(self, pkt: Packet, cycle: int) -> bool:
        """Queue ``pkt`` for injection; False if the queue is full."""
        if not self.can_enqueue(pkt.net):
            return False
        if pkt.created < 0:
            pkt.created = cycle
        self.queues[pkt.net].append(pkt)
        self.packets_sent_net[pkt.net] += 1
        self.fabric.mark_nic_active(self.node_id)
        if self.telemetry is not None:
            self.telemetry.on_inject(pkt, cycle)
        if self.fault_guard is not None:
            self.fault_guard.on_send(self.node_id, pkt, cycle)
        return True

    # -- ejection (called by the network) ------------------------------

    @property
    def eject_gate(self) -> Optional[Callable[[Packet], bool]]:
        return self._eject_gate_fn

    @eject_gate.setter
    def eject_gate(self, fn: Optional[Callable[[Packet], bool]]) -> None:
        # swapping or removing a gate can open the ejection path, and local
        # routers may be sleeping on the old gate's refusal — wake them so
        # the active-set scheduler re-evaluates gated worms
        old = self._eject_gate_fn
        self._eject_gate_fn = fn
        if old is not None and fn is not old:
            self.notify_eject_ready()

    def can_eject(self, pkt: Packet) -> bool:
        """Whether a new worm destined here may start ejecting."""
        gate = self._eject_gate_fn
        if gate is not None:
            return gate(pkt)
        return True

    def notify_eject_ready(self) -> None:
        """Endpoints call this when a closed ejection gate may have
        reopened (e.g. the LLC input queue or the FRQ drained a slot);
        sleeping local routers then re-arbitrate their gated worms."""
        self.fabric.wake_node_routers(self.node_id)

    def deliver(self, pkt: Packet, cycle: int) -> None:
        if self.fault_guard is not None:
            self.fault_guard.on_deliver(self.node_id, pkt, cycle)
        self.flits_received[pkt.cls] += pkt.size_flits
        if pkt.size_flits > 1:
            self.data_flits_received += pkt.size_flits - 1
        if self.handler is not None:
            self.handler(pkt, cycle)

    # -- injection (called by the fabric each cycle) --------------------

    def idle(self) -> bool:
        """True when there is nothing to inject; the fabric then drops this
        NIC from its active set until the next successful ``try_send``."""
        return not (
            self.queues[NetKind.REQUEST]
            or self.queues[NetKind.REPLY]
            or self._inflight[NetKind.REQUEST]
            or self._inflight[NetKind.REPLY]
        )

    def inject_step(self, cycle: int) -> None:
        if self.fabric.separate_networks:
            for net in _NET_KINDS:
                if self.queues[net] or self._inflight[net]:
                    self._inject_net(net, cycle, self.fabric.bandwidth)
        else:
            # one physical network: the injection link is shared, so the
            # two queues share the per-cycle flit budget (reply first on
            # odd cycles to avoid starvation).
            order = (
                (NetKind.REPLY, NetKind.REQUEST)
                if cycle & 1
                else (NetKind.REQUEST, NetKind.REPLY)
            )
            budget = self.fabric.bandwidth
            for net in order:
                if budget <= 0:
                    break
                budget -= self._inject_net(net, cycle, budget)

    def _select_head(self, net: NetKind) -> Optional[Packet]:
        """The packet to inject next on ``net`` (FIFO for compute nodes)."""
        q = self.queues[net]
        return q[0] if q else None

    def _pop_head(self, net: NetKind, pkt: Packet) -> None:
        self.queues[net].remove(pkt)

    def _inject_net(self, net: NetKind, cycle: int, budget: int) -> int:
        """Push up to ``budget`` flits into the local router.

        In-flight packets (one per VC) push one flit each; remaining budget
        starts new packets from the queue on free VCs.  Returns the number
        of flits pushed.
        """
        pushed_now = 0
        router = self.fabric.router_for(self.node_id, net)
        inflight = self._inflight[net]
        accept = router.accept_flit
        occ_row = router.occ[LOCAL_PORT]
        owner_row = router.owner[LOCAL_PORT]
        cap = router.vc_cap
        # continue in-flight worms first (wormhole: must finish), lowest VC
        # first.  Sorting matters: dict order here is VC-*allocation* order,
        # which depends on the full history of completions — a latent
        # ordering assumption that made injection priority under contention
        # effectively random.  Lowest-VC-first is deterministic from current
        # state alone (and is what the vector backend implements).
        if inflight:
            for vc in sorted(inflight):
                if budget <= 0:
                    break
                entry = inflight[vc]
                pkt, pushed = entry
                # credit + write-lock check, inlined from router.can_accept
                if occ_row[vc] >= cap:
                    continue
                owner = owner_row[vc]
                if owner is not None and owner is not pkt:
                    continue
                is_tail = pushed + 1 == pkt.size_flits
                accept(LOCAL_PORT, vc, pkt, is_tail, cycle)
                pushed_now += 1
                budget -= 1
                if is_tail:
                    del inflight[vc]
                else:
                    entry[1] = pushed + 1
        # start new worms on free VCs
        while budget > 0:
            pkt = self._select_head(net)
            if pkt is None:
                break
            vc = self._pick_vc(router, pkt, exclude=inflight)
            if vc < 0:
                break
            self._pop_head(net, pkt)
            pkt.injected = cycle
            if self.telemetry is not None:
                self.telemetry.on_vc_alloc(pkt, cycle, vc)
            is_tail = pkt.size_flits == 1
            accept(LOCAL_PORT, vc, pkt, is_tail, cycle)
            pushed_now += 1
            budget -= 1
            if not is_tail:
                inflight[vc] = [pkt, 1]
        if pushed_now:
            self.flits_injected += pushed_now
            self.flits_injected_net[net] += pushed_now
        return pushed_now

    def _pick_vc(self, router, pkt: Packet, exclude) -> int:
        vlo, vhi = self.fabric.vc_range_for(pkt)
        owner_row = router.owner[LOCAL_PORT]
        occ_row = router.occ[LOCAL_PORT]
        cap = router.vc_cap
        for vc in range(vlo, vhi):
            if vc in exclude:
                continue
            if owner_row[vc] is None and occ_row[vc] < cap:
                return vc
        return -1


#: signature of the delegation policy: given a GPU reply packet, return the
#: core to delegate to, or None to inject normally.
DelegationPolicy = Callable[[Packet, int], Optional[Packet]]


class MemoryNodeNic(NodeInterface):
    """Memory-node NIC with a flit-bounded reply injection buffer."""

    def __init__(
        self,
        node_id: int,
        fabric,
        queue_packets: int,
        reply_buffer_flits: int,
    ) -> None:
        super().__init__(node_id, fabric, queue_packets)
        self.reply_buffer_flits = reply_buffer_flits
        self.blocked_cycles = 0
        self.observed_cycles = 0
        self.delegations = 0
        #: set by the Delegated Replies mechanism; maps a delegatable reply
        #: to its 1-flit delegated request (or None).
        self.delegation_policy: Optional[DelegationPolicy] = None
        self.max_delegations_per_cycle = 1
        #: whether to delegate only when the reply path is blocked.
        self.delegate_only_when_blocked = True
        #: reply-buffer occupancy in flits, maintained incrementally:
        #: +size on enqueue, -1 per injected reply flit, -size on
        #: delegation.  Equals queued flits plus un-injected in-flight
        #: flits, without rescanning the queue on every admission check.
        self._reply_occ = 0

    def idle(self) -> bool:
        # memory-node NICs never leave the fabric's active set: blocked /
        # observed-cycle accounting and the delegation trigger are
        # per-cycle behaviours even with empty queues.
        return False

    def try_send(self, pkt: Packet, cycle: int) -> bool:
        ok = super().try_send(pkt, cycle)
        if ok and pkt.net is NetKind.REPLY:
            self._reply_occ += pkt.size_flits
        return ok

    def _reply_occupancy(self) -> int:
        return self._reply_occ

    def can_enqueue(self, net: NetKind) -> bool:
        if net is NetKind.REPLY:
            # strict admission: the next (worst-case 9-flit) reply must fit
            # entirely; a buffer that cannot take one more reply is what the
            # paper calls a *blocked* memory node (Figure 3).
            headroom = self.reply_buffer_flits - self._reply_occupancy()
            return headroom >= 9
        return super().can_enqueue(net)

    def _select_head(self, net: NetKind) -> Optional[Packet]:
        q = self.queues[net]
        if not q:
            return None
        if net is NetKind.REPLY:
            # the injection-buffer scheduler prioritises CPU replies
            return min(q, key=lambda p: (p.cls, p.pid))
        return q[0]

    def inject_step(self, cycle: int) -> None:
        # the delegation trigger must observe *reply-network* progress only:
        # a cycle where a delegated 1-flit request injects while the reply
        # router refuses every flit is exactly the "blocked" case of Fig. 4.
        before = self.flits_injected_net[NetKind.REPLY]
        super().inject_step(cycle)
        moved = self.flits_injected_net[NetKind.REPLY] - before
        self._reply_occ -= moved
        replies_moved = moved > 0
        self._maybe_delegate(cycle, replies_moved)
        self.observed_cycles += 1
        if not self.can_enqueue(NetKind.REPLY):
            self.blocked_cycles += 1
            if self.stall_tel is not None:
                self.stall_tel.on_mem_reply_stall(self.node_id, cycle)

    def _maybe_delegate(self, cycle: int, replies_moved: bool) -> None:
        if self.delegation_policy is None:
            return
        queue = self.queues[NetKind.REPLY]
        if not queue:
            return
        # the memory node "cannot inject reply traffic" when its injection
        # buffer is full (it is blocked, Figure 3) or when the reply router
        # refused every flit this cycle (Figure 4, cycles 1-2)
        reply_blocked = not replies_moved or not self.can_enqueue(NetKind.REPLY)
        if self.delegate_only_when_blocked and not reply_blocked:
            return
        done = 0
        for pkt in list(queue):
            # packets mid-injection are no longer in the queue, so every
            # queued reply is still whole and safe to delegate
            if done >= self.max_delegations_per_cycle:
                break
            delegated = self.delegation_policy(pkt, cycle)
            if delegated is None:
                continue
            if not self.can_enqueue(NetKind.REQUEST):
                break  # request path full; keep the reply
            queue.remove(pkt)
            self._reply_occ -= pkt.size_flits
            # the reply never enters the reply network: undo its enqueue-time
            # accounting so noc.rep_packets counts actual reply traffic
            self.packets_sent_net[NetKind.REPLY] -= 1
            self.queues[NetKind.REQUEST].append(delegated)
            self.packets_sent_net[NetKind.REQUEST] += 1
            self.delegations += 1
            done += 1
            if self.telemetry is not None:
                self.telemetry.on_delegate(pkt, delegated, cycle)

    @property
    def blocking_rate(self) -> float:
        if self.observed_cycles == 0:
            return 0.0
        return self.blocked_cycles / self.observed_cycles
