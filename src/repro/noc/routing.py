"""Routing policies: CDR dimension-order routing and adaptive schemes.

The baseline uses Class-based Deterministic Routing (CDR) [3]: requests and
replies use *different* dimension orders (YX for requests, XY for replies in
the baseline layout) which separates CPU and GPU traffic except at the
memory-node routers (Section V).

The adaptive schemes of Section III-B — DyXY [45], Footprint [22] and
HARE [37] — choose among the minimal next hops using downstream congestion.
They are restricted to minimal routes and rely on the escape-VC mechanism in
:mod:`repro.noc.router` for deadlock freedom.  The paper finds all three
*reduce* performance versus CDR because the clogged links are the memory
nodes' single reply links, which no route can avoid.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config.system import DimensionOrder, NocConfig, RoutingPolicy
from repro.noc.packet import NetKind, Packet
from repro.noc.topology import BaseTopology


class RoutingAlgorithm:
    """Chooses the next-hop router for a packet at a router."""

    #: True when the policy routes adaptively (enables the escape VC).
    adaptive = False

    def __init__(self, topology: BaseTopology, cfg: NocConfig) -> None:
        self.topology = topology
        self.cfg = cfg

    def order_for(self, pkt: Packet) -> DimensionOrder:
        """Dimension order used by a packet's traffic class (CDR)."""
        if pkt.net is NetKind.REQUEST:
            return self.cfg.request_order
        return self.cfg.reply_order

    def dor_next(self, cur: int, pkt: Packet) -> int:
        """The dimension-order next hop (also the escape-VC route)."""
        return self.topology.route_next(cur, pkt.dst, self.order_for(pkt))

    def next_hop(self, network, cur: int, pkt: Packet) -> int:
        """Next-hop router id for ``pkt`` currently at router ``cur``."""
        raise NotImplementedError


class DeterministicRouting(RoutingAlgorithm):
    """CDR: per-class dimension-order routing [3]."""

    def next_hop(self, network, cur: int, pkt: Packet) -> int:
        return self.dor_next(cur, pkt)


class AdaptiveRouting(RoutingAlgorithm):
    """Base class for minimal adaptive schemes (mesh only)."""

    adaptive = True

    def congestion(self, network, cur: int, nxt: int, pkt: Packet) -> float:
        """Estimated congestion of the ``cur -> nxt`` link; lower is better."""
        return -network.downstream_free(cur, nxt)

    def next_hop(self, network, cur: int, pkt: Packet) -> int:
        cands = self.topology.adaptive_candidates(cur, pkt.dst)
        if len(cands) <= 1:
            return self.dor_next(cur, pkt)
        return self.select(network, cur, cands, pkt)

    def select(self, network, cur: int, cands: List[int], pkt: Packet) -> int:
        raise NotImplementedError


class DyXYRouting(AdaptiveRouting):
    """DyXY [45]: pick the minimal direction with more free downstream space."""

    def select(self, network, cur: int, cands: List[int], pkt: Packet) -> int:
        return min(
            cands, key=lambda nxt: (self.congestion(network, cur, nxt, pkt), nxt)
        )


class FootprintRouting(AdaptiveRouting):
    """Footprint [22]: regulated adaptiveness.

    Deviate from dimension order only when the DOR direction is markedly
    more congested than the alternative (hysteresis threshold in flits).
    """

    def __init__(self, topology: BaseTopology, cfg: NocConfig, threshold: int = 3):
        super().__init__(topology, cfg)
        self.threshold = threshold

    def select(self, network, cur: int, cands: List[int], pkt: Packet) -> int:
        dor = self.dor_next(cur, pkt)
        alts = [c for c in cands if c != dor]
        if not alts:
            return dor
        alt = alts[0]
        dor_cong = self.congestion(network, cur, dor, pkt)
        alt_cong = self.congestion(network, cur, alt, pkt)
        if dor_cong - alt_cong > self.threshold:
            return alt
        return dor


class HARERouting(AdaptiveRouting):
    """HARE [37]: history-aware congestion estimation (EWMA per link)."""

    def __init__(self, topology: BaseTopology, cfg: NocConfig, alpha: float = 0.9):
        super().__init__(topology, cfg)
        self.alpha = alpha
        self._history: Dict[Tuple[int, int], float] = {}

    def congestion(self, network, cur: int, nxt: int, pkt: Packet) -> float:
        instant = -network.downstream_free(cur, nxt)
        key = (cur, nxt)
        prev = self._history.get(key, float(instant))
        ewma = self.alpha * prev + (1.0 - self.alpha) * instant
        self._history[key] = ewma
        return ewma

    def select(self, network, cur: int, cands: List[int], pkt: Packet) -> int:
        return min(
            cands, key=lambda nxt: (self.congestion(network, cur, nxt, pkt), nxt)
        )


def build_routing(topology: BaseTopology, cfg: NocConfig) -> RoutingAlgorithm:
    """Construct the configured routing policy."""
    policy = cfg.routing
    if policy is RoutingPolicy.CDR:
        return DeterministicRouting(topology, cfg)
    if policy is RoutingPolicy.DYXY:
        return DyXYRouting(topology, cfg)
    if policy is RoutingPolicy.FOOTPRINT:
        return FootprintRouting(topology, cfg)
    if policy is RoutingPolicy.HARE:
        return HARERouting(topology, cfg)
    raise ValueError(f"unknown routing policy {policy}")
