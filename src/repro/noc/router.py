"""Wormhole router with virtual channels and class-based priority.

The router models:

* per-input-port, per-VC flit buffers with credit-based backpressure,
* wormhole flow control — a packet (worm) holds its downstream VC from
  header to tail, and flits of different packets never interleave within a
  VC,
* switch allocation with CPU-over-GPU priority (the baseline gives CPU
  traffic higher priority throughout the memory system, Section II),
* a router pipeline: a worm's header must dwell ``pipeline_cycles`` cycles
  in an input buffer before it can be forwarded; body flits then stream at
  link rate, exactly like a pipelined wormhole router,
* an escape virtual channel for adaptive routing (Duato's construction):
  the first VC of a packet's VC range is reserved for dimension-order
  routes, which keeps the adaptive schemes of Section III-B deadlock-free.

Worms are *counter-based*: a buffer entry is ``[packet, flits_here,
ready_cycle]`` and the router tracks how many flits of the head worm it has
already forwarded.  This gives flit-level bandwidth and blocking behaviour
without per-flit objects.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.noc.packet import Packet

#: output/input port index of the local node interface.
LOCAL_PORT = 0

# buffer entry field indices
_PKT, _AVAIL, _READY = 0, 1, 2


class Router:
    """One NoC router; created and stepped by :class:`PhysicalNetwork`."""

    __slots__ = (
        "rid",
        "net",
        "nports",
        "vcs",
        "vc_cap",
        "pipeline",
        "buf",
        "occ",
        "owner",
        "route_out",
        "out_vc",
        "sent",
        "active",
        "downstream",
        "flits_routed",
    )

    def __init__(
        self,
        rid: int,
        net: "PhysicalNetwork",
        nports: int,
        vcs: int,
        vc_cap: int,
        pipeline: int,
    ) -> None:
        self.rid = rid
        self.net = net
        self.nports = nports
        self.vcs = vcs
        self.vc_cap = vc_cap
        self.pipeline = pipeline
        self.buf: List[List[deque]] = [
            [deque() for _ in range(vcs)] for _ in range(nports)
        ]
        self.occ = [[0] * vcs for _ in range(nports)]
        #: worm currently streaming *into* each input VC (write lock).
        self.owner: List[List[Optional[Packet]]] = [
            [None] * vcs for _ in range(nports)
        ]
        #: chosen output port for the head worm of each input VC (-1 unset).
        self.route_out = [[-1] * vcs for _ in range(nports)]
        #: allocated downstream VC for the head worm (-1 unset).
        self.out_vc = [[-1] * vcs for _ in range(nports)]
        #: flits of the head worm already forwarded from this router.
        self.sent = [[0] * vcs for _ in range(nports)]
        #: input VCs that currently hold any worm state; kept exact so the
        #: network can skip idle routers entirely.
        self.active: Dict[Tuple[int, int], bool] = {}
        #: output port -> (downstream router, downstream input port);
        #: filled in by the network during wiring.  Entry for LOCAL_PORT is
        #: None (ejection goes to the node interface).
        self.downstream: List[Optional[Tuple["Router", int]]] = [None] * nports
        #: total flits moved through this router (energy model input).
        self.flits_routed = 0

    # ------------------------------------------------------------------
    # buffer interface used by upstream routers and node interfaces
    # ------------------------------------------------------------------

    def can_accept(self, port: int, vc: int, pkt: Packet) -> bool:
        """True if one flit of ``pkt`` can enter input VC ``(port, vc)``."""
        if self.occ[port][vc] >= self.vc_cap:
            return False
        owner = self.owner[port][vc]
        return owner is None or owner is pkt

    def accept_flit(self, port: int, vc: int, pkt: Packet, is_tail: bool, cycle: int) -> None:
        """Receive one flit of ``pkt`` into input VC ``(port, vc)``."""
        q = self.buf[port][vc]
        owner = self.owner[port][vc]
        if owner is pkt and q and q[-1][_PKT] is pkt:
            q[-1][_AVAIL] += 1
        elif owner is pkt:
            # continuation of a worm whose buffered flits already drained:
            # the path is established, body flits flow without re-paying
            # the router pipeline
            q.append([pkt, 1, cycle])
            self.active[(port, vc)] = True
        else:
            # header flit of a new worm in this VC
            q.append([pkt, 1, cycle + self.pipeline])
            self.owner[port][vc] = pkt
            self.active[(port, vc)] = True
        self.occ[port][vc] += 1
        if is_tail:
            self.owner[port][vc] = None

    def free_flits(self, port: int) -> int:
        """Total free buffer space on an input port (congestion metric)."""
        occ = self.occ[port]
        return self.vc_cap * self.vcs - sum(occ)

    def free_flits_range(self, port: int, vlo: int, vhi: int) -> int:
        occ = self.occ[port]
        return self.vc_cap * (vhi - vlo) - sum(occ[vlo:vhi])

    def buffered_flits(self) -> int:
        return sum(sum(row) for row in self.occ)

    # ------------------------------------------------------------------
    # per-cycle switch traversal
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        """Arbitrate each output port and move up to ``bw`` flits per port."""
        if not self.active:
            return
        net = self.net
        for _ in range(net.bandwidth):
            if not self._arbitrate_once(cycle, net):
                break

    def _arbitrate_once(self, cycle: int, net: "PhysicalNetwork") -> bool:
        """One switch-allocation pass; returns True if any flit moved."""
        # output port -> (priority key, iport, ivc)
        winners: Dict[int, Tuple[Tuple[int, int], int, int]] = {}
        buf = self.buf
        route_out = self.route_out
        out_vc = self.out_vc
        dead = []
        for key_iv in self.active:
            iport, ivc = key_iv
            q = buf[iport][ivc]
            if not q:
                dead.append(key_iv)
                continue
            head = q[0]
            if head[_AVAIL] == 0 or cycle < head[_READY]:
                continue
            pkt: Packet = head[_PKT]
            oport = route_out[iport][ivc]
            if oport < 0:
                oport = net.route(self, pkt)
                if oport < 0:
                    continue  # no admissible output this cycle
                route_out[iport][ivc] = oport
            if oport == LOCAL_PORT:
                # ejection: gate new worms on endpoint acceptance
                if self.sent[iport][ivc] == 0 and not net.nics[self.rid].can_eject(pkt):
                    continue
            else:
                ovc = out_vc[iport][ivc]
                down, dport = self.downstream[oport]
                if ovc >= 0:
                    # fast path: established worm, check credit + write lock
                    if down.occ[dport][ovc] >= down.vc_cap:
                        continue
                    owner = down.owner[dport][ovc]
                    if owner is not None and owner is not pkt:
                        continue
                elif not self._allocate_vc(iport, ivc, oport, pkt, down, dport):
                    if net.escape_vc_active and out_vc[iport][ivc] < 0:
                        # adaptive choice stuck before VC allocation: allow a
                        # re-route next cycle so the escape (DOR) path stays
                        # reachable (deadlock freedom).
                        route_out[iport][ivc] = -1
                    continue
            key = (pkt.cls, pkt.pid)
            cur = winners.get(oport)
            if cur is None or key < cur[0]:
                winners[oport] = (key, iport, ivc)
        for key_iv in dead:
            self.active.pop(key_iv, None)
        if not winners:
            return False
        # the crossbar transfers at most one flit per input port and one
        # per output port per cycle (Section II's switch constraints);
        # winners is per-output already, now enforce per-input uniqueness
        taken_inputs = set()
        moved = False
        for oport, (key, iport, ivc) in sorted(
            winners.items(), key=lambda kv: kv[1][0]
        ):
            if iport in taken_inputs:
                continue
            taken_inputs.add(iport)
            self._move_flit(iport, ivc, oport, cycle)
            moved = True
        return moved

    def _allocate_vc(
        self, iport: int, ivc: int, oport: int, pkt: Packet, down, dport
    ) -> bool:
        """Allocate a downstream VC with credit for a worm's header."""
        vlo, vhi = self.net.vc_range(pkt)
        escape_only_dor = self.net.escape_vc_active
        for vc in range(vlo, vhi):
            if escape_only_dor and vc == vlo and oport != self.net.dor_port(self, pkt):
                continue  # escape VC is reserved for dimension-order hops
            if down.owner[dport][vc] is None and down.occ[dport][vc] < down.vc_cap:
                self.out_vc[iport][ivc] = vc
                return True
        return False

    def _move_flit(self, iport: int, ivc: int, oport: int, cycle: int) -> None:
        q = self.buf[iport][ivc]
        head = q[0]
        pkt: Packet = head[_PKT]
        head[_AVAIL] -= 1
        self.occ[iport][ivc] -= 1
        self.sent[iport][ivc] += 1
        self.flits_routed += 1
        is_tail = self.sent[iport][ivc] == pkt.size_flits
        if oport == LOCAL_PORT:
            self.net.eject_flit(self.rid, pkt, is_tail, cycle)
        else:
            down, dport = self.downstream[oport]
            ovc = self.out_vc[iport][ivc]
            down.accept_flit(dport, ovc, pkt, is_tail, cycle)
            self.net.count_link_flit(self.rid, oport)
        if is_tail:
            pkt.hops += 1
            q.popleft()
            self.route_out[iport][ivc] = -1
            self.out_vc[iport][ivc] = -1
            self.sent[iport][ivc] = 0
            if not q:
                self.active.pop((iport, ivc), None)
        elif head[_AVAIL] == 0 and q[0] is head:
            # worm stalled waiting for upstream flits; stays head
            pass
