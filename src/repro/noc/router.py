"""Wormhole router with virtual channels and class-based priority.

The router models:

* per-input-port, per-VC flit buffers with credit-based backpressure,
* wormhole flow control — a packet (worm) holds its downstream VC from
  header to tail, and flits of different packets never interleave within a
  VC,
* switch allocation with CPU-over-GPU priority (the baseline gives CPU
  traffic higher priority throughout the memory system, Section II),
* a router pipeline: a worm's header must dwell ``pipeline_cycles`` cycles
  in an input buffer before it can be forwarded; body flits then stream at
  link rate, exactly like a pipelined wormhole router,
* an escape virtual channel for adaptive routing (Duato's construction):
  the first VC of a packet's VC range is reserved for dimension-order
  routes, which keeps the adaptive schemes of Section III-B deadlock-free.

Worms are *counter-based*: a buffer entry is ``[packet, flits_here,
ready_cycle]`` and the router tracks how many flits of the head worm it has
already forwarded.  This gives flit-level bandwidth and blocking behaviour
without per-flit objects.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.noc.packet import Packet

#: output/input port index of the local node interface.
LOCAL_PORT = 0

# buffer entry field indices
_PKT, _AVAIL, _READY = 0, 1, 2

# stall-attribution charge indices.  These mirror the first seven entries
# of repro.telemetry.blame.STALL_CLASSES; they are duplicated here (and
# pinned by a test) because the telemetry package imports this module.
_ST_PIPELINE = 0
_ST_ROUTE = 1
_ST_VC_ALLOC = 2
_ST_CREDIT = 3
_ST_SWITCH = 4
_ST_SERIALIZATION = 5
_ST_EJECT = 6


class Router:
    """One NoC router; created and stepped by :class:`PhysicalNetwork`."""

    __slots__ = (
        "rid",
        "net",
        "nports",
        "vcs",
        "vc_cap",
        "pipeline",
        "buf",
        "occ",
        "owner",
        "route_out",
        "out_vc",
        "sent",
        "active",
        "downstream",
        "upstream",
        "flits_routed",
        "rescan",
        "wake_at",
        "wake_armed",
    )

    def __init__(
        self,
        rid: int,
        net: "PhysicalNetwork",
        nports: int,
        vcs: int,
        vc_cap: int,
        pipeline: int,
    ) -> None:
        self.rid = rid
        self.net = net
        self.nports = nports
        self.vcs = vcs
        self.vc_cap = vc_cap
        self.pipeline = pipeline
        self.buf: List[List[deque]] = [
            [deque() for _ in range(vcs)] for _ in range(nports)
        ]
        self.occ = [[0] * vcs for _ in range(nports)]
        #: worm currently streaming *into* each input VC (write lock).
        self.owner: List[List[Optional[Packet]]] = [
            [None] * vcs for _ in range(nports)
        ]
        #: chosen output port for the head worm of each input VC (-1 unset).
        self.route_out = [[-1] * vcs for _ in range(nports)]
        #: allocated downstream VC for the head worm (-1 unset).
        self.out_vc = [[-1] * vcs for _ in range(nports)]
        #: flits of the head worm already forwarded from this router.
        self.sent = [[0] * vcs for _ in range(nports)]
        #: input VCs that currently hold any worm state, mapped to their
        #: buffer deque; kept exact so the network can skip idle routers
        #: entirely (and the arbiter can skip the buffer indexing).
        self.active: Dict[Tuple[int, int], deque] = {}
        #: output port -> (downstream router, downstream input port);
        #: filled in by the network during wiring.  Entry for LOCAL_PORT is
        #: None (ejection goes to the node interface).
        self.downstream: List[Optional[Tuple["Router", int]]] = [None] * nports
        #: router feeding each input port (None for LOCAL_PORT: the NIC).
        #: Each input port has exactly one upstream, so a flit draining
        #: from it is a precise credit event for that neighbour.
        self.upstream: List[Optional["Router"]] = [None] * nports
        #: total flits moved through this router (energy model input).
        self.flits_routed = 0
        #: stall classification of the last arbitration pass, read by the
        #: network's active-set scheduler.  ``rescan`` means some head worm
        #: waits on a condition this router cannot observe changing
        #: (downstream credit, ejection gate, adaptive re-route), so the
        #: router must be re-arbitrated every cycle.  ``wake_at`` is the
        #: earliest pipeline-ready cycle among dwelling headers (-1: none).
        self.rescan = True
        self.wake_at = -1
        #: earliest timed wake currently sitting in the network's wake heap
        #: for this router (-1: none); lets the scheduler avoid pushing a
        #: duplicate heap entry per arriving body flit of a dwelling worm.
        self.wake_armed = -1

    # ------------------------------------------------------------------
    # buffer interface used by upstream routers and node interfaces
    # ------------------------------------------------------------------

    def can_accept(self, port: int, vc: int, pkt: Packet) -> bool:
        """True if one flit of ``pkt`` can enter input VC ``(port, vc)``."""
        if self.occ[port][vc] >= self.vc_cap:
            return False
        owner = self.owner[port][vc]
        return owner is None or owner is pkt

    def accept_flit(self, port: int, vc: int, pkt: Packet, is_tail: bool, cycle: int) -> None:
        """Receive one flit of ``pkt`` into input VC ``(port, vc)``."""
        q = self.buf[port][vc]
        owner_row = self.owner[port]
        if owner_row[vc] is pkt:
            if q and q[-1][_PKT] is pkt:
                q[-1][_AVAIL] += 1
            else:
                # continuation of a worm whose buffered flits already
                # drained: the path is established, body flits flow
                # without re-paying the router pipeline
                q.append([pkt, 1, cycle])
                self.active[(port, vc)] = q
        else:
            # header flit of a new worm in this VC
            q.append([pkt, 1, cycle + self.pipeline])
            owner_row[vc] = pkt
            self.active[(port, vc)] = q
            # telemetry: head arrival (once per worm, at its destination
            # router only) and the pipeline-dwell stall record.  The dwell
            # record opens *here*, not in arbitration: an event-driven run
            # sleeps through the dwell on a timed wake and would otherwise
            # never observe it, while a full scan re-observes it every
            # cycle as a no-op — opening at arrival keeps both charges equal.
            # The worm is first visible to per-cycle accounting at cycle+1.
            tel = self.net.telemetry
            if tel is not None and pkt.dst == self.rid:
                tel.on_head(pkt, cycle)
            stel = self.net.stall_tel
            if stel is not None and self.pipeline and len(q) == 1:
                stel.on_stall(self, port, vc, pkt, _ST_PIPELINE, cycle + 1)
        self.occ[port][vc] += 1
        if is_tail:
            owner_row[vc] = None
        # every arriving flit is a wake-up event for the scheduler: it may
        # unblock a head worm that was waiting for upstream flits (inline
        # membership guard — the receiver is usually awake already).  While
        # the head worm is still dwelling in the router pipeline nothing
        # can move before its ready cycle, so arrivals during the dwell arm
        # a timed wake instead of forcing a no-op arbitration pass per flit.
        net = self.net
        if self.rid not in net._active_ids:
            ready = q[0][_READY]
            if ready > cycle:
                armed = self.wake_armed
                if armed < 0 or armed > ready:
                    net.schedule_wake(ready, self.rid)
            else:
                net.mark_router_active(self.rid)

    def free_flits(self, port: int) -> int:
        """Total free buffer space on an input port (congestion metric)."""
        occ = self.occ[port]
        return self.vc_cap * self.vcs - sum(occ)

    def free_flits_range(self, port: int, vlo: int, vhi: int) -> int:
        occ = self.occ[port]
        return self.vc_cap * (vhi - vlo) - sum(occ[vlo:vhi])

    def buffered_flits(self) -> int:
        return sum(sum(row) for row in self.occ)

    # ------------------------------------------------------------------
    # per-cycle switch traversal
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> bool:
        """Arbitrate each output port and move up to ``bw`` flits per port.

        Returns True when any flit moved this cycle (the network scheduler
        keeps the router active in that case).
        """
        if not self.active:
            return False
        net = self.net
        bw = net.bandwidth
        if bw == 1:
            return self._arbitrate_once(cycle, net)
        moved_any = False
        for _ in range(bw):
            if not self._arbitrate_once(cycle, net):
                break
            moved_any = True
        return moved_any

    def _arbitrate_once(self, cycle: int, net: "PhysicalNetwork") -> bool:
        """One switch-allocation pass; returns True if any flit moved.

        When nothing moves, ``self.rescan``/``self.wake_at`` classify the
        stalls so the network can skip this router until something can
        change: worms dwelling in the router pipeline wake at a known
        cycle, worms waiting for upstream flits wake on ``accept_flit``,
        and everything else (credit stalls, ejection gates, adaptive
        re-routes) forces a rescan every cycle.
        """
        # output port -> (priority key, iport, ivc); built lazily — the
        # overwhelmingly common case is zero or one candidate.
        winners: Optional[Dict[int, Tuple[int, int, int, deque]]] = None
        win_key = win_iport = win_ivc = win_oport = -1
        win_q: Optional[deque] = None
        ncand = 0
        route_out = self.route_out
        out_vc = self.out_vc
        sent = self.sent
        downstream = self.downstream
        rescan = False
        wake_at = -1
        dead = None
        tel = net.stall_tel
        fa = net.faults
        cands = None if tel is None else []
        for key_iv, q in self.active.items():
            if not q:
                if dead is None:
                    dead = [key_iv]
                else:
                    dead.append(key_iv)
                continue
            iport, ivc = key_iv
            head = q[0]
            if head[_AVAIL] == 0:
                if tel is not None:
                    tel.on_stall(
                        self, iport, ivc, head[_PKT], _ST_SERIALIZATION, cycle
                    )
                continue  # waiting for upstream flits; accept_flit wakes us
            ready = head[_READY]
            if cycle < ready:
                if wake_at < 0 or ready < wake_at:
                    wake_at = ready  # pipeline dwell: wake exactly then
                if tel is not None:
                    tel.on_stall(self, iport, ivc, head[_PKT], _ST_PIPELINE, cycle)
                continue
            pkt: Packet = head[_PKT]
            oport = route_out[iport][ivc]
            if oport < 0:
                oport = net.route(self, pkt)
                if oport < 0:
                    rescan = True
                    if tel is not None:
                        tel.on_stall(self, iport, ivc, pkt, _ST_ROUTE, cycle)
                    continue  # no admissible output this cycle
                route_out[iport][ivc] = oport
            if oport == LOCAL_PORT:
                # ejection: gate new worms on endpoint acceptance.  A closed
                # gate is sleepable: the endpoint calls notify_eject_ready
                # when it drains the capacity the gate was refusing on.
                if sent[iport][ivc] == 0 and not net.nics[self.rid].can_eject(pkt):
                    if tel is not None:
                        tel.on_stall(self, iport, ivc, pkt, _ST_EJECT, cycle)
                    continue
            else:
                if fa is not None and (self.rid, oport) in net.fault_down:
                    # chosen link is down: hold the worm here and, unless
                    # a VC is already allocated on it, allow a re-route so
                    # the detour tables take over next cycle
                    if out_vc[iport][ivc] < 0:
                        route_out[iport][ivc] = -1
                    rescan = True
                    if tel is not None:
                        tel.on_stall(self, iport, ivc, pkt, _ST_ROUTE, cycle)
                    continue
                ovc = out_vc[iport][ivc]
                down, dport = downstream[oport]
                if ovc >= 0:
                    # fast path: established worm, check credit + write lock
                    if down.occ[dport][ovc] >= down.vc_cap:
                        if tel is not None:
                            tel.on_stall(self, iport, ivc, pkt, _ST_CREDIT, cycle)
                        continue  # credit stall: downstream drain wakes us
                    owner = down.owner[dport][ovc]
                    if owner is not None and owner is not pkt:
                        if tel is not None:
                            tel.on_stall(
                                self, iport, ivc, pkt, _ST_VC_ALLOC, cycle
                            )
                        continue  # lock holder streams from *this* router:
                        # its tail (our move) or a drain wakes us
                elif not self._allocate_vc(iport, ivc, oport, pkt, down, dport):
                    if net.escape_vc_active and out_vc[iport][ivc] < 0:
                        # adaptive choice stuck before VC allocation: allow a
                        # re-route next cycle so the escape (DOR) path stays
                        # reachable (deadlock freedom).
                        route_out[iport][ivc] = -1
                        rescan = True
                    if tel is not None:
                        tel.on_stall(self, iport, ivc, pkt, _ST_VC_ALLOC, cycle)
                    continue  # VC-allocation stall: every candidate VC is
                    # held by our own worms or credit-full — a drain or our
                    # own tail delivery wakes us
            ncand += 1
            if cands is not None:
                cands.append((iport, ivc, pkt))
            if winners is None:
                if ncand == 1:
                    # priority packed into one int: class-major, then age
                    # (pid is monotone and far below 2**48), identical
                    # ordering to the (cls, pid) tuple without allocating
                    win_key = (pkt.cls << 48) | pkt.pid
                    win_iport, win_ivc, win_oport = iport, ivc, oport
                    win_q = q
                    continue
                winners = {win_oport: (win_key, win_iport, win_ivc, win_q)}
            key = (pkt.cls << 48) | pkt.pid
            cur = winners.get(oport)
            if cur is None or key < cur[0]:
                winners[oport] = (key, iport, ivc, q)
        if dead is not None:
            active_pop = self.active.pop
            for key_iv in dead:
                active_pop(key_iv, None)
        if winners is None:
            if ncand == 0:
                self.rescan = rescan
                self.wake_at = wake_at
                return False
            # single candidate: it wins its output port unopposed.  This is
            # the dominant exit, so _move_flit is inlined here verbatim to
            # reuse the locals already bound above (keep both in sync).
            if tel is not None:
                tel.on_advance(self, win_iport, win_ivc, cycle)
            q = win_q
            head = q[0]
            pkt = head[_PKT]
            head[_AVAIL] -= 1
            self.occ[win_iport][win_ivc] -= 1
            sent_row = sent[win_iport]
            nsent = sent_row[win_ivc] + 1
            sent_row[win_ivc] = nsent
            self.flits_routed += 1
            up = self.upstream[win_iport]
            if up is not None and up.active and up.rid not in net._active_ids:
                net.mark_router_active(up.rid)
            is_tail = nsent == pkt.size_flits
            if win_oport == LOCAL_PORT:
                if is_tail:
                    net.eject_flit(self.rid, pkt, is_tail, cycle)
            else:
                down, dport = downstream[win_oport]
                down.accept_flit(
                    dport, out_vc[win_iport][win_ivc], pkt, is_tail, cycle
                )
                net.link_flits[self.rid][win_oport] += 1
                if fa is not None and nsent == 1:
                    fa.on_link_head(net, self.rid, win_oport, pkt)
            if is_tail:
                pkt.hops += 1
                q.popleft()
                route_out[win_iport][win_ivc] = -1
                out_vc[win_iport][win_ivc] = -1
                sent_row[win_ivc] = 0
                if not q:
                    self.active.pop((win_iport, win_ivc), None)
            self.rescan = True
            return True
        # the crossbar transfers at most one flit per input port and one
        # per output port per cycle (Section II's switch constraints);
        # winners is per-output already, now enforce per-input uniqueness
        taken_inputs = set()
        moved = False
        moved_vcs = None if tel is None else set()
        for oport, (key, iport, ivc, q) in sorted(
            winners.items(), key=lambda kv: kv[1][0]
        ):
            if iport in taken_inputs:
                continue
            taken_inputs.add(iport)
            self._move_flit(iport, ivc, oport, cycle, q)
            moved = True
            if moved_vcs is not None:
                moved_vcs.add((iport, ivc))
        if tel is not None:
            # every candidate that did not move lost switch allocation to
            # a higher-priority worm (or to per-input uniqueness) — charge
            # it so each blocked head worm is billed exactly one class.
            for iport, ivc, pkt in cands:
                if (iport, ivc) not in moved_vcs:
                    tel.on_stall(self, iport, ivc, pkt, _ST_SWITCH, cycle)
        self.rescan = True
        return moved

    def collect_sync(self, cycle: int, net, moves: List) -> None:
        """Phase A of the synchronous two-phase oracle (DESIGN.md §12).

        Runs the exact candidate admission and winner selection of
        :meth:`_arbitrate_once`, but *appends* the chosen moves to
        ``moves`` instead of applying them, so every router in the fabric
        arbitrates against the same start-of-pass state.  The fabric then
        applies all collected moves in one batch (phase B) — the same
        decide-then-commit split the vector backend's array kernel uses,
        which is what makes the two bit-comparable.

        VC allocations (``out_vc``) made here are phase-A decisions and
        persist even when the worm loses switch allocation, exactly like
        the sequential arbiter.  Telemetry hooks are deliberately absent:
        sync stepping refuses to run traced
        (:meth:`~repro.noc.network.NocFabric.set_sync_stepping`).
        """
        winners: Optional[Dict[int, Tuple[int, int, int, deque]]] = None
        win_key = win_iport = win_ivc = win_oport = -1
        win_q: Optional[deque] = None
        ncand = 0
        route_out = self.route_out
        out_vc = self.out_vc
        sent = self.sent
        downstream = self.downstream
        dead = None
        fa = net.faults
        for key_iv, q in self.active.items():
            if not q:
                if dead is None:
                    dead = [key_iv]
                else:
                    dead.append(key_iv)
                continue
            iport, ivc = key_iv
            head = q[0]
            if head[_AVAIL] == 0:
                continue  # waiting for upstream flits
            if cycle < head[_READY]:
                continue  # router-pipeline dwell
            pkt: Packet = head[_PKT]
            oport = route_out[iport][ivc]
            if oport < 0:
                oport = net.route(self, pkt)
                if oport < 0:
                    continue  # no admissible output this cycle
                route_out[iport][ivc] = oport
            if oport == LOCAL_PORT:
                if sent[iport][ivc] == 0 and not net.nics[self.rid].can_eject(pkt):
                    continue  # ejection gate closed (phase-A snapshot)
            else:
                if fa is not None and (self.rid, oport) in net.fault_down:
                    if out_vc[iport][ivc] < 0:
                        route_out[iport][ivc] = -1
                    continue
                ovc = out_vc[iport][ivc]
                down, dport = downstream[oport]
                if ovc >= 0:
                    if down.occ[dport][ovc] >= down.vc_cap:
                        continue  # credit stall
                    owner = down.owner[dport][ovc]
                    if owner is not None and owner is not pkt:
                        continue  # lock held by another worm
                elif not self._allocate_vc(iport, ivc, oport, pkt, down, dport):
                    continue  # VC-allocation stall
            ncand += 1
            if winners is None:
                if ncand == 1:
                    win_key = (pkt.cls << 48) | pkt.pid
                    win_iport, win_ivc, win_oport = iport, ivc, oport
                    win_q = q
                    continue
                winners = {win_oport: (win_key, win_iport, win_ivc, win_q)}
            key = (pkt.cls << 48) | pkt.pid
            cur = winners.get(oport)
            if cur is None or key < cur[0]:
                winners[oport] = (key, iport, ivc, q)
        if dead is not None:
            active_pop = self.active.pop
            for key_iv in dead:
                active_pop(key_iv, None)
        if winners is None:
            if ncand:
                moves.append((self, win_iport, win_ivc, win_oport, win_q))
            return
        taken_inputs = set()
        for _oport, (key, iport, ivc, q) in sorted(
            winners.items(), key=lambda kv: kv[1][0]
        ):
            if iport in taken_inputs:
                continue
            taken_inputs.add(iport)
            moves.append((self, iport, ivc, _oport, q))

    def _allocate_vc(
        self, iport: int, ivc: int, oport: int, pkt: Packet, down, dport
    ) -> bool:
        """Allocate a downstream VC with credit for a worm's header."""
        vlo, vhi = self.net.vc_range(pkt)
        escape_only_dor = self.net.escape_vc_active
        for vc in range(vlo, vhi):
            if escape_only_dor and vc == vlo and oport != self.net.dor_port(self, pkt):
                continue  # escape VC is reserved for dimension-order hops
            if down.owner[dport][vc] is None and down.occ[dport][vc] < down.vc_cap:
                self.out_vc[iport][ivc] = vc
                return True
        return False

    def _move_flit(
        self, iport: int, ivc: int, oport: int, cycle: int, q: deque
    ) -> None:
        net = self.net
        tel = net.stall_tel
        if tel is not None:
            tel.on_advance(self, iport, ivc, cycle)
        head = q[0]
        pkt: Packet = head[_PKT]
        head[_AVAIL] -= 1
        self.occ[iport][ivc] -= 1
        sent_row = self.sent[iport]
        nsent = sent_row[ivc] + 1
        sent_row[ivc] = nsent
        self.flits_routed += 1
        # drain-wake: freeing a buffer slot is the credit event the (unique)
        # upstream feeder of this input port may be sleeping on
        up = self.upstream[iport]
        if up is not None and up.active and up.rid not in net._active_ids:
            net.mark_router_active(up.rid)
        is_tail = nsent == pkt.size_flits
        if oport == LOCAL_PORT:
            if is_tail:
                net.eject_flit(self.rid, pkt, is_tail, cycle)
        else:
            down, dport = self.downstream[oport]
            ovc = self.out_vc[iport][ivc]
            down.accept_flit(dport, ovc, pkt, is_tail, cycle)
            net.link_flits[self.rid][oport] += 1
            fa = net.faults
            if fa is not None and nsent == 1:
                fa.on_link_head(net, self.rid, oport, pkt)
        if is_tail:
            pkt.hops += 1
            q.popleft()
            self.route_out[iport][ivc] = -1
            self.out_vc[iport][ivc] = -1
            sent_row[ivc] = 0
            if not q:
                self.active.pop((iport, ivc), None)
