"""Packets and message types carried by the NoC.

A *packet* is the unit of routing: it carries a message between two nodes
and occupies ``size_flits`` flow-control units.  Following the paper's
setup, a metadata-only message (a read request, a delegated reply, a
write acknowledgment) is a single flit, while a data-carrying message adds
one data flit per 16 bytes of payload — 9 flits for a 128 B GPU cache line
and 5 flits for a 64 B CPU cache line.

Wormhole flow control is simulated with *counter-based worms*: a packet
object is shared by every buffer currently holding some of its flits, and
each buffer entry records how many of the packet's flits it holds.  This
preserves flit-level backpressure and head-of-line blocking without
allocating per-flit objects.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional


class MessageType(enum.IntEnum):
    """Protocol-level message kinds (Sections II and IV)."""

    READ_REQ = 0          # core -> LLC read request (1 flit)
    WRITE_REQ = 1         # core -> LLC write-through (header + data flits)
    READ_REPLY = 2        # LLC/MC -> core data reply (header + data flits)
    WRITE_ACK = 3         # LLC -> core write acknowledgment (1 flit)
    DELEGATED_REQ = 4     # memory node -> GPU core delegation (1 flit)
    C2C_REPLY = 5         # GPU core -> GPU core delegated data reply
    DNF_REQ = 6           # GPU core -> LLC re-sent request, Do-Not-Forward
    PROBE_REQ = 7         # RP: core -> remote L1 probe (1 flit)
    PROBE_NACK = 8        # RP: remote L1 -> core probe miss (1 flit)


#: message types that travel on the (virtual or physical) request network.
REQUEST_NET_TYPES = frozenset(
    {
        MessageType.READ_REQ,
        MessageType.WRITE_REQ,
        MessageType.DELEGATED_REQ,
        MessageType.DNF_REQ,
        MessageType.PROBE_REQ,
    }
)


class TrafficClass(enum.IntEnum):
    """Scheduling class; CPU traffic is prioritised over GPU traffic."""

    CPU = 0
    GPU = 1


class NetKind(enum.IntEnum):
    """Which (physical or virtual) network a packet travels on."""

    REQUEST = 0
    REPLY = 1


_packet_ids = itertools.count()


class Packet:
    """One NoC packet.

    Attributes:
        src: injecting node id.
        dst: destination node id.
        mtype: protocol message type.
        cls: traffic class (CPU or GPU) used for priority arbitration.
        net: request or reply network.
        size_flits: total flits including the header flit.
        block: cache-block address the transaction concerns.
        requester: node id of the core that originally issued the
            transaction.  For delegated requests this differs from ``src``:
            the paper encodes the *requesting* core as the sender ID so the
            remote L1 knows whom to supply data to.
        txn: opaque transaction handle threaded through the protocol so
            endpoints can match replies to outstanding requests.
        dnf: the Do-Not-Forward bit (Section IV).
        created / injected / delivered: cycle timestamps for latency stats;
            -1 means "not yet set" (the NIC stamps ``created`` on the first
            successful ``try_send`` when the creator did not).
        hops: routers traversed, used by the energy model.
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "mtype",
        "cls",
        "net",
        "size_flits",
        "block",
        "requester",
        "txn",
        "dnf",
        "created",
        "injected",
        "delivered",
        "hops",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        mtype: MessageType,
        cls: TrafficClass,
        size_flits: int,
        block: int = 0,
        requester: Optional[int] = None,
        txn: object = None,
        dnf: bool = False,
        created: int = -1,
    ) -> None:
        if size_flits < 1:
            raise ValueError("a packet is at least one (header) flit")
        if src == dst:
            raise ValueError("packet source and destination must differ")
        self.pid = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.mtype = mtype
        self.cls = cls
        self.net = (
            NetKind.REQUEST if mtype in REQUEST_NET_TYPES else NetKind.REPLY
        )
        self.size_flits = size_flits
        self.block = block
        self.requester = src if requester is None else requester
        self.txn = txn
        self.dnf = dnf
        self.created = created
        self.injected = -1
        self.delivered = -1
        self.hops = 0

    @property
    def latency(self) -> int:
        """Network latency from injection-queue entry to delivery."""
        if self.delivered < 0:
            raise ValueError("packet not delivered yet")
        return self.delivered - self.created

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(#{self.pid} {self.mtype.name} {self.src}->{self.dst} "
            f"{self.size_flits}f {self.cls.name} blk={self.block:#x})"
        )
