"""NoC topologies: 2D mesh, crossbar, flattened butterfly and Dragonfly.

Every topology places one router per node and gives each node exactly one
injection and one ejection port per (physical) network.  This models the
paper's observation that *"each memory node has a single reply network link
in contemporary topologies"* — the property that makes network clogging
topology-independent (Section III-B, Fig. 5).

A topology provides the adjacency (``neighbors``), a deterministic minimal
route (``route_next``), and for the mesh the set of minimal next hops used
by the adaptive routing schemes (``adaptive_candidates``).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from repro.config.system import DimensionOrder, Topology as TopologyKind


class PartitionedTopologyError(RuntimeError):
    """Down links have made some destination unreachable.

    Raised by :func:`degraded_route_table`'s reachability check so a fault
    plan that partitions the mesh fails fast instead of silently stranding
    traffic behind a hole in the routing tables.
    """


def degraded_route_table(
    topo: "BaseTopology",
    port_of: Sequence[Dict[int, int]],
    down: Set[Tuple[int, int]],
) -> List[List[int]]:
    """Healthy next-hop table detouring around down links.

    ``down`` holds directed dead links as ``(router, output_port)`` pairs
    (the same encoding the router link-health check uses).  For every
    destination a reverse BFS over the healthy subgraph yields shortest
    detours; ties break towards the lowest neighbour id so the table is
    deterministic.  Returns ``table[rid][dst] -> output port`` (port 0,
    the local/ejection port, when ``dst == rid``); raises
    :class:`PartitionedTopologyError` when any pair is disconnected.
    """
    n = topo.n
    healthy: List[List[int]] = [
        sorted(
            nb for nb in topo.neighbors(rid)
            if (rid, port_of[rid][nb]) not in down
        )
        for rid in range(n)
    ]
    # reverse adjacency: who can still reach ``rid`` in one healthy hop
    into: List[List[int]] = [[] for _ in range(n)]
    for rid in range(n):
        for nb in healthy[rid]:
            into[nb].append(rid)
    table: List[List[int]] = [[0] * n for _ in range(n)]
    dist = [0] * n
    for dst in range(n):
        for i in range(n):
            dist[i] = -1
        dist[dst] = 0
        queue = deque((dst,))
        while queue:
            cur = queue.popleft()
            for prev in into[cur]:
                if dist[prev] < 0:
                    dist[prev] = dist[cur] + 1
                    queue.append(prev)
        for rid in range(n):
            if rid == dst:
                continue
            if dist[rid] < 0:
                raise PartitionedTopologyError(
                    f"router {rid} cannot reach {dst}: down links "
                    f"partition the topology"
                )
            # deterministic tie-break: lowest-id neighbour on a shortest path
            nxt = min(
                nb for nb in healthy[rid] if dist[nb] == dist[rid] - 1
            )
            table[rid][dst] = port_of[rid][nxt]
    return table


class BaseTopology:
    """Common interface for all topologies."""

    kind: TopologyKind

    def __init__(self, n: int) -> None:
        self.n = n
        self._neighbors: List[List[int]] = [[] for _ in range(n)]

    def _connect(self, a: int, b: int) -> None:
        """Add a bidirectional link between routers ``a`` and ``b``."""
        if b not in self._neighbors[a]:
            self._neighbors[a].append(b)
            self._neighbors[b].append(a)

    def neighbors(self, router: int) -> Sequence[int]:
        return self._neighbors[router]

    def links(self) -> List[Tuple[int, int]]:
        """All undirected inter-router links (for the area/energy models)."""
        seen = []
        for a in range(self.n):
            for b in self._neighbors[a]:
                if a < b:
                    seen.append((a, b))
        return seen

    def route_next(self, cur: int, dst: int, order: DimensionOrder) -> int:
        """Deterministic minimal next hop from ``cur`` towards ``dst``."""
        raise NotImplementedError

    def adaptive_candidates(self, cur: int, dst: int) -> List[int]:
        """Minimal next hops for adaptive routing; default: deterministic."""
        return [self.route_next(cur, dst, DimensionOrder.XY)]

    def min_hops(self, src: int, dst: int) -> int:
        """Minimal hop count between two routers (follows route_next)."""
        hops, cur = 0, src
        while cur != dst:
            cur = self.route_next(cur, dst, DimensionOrder.XY)
            hops += 1
            if hops > self.n:
                raise RuntimeError("routing loop detected")
        return hops


class MeshTopology(BaseTopology):
    """2D mesh; router ids are ``y * width + x``."""

    kind = TopologyKind.MESH

    def __init__(self, width: int, height: int) -> None:
        super().__init__(width * height)
        self.width = width
        self.height = height
        for y in range(height):
            for x in range(width):
                r = y * width + x
                if x + 1 < width:
                    self._connect(r, r + 1)
                if y + 1 < height:
                    self._connect(r, r + width)

    def coords(self, router: int) -> Tuple[int, int]:
        return router % self.width, router // self.width

    def router_at(self, x: int, y: int) -> int:
        return y * self.width + x

    def route_next(self, cur: int, dst: int, order: DimensionOrder) -> int:
        cx, cy = self.coords(cur)
        dx, dy = self.coords(dst)
        if order is DimensionOrder.XY:
            if cx != dx:
                return self.router_at(cx + (1 if dx > cx else -1), cy)
            return self.router_at(cx, cy + (1 if dy > cy else -1))
        if cy != dy:
            return self.router_at(cx, cy + (1 if dy > cy else -1))
        return self.router_at(cx + (1 if dx > cx else -1), cy)

    def adaptive_candidates(self, cur: int, dst: int) -> List[int]:
        cx, cy = self.coords(cur)
        dx, dy = self.coords(dst)
        out = []
        if cx != dx:
            out.append(self.router_at(cx + (1 if dx > cx else -1), cy))
        if cy != dy:
            out.append(self.router_at(cx, cy + (1 if dy > cy else -1)))
        return out

    def min_hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)


class CrossbarTopology(BaseTopology):
    """Fully connected crossbar with per-node core-to-core links."""

    kind = TopologyKind.CROSSBAR

    def __init__(self, n: int) -> None:
        super().__init__(n)
        for a in range(n):
            for b in range(a + 1, n):
                self._connect(a, b)

    def route_next(self, cur: int, dst: int, order: DimensionOrder) -> int:
        return dst

    def min_hops(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1


class FlattenedButterflyTopology(BaseTopology):
    """Flattened butterfly [41]: full connectivity within each row/column."""

    kind = TopologyKind.FLATTENED_BUTTERFLY

    def __init__(self, width: int, height: int) -> None:
        super().__init__(width * height)
        self.width = width
        self.height = height
        for y in range(height):
            for x in range(width):
                r = y * width + x
                for x2 in range(x + 1, width):
                    self._connect(r, y * width + x2)
                for y2 in range(y + 1, height):
                    self._connect(r, y2 * width + x)

    def coords(self, router: int) -> Tuple[int, int]:
        return router % self.width, router // self.width

    def route_next(self, cur: int, dst: int, order: DimensionOrder) -> int:
        cx, cy = self.coords(cur)
        dx, dy = self.coords(dst)
        if order is DimensionOrder.XY:
            if cx != dx:
                return cy * self.width + dx
            return dy * self.width + cx
        if cy != dy:
            return dy * self.width + cx
        return cy * self.width + dx

    def min_hops(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return (sx != dx) + (sy != dy)


class DragonflyTopology(BaseTopology):
    """Dragonfly [42]: fully connected groups joined by global links.

    With ``n`` routers and ``group_size`` routers per group, router ``i`` of
    group ``g`` owns the global link to group ``(g + 1 + i) mod groups``
    (no link when that wraps back to ``g``), giving each group one link to
    every other group.
    """

    kind = TopologyKind.DRAGONFLY

    def __init__(self, n: int, group_size: int = 8) -> None:
        if n % group_size:
            raise ValueError("n must be a multiple of group_size")
        super().__init__(n)
        self.group_size = group_size
        self.groups = n // group_size
        #: (group, target_group) -> router in ``group`` owning that link
        self._gateway: Dict[Tuple[int, int], int] = {}
        for g in range(self.groups):
            base = g * group_size
            for a in range(group_size):
                for b in range(a + 1, group_size):
                    self._connect(base + a, base + b)
            for i in range(group_size):
                t = (g + 1 + i) % self.groups
                if t == g:
                    continue
                j = (g - t - 1) % self.group_size
                if g < t:  # connect each global link once
                    self._connect(base + i, t * group_size + j)
                self._gateway[(g, t)] = base + i

    def group_of(self, router: int) -> int:
        return router // self.group_size

    def route_next(self, cur: int, dst: int, order: DimensionOrder) -> int:
        cg, dg = self.group_of(cur), self.group_of(dst)
        if cg == dg:
            return dst
        gateway = self._gateway[(cg, dg)]
        if cur != gateway:
            return gateway
        return self._gateway[(dg, cg)]

    def min_hops(self, src: int, dst: int) -> int:
        if self.group_of(src) == self.group_of(dst):
            return 0 if src == dst else 1
        gateway = self._gateway[(self.group_of(src), self.group_of(dst))]
        remote = self._gateway[(self.group_of(dst), self.group_of(src))]
        hops = (src != gateway) + 1 + (remote != dst)
        return hops


def build_topology(kind: TopologyKind, width: int, height: int) -> BaseTopology:
    """Construct the requested topology for a ``width x height`` node grid."""
    n = width * height
    if kind is TopologyKind.MESH:
        return MeshTopology(width, height)
    if kind is TopologyKind.CROSSBAR:
        return CrossbarTopology(n)
    if kind is TopologyKind.FLATTENED_BUTTERFLY:
        return FlattenedButterflyTopology(width, height)
    if kind is TopologyKind.DRAGONFLY:
        return DragonflyTopology(n, group_size=width)
    raise ValueError(f"unknown topology {kind}")
