"""NoC utilization analysis: where is the network hot?

Post-run inspection utilities over a :class:`PhysicalNetwork`'s per-link
flit counters.  The paper's Section II diagnosis — "all of the memory
node's GPU-side NoC links are heavily loaded (over 60% utilization)" —
becomes a one-liner::

    summary = link_utilization_summary(system.fabric.reply_net)
    hot = hottest_links(system.fabric.reply_net, n=10)
    print(render_mesh_heatmap(system.fabric.reply_net, system.layout))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.noc.network import PhysicalNetwork
from repro.noc.topology import MeshTopology


@dataclass(frozen=True)
class LinkLoad:
    """Utilization of one directed link."""

    src: int
    dst: int
    utilization: float
    flits: int


def link_loads(net: PhysicalNetwork) -> List[LinkLoad]:
    """Every directed inter-router link with its measured utilization."""
    loads = []
    for rid, router in enumerate(net.routers):
        for oport in range(1, router.nports):
            down = router.downstream[oport]
            if down is None:
                continue
            flits = net.link_flits[rid][oport]
            loads.append(
                LinkLoad(
                    src=rid,
                    dst=down[0].rid,
                    utilization=net.link_utilization(rid, oport),
                    flits=flits,
                )
            )
    return loads


def hottest_links(net: PhysicalNetwork, n: int = 10) -> List[LinkLoad]:
    """The ``n`` most utilized directed links, hottest first."""
    return sorted(link_loads(net), key=lambda l: -l.utilization)[:n]


def link_utilization_summary(net: PhysicalNetwork) -> dict:
    """Aggregate utilization statistics over all links."""
    loads = [l.utilization for l in link_loads(net)]
    if not loads:
        return {"mean": 0.0, "max": 0.0, "p95": 0.0, "links": 0}
    loads.sort()
    return {
        "mean": sum(loads) / len(loads),
        "max": loads[-1],
        "p95": loads[int(0.95 * (len(loads) - 1))],
        "links": len(loads),
    }


def node_injection_loads(net: PhysicalNetwork) -> List[Tuple[int, float]]:
    """Per-node injection-link utilization (the clogging bottleneck for
    memory nodes), computed from each NIC's injected-flit counters."""
    out = []
    cycles = max(1, net.cycles)
    for nic in net.nics:
        out.append((nic.node_id, nic.flits_injected / (cycles * net.bandwidth)))
    return out


def render_value_heatmap(
    values: List[float],
    width: int,
    height: int,
    roles: Optional[List[str]] = None,
    charset: str = " .:-=+*#%@",
    legend: str = "",
) -> str:
    """ASCII heatmap of one per-router value over a ``width x height`` mesh.

    Pure function of the value vector (node ``y * width + x`` at cell
    ``(x, y)``), so trace readers can draw heatmaps without a live
    network.  ``roles`` supplies the one-character cell prefix per node
    (default ``G``); shade is proportional to ``values[rid] / peak``.
    """
    peak = max(values) if values and max(values) > 0 else 1
    rows = []
    for y in range(height):
        cells = []
        for x in range(width):
            rid = y * width + x
            v = values[rid] if rid < len(values) else 0
            shade = charset[
                min(len(charset) - 1, int(v / peak * (len(charset) - 1)))
            ]
            role = roles[rid] if roles is not None and rid < len(roles) else "G"
            cells.append(f"{role}{shade}")
        rows.append(" ".join(cells))
    if legend:
        rows.append(legend)
    return "\n".join(rows)


def render_mesh_heatmap(
    net: PhysicalNetwork,
    layout=None,
    charset: str = " .:-=+*#%@",
) -> str:
    """ASCII heatmap of per-router traffic for mesh networks.

    Each cell shows the router's role (G/C/M when a layout is given) and a
    shade proportional to the flits it routed — the memory column lighting
    up is the clogging signature.

    Non-mesh topologies have no 2-D arrangement to draw, so the output
    degrades to a per-router load table (same data, no spatial claim).
    """
    topo = net.topology
    if not isinstance(topo, MeshTopology):
        return _render_router_table(net, layout)
    flits = [r.flits_routed for r in net.routers]
    peak = max(flits) or 1
    role_of = layout.role_of if layout is not None else (lambda n: "gpu")
    roles = [
        {"gpu": "G", "cpu": "C", "mem": "M"}[role_of(rid)]
        for rid in range(len(flits))
    ]
    return render_value_heatmap(
        [float(f) for f in flits],
        topo.width,
        topo.height,
        roles=roles,
        charset=charset,
        legend=f"(shade ~ flits routed; peak router = {peak} flits)",
    )


def _render_router_table(net: PhysicalNetwork, layout=None, width: int = 30) -> str:
    """Per-router load table: the heatmap fallback for non-mesh topologies."""
    topo_name = type(net.topology).__name__
    flits = [r.flits_routed for r in net.routers]
    peak = max(flits) or 1
    role_of = layout.role_of if layout is not None else (lambda n: "gpu")
    rows = [
        f"({topo_name} has no mesh coordinates; per-router load table)",
        f"{'router':>6} {'role':>4} {'flits':>10}  load",
    ]
    for rid, n in enumerate(flits):
        bar = "#" * max(1 if n else 0, round(n / peak * width))
        rows.append(f"{rid:>6} {role_of(rid):>4} {n:>10}  {bar}")
    rows.append(f"(peak router = {peak} flits)")
    return "\n".join(rows)
