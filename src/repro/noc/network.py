"""The NoC fabric: physical networks, wiring, stepping and statistics.

The baseline uses *physically separate* request and reply networks (two
:class:`PhysicalNetwork` instances); the virtual-network configurations of
Sections III-B (AVCP) and VII share one physical network and partition its
VCs between the two traffic classes.  :class:`NocFabric` hides that choice
from the endpoints: they enqueue packets on their NIC and the fabric places
them on the right physical network and VC range.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

from repro.config.system import NocConfig
from repro.noc.nic import MemoryNodeNic, NodeInterface
from repro.noc.packet import NetKind, Packet
from repro.noc.router import LOCAL_PORT, Router
from repro.noc.routing import RoutingAlgorithm, build_routing
from repro.noc.topology import BaseTopology


class _EverySet(set):
    """A set that contains everything.

    Installed as ``net._active_ids`` under synchronous (oracle) stepping:
    the hot-path membership guards in ``accept_flit``/``_move_flit`` then
    short-circuit, so no wake/heap bookkeeping runs — the sync step
    arbitrates every active router every pass anyway.
    """

    def __contains__(self, item) -> bool:  # noqa: D105
        return True


class PhysicalNetwork:
    """One physical network: routers, links and per-link statistics."""

    def __init__(
        self,
        name: str,
        topology: BaseTopology,
        cfg: NocConfig,
        routing: RoutingAlgorithm,
        vcs: int,
        vc_range_for: Callable[[Packet], Tuple[int, int]],
    ) -> None:
        self.name = name
        self.topology = topology
        self.cfg = cfg
        self.routing = routing
        self.vcs = vcs
        self.vc_range = vc_range_for
        self.bandwidth = max(1, round(cfg.bandwidth_factor))
        self.escape_vc_active = routing.adaptive
        #: attached telemetry collector (None = disabled; hooks are one
        #: ``is not None`` check each).
        self.telemetry = None
        #: the collector again iff stall attribution is on, else None —
        #: the router arbitration loop gates its per-blocked-VC stall
        #: hooks on this, so enabling tracing without attribution costs
        #: the hot path nothing extra.
        self.stall_tel = None
        #: attached fault controller (None = no fault plan; same single
        #: ``is not None`` gating as telemetry).
        self.faults = None
        #: live link-health mask: directed dead links as (rid, oport).
        #: The controller installs its own set here; the default empty
        #: frozenset keeps the router check a single truthiness test.
        self.fault_down: frozenset = frozenset()
        #: routers currently frozen by a RouterFreeze event.
        self.fault_frozen: frozenset = frozenset()
        self.nics: List[NodeInterface] = []
        n = topology.n
        self.routers: List[Router] = []
        #: per-router map neighbour-id -> output-port index
        self._port_of: List[Dict[int, int]] = []
        for rid in range(n):
            neighbors = topology.neighbors(rid)
            router = Router(
                rid,
                self,
                nports=1 + len(neighbors),
                vcs=vcs,
                vc_cap=cfg.vc_depth_flits,
                pipeline=cfg.router_pipeline_cycles - 1 + cfg.link_cycles,
            )
            self.routers.append(router)
            self._port_of.append(
                {nb: 1 + i for i, nb in enumerate(neighbors)}
            )
        # wire downstream pointers (and the reverse upstream pointers the
        # drain-wake credit events need)
        for rid in range(n):
            router = self.routers[rid]
            for nb, port in self._port_of[rid].items():
                down = self.routers[nb]
                dport = self._port_of[nb][rid]
                router.downstream[port] = (down, dport)
                down.upstream[dport] = router
        #: flits moved per directed link, indexed [rid][oport]
        self.link_flits: List[List[int]] = [
            [0] * r.nports for r in self.routers
        ]
        self.packets_delivered = 0
        self.flits_delivered = 0
        self.cycles = 0
        #: delivered packet counts per message type (int value of MessageType)
        self.delivered_by_type: Dict[int, int] = {}
        # -- active-set scheduling state --------------------------------
        #: routers that must be arbitrated this cycle (exact, not a scan)
        self._active_ids: set = set()
        #: min-heap of (cycle, rid) wake-ups for routers sleeping through
        #: a known pipeline dwell
        self._wakes: List[Tuple[int, int]] = []
        #: working min-heap of rids during a step; activations behind the
        #: cursor wait for the next cycle, exactly like the full scan
        self._heap: List[int] = []
        self._cursor = -1
        #: True restores the naive scan-every-router reference stepping
        #: (the equivalence tests compare both modes counter-for-counter)
        self.full_scan = False
        #: True while the fabric steps this net in synchronous (oracle)
        #: mode; ``_active_ids`` is then an always-true membership set.
        self.sync_stepping = False
        self._build_route_tables()

    # -- routing tables -------------------------------------------------

    def _build_route_tables(self) -> None:
        """Precompute per-(router, destination) output ports for the two
        dimension orders in use.

        ``_dor_tables[net_kind][rid][dst]`` is the port a dimension-order
        hop takes (``LOCAL_PORT`` when ``dst == rid``); the escape-VC check
        always uses it.  When the configured policy is deterministic (CDR)
        the same tables back ``route`` directly, turning the per-flit
        topology walk into two list lookups.
        """
        topo, cfg = self.topology, self.cfg
        n = topo.n
        per_order: Dict[object, List[List[int]]] = {}
        for order in {cfg.request_order, cfg.reply_order}:
            tbl = []
            for rid in range(n):
                port_of = self._port_of[rid]
                row = [LOCAL_PORT] * n
                for dst in range(n):
                    if dst != rid:
                        row[dst] = port_of[topo.route_next(rid, dst, order)]
                tbl.append(row)
            per_order[order] = tbl
        self._dor_tables: Optional[Dict[NetKind, List[List[int]]]] = {
            NetKind.REQUEST: per_order[cfg.request_order],
            NetKind.REPLY: per_order[cfg.reply_order],
        }
        self._det_tables = None if self.routing.adaptive else self._dor_tables
        fa = getattr(self, "faults", None)
        if fa is not None:
            # keep degraded-mode detour tables in force across rebuilds
            fa.on_tables_rebuilt(self)

    # -- hooks used by routers -----------------------------------------

    def route(self, router: Router, pkt: Packet) -> int:
        """Output port for ``pkt`` at ``router`` (LOCAL_PORT = ejection)."""
        tables = self._det_tables
        if tables is not None:
            return tables[pkt.net][router.rid][pkt.dst]
        if pkt.dst == router.rid:
            return LOCAL_PORT
        fa = self.faults
        if fa is not None:
            # links are down: adaptivity is suspended in favour of the
            # fault-aware detour tables (minimal-path choice sets cannot
            # see the health mask)
            port = fa.route_port(self, router.rid, pkt.dst)
            if port >= 0:
                return port
        nxt = self.routing.next_hop(self, router.rid, pkt)
        return self._port_of[router.rid][nxt]

    def dor_port(self, router: Router, pkt: Packet) -> int:
        tables = self._dor_tables
        if tables is not None:
            return tables[pkt.net][router.rid][pkt.dst]
        if pkt.dst == router.rid:
            return LOCAL_PORT
        fa = self.faults
        if fa is not None:
            port = fa.route_port(self, router.rid, pkt.dst)
            if port >= 0:
                return port
        nxt = self.routing.dor_next(router.rid, pkt)
        return self._port_of[router.rid][nxt]

    def downstream_free(self, cur: int, nxt: int) -> int:
        """Free buffer flits at ``nxt``'s input port fed by ``cur``."""
        down = self.routers[nxt]
        dport = self._port_of[nxt][cur]
        return down.free_flits(dport)

    def eject_flit(self, rid: int, pkt: Packet, is_tail: bool, cycle: int) -> None:
        if is_tail:
            fa = self.faults
            if fa is not None and fa.discard_on_eject(pkt, rid, cycle):
                # CRC check failed: the packet is consumed without being
                # delivered; the requester's retransmit guard answers it
                return
            pkt.delivered = cycle
            self.packets_delivered += 1
            self.flits_delivered += pkt.size_flits
            key = int(pkt.mtype)
            self.delivered_by_type[key] = self.delivered_by_type.get(key, 0) + 1
            if self.telemetry is not None:
                self.telemetry.on_deliver(pkt, cycle)
            self.nics[rid].deliver(pkt, cycle)

    def count_link_flit(self, rid: int, oport: int) -> None:
        self.link_flits[rid][oport] += 1

    # -- stepping and statistics ----------------------------------------

    def mark_router_active(self, rid: int) -> None:
        """Schedule a router for arbitration (called on every flit arrival).

        Activations during a step join the current cycle only when the
        scheduler's cursor has not passed them yet — identical to what a
        low-to-high full scan would have observed.
        """
        ids = self._active_ids
        if rid not in ids:
            ids.add(rid)
            if rid > self._cursor >= 0:
                heappush(self._heap, rid)

    def schedule_wake(self, at: int, rid: int) -> None:
        """Arm a timed wake for a sleeping router at cycle ``at``.

        A router keeps at most one armed heap entry at its earliest wake
        cycle; later wake requests are covered by the armed entry (the
        woken arbitration pass re-sleeps with the then-earliest cycle).
        """
        router = self.routers[rid]
        armed = router.wake_armed
        if 0 <= armed <= at:
            return
        heappush(self._wakes, (at, rid))
        router.wake_armed = at

    def step(self, cycle: int) -> None:
        self.cycles += 1
        frozen = self.fault_frozen
        if self.full_scan:
            if frozen:
                for router in self.routers:
                    if router.active and router.rid not in frozen:
                        router.step(cycle)
            else:
                for router in self.routers:
                    if router.active:
                        router.step(cycle)
            return
        ids = self._active_ids
        wakes = self._wakes
        routers = self.routers
        while wakes and wakes[0][0] <= cycle:
            rid = heappop(wakes)[1]
            ids.add(rid)
            routers[rid].wake_armed = -1
        if not ids:
            return
        # scan a sorted snapshot by index; routers woken mid-cycle land on
        # the (usually empty) ``late`` min-heap and are merged in rid order,
        # so the visit order is exactly the full scan's low-to-high order
        if len(ids) == len(routers):
            order = range(len(routers))  # saturated: all rids, already sorted
        else:
            order = sorted(ids)
        late = self._heap
        bw1 = self.bandwidth == 1
        i = 0
        n = len(order)
        while True:
            if late and (i >= n or late[0] < order[i]):
                rid = heappop(late)
            elif i < n:
                rid = order[i]
                i += 1
            else:
                break
            self._cursor = rid
            if frozen and rid in frozen:
                # frozen router: buffers hold their flits, nothing
                # arbitrates; stays in the active set for the thaw
                continue
            router = routers[rid]
            if not router.active:
                ids.discard(rid)
                continue
            # single-bandwidth links skip the bandwidth-loop wrapper and
            # arbitrate directly (same semantics as router.step)
            moved = (
                router._arbitrate_once(cycle, self) if bw1 else router.step(cycle)
            )
            if not router.active:
                ids.discard(rid)
            elif not moved and not router.rescan:
                # every head worm waits on a future event: sleep until the
                # earliest pipeline-ready cycle, or until a flit arrives
                ids.discard(rid)
                wa = router.wake_at
                if wa >= 0:
                    armed = router.wake_armed
                    if armed < 0 or wa < armed:
                        heappush(wakes, (wa, rid))
                        router.wake_armed = wa
        self._cursor = -1

    def link_utilization(self, rid: int, oport: int) -> float:
        """Fraction of cycles the directed link out of ``(rid, oport)``
        carried a flit (normalised by the link's flit bandwidth)."""
        if self.cycles == 0:
            return 0.0
        return self.link_flits[rid][oport] / (self.cycles * self.bandwidth)

    def utilization_of_links_into(self, rid: int) -> List[float]:
        """Utilisation of every link pointing *towards* router ``rid``."""
        out = []
        for nb, _port in self._port_of[rid].items():
            towards = self._port_of[nb][rid]
            out.append(self.link_utilization(nb, towards))
        return out

    def buffered_flits(self) -> int:
        return sum(r.buffered_flits() for r in self.routers)

    def total_flits_routed(self) -> int:
        return sum(r.flits_routed for r in self.routers)


class NocFabric:
    """Request + reply networks plus the per-node NICs."""

    def __init__(
        self,
        topology: BaseTopology,
        cfg: NocConfig,
        mem_nodes: Tuple[int, ...] = (),
    ) -> None:
        self.topology = topology
        self.cfg = cfg
        self.separate_networks = cfg.separate_physical_networks
        self.bandwidth = max(1, round(cfg.bandwidth_factor))
        routing = build_routing(topology, cfg)
        self.routing = routing
        if self.separate_networks:
            vcs = cfg.vcs_per_port

            def full_range(pkt: Packet, _v: int = vcs) -> Tuple[int, int]:
                return (0, _v)

            self.request_net = PhysicalNetwork(
                "request", topology, cfg, routing, vcs, full_range
            )
            self.reply_net = PhysicalNetwork(
                "reply", topology, cfg, routing, vcs, full_range
            )
            self._nets = {
                NetKind.REQUEST: self.request_net,
                NetKind.REPLY: self.reply_net,
            }
        else:
            vcs = cfg.request_vcs + cfg.reply_vcs

            def split_range(
                pkt: Packet,
                _rq: int = cfg.request_vcs,
                _total: int = vcs,
            ) -> Tuple[int, int]:
                if pkt.net is NetKind.REQUEST:
                    return (0, _rq)
                return (_rq, _total)

            shared = PhysicalNetwork(
                "shared", topology, cfg, routing, vcs, split_range
            )
            self.request_net = shared
            self.reply_net = shared
            self._nets = {NetKind.REQUEST: shared, NetKind.REPLY: shared}
        #: the distinct physical networks, in deterministic stepping order
        self._net_list: Tuple[PhysicalNetwork, ...] = (
            (self.request_net,)
            if self.request_net is self.reply_net
            else (self.request_net, self.reply_net)
        )
        mem_set = set(mem_nodes)
        self.nics: List[NodeInterface] = []
        for node in range(topology.n):
            if node in mem_set:
                nic: NodeInterface = MemoryNodeNic(
                    node,
                    self,
                    queue_packets=cfg.node_injection_queue_packets,
                    reply_buffer_flits=cfg.mem_injection_buffer_flits,
                )
            else:
                nic = NodeInterface(
                    node, self, queue_packets=cfg.node_injection_queue_packets
                )
            self.nics.append(nic)
        for net in self._net_list:
            net.nics = self.nics
        #: NICs with queued or in-flight work; memory-node NICs stay pinned
        #: because their per-cycle blocked/observed accounting and the
        #: delegation trigger must run every cycle.
        self._active_nics: set = set(mem_set)
        #: True restores the naive inject-every-NIC reference stepping.
        self.full_scan = False
        #: True switches to synchronous two-phase stepping (the vector
        #: backend's oracle mode; see :meth:`set_sync_stepping`).
        self.sync_stepping = False
        #: attached telemetry collector (None = disabled).
        self.telemetry = None
        #: attached fault controller (None = no fault plan installed).
        self.faults = None

    # -- telemetry ------------------------------------------------------

    def attach_telemetry(self, collector) -> None:
        """Point every hook site (NICs, networks) at ``collector``.

        Telemetry is read-only instrumentation: attaching it must never
        change simulation behaviour, only observe it.
        """
        self.telemetry = collector
        stall_tel = (
            collector if getattr(collector, "stalls", None) is not None
            else None
        )
        for nic in self.nics:
            nic.telemetry = collector
            nic.stall_tel = stall_tel
        for net in self._net_list:
            net.telemetry = collector
            net.stall_tel = stall_tel

    def detach_telemetry(self) -> None:
        """Restore the disabled (all hooks ``None``) state."""
        self.telemetry = None
        for nic in self.nics:
            nic.telemetry = None
            nic.stall_tel = None
        for net in self._net_list:
            net.telemetry = None
            net.stall_tel = None

    # -- endpoint API ---------------------------------------------------

    def nic(self, node: int) -> NodeInterface:
        return self.nics[node]

    def router_for(self, node: int, net: NetKind) -> Router:
        return self._nets[net].routers[node]

    def vc_range_for(self, pkt: Packet) -> Tuple[int, int]:
        return self._nets[pkt.net].vc_range(pkt)

    # -- simulation -----------------------------------------------------

    def mark_nic_active(self, node: int) -> None:
        """Schedule a NIC for injection stepping (called on enqueue)."""
        self._active_nics.add(node)

    def wake_node_routers(self, node: int) -> None:
        """Re-arbitrate ``node``'s local routers (ejection-gate reopened)."""
        for net in self._net_list:
            if node not in net._active_ids and net.routers[node].active:
                net.mark_router_active(node)

    def set_reference_stepping(self, on: bool = True) -> None:
        """Toggle the naive full-scan reference implementation.

        The optimised scheduler (active router/NIC sets, wake heap, routing
        tables) must be behaviour-preserving; equivalence tests run the
        same seeded workload in both modes and assert every counter in
        ``collect_counters`` is bit-identical.
        """
        self.full_scan = on
        for net in self._net_list:
            net.full_scan = on
            if on:
                net._det_tables = None
                net._dor_tables = None
            else:
                net._build_route_tables()

    def set_sync_stepping(self, on: bool = True) -> None:
        """Toggle synchronous two-phase (decide-then-commit) stepping.

        This is the oracle mode the vector backend is validated against
        (DESIGN.md §12).  Each bandwidth pass first collects every
        router's switch-allocation decisions against the frozen
        start-of-pass state (:meth:`Router.collect_sync`), then applies
        all moves in (network, router id, winner key) order; NICs then
        inject in ascending node order.  Sequential same-cycle ripple —
        a flit moved by router 3 being moved again by router 5, credits
        freed earlier in the scan being visible later in it — is thereby
        removed: that ripple is scan-order-dependent, which is exactly
        the latent ordering assumption a batch array kernel cannot
        reproduce.  The default stepping is untouched; this mode exists
        for the bit-identity tests pinning vector against object.
        """
        if on and self.routing.adaptive:
            raise ValueError(
                "synchronous (oracle) stepping does not support adaptive "
                "routing; use the default stepping"
            )
        if on and self.telemetry is not None:
            raise ValueError(
                "synchronous (oracle) stepping does not support telemetry; "
                "detach the collector first"
            )
        self.sync_stepping = on
        for net in self._net_list:
            net.sync_stepping = on
            if on:
                # every router is visited every pass: neutralise the
                # active-set wake bookkeeping on the accept/move paths
                net._active_ids = _EverySet()
                net._wakes.clear()
                for router in net.routers:
                    router.wake_armed = -1
            else:
                net._active_ids = {
                    r.rid for r in net.routers if r.active
                }

    def _step_sync(self, cycle: int) -> None:
        """One synchronous two-phase fabric cycle (oracle mode)."""
        for net in self._net_list:
            net.cycles += 1
        moves: List = []
        for _ in range(self.bandwidth):
            del moves[:]
            for net in self._net_list:
                frozen = net.fault_frozen
                routers = net.routers
                if frozen:
                    for router in routers:
                        if router.active and router.rid not in frozen:
                            router.collect_sync(cycle, net, moves)
                else:
                    for router in routers:
                        if router.active:
                            router.collect_sync(cycle, net, moves)
            if not moves:
                break
            for router, iport, ivc, oport, q in moves:
                router._move_flit(iport, ivc, oport, cycle, q)
        for nic in self.nics:
            nic.inject_step(cycle)

    def step(self, cycle: int) -> None:
        """Advance the fabric one cycle: route flits, then inject."""
        if self.sync_stepping:
            self._step_sync(cycle)
            return
        for net in self._net_list:
            net.step(cycle)
        if self.full_scan:
            for nic in self.nics:
                nic.inject_step(cycle)
            return
        active = self._active_nics
        if not active:
            return
        nics = self.nics
        if len(active) == 1:
            # common light-load case: skip the sorted snapshot
            node = next(iter(active))
            nic = nics[node]
            nic.inject_step(cycle)
            if nic.idle():
                active.discard(node)
            return
        for node in sorted(active):
            nic = nics[node]
            nic.inject_step(cycle)
            if nic.idle():
                active.discard(node)

    def in_flight_flits(self) -> int:
        """Flits buffered in routers (conservation checks in tests)."""
        return sum(net.buffered_flits() for net in self._net_list)

    def memory_blocking_rates(self) -> Dict[int, float]:
        return {
            nic.node_id: nic.blocking_rate
            for nic in self.nics
            if isinstance(nic, MemoryNodeNic)
        }
