"""The NoC fabric: physical networks, wiring, stepping and statistics.

The baseline uses *physically separate* request and reply networks (two
:class:`PhysicalNetwork` instances); the virtual-network configurations of
Sections III-B (AVCP) and VII share one physical network and partition its
VCs between the two traffic classes.  :class:`NocFabric` hides that choice
from the endpoints: they enqueue packets on their NIC and the fabric places
them on the right physical network and VC range.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.config.system import NocConfig
from repro.noc.nic import MemoryNodeNic, NodeInterface
from repro.noc.packet import NetKind, Packet, TrafficClass
from repro.noc.router import LOCAL_PORT, Router
from repro.noc.routing import RoutingAlgorithm, build_routing
from repro.noc.topology import BaseTopology


class PhysicalNetwork:
    """One physical network: routers, links and per-link statistics."""

    def __init__(
        self,
        name: str,
        topology: BaseTopology,
        cfg: NocConfig,
        routing: RoutingAlgorithm,
        vcs: int,
        vc_range_for: Callable[[Packet], Tuple[int, int]],
    ) -> None:
        self.name = name
        self.topology = topology
        self.cfg = cfg
        self.routing = routing
        self.vcs = vcs
        self.vc_range = vc_range_for
        self.bandwidth = max(1, round(cfg.bandwidth_factor))
        self.escape_vc_active = routing.adaptive
        self.nics: List[NodeInterface] = []
        n = topology.n
        self.routers: List[Router] = []
        #: per-router map neighbour-id -> output-port index
        self._port_of: List[Dict[int, int]] = []
        for rid in range(n):
            neighbors = topology.neighbors(rid)
            router = Router(
                rid,
                self,
                nports=1 + len(neighbors),
                vcs=vcs,
                vc_cap=cfg.vc_depth_flits,
                pipeline=cfg.router_pipeline_cycles - 1 + cfg.link_cycles,
            )
            self.routers.append(router)
            self._port_of.append(
                {nb: 1 + i for i, nb in enumerate(neighbors)}
            )
        # wire downstream pointers
        for rid in range(n):
            router = self.routers[rid]
            for nb, port in self._port_of[rid].items():
                down = self.routers[nb]
                router.downstream[port] = (down, self._port_of[nb][rid])
        #: flits moved per directed link, indexed [rid][oport]
        self.link_flits: List[List[int]] = [
            [0] * r.nports for r in self.routers
        ]
        self.packets_delivered = 0
        self.flits_delivered = 0
        self.cycles = 0
        #: delivered packet counts per message type (int value of MessageType)
        self.delivered_by_type: Dict[int, int] = {}

    # -- hooks used by routers -----------------------------------------

    def route(self, router: Router, pkt: Packet) -> int:
        """Output port for ``pkt`` at ``router`` (LOCAL_PORT = ejection)."""
        if pkt.dst == router.rid:
            return LOCAL_PORT
        nxt = self.routing.next_hop(self, router.rid, pkt)
        return self._port_of[router.rid][nxt]

    def dor_port(self, router: Router, pkt: Packet) -> int:
        if pkt.dst == router.rid:
            return LOCAL_PORT
        nxt = self.routing.dor_next(router.rid, pkt)
        return self._port_of[router.rid][nxt]

    def downstream_free(self, cur: int, nxt: int) -> int:
        """Free buffer flits at ``nxt``'s input port fed by ``cur``."""
        down = self.routers[nxt]
        dport = self._port_of[nxt][cur]
        return down.free_flits(dport)

    def eject_flit(self, rid: int, pkt: Packet, is_tail: bool, cycle: int) -> None:
        if is_tail:
            pkt.delivered = cycle
            self.packets_delivered += 1
            self.flits_delivered += pkt.size_flits
            key = int(pkt.mtype)
            self.delivered_by_type[key] = self.delivered_by_type.get(key, 0) + 1
            self.nics[rid].deliver(pkt, cycle)

    def count_link_flit(self, rid: int, oport: int) -> None:
        self.link_flits[rid][oport] += 1

    # -- stepping and statistics ----------------------------------------

    def step(self, cycle: int) -> None:
        self.cycles += 1
        for router in self.routers:
            if router.active:
                router.step(cycle)

    def link_utilization(self, rid: int, oport: int) -> float:
        """Fraction of cycles the directed link out of ``(rid, oport)``
        carried a flit (normalised by the link's flit bandwidth)."""
        if self.cycles == 0:
            return 0.0
        return self.link_flits[rid][oport] / (self.cycles * self.bandwidth)

    def utilization_of_links_into(self, rid: int) -> List[float]:
        """Utilisation of every link pointing *towards* router ``rid``."""
        out = []
        for nb, _port in self._port_of[rid].items():
            towards = self._port_of[nb][rid]
            out.append(self.link_utilization(nb, towards))
        return out

    def buffered_flits(self) -> int:
        return sum(r.buffered_flits() for r in self.routers)

    def total_flits_routed(self) -> int:
        return sum(r.flits_routed for r in self.routers)


class NocFabric:
    """Request + reply networks plus the per-node NICs."""

    def __init__(
        self,
        topology: BaseTopology,
        cfg: NocConfig,
        mem_nodes: Tuple[int, ...] = (),
    ) -> None:
        self.topology = topology
        self.cfg = cfg
        self.separate_networks = cfg.separate_physical_networks
        self.bandwidth = max(1, round(cfg.bandwidth_factor))
        routing = build_routing(topology, cfg)
        self.routing = routing
        if self.separate_networks:
            vcs = cfg.vcs_per_port

            def full_range(pkt: Packet, _v: int = vcs) -> Tuple[int, int]:
                return (0, _v)

            self.request_net = PhysicalNetwork(
                "request", topology, cfg, routing, vcs, full_range
            )
            self.reply_net = PhysicalNetwork(
                "reply", topology, cfg, routing, vcs, full_range
            )
            self._nets = {
                NetKind.REQUEST: self.request_net,
                NetKind.REPLY: self.reply_net,
            }
        else:
            vcs = cfg.request_vcs + cfg.reply_vcs

            def split_range(
                pkt: Packet,
                _rq: int = cfg.request_vcs,
                _total: int = vcs,
            ) -> Tuple[int, int]:
                if pkt.net is NetKind.REQUEST:
                    return (0, _rq)
                return (_rq, _total)

            shared = PhysicalNetwork(
                "shared", topology, cfg, routing, vcs, split_range
            )
            self.request_net = shared
            self.reply_net = shared
            self._nets = {NetKind.REQUEST: shared, NetKind.REPLY: shared}
        mem_set = set(mem_nodes)
        self.nics: List[NodeInterface] = []
        for node in range(topology.n):
            if node in mem_set:
                nic: NodeInterface = MemoryNodeNic(
                    node,
                    self,
                    queue_packets=cfg.node_injection_queue_packets,
                    reply_buffer_flits=cfg.mem_injection_buffer_flits,
                )
            else:
                nic = NodeInterface(
                    node, self, queue_packets=cfg.node_injection_queue_packets
                )
            self.nics.append(nic)
        for net in set(self._nets.values()):
            net.nics = self.nics

    # -- endpoint API ---------------------------------------------------

    def nic(self, node: int) -> NodeInterface:
        return self.nics[node]

    def router_for(self, node: int, net: NetKind) -> Router:
        return self._nets[net].routers[node]

    def vc_range_for(self, pkt: Packet) -> Tuple[int, int]:
        return self._nets[pkt.net].vc_range(pkt)

    # -- simulation -----------------------------------------------------

    def step(self, cycle: int) -> None:
        """Advance the fabric one cycle: route flits, then inject."""
        for net in set(self._nets.values()):
            net.step(cycle)
        for nic in self.nics:
            nic.inject_step(cycle)

    def in_flight_flits(self) -> int:
        """Flits buffered in routers (conservation checks in tests)."""
        return sum(net.buffered_flits() for net in set(self._nets.values()))

    def memory_blocking_rates(self) -> Dict[int, float]:
        return {
            nic.node_id: nic.blocking_rate
            for nic in self.nics
            if isinstance(nic, MemoryNodeNic)
        }
