"""Performance benchmarks for the simulation kernel.

``python -m repro.bench`` runs a fixed set of configurations against the
hot-path simulation kernel (router arbitration, the active-set scheduler
and the NIC injection loop) and writes machine-readable throughput numbers
to ``BENCH_noc.json``.  The configs are chosen so regressions in the NoC
kernel show up directly:

* ``mesh8x8`` — 8x8 mesh, baseline NoC, light uniform-random traffic (the
  latency-regime operating point).  NoC-kernel-bound and the headline
  cycles/sec number: the active-set scheduler's win shows here.
* ``mesh8x8_sat`` — the same mesh far past saturation; every router is
  busy, so this isolates raw per-flit arbitration cost and guards against
  scheduler bookkeeping overhead.
* ``mesh8x8_dr`` — mesh with memory-node hotspot traffic and the
  Delegated Replies policy attached, exercising the memory-node NIC path.
* ``shared_vnet`` — one physical network with request/reply virtual
  networks (the AVCP substrate of Section III-B) at moderate load.
* ``fullsys`` — a short full-system window (HS + canneal) tracking
  end-to-end simulation throughput, cores and caches included.

The traffic generators are seeded LCGs whose decisions depend only on
``(cycle, node)``, so two simulator builds replay the identical workload
and their cycles/sec are directly comparable.
"""

from repro.bench.harness import (
    BENCH_CONFIGS,
    BenchResult,
    run_bench,
    run_bench_isolated,
    run_all,
)

__all__ = [
    "BENCH_CONFIGS",
    "BenchResult",
    "run_bench",
    "run_bench_isolated",
    "run_all",
]
