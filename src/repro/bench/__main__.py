"""CLI entry point: ``python -m repro.bench``.

Runs the fixed benchmark configurations and writes ``BENCH_noc.json``:

.. code-block:: json

    {
      "bench": "noc-kernel",
      "scheduler": "active-set",
      "configs": {
        "mesh8x8": {"cycles": 12000, "wall_time_s": 0.52,
                    "cycles_per_sec": 23076.9, "packets_delivered": 3800,
                    "flits_delivered": 19000}
      }
    }

Flags:
    ``--cycles N``     override the per-config cycle counts with N
    ``--quick``        quarter-length run (CI smoke test budget)
    ``--configs a b``  run only the named configs
    ``--reference``    use the full-scan reference stepping (for A/B runs)
    ``--backend B``    run the fabric configs on another engine
                       (``object`` | ``vector``; default per config)
    ``--jobs N``       worker processes for the sweep-throughput bench
    ``--out PATH``     output path (default ``BENCH_noc.json``)
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import (
    BENCH_CONFIGS,
    run_bench,
    run_bench_isolated,
    run_explore_search,
    run_surrogate_accuracy,
    run_sweep_throughput,
    run_telemetry_overhead,
)
from repro.cli import (
    add_backend_option,
    add_cycles_option,
    add_jobs_option,
    add_out_option,
    backend_error_exit,
)
from repro.sim.engines import BackendError

#: pseudo-config measuring the repro.sweep runner, not a bare fabric
SWEEP_BENCH = "sweep_throughput"
#: pseudo-config measuring enabled-telemetry cost on mesh8x8_dr
TELEMETRY_BENCH = "telemetry_overhead"
#: pseudo-config measuring repro.model accuracy/speed vs the simulator
MODEL_BENCH = "surrogate_accuracy"
#: pseudo-config measuring the repro.explore surrogate-only search loop
EXPLORE_BENCH = "explore_search"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="NoC simulation-kernel throughput benchmarks",
    )
    add_cycles_option(parser, help="override per-config cycle counts")
    parser.add_argument("--quick", action="store_true",
                        help="quarter-length run (CI smoke budget)")
    parser.add_argument("--configs", nargs="+", default=None,
                        choices=sorted(
                            [*BENCH_CONFIGS, SWEEP_BENCH, TELEMETRY_BENCH,
                             MODEL_BENCH, EXPLORE_BENCH]
                        ),
                        help="subset of configs to run")
    parser.add_argument("--reference", action="store_true",
                        help="use full-scan reference stepping")
    add_backend_option(parser, help="simulation engine for the fabric "
                                    "configs (default per config; the "
                                    "pseudo-configs always run object)")
    parser.add_argument("--no-isolate", action="store_true",
                        help="run fabric configs in-process instead of one "
                             "subprocess each (faster, but peak_rss_kb "
                             "numbers then contaminate each other)")
    add_jobs_option(parser,
                    help="worker processes for the sweep-throughput bench")
    add_out_option(parser, default="BENCH_noc.json",
                   help="output JSON path")
    args = parser.parse_args(argv)

    names = args.configs or [
        *BENCH_CONFIGS, SWEEP_BENCH, TELEMETRY_BENCH, MODEL_BENCH,
        EXPLORE_BENCH,
    ]
    results = {}
    for name in names:
        if name == EXPLORE_BENCH:
            res = run_explore_search(
                budget=16 if args.quick else 32,
                population=8 if args.quick else 12,
            )
            results[name] = res.as_dict()
            print(
                f"{name:>12}: {res.extra['evals_per_sec']:.1f} evals/s "
                f"(budget {res.extra['budget']}, frontier "
                f"{res.extra['frontier_size']}, hv edge vs random "
                f"{res.extra['hv_edge']:.2f}x)"
            )
            continue
        if name == MODEL_BENCH:
            res = run_surrogate_accuracy(
                grid="mesh4x4" if args.quick else "fig11",
                jobs=args.jobs,
                cycles=args.cycles,
            )
            results[name] = res.as_dict()
            print(
                f"{name:>12}: {res.extra['grid']} median err "
                f"{res.extra['median_rel_err']:.1%}, spearman "
                f"{res.extra['spearman']:.3f}, "
                f"{res.extra['predict_ms_per_point']:.1f} ms/pt "
                f"({res.extra['speedup']:.0f}x vs simulator)"
            )
            continue
        if name == TELEMETRY_BENCH:
            res = run_telemetry_overhead(
                cycles=args.cycles or (1000 if args.quick else 4000)
            )
            results[name] = res.as_dict()
            ident = "" if res.extra["bit_identical"] else ", NOT bit-identical"
            print(
                f"{name:>12}: {res.cycles_per_sec:>8.1f} cycles/s off, "
                f"{res.extra['enabled_cycles_per_sec']:.1f} light "
                f"({res.extra['overhead_pct']:+.1f}%), "
                f"{res.extra['full_cycles_per_sec']:.1f} full "
                f"({res.extra['full_overhead_pct']:+.1f}%){ident}"
            )
            continue
        if name == SWEEP_BENCH:
            res = run_sweep_throughput(
                workers=args.jobs,
                cycles=150 if args.quick else 300,
                warmup=100 if args.quick else 200,
                probe_jobs=8 if args.quick else 16,
            )
            results[name] = res.as_dict()
            scaling = ", ".join(
                f"{w}w={s:.2f}x" for w, s in res.extra["scaling"].items()
            )
            print(
                f"{name:>12}: {res.extra['jobs_per_sec_1']:.2f} jobs/s @1 "
                f"-> {res.extra['jobs_per_sec_n']:.2f} jobs/s "
                f"@{res.extra['workers']} workers "
                f"(sim {res.extra['sim_speedup']:.2f}x; "
                f"fabric scaling {scaling})"
            )
            continue
        cycles = args.cycles
        if cycles is None and args.quick:
            cycles = max(200, BENCH_CONFIGS[name][1] // 4)
        # one subprocess per config so peak_rss_kb is per-config truth
        runner = run_bench if args.no_isolate else run_bench_isolated
        try:
            res = runner(name, cycles=cycles, reference=args.reference,
                         backend=args.backend)
        except BackendError as exc:
            return backend_error_exit(exc)
        results[name] = res.as_dict()
        print(
            f"{name:>12}: {res.cycles_per_sec:>8.1f} cycles/s "
            f"[{res.extra['backend']}] "
            f"({res.cycles} cycles in {res.wall_time_s:.2f}s, "
            f"{res.packets_delivered} pkts)"
        )

    payload = {
        "bench": "noc-kernel",
        "scheduler": "full-scan" if args.reference else "active-set",
        "configs": results,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
