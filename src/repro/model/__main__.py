"""CLI entry point: ``python -m repro.model``.

Subcommands:

* ``predict``  — one (config, GPU, CPU) point through the surrogate:
  latencies, throughput, saturation verdict.  Milliseconds, no simulator.
* ``validate`` — a named grid (fig05/fig11/fig16/mesh4x4) through both
  the surrogate and the simulator (cached via ``repro.sweep``), reporting
  per-point relative error, rank correlation and the speed ratio.
  Exit status 1 if the report misses its error/latency budgets.
* ``screen``   — show which points of a grid the hybrid sweep would
  simulate (``repro.sweep run --screen surrogate``) without running any.

Examples::

    python -m repro.model predict --gpu HS --cpu bodytrack --mechanism dr
    python -m repro.model validate --grid fig11 --jobs 4
    python -m repro.model screen --grid fig05 --band 0.35 --format json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cli import (
    add_format_option,
    add_jobs_option,
    add_out_option,
    add_window_options,
    emit,
)
from repro.model.compose import predict
from repro.model.saturation import DEFAULT_BAND, assess, keep_mask
from repro.model.validate import GRIDS, grid_specs, predictions_for, validate


def _config_from_args(args):
    from repro.config.system import Topology
    from repro.experiments.common import mechanism_config

    cfg = mechanism_config(args.mechanism)
    if args.topology:
        cfg.noc.topology = Topology(args.topology)
    if args.bandwidth_factor is not None:
        cfg.noc.bandwidth_factor = args.bandwidth_factor
    return cfg


def _cmd_predict(args) -> int:
    cfg = _config_from_args(args)
    pred = predict(cfg, args.gpu, args.cpu)
    sat = assess(pred)
    payload = pred.to_dict()
    payload["saturation"] = sat.to_dict()
    if args.format == "json":
        emit("json", payload, "")
        return 0
    print(f"{args.gpu}" + (f"/{args.cpu}" if args.cpu else "")
          + f" @ {args.mechanism}, {cfg.noc.topology.value}"
          + f" {cfg.noc.bandwidth_factor:g}x")
    for name in ("cpu_latency_avg", "cpu_latency_p95", "gpu_latency_avg",
                 "gpu_latency_p95", "gpu_ipc", "cpu_ipc",
                 "mem_blocking_rate", "delegated_fraction",
                 "max_rho", "demand_rho"):
        print(f"  {name:28s} {payload[name]:10.3f}")
    print(f"  {'verdict':28s} {sat.verdict}")
    if sat.clogged_links:
        worst = sorted(sat.clogged_links.items(), key=lambda kv: -kv[1])
        for link, rho in worst[:5]:
            print(f"    clogged {link}  rho={rho:.2f}")
    return 0


def _cmd_validate(args) -> int:
    report = validate(
        args.grid,
        cycles=args.cycles,
        warmup=args.warmup,
        jobs=args.jobs,
        progress=None if args.format == "json" else print,
    )
    payload = report.to_dict()
    if args.out:
        import json as _json

        with open(args.out, "w") as fh:
            _json.dump(payload, fh, indent=2)
            fh.write("\n")

    def render() -> str:
        lines = [f"== surrogate validation: {report.grid} "
                 f"({report.metric}) =="]
        for p in sorted(report.points, key=lambda p: p.simulated):
            lines.append(
                f"  {p.label:36s} sim {p.simulated:8.1f} "
                f"pred {p.predicted:8.1f} err {p.rel_err:6.1%}"
            )
        lines.append(
            f"  {report.n_points} point(s): median err "
            f"{report.median_rel_err:.1%}, p90 {report.p90_rel_err:.1%}, "
            f"spearman {report.spearman:.3f}"
        )
        lines.append(
            f"  surrogate {report.predict_ms_per_point:.1f} ms/pt vs "
            f"simulator {report.sim_s_per_point:.1f} s/pt "
            f"({report.speedup:.0f}x); "
            + ("PASS" if report.passed else "FAIL")
        )
        return "\n".join(lines)

    emit(args.format, payload, render)
    return 0 if report.passed else 1


def _cmd_screen(args) -> int:
    specs = grid_specs(args.grid, cycles=args.cycles, warmup=args.warmup)
    preds = predictions_for(specs)
    mask = keep_mask(preds, band=args.band)
    rows = []
    for spec, pred, keep in zip(specs, preds, mask):
        rows.append({
            "label": "/".join(spec.label) or spec.describe(),
            "key": spec.key(),
            "demand_rho": round(pred.demand_rho, 3),
            "keep": keep,
        })
    kept = sum(mask)

    def render() -> str:
        lines = [f"== surrogate screen: {args.grid} (band {args.band:g}) =="]
        for r in rows:
            mark = "simulate" if r["keep"] else "skip"
            lines.append(f"  {mark:8s} demand_rho {r['demand_rho']:6.2f}"
                         f"  {r['label']}")
        lines.append(f"  would simulate {kept}/{len(rows)} point(s)")
        return "\n".join(lines)

    emit(args.format, {
        "grid": args.grid,
        "band": args.band,
        "kept": kept,
        "total": len(rows),
        "points": rows,
    }, render)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.model",
        description="analytical surrogate performance model",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pred_p = sub.add_parser("predict", help="one point through the surrogate")
    pred_p.add_argument("--gpu", required=True,
                        help="GPU benchmark name (Table II)")
    pred_p.add_argument("--cpu", default=None,
                        help="CPU co-runner benchmark name")
    pred_p.add_argument("--mechanism", default="baseline",
                        choices=("baseline", "rp", "dr"),
                        help="coherence mechanism (default baseline)")
    pred_p.add_argument("--topology", default=None,
                        help="override topology (mesh/crossbar/dragonfly/...)")
    pred_p.add_argument("--bandwidth-factor", type=float, default=None,
                        help="override the NoC bandwidth factor")
    add_format_option(pred_p)

    val_p = sub.add_parser("validate",
                           help="surrogate vs simulator on a grid")
    val_p.add_argument("--grid", default="fig11", choices=GRIDS)
    add_window_options(val_p)
    add_jobs_option(val_p)
    add_out_option(val_p, help="also write the JSON report here")
    add_format_option(val_p)

    scr_p = sub.add_parser("screen",
                           help="preview the hybrid sweep's keep/skip split")
    scr_p.add_argument("--grid", default="fig11", choices=GRIDS)
    scr_p.add_argument("--band", type=float, default=DEFAULT_BAND,
                       help="guard band below the knee (default %(default)s)")
    add_window_options(scr_p)
    add_format_option(scr_p)

    args = parser.parse_args(argv)
    handler = {
        "predict": _cmd_predict,
        "validate": _cmd_validate,
        "screen": _cmd_screen,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
