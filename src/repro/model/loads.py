"""Per-link offered load derivation from routing tables and traffic split.

The surrogate never simulates packets.  Instead it enumerates the
*flow groups* a workload mix produces — CPU read requests to the memory
nodes, GPU read/write requests, the reply streams back, and under
Delegated Replies the delegated-request and core-to-core reply detours —
and walks each (src, dst) pair's deterministic route through the
topology exactly as the fabric's dimension-order tables would
(:meth:`~repro.noc.topology.BaseTopology.route_next` with the class's
configured order).  Each traversal deposits the group's packet size on
every directed link of the path, including the single injection and
ejection links every node owns — the paper's "one reply link per memory
node" bottleneck falls out of this bookkeeping rather than being special
cased.

Routes depend only on the config, so a :class:`NetworkModel` is built
once per prediction and each flow group is reduced to a sparse
``link -> expected traversals`` vector.  The fixed-point iteration in
:mod:`repro.model.compose` then rescales group rates dozens of times
without ever walking a route again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.config.system import DimensionOrder, SystemConfig
from repro.model.queueing import ClassLoad
from repro.noc.packet import NetKind, TrafficClass
from repro.noc.topology import BaseTopology, build_topology
from repro.sim.layout import NodePlacement, build_layout

#: directed-link key: ("link", net, a, b) for router a -> b,
#: ("inj", net, node) / ("ej", net, node) for the endpoint links.
LinkKey = Tuple


@dataclass
class FlowGroup:
    """One homogeneous traffic stream (e.g. all GPU read requests).

    ``rate`` is the total packets/cycle of the whole group; ``counts``
    maps each directed link to the expected number of traversals by one
    packet of the group (pair weights sum to one), so the link load the
    group induces is ``rate * counts[link]``.
    """

    name: str
    cls: TrafficClass
    net: NetKind
    flits: int
    counts: Dict[LinkKey, float] = field(default_factory=dict)
    mean_hops: float = 0.0
    rate: float = 0.0


class NetworkModel:
    """Routes, link inventory and flow groups for one configuration."""

    def __init__(self, cfg: SystemConfig) -> None:
        self.cfg = cfg
        self.noc = cfg.noc
        self.topology: BaseTopology = build_topology(
            cfg.noc.topology, cfg.mesh_width, cfg.mesh_height
        )
        self.placement: NodePlacement = build_layout(cfg)
        self.bandwidth = max(1, round(cfg.noc.bandwidth_factor))
        #: head-flit cycles spent per hop (router pipeline + link), the
        #: same constant the router model is built with.
        self.hop_cycles = (
            cfg.noc.router_pipeline_cycles - 1 + cfg.noc.link_cycles
        )
        self._route_cache: Dict[Tuple[int, int, DimensionOrder], List[int]] = {}

    # -- routing ----------------------------------------------------------

    def _route(self, src: int, dst: int, order: DimensionOrder) -> List[int]:
        """Router ids visited from ``src`` to ``dst`` inclusive."""
        key = (src, dst, order)
        path = self._route_cache.get(key)
        if path is None:
            path = [src]
            cur = src
            while cur != dst:
                cur = self.topology.route_next(cur, dst, order)
                path.append(cur)
                if len(path) > self.topology.n + 1:  # pragma: no cover
                    raise RuntimeError("routing loop in surrogate model")
            self._route_cache[key] = path
        return path

    def _net_of(self, net: NetKind) -> int:
        """Physical network index: shared-network configs collapse to 0."""
        return int(net) if self.noc.separate_physical_networks else 0

    def order_for(self, net: NetKind) -> DimensionOrder:
        return (
            self.noc.request_order
            if net is NetKind.REQUEST
            else self.noc.reply_order
        )

    # -- flow groups ------------------------------------------------------

    def flow_group(
        self,
        name: str,
        pairs: Sequence[Tuple[int, int, float]],
        cls: TrafficClass,
        net: NetKind,
        flits: int,
    ) -> FlowGroup:
        """Build a flow group from weighted (src, dst, weight) pairs."""
        group = FlowGroup(name=name, cls=cls, net=net, flits=flits)
        order = self.order_for(net)
        phys = self._net_of(net)
        total_w = sum(w for _, _, w in pairs) or 1.0
        counts = group.counts
        hops = 0.0
        for src, dst, w in pairs:
            if src == dst or w <= 0.0:
                continue
            w /= total_w
            path = self._route(src, dst, order)
            counts[("inj", phys, src)] = counts.get(("inj", phys, src), 0.0) + w
            for a, b in zip(path, path[1:]):
                k = ("link", phys, a, b)
                counts[k] = counts.get(k, 0.0) + w
            counts[("ej", phys, dst)] = counts.get(("ej", phys, dst), 0.0) + w
            hops += w * (len(path) - 1)
        group.mean_hops = hops
        return group

    def uniform_pairs(
        self, sources: Iterable[int], dests: Iterable[int]
    ) -> List[Tuple[int, int, float]]:
        """Every (src, dst) pair weighted uniformly (self-pairs skipped).

        Uniform destinations model the :class:`~repro.mem.address.AddressMap`
        hash spreading blocks evenly over the memory nodes, and delegation
        pointers landing on an arbitrary sharer.
        """
        src_list, dst_list = list(sources), list(dests)
        return [
            (s, d, 1.0)
            for s in src_list
            for d in dst_list
            if s != d
        ]

    # -- load accumulation ------------------------------------------------

    def service_cycles(self, flits: int) -> float:
        """Link occupancy of one worm: flits at ``bandwidth`` flits/cycle."""
        return max(1.0, flits / self.bandwidth)

    def accumulate(
        self, groups: Sequence[FlowGroup]
    ) -> Dict[LinkKey, List[ClassLoad]]:
        """Per-link, per-class offered load for the groups' current rates."""
        loads: Dict[LinkKey, List[ClassLoad]] = {}
        for g in groups:
            if g.rate <= 0.0:
                continue
            service = self.service_cycles(g.flits)
            ci = int(g.cls)
            for link, count in g.counts.items():
                per_class = loads.get(link)
                if per_class is None:
                    per_class = [ClassLoad(), ClassLoad()]
                    loads[link] = per_class
                per_class[ci].add(g.rate * count, service)
        return loads

    def path_wait(
        self,
        group: FlowGroup,
        waits: Dict[LinkKey, List[float]],
        cap_per_link: float,
    ) -> float:
        """Expected queueing wait along the group's (weighted) route.

        Each link's class wait is capped at ``cap_per_link``: the VC
        buffers bounding a real queue keep the wait finite even where
        the open M/G/1 formula diverges — excess backlog shows up as
        endpoint throttling (handled by the closed-loop rate equations),
        not as unbounded in-network waiting.
        """
        ci = int(group.cls)
        total = 0.0
        for link, count in group.counts.items():
            w = waits.get(link)
            if w is not None:
                total += count * min(w[ci], cap_per_link)
        return total
