"""Saturation/clogging assessment and the surrogate screening policy.

A :class:`~repro.model.compose.Prediction` carries two utilisation
figures per point: ``max_rho`` (carried load after the closed loop
throttles, never above ``RHO_CAP``) and ``demand_rho`` (what the
endpoints *wanted* to push through the worst resource).  ``demand_rho``
is the interesting one — it says how deep into the clogged regime the
point operates, which is both the clogging verdict and the score the
hybrid sweep screens on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.model.compose import RHO_CAP, Prediction

#: carried utilisation above which a link is reported as clogged.
CLOGGED_RHO = 0.90
#: carried utilisation above which a link is "near saturation".
NEAR_RHO = 0.70

#: default screening band: simulate points whose demand utilisation is
#: within 35% of the saturation knee (or beyond it).
DEFAULT_BAND = 0.35


@dataclass
class SaturationReport:
    """Link-level clogging verdict for one prediction."""

    saturated: bool
    demand_rho: float
    bottleneck: str
    clogged_links: Dict[str, float] = field(default_factory=dict)
    near_links: Dict[str, float] = field(default_factory=dict)
    verdict: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "saturated": self.saturated,
            "demand_rho": self.demand_rho,
            "bottleneck": self.bottleneck,
            "clogged_links": dict(self.clogged_links),
            "near_links": dict(self.near_links),
            "verdict": self.verdict,
        }


def assess(pred: Prediction) -> SaturationReport:
    """Classify a prediction's hot links into clogged / near-saturated."""
    clogged = {k: v for k, v in pred.link_rho.items() if v >= CLOGGED_RHO}
    near = {
        k: v
        for k, v in pred.link_rho.items()
        if NEAR_RHO <= v < CLOGGED_RHO
    }
    if pred.saturated:
        verdict = (
            f"clogged: demand {pred.demand_rho:.2f}x the capacity of "
            f"{pred.bottleneck or 'the bottleneck link'}"
        )
    elif near:
        verdict = f"near saturation ({len(near)} links above {NEAR_RHO:g})"
    else:
        verdict = "unsaturated"
    return SaturationReport(
        saturated=pred.saturated,
        demand_rho=pred.demand_rho,
        bottleneck=pred.bottleneck,
        clogged_links=clogged,
        near_links=near,
        verdict=verdict,
    )


def screening_score(pred: Prediction) -> float:
    """The scalar the hybrid sweep ranks grid points by."""
    return pred.demand_rho


def keep_mask(preds: Sequence[Prediction], band: float = DEFAULT_BAND) -> List[bool]:
    """Which grid points deserve a real simulation.

    Keeps every point whose demand utilisation reaches within ``band``
    of the saturation knee (``RHO_CAP``) — i.e. everything at or past
    the onset of clogging plus a guard band below it so the knee itself
    is bracketed — and always anchors the sweep with the lowest-scoring
    point as an unclogged far-field reference.
    """
    if not preds:
        return []
    threshold = (1.0 - band) * RHO_CAP
    keep = [screening_score(p) >= threshold for p in preds]
    anchor = min(range(len(preds)), key=lambda i: screening_score(preds[i]))
    keep[anchor] = True
    return keep
