"""Analytical surrogate performance model (millisecond what-if path).

``repro.model`` answers the questions the simulator answers — per-class
latency, throughput, where the network clogs — in milliseconds instead
of minutes, using per-link offered loads derived from the routing
tables, M/G/1 priority queueing per link, and a closed-loop fixed point
that captures the self-throttling saturated regime the paper studies.

Entry points:

- :func:`predict` — one point, one :class:`Prediction`.
- :func:`repro.model.validate.validate` — surrogate vs simulator on the
  fig05/fig11/fig16 grids (error + rank correlation report).
- :func:`repro.model.saturation.keep_mask` — the screening policy behind
  ``repro.sweep run --screen surrogate``.
- ``python -m repro.model {predict,validate,screen}``.
"""

from repro.model.compose import Prediction, predict, predict_spec
from repro.model.queueing import ClassLoad, p95_of_mean, priority_waits
from repro.model.saturation import SaturationReport, assess, keep_mask
from repro.model.validate import ValidationReport, spearman, validate

__all__ = [
    "ClassLoad",
    "Prediction",
    "SaturationReport",
    "ValidationReport",
    "assess",
    "keep_mask",
    "p95_of_mean",
    "predict",
    "predict_spec",
    "priority_waits",
    "spearman",
    "validate",
]
