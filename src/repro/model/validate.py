"""Surrogate-vs-simulator validation harness.

Sweeps a named grid (the fig05/fig11/fig16 experiment grids, or the tiny
``mesh4x4`` CI grid) through both the analytical surrogate and the real
simulator — the simulator side rides the ``repro.sweep`` ResultCache, so
repeated validations and validations that overlap experiment reruns are
free — and reports per-point relative error, rank correlation and the
speed ratio between the two paths.

The headline metric is ``cpu_latency_avg``: it is the paper's victim
metric (CPU traffic strangled by GPU reply clogging), it is a full
round-trip measurement in the simulator, and it moves by 2-5x across
mechanisms and topologies, so both absolute error and ranking are
meaningful.  Rank correlation is reported because the surrogate's job
downstream (screening, design-space search) needs ordering more than
absolute calibration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.config.system import SystemConfig, Topology, baseline_config
from repro.model.compose import Prediction, predict
from repro.sweep.cache import ResultCache
from repro.sweep.jobs import JobSpec, mechanism_jobs
from repro.sweep.runner import SweepRunner

GRIDS = ("fig05", "fig11", "fig16", "mesh4x4")

#: error budget pinned by CI (model_validate.sh) and the tier-1 tests.
MEDIAN_ERROR_BUDGET = 0.25
PREDICT_MS_BUDGET = 50.0


@dataclass
class PointReport:
    """One grid point: simulator truth vs surrogate estimate."""

    label: str
    simulated: float
    predicted: float
    rel_err: float
    demand_rho: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "simulated": round(self.simulated, 3),
            "predicted": round(self.predicted, 3),
            "rel_err": round(self.rel_err, 4),
            "demand_rho": round(self.demand_rho, 3),
        }


@dataclass
class ValidationReport:
    grid: str
    metric: str
    n_points: int = 0
    median_rel_err: float = 0.0
    p90_rel_err: float = 0.0
    spearman: float = 0.0
    predict_ms_per_point: float = 0.0
    sim_s_per_point: float = 0.0
    speedup: float = 0.0
    points: List[PointReport] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (
            self.median_rel_err <= MEDIAN_ERROR_BUDGET
            and self.predict_ms_per_point <= PREDICT_MS_BUDGET
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "grid": self.grid,
            "metric": self.metric,
            "n_points": self.n_points,
            "median_rel_err": round(self.median_rel_err, 4),
            "p90_rel_err": round(self.p90_rel_err, 4),
            "spearman": round(self.spearman, 4),
            "predict_ms_per_point": round(self.predict_ms_per_point, 3),
            "sim_s_per_point": round(self.sim_s_per_point, 3),
            "speedup": round(self.speedup, 1),
            "passed": self.passed,
            "points": [p.to_dict() for p in self.points],
        }


# --- grids ----------------------------------------------------------------


def _corunner(gpu: str) -> str:
    from repro.experiments.common import cpu_corunners

    return cpu_corunners(gpu, 1)[0]


def mesh4x4_config() -> SystemConfig:
    """A 16-node system small enough for sub-second simulations."""
    return SystemConfig(
        mesh_width=4, mesh_height=4, n_gpu=10, n_cpu=4, n_mem=2
    )


def grid_specs(
    grid: str,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> List[JobSpec]:
    """The JobSpecs of a named validation grid.

    Specs are built exactly as the corresponding experiment module
    builds them, so simulator ground truth shares cache entries with
    ordinary figure regeneration.
    """
    from repro.experiments.common import (
        default_benchmarks,
        default_cycles,
        default_warmup,
        mechanism_config,
    )
    from repro.experiments.fig05_topology import TOPOLOGIES

    if grid == "fig11":
        return mechanism_jobs(
            default_benchmarks(), n_mixes=1, cycles=cycles, warmup=warmup
        )
    if grid == "mesh4x4":
        # the 16-node smoke grid defaults to a *longer* window than the
        # big grids: its clog develops slowly, and windows near the
        # global 3000-cycle default measure the still-filling transient
        # 30-50% below steady state.  The system simulates fast enough
        # that the full grid still fits a CI smoke budget.
        cycles = 12000 if cycles is None else cycles
        warmup = 3000 if warmup is None else warmup
        specs = []
        for mech in ("baseline", "dr"):
            for gpu in default_benchmarks(subset=4):
                cfg = mechanism_config(mech)
                small = mesh4x4_config()
                cfg.mesh_width = small.mesh_width
                cfg.mesh_height = small.mesh_height
                cfg.n_gpu, cfg.n_cpu, cfg.n_mem = (
                    small.n_gpu, small.n_cpu, small.n_mem
                )
                specs.append(
                    JobSpec.make(
                        cfg, gpu, _corunner(gpu),
                        cycles=cycles, warmup=warmup,
                        label=("mesh4x4", mech, gpu),
                    )
                )
        return specs
    cycles = default_cycles() if cycles is None else cycles
    warmup = default_warmup() if warmup is None else warmup
    if grid == "fig05":
        specs = []
        for topo in TOPOLOGIES:
            for bw in (1.0, 2.0):
                for gpu in default_benchmarks(subset=5):
                    cfg = baseline_config()
                    cfg.noc.topology = topo
                    cfg.noc.bandwidth_factor = bw
                    specs.append(
                        JobSpec.make(
                            cfg, gpu, _corunner(gpu),
                            cycles=cycles, warmup=warmup,
                            label=(topo.value, f"{bw:g}x", gpu),
                        )
                    )
        return specs
    if grid == "fig16":
        specs = []
        for topo in TOPOLOGIES:
            for mech in ("baseline", "dr"):
                for gpu in default_benchmarks(subset=4):
                    cfg = mechanism_config(mech)
                    cfg.noc.topology = topo
                    specs.append(
                        JobSpec.make(
                            cfg, gpu, _corunner(gpu),
                            cycles=cycles, warmup=warmup,
                            label=(topo.value, mech, gpu),
                        )
                    )
        return specs
    raise ValueError(f"unknown grid {grid!r}; choose from {GRIDS}")


# --- statistics -----------------------------------------------------------


def _ranks(values: Sequence[float]) -> List[float]:
    """Average ranks (1-based), ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation, pure Python (no scipy in the image)."""
    if len(a) != len(b) or len(a) < 2:
        return 0.0
    ra, rb = _ranks(a), _ranks(b)
    ma = sum(ra) / len(ra)
    mb = sum(rb) / len(rb)
    cov = sum((x - ma) * (y - mb) for x, y in zip(ra, rb))
    va = sum((x - ma) ** 2 for x in ra)
    vb = sum((y - mb) ** 2 for y in rb)
    if va <= 0.0 or vb <= 0.0:
        return 0.0
    return cov / (va * vb) ** 0.5


def _quantile(sorted_vals: Sequence[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    pos = q * (len(sorted_vals) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_vals) - 1)
    return sorted_vals[lo] + (sorted_vals[hi] - sorted_vals[lo]) * (pos - lo)


# --- harness --------------------------------------------------------------


def validate(
    grid: str = "fig11",
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    jobs: Optional[int] = None,
    metric: str = "cpu_latency_avg",
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ValidationReport:
    """Run one grid through surrogate and simulator and compare."""
    specs = grid_specs(grid, cycles=cycles, warmup=warmup)
    report = ValidationReport(grid=grid, metric=metric)
    cache = cache or ResultCache()
    if progress:
        progress(f"{grid}: {len(specs)} points, simulating...")

    runner = SweepRunner(cache=cache, jobs=jobs)
    try:
        outcomes = runner.run(specs)
    finally:
        runner.close()

    sim_wall = 0.0
    sim_points = 0
    sims: List[float] = []
    preds: List[float] = []
    for spec in specs:
        key = spec.key()
        out = outcomes.get(key)
        if out is None or out.result is None:
            continue
        wall = out.wall_time_s
        if wall <= 0.0:  # cache hit: recover the recorded simulation time
            entry = cache.get_entry(key)
            if entry:
                wall = float(entry.get("meta", {}).get("wall_time_s", 0.0))
        if wall > 0.0:
            sim_wall += wall
            sim_points += 1

        t0 = time.perf_counter()
        pred = predict(spec.system_config(), spec.gpu, spec.cpu)
        dt_ms = (time.perf_counter() - t0) * 1e3
        report.predict_ms_per_point += dt_ms

        truth = float(getattr(out.result, metric))
        guess = float(getattr(pred, metric))
        if truth <= 0.0:
            continue
        rel = abs(guess - truth) / truth
        sims.append(truth)
        preds.append(guess)
        label = "/".join(spec.label) if spec.label else f"{spec.gpu}/{spec.cpu}"
        report.points.append(
            PointReport(
                label=label,
                simulated=truth,
                predicted=guess,
                rel_err=rel,
                demand_rho=pred.demand_rho,
            )
        )

    report.n_points = len(report.points)
    if report.n_points:
        report.predict_ms_per_point /= report.n_points
        errs = sorted(p.rel_err for p in report.points)
        report.median_rel_err = _quantile(errs, 0.5)
        report.p90_rel_err = _quantile(errs, 0.9)
        report.spearman = spearman(sims, preds)
    if sim_points:
        report.sim_s_per_point = sim_wall / sim_points
    if report.predict_ms_per_point > 0.0 and report.sim_s_per_point > 0.0:
        report.speedup = (
            report.sim_s_per_point * 1e3 / report.predict_ms_per_point
        )
    return report


def predictions_for(specs: Sequence[JobSpec]) -> List[Prediction]:
    """Surrogate predictions for a list of sweep specs (screening path)."""
    return [predict(s.system_config(), s.gpu, s.cpu) for s in specs]
