"""Closed-loop composition: endpoint rates, link waits, latency estimates.

The simulator's steady state is *closed-loop*: GPU warps block on their
own read misses and each L1 has a finite MSHR pool, so once any resource
saturates the cores self-throttle and offered load equals carried load.
An open queueing network (rates in, waits out) diverges exactly where
the interesting behaviour lives, so the surrogate solves a damped fixed
point instead:

1. endpoint *demand* rates from the current round-trip latencies
   (warp-pool / MSHR / outstanding-miss Little's-law caps included);
2. per-link offered load via :class:`~repro.model.loads.NetworkModel`;
3. a single throughput scale factor for the GPU class so no link — nor
   the LLC lookup port or DRAM bus behind it — exceeds ``RHO_CAP``
   (CPU traffic is never scaled: the fabric gives it priority);
4. per-link M/G/1 priority waits plus a finite-buffer memory-node
   sojourn (LLC input queue, LLC/DRAM service, reply-drain
   head-of-line), composed along each flow's route;
5. new round-trip latencies, damped back into step 1.

When the network is the binding constraint the loop converges to the
paper's clogging regime: latency is set by Little's law over the
endpoint pools, CPU latency by the FIFO LLC input queue it shares with
the GPU flood, and Delegated Replies help exactly as far as they thin
the memory nodes' reply injection links.

Calibration constants below were fitted once against the simulator's
mechanism sweep (see ``tests/test_model_validation.py`` and DESIGN.md
section 10); they are deliberately few and global — per-benchmark
fudge factors would defeat the point of a predictive model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config.system import SystemConfig
from repro.gpu.core import _WRITE_CAP as GPU_WRITE_CAP
from repro.model.loads import FlowGroup, LinkKey, NetworkModel
from repro.model.queueing import p95_of_mean
from repro.noc.packet import NetKind, TrafficClass
from repro.workloads.cpu import cpu_benchmark
from repro.workloads.gpu import gpu_benchmark

# --- calibration constants (fitted once, global) -------------------------

#: GPU L1 hit rate ~ p_reuse ** K: reuse must survive K generations of
#: wavefront churn / capacity pressure before the line is re-touched.
K_GPU_REUSE = 3.3
#: CPU L1 misses slightly below (1 - p_reuse): the reuse window catches
#: a sliver of the "new" accesses too.
CPU_MISS_SCALE = 0.95
#: utilisation ceiling a wormhole link sustains before flow control
#: rounds off the top; the simulator's memory reply injection links
#: plateau at 0.80-0.84 across all saturated workloads.
RHO_CAP = 0.82
#: fraction of shared-region read misses whose LLC core pointer is live
#: enough to delegate; thinned by wavefront lag (remote misses).
K_DELEG = 0.55
K_DELEG_LAG = 0.5
#: probability an RP probe of ``probe_width`` neighbours finds the line.
K_PROBE_HIT = 0.45
#: LLC miss rate grows with how far the workload's footprint overflows
#: the aggregate LLC: miss = clip(BASE + FOOT * footprint/capacity).
#: (BT and MM touch ~2x the LLC; LUD and SC fit almost entirely.)
LLC_MISS_BASE = 0.10
LLC_MISS_FOOT = 0.20
LLC_MISS_MIN, LLC_MISS_MAX = 0.05, 0.90
#: bounded LLC result queue depth (LlcSlice default, not in LlcConfig).
LLC_OUTPUT_CAPACITY = 8
#: fraction of DRAM accesses that open a new row.
ROW_MISS = 0.35
#: cap on the M/G/1 wait charged per in-network link: VC buffers bound
#: the real queue; excess backlog surfaces as endpoint throttling.
LINK_WAIT_CAP = 30.0
#: request-packet slack in the routers/NIC feeding a memory node, on
#: top of the LLC queues — part of the node's backlog inventory.
MEM_ROUTER_SLACK_PKTS = 8.0
#: at most this many requests charged as fabric queueing upstream of a
#: full LLC input queue (deeper backlog parks at the sources instead).
#: The charge is further bounded by the buffering that physically exists
#: on the approach path: one input port's VC buffers per router hop
#: between the source and the memory router (the memory router's own
#: port is ``MEM_ROUTER_SLACK_PKTS``).  On a big mesh the path holds
#: more than this cap and the constant binds; on a 4x4 mesh or a
#: crossbar the one- or two-hop approach simply cannot park 24 requests
#: in front of a CPU arrival — the excess waits at the sources, where it
#: delays nobody else.
UPSTREAM_PKTS_MAX = 24.0
#: blocking-rate shape: blocking = (B/I) / (B/I + this).
BLOCKING_KNEE = 0.35
#: wormhole FIFO sharing: on request-net links that carry *both* CPU and
#: GPU requests, a CPU packet queues behind the GPU backlog parked in the
#: same input VCs — switch-allocation priority cannot overtake within a
#: FIFO.  Mesh (YX requests approach memory from the CPU-free side),
#: crossbar and flattened butterfly keep the classes on disjoint links
#: (overlap 0); Dragonfly funnels both through the same gateways.  The
#: constant scales parked-backlog packets into waiting cycles per shared
#: hop of the CPU route.
K_FIFO_MIX = 1.2
FIFO_PKTS_MAX = 24.0
#: a bounded queue whose arrival rate sits *at* its drain capacity hovers
#: around this occupancy fraction even with no excess demand parked
#: upstream (write-capped workloads run the reply link at the plateau
#: while their read backlog stays shallow); the sharp power keeps the
#: term negligible away from the knee.
CRIT_OCC_FRAC = 0.7
CRIT_OCC_POW = 8.0
#: demand depth (rate_free / rate_cap) at which the hover term reaches
#: full strength.  A point sitting *at* the knee (depth ~1) keeps its
#: queue shallow — arrivals barely outpace the drain — while a deeply
#: oversubscribed point pegs the buffer; ramping between the two keeps
#: lightly-clogged points (NN under Delegated Replies, depth ~1.1) from
#: being charged the full pegged-queue occupancy.
CRIT_OCC_RAMP = 2.0
MAX_ITERS = 40
DAMP = 0.5
_EPS = 1e-9


@dataclass
class Prediction:
    """Surrogate output for one (config, gpu, cpu) point.

    Field names deliberately mirror :class:`SimulationResult` so the
    validation harness and screening can compare them generically.
    """

    gpu: str
    cpu: str
    mechanism: str
    cpu_latency_avg: float = 0.0
    cpu_latency_p95: float = 0.0
    gpu_latency_avg: float = 0.0      # full round trip, request to fill
    gpu_latency_p95: float = 0.0
    gpu_reply_latency: float = 0.0    # reply-net traversal only (sim metric)
    gpu_ipc: float = 0.0
    cpu_ipc: float = 0.0
    delegated_fraction: float = 0.0
    mem_blocking_rate: float = 0.0
    #: highest carried per-link utilisation (post-throttling, <= RHO_CAP)
    max_rho: float = 0.0
    #: highest *demand* utilisation had nothing throttled — the screening
    #: score: > 1 means the point operates in the clogged regime.
    demand_rho: float = 0.0
    bottleneck: str = ""
    saturated: bool = False
    iterations: int = 0
    #: per-link carried utilisation, formatted key -> rho (hot links only)
    link_rho: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        d = {
            k: getattr(self, k)
            for k in (
                "gpu", "cpu", "mechanism", "cpu_latency_avg",
                "cpu_latency_p95", "gpu_latency_avg", "gpu_latency_p95",
                "gpu_reply_latency", "gpu_ipc", "cpu_ipc",
                "delegated_fraction", "mem_blocking_rate", "max_rho",
                "demand_rho", "bottleneck", "saturated", "iterations",
            )
        }
        d["link_rho"] = dict(self.link_rho)
        return d


def link_name(link: LinkKey) -> str:
    kind = link[0]
    net = "req" if link[1] == 0 else "rep"
    if kind == "link":
        return f"{net}:{link[2]}->{link[3]}"
    return f"{net}:{kind}@{link[2]}"


#: flattened routing: the union of every group's touched links, per group
#: the sparse ``[(link_index, traversal_count), ...]`` vector, and the
#: expected number of request-net hops a CPU request shares with the GPU
#: request flood (the ``K_FIFO_MIX`` overlap).
FlatIndex = Tuple[List[LinkKey], Dict[str, List[Tuple[int, float]]], float]

#: (config_hash, has_cpu) -> (NetworkModel, flow groups, flat index).
#: Route walking dominates a cold prediction (~100ms on mesh8x8 from the
#: all-pairs GPU-to-GPU groups); grids re-predict the same few configs,
#: so this cache is what keeps the per-point budget in milliseconds.
_MODEL_CACHE: Dict[
    Tuple[str, bool], Tuple[NetworkModel, Dict[str, FlowGroup], FlatIndex]
] = {}
_MODEL_CACHE_MAX = 64


def _network_and_groups(
    cfg: SystemConfig, has_cpu: bool
) -> Tuple[NetworkModel, Dict[str, FlowGroup], FlatIndex]:
    key = (cfg.config_hash(), has_cpu)
    hit = _MODEL_CACHE.get(key)
    if hit is not None:
        return hit

    net = NetworkModel(cfg)
    pl = net.placement
    f_req = 1
    f_gpu_rep = cfg.noc.flits_for(cfg.gpu_l1.line_bytes)
    f_cpu_rep = cfg.noc.flits_for(cfg.cpu_l1.line_bytes)
    f_wreq = cfg.noc.flits_for(cfg.gpu_l1.line_bytes)  # write-through data

    gm = net.uniform_pairs(pl.gpu_nodes, pl.mem_nodes)
    mg = net.uniform_pairs(pl.mem_nodes, pl.gpu_nodes)
    REQ, REP = NetKind.REQUEST, NetKind.REPLY
    CPU, GPU = TrafficClass.CPU, TrafficClass.GPU

    groups: Dict[str, FlowGroup] = {}

    def mk(name, pairs, cls, netk, flits):
        groups[name] = net.flow_group(name, pairs, cls, netk, flits)

    mk("gpu_req", gm, GPU, REQ, f_req)
    mk("gpu_wreq", gm, GPU, REQ, f_wreq)
    mk("gpu_rep", mg, GPU, REP, f_gpu_rep)
    mk("gpu_wack", mg, GPU, REP, 1)
    if has_cpu:
        cm = net.uniform_pairs(pl.cpu_nodes, pl.mem_nodes)
        mc = net.uniform_pairs(pl.mem_nodes, pl.cpu_nodes)
        mk("cpu_req", cm, CPU, REQ, f_req)
        mk("cpu_rep", mc, CPU, REP, f_cpu_rep)
    if cfg.delegation.enabled or cfg.probing.enabled:
        gg = net.uniform_pairs(pl.gpu_nodes, pl.gpu_nodes)
        if cfg.delegation.enabled:
            mk("dreq", mg, GPU, REQ, f_req)
            mk("c2c", gg, GPU, REP, f_gpu_rep)
        if cfg.probing.enabled:
            mk("probe", gg, GPU, REQ, f_req)
            mk("nack", gg, GPU, REP, 1)
            mk("c2c_rp", gg, GPU, REP, f_gpu_rep)

    # flatten: assign every touched link a dense index and reduce each
    # group's counts dict to an index/count list the fixed point can walk
    # without dictionary churn.
    links: List[LinkKey] = []
    idx_of: Dict[LinkKey, int] = {}
    entries: Dict[str, List[Tuple[int, float]]] = {}
    for name, grp in groups.items():
        ent: List[Tuple[int, float]] = []
        for link, count in grp.counts.items():
            idx = idx_of.get(link)
            if idx is None:
                idx = idx_of[link] = len(links)
                links.append(link)
            ent.append((idx, count))
        entries[name] = ent

    # class-mixing overlap: expected shared router-router request hops
    # per CPU request (zero whenever the topology/routing keeps the CPU
    # approach to memory on GPU-free links).
    cpu_mix = 0.0
    if has_cpu:
        gpu_counts = groups["gpu_req"].counts
        cpu_mix = sum(
            cw
            for link, cw in groups["cpu_req"].counts.items()
            if link[0] == "link" and gpu_counts.get(link, 0.0) > 0.0
        )

    flat: FlatIndex = (links, entries, cpu_mix)
    if len(_MODEL_CACHE) >= _MODEL_CACHE_MAX:
        _MODEL_CACHE.pop(next(iter(_MODEL_CACHE)))
    _MODEL_CACHE[key] = (net, groups, flat)
    return net, groups, flat


def predict(
    cfg: SystemConfig, gpu: str, cpu: Optional[str] = None
) -> Prediction:
    """Analytical performance estimate for one workload point.

    ``cpu=None`` models a GPU-only run (no CPU co-runner traffic).
    """
    g = gpu_benchmark(gpu)
    c = cpu_benchmark(cpu) if cpu else None
    # flow groups and their routes depend only on the config, so they are
    # cached per config hash (rates are rewritten every iteration).
    net, groups, (links, entries, cpu_mix) = _network_and_groups(
        cfg, has_cpu=c is not None
    )
    pl = net.placement
    n_gpu, n_cpu, n_mem = len(pl.gpu_nodes), len(pl.cpu_nodes), len(pl.mem_nodes)
    bw = net.bandwidth

    delegation = cfg.delegation.enabled
    probing = cfg.probing.enabled

    # --- static workload-derived probabilities ---------------------------
    gpu_hit = min(1.0, g.p_reuse ** K_GPU_REUSE)
    gpu_miss = 1.0 - gpu_hit
    wf = g.write_fraction
    p_read_miss = (1.0 - wf) * gpu_miss
    warps = cfg.gpu_core.warps
    if g.active_warps:
        warps = min(warps, g.active_warps)
    cpu_miss = min(1.0, (1.0 - c.p_reuse) * CPU_MISS_SCALE) if c else 0.0

    # footprint-driven LLC miss rates (per class: the co-runner's working
    # set and the GPU kernel's footprint overflow the shared LLC
    # independently; each core's private blocks are distinct).
    llc_blocks = max(1, cfg.llc.slice_size_bytes // cfg.llc.line_bytes * n_mem)
    foot_gpu = g.private_blocks * n_gpu + g.shared_blocks
    gpu_llc_miss = min(
        LLC_MISS_MAX,
        max(LLC_MISS_MIN, LLC_MISS_BASE + LLC_MISS_FOOT * foot_gpu / llc_blocks),
    )
    cpu_llc_miss = 0.0
    if c:
        foot_cpu = c.footprint_blocks * cfg.cpu_l1.line_bytes
        cpu_llc_miss = min(
            LLC_MISS_MAX,
            max(
                LLC_MISS_MIN,
                LLC_MISS_BASE
                + LLC_MISS_FOOT * foot_cpu / (llc_blocks * cfg.llc.line_bytes),
            ),
        )

    deleg = 0.0
    if delegation:
        deleg = K_DELEG * g.p_shared * (1.0 - K_DELEG_LAG * g.p_lag)
        if g.writes_shared:
            # shared-region writes invalidate the LLC core pointers the
            # delegation would have used (BP's pathology).
            deleg *= (1.0 - wf) ** 2
        deleg = min(1.0, max(0.0, deleg))

    p_probe = 0.0
    probe_hit = 0.0
    probe_width = 0
    if probing:
        from repro.core.realistic_probing import ProbeEngine

        scale = cfg.probing.predictor_threshold / 0.5
        p_probe = min(
            1.0,
            (ProbeEngine.TRUE_POSITIVE * g.p_shared
             + ProbeEngine.FALSE_POSITIVE * (1.0 - g.p_shared)) * scale,
        )
        probe_hit = min(1.0, K_PROBE_HIT * g.p_shared * (1.0 - K_DELEG_LAG * g.p_lag))
        probe_width = min(cfg.probing.probe_width, n_gpu - 1)

    f_gpu_rep = cfg.noc.flits_for(cfg.gpu_l1.line_bytes)
    GPU, REP = TrafficClass.GPU, NetKind.REPLY

    # --- fixed point ------------------------------------------------------
    rate_cpu_req = 0.0
    bottleneck: Optional[LinkKey] = None
    w_mem = w_mem_cpu = w_in = svc_mem = svc_mem_cpu = w_out = 0.0
    iters = 0

    dram_ser = max(cfg.dram.t_ccd, cfg.dram.burst_cycles)
    dram_lat = (
        cfg.dram.t_cl + cfg.dram.burst_cycles
        + ROW_MISS * (cfg.dram.t_rp + cfg.dram.t_rcd)
    )

    # per-unit-rate_mem group multipliers (packets/cycle aggregate when
    # one core issues one memory op per cycle).
    reads_u = (1.0 - wf) * gpu_miss * n_gpu
    writes_u = wf * n_gpu
    probed_u = reads_u * p_probe
    llc_reads_u = reads_u - probed_u * probe_hit

    # Every group's rate is a static multiplier times one of two scalars
    # (the aggregate GPU memory-op rate or the per-core CPU request
    # rate), so per-link offered load collapses to unit-load vectors
    # computed once; the fixed point rescales them instead of re-walking
    # the accumulate/priority-waits machinery each iteration.
    gpu_mults = {
        "gpu_req": llc_reads_u,
        "gpu_wreq": writes_u,
        "gpu_rep": llc_reads_u * (1.0 - deleg),
        "gpu_wack": writes_u,
    }
    if delegation:
        gpu_mults["dreq"] = llc_reads_u * deleg
        gpu_mults["c2c"] = llc_reads_u * deleg
    if probing:
        gpu_mults["probe"] = probed_u * probe_width
        gpu_mults["nack"] = probed_u * (probe_width - probe_hit)
        gpu_mults["c2c_rp"] = probed_u * probe_hit
    cpu_mults = {"cpu_req": float(n_cpu), "cpu_rep": float(n_cpu)} if c else {}

    n_links = len(links)
    gw_work = [0.0] * n_links   # unit-rate rho (sum rate*service)
    gw_work2 = [0.0] * n_links  # unit-rate sum rate*service^2
    cw_work = [0.0] * n_links
    cw_work2 = [0.0] * n_links
    for mults, w1, w2 in (
        (gpu_mults, gw_work, gw_work2), (cpu_mults, cw_work, cw_work2)
    ):
        for name, mult in mults.items():
            if mult <= 0.0:
                continue
            ser = net.service_cycles(groups[name].flits)
            ser2 = ser * ser
            for idx, cnt in entries[name]:
                r = mult * cnt
                w1[idx] += r * ser
                w2[idx] += r * ser2
    # reply-stream unit aggregates for the drain-time estimate
    grep_rate_u = grep_work_u = crep_rate_u = crep_work_u = 0.0
    for name, grp in groups.items():
        if grp.net is not REP:
            continue
        ser = net.service_cycles(grp.flits)
        m = gpu_mults.get(name, 0.0)
        grep_rate_u += m
        grep_work_u += m * ser
        m = cpu_mults.get(name, 0.0)
        crep_rate_u += m
        crep_work_u += m * ser

    # zero-load round trips (hop + serialisation + memory service only);
    # these anchor both the demand test and the backlog estimate.
    def free_path(name: str) -> float:
        grp = groups.get(name)
        if grp is None:
            return 0.0
        return grp.mean_hops * net.hop_cycles + (grp.flits - 1) / bw

    l_free_gpu = (
        free_path("gpu_req")
        + cfg.llc.hit_latency + gpu_llc_miss * dram_lat
        + free_path("gpu_rep")
    )
    l_free_cpu = (
        free_path("cpu_req")
        + cfg.llc.hit_latency + cpu_llc_miss * dram_lat
        + free_path("cpu_rep")
    )
    l_gpu, l_cpu = l_free_gpu, l_free_cpu
    issue_cap = cfg.gpu_core.issue_width / (1.0 + g.compute_gap)

    def gpu_demand(latency: float) -> float:
        """Per-core memory-op demand at a given round-trip latency.

        Three finite pools can bind: the warp scheduler (warps block on
        their own read misses), the L1 MSHRs (read misses in flight),
        and the write-through outstanding-write cap (writes retire the
        warp immediately but stall issue once ``GPU_WRITE_CAP`` acks are
        pending — the write-heavy BP pathology).  The write-ack round
        trip shares the clogged memory-node queue with reads, so the
        same latency approximates both.
        """
        warp_cap = warps / ((1.0 + g.compute_gap) + p_read_miss * latency)
        mshr_cap = cfg.gpu_l1.mshrs / max(p_read_miss * latency, _EPS)
        write_cap = GPU_WRITE_CAP / max(wf * latency, _EPS)
        return min(issue_cap, warp_cap, mshr_cap, write_cap)

    rate_mem = gpu_demand(l_free_gpu)
    rate_free = rate_mem
    rate_cap = rate_mem
    saturated = False
    # request packets the fabric can actually park in front of a later
    # arrival (see UPSTREAM_PKTS_MAX): VC buffers per router hop short
    # of the memory router itself, or — on single-stage / short-path
    # topologies where the path holds nothing — the head-of-line slots
    # of the other sources contending at the final switch (~half a
    # request per GPU source; the rest of their backlog parks in private
    # injection queues where it delays nobody).
    upstream_pkts_cap = min(
        UPSTREAM_PKTS_MAX,
        max(
            cfg.noc.vcs_per_port * cfg.noc.vc_depth_flits
            * (groups["gpu_req"].mean_hops - 1.0),
            0.5 * n_gpu,
        ),
    )
    #: path-composed read round trip (in-network + memory-node waits only,
    #: no pool stretching) — tracks how deep the read stream's own queues
    #: are even when the write pool is what throttles issue.
    l_read = l_free_gpu
    backlog = 0.0
    inventory = (
        cfg.llc.input_queue + LLC_OUTPUT_CAPACITY
        + cfg.noc.mem_injection_buffer_flits / max(f_gpu_rep, 1)
        + MEM_ROUTER_SLACK_PKTS
    )

    for iters in range(1, MAX_ITERS + 1):
        # 1. CPU demand at the current CPU latency (never throttled) ------
        if c:
            per_op = c.mem_interval + c.dep_fraction * cpu_miss * l_cpu
            rate_cpu_req = cpu_miss / per_op
            rate_cpu_req = min(
                rate_cpu_req, cfg.cpu_core.max_outstanding / max(l_cpu, 1.0)
            )

        # 2. capacity scan: with CPU load fixed, how much GPU demand fits
        # under RHO_CAP on every link and memory-node station? ------------
        x_gpu_u = (llc_reads_u + writes_u) / n_mem
        x_cpu_node = (rate_cpu_req * n_cpu) / n_mem if c else 0.0
        # only read misses reach DRAM: the LLC acks write-through writes
        # at hit latency without submitting them to the controller.
        dram_gpu_u = llc_reads_u * gpu_llc_miss / n_mem * dram_ser

        rate_cap = math.inf
        bottleneck = None
        for i in range(n_links):
            gw = gw_work[i]
            if gw <= _EPS:
                continue
            cap_here = max(0.0, RHO_CAP - rate_cpu_req * cw_work[i]) / gw
            if cap_here < rate_cap:
                rate_cap = cap_here
                bottleneck = links[i]
        if x_gpu_u > _EPS:
            cap_here = max(0.0, RHO_CAP - x_cpu_node) / x_gpu_u
            if cap_here < rate_cap:
                rate_cap, bottleneck = cap_here, ("llc", 0, -1)
        if dram_gpu_u > _EPS:
            cap_here = (
                max(0.0, RHO_CAP - x_cpu_node * cpu_llc_miss * dram_ser)
                / dram_gpu_u
            )
            if cap_here < rate_cap:
                rate_cap, bottleneck = cap_here, ("dram", 0, -1)

        # 3. carried GPU rate and equilibrium round trip ------------------
        rate_free = gpu_demand(l_free_gpu)
        saturated = rate_free > rate_cap
        write_bound = False
        if saturated:
            # clogged: throughput is the bottleneck capacity; latency
            # grows until the endpoint pools throttle demand to match
            # (Little's law over whichever pool binds).
            rate_mem = rate_cap
            l_warp = (
                (warps / max(rate_cap, _EPS) - (1.0 + g.compute_gap))
                / max(p_read_miss, _EPS)
            )
            l_mshr = cfg.gpu_l1.mshrs / max(rate_cap * p_read_miss, _EPS)
            l_wcap = GPU_WRITE_CAP / max(rate_cap * wf, _EPS)
            # the pool whose implied latency is smaller binds first
            l_eq_read = min(max(l_warp, l_free_gpu), max(l_mshr, l_free_gpu))
            l_eq = min(l_eq_read, max(l_wcap, l_free_gpu))
            write_bound = l_eq < l_eq_read
            l_gpu_new = l_eq
        else:
            rate_mem = gpu_demand(l_gpu)
            l_gpu_new = None  # from path composition below

        # 4. waits at carried rates ---------------------------------------
        # inline M/G/1 non-preemptive priority per link (see
        # repro.model.queueing.priority_waits): CPU ahead of GPU.
        w_cpu_link = [0.0] * n_links
        w_gpu_link = [0.0] * n_links
        for i in range(n_links):
            rho_c = rate_cpu_req * cw_work[i]
            rho_g = rate_mem * gw_work[i]
            if rho_c + rho_g <= _EPS:
                continue
            res = 0.5 * (rate_cpu_req * cw_work2[i] + rate_mem * gw_work2[i])
            rem_c = 1.0 - rho_c
            w_cpu_link[i] = res / rem_c if rem_c > 0.0 else math.inf
            rem_all = rem_c - rho_g
            w_gpu_link[i] = (
                res / (rem_c * rem_all)
                if rem_c > 0.0 and rem_all > 0.0
                else math.inf
            )

        # backlog: carried read flow times the latency in excess of free
        # flight is the number of packets parked in queues; per memory
        # node, against its finite buffer inventory.  When a *read* pool
        # binds, reads park until the pool fills and the equilibrium
        # latency is the right Little's-law multiplier.  When the *write*
        # pool binds, the in-order SM stalls before the read pools fill,
        # so outstanding reads are set by the shallower path-composed
        # read round trip instead (BP's write-heavy pathology).
        reads_carried = llc_reads_u * rate_mem
        l_backlog = l_read if write_bound else l_gpu
        backlog = reads_carried * max(0.0, l_backlog - l_free_gpu) / n_mem
        fill = backlog / (backlog + inventory)
        x_node = (llc_reads_u + writes_u) * rate_mem / n_mem + x_cpu_node
        rho_llc = min(x_node, 0.999)
        # FIFO input queue: backlog-driven occupancy, the critical-load
        # hover term, and the light-load M/M/1 component; CPU and GPU
        # wait equally here (no priority inside the memory node) — the
        # paper's central observation.
        u_crit = min(1.0, rate_mem / max(rate_cap, _EPS))
        depth = rate_free / max(rate_cap, _EPS)
        ramp = min(1.0, max(0.0, (depth - 1.0) / (CRIT_OCC_RAMP - 1.0)))
        occ_in = cfg.llc.input_queue * max(
            fill, CRIT_OCC_FRAC * ramp * u_crit ** CRIT_OCC_POW
        ) + min(rho_llc / (1.0 - rho_llc), 4.0)
        occ_in = min(occ_in, float(cfg.llc.input_queue))
        w_in = occ_in / max(x_node, 0.01)
        dram_sojourn = (
            dram_lat + fill * cfg.dram.queue_depth * dram_ser / cfg.dram.banks
        )
        svc_mem = cfg.llc.hit_latency + gpu_llc_miss * dram_sojourn
        svc_mem_cpu = cfg.llc.hit_latency + cpu_llc_miss * dram_sojourn
        # reply drain: LLC output queue + NIC injection buffer ahead of a
        # freshly built reply, one worm per mean reply service time.
        rep_rate = rate_mem * grep_rate_u + rate_cpu_req * crep_rate_u
        rep_work = rate_mem * grep_work_u + rate_cpu_req * crep_work_u
        rep_ser = rep_work / rep_rate if rep_rate > _EPS else f_gpu_rep / bw
        w_out = (
            LLC_OUTPUT_CAPACITY * fill * rep_ser
            + fill * cfg.noc.mem_injection_buffer_flits / bw
        )
        # requests queued in the fabric upstream of a full LLC input
        # queue; they delay every later arrival, CPU requests included.
        w_up = min(max(backlog - inventory, 0.0), upstream_pkts_cap) / max(
            x_node, 0.01
        )
        # FIFO sharing on the memory approach: where the CPU route rides
        # the same request links as the GPU flood, the CPU packet queues
        # behind the GPU backlog parked in the fabric's input VCs and the
        # switch-allocation priority never gets to act on it.  Only the
        # backlog that overflows the node's own inventory parks upstream
        # in routers, so lightly-backlogged points (NN) stay untouched.
        w_fifo = 0.0
        if cpu_mix > 0.0:
            upstream = min(max(backlog - inventory, 0.0), FIFO_PKTS_MAX)
            w_fifo = K_FIFO_MIX * cpu_mix * upstream / max(x_node, 0.01)
        w_mem = w_up + w_in + svc_mem + w_out
        w_mem_cpu = w_up + w_in + svc_mem_cpu + w_out + w_fifo

        # 5. path latencies and the damped update -------------------------
        def path(name: str) -> float:
            grp = groups.get(name)
            if grp is None:
                return 0.0
            warr = w_cpu_link if grp.cls is TrafficClass.CPU else w_gpu_link
            wait = 0.0
            for idx, cnt in entries[name]:
                w = warr[idx]
                wait += cnt * (w if w < LINK_WAIT_CAP else LINK_WAIT_CAP)
            return grp.mean_hops * net.hop_cycles + (grp.flits - 1) / bw + wait

        l_direct = path("gpu_req") + w_mem + path("gpu_rep")
        if delegation and deleg > 0.0:
            # delegated trip: request -> LLC hit -> pointer core's
            # FRQ serves from its L1 -> C2C reply to the requester.
            l_deleg = (
                path("gpu_req") + w_up + w_in + cfg.llc.hit_latency
                + path("dreq") + 2.0 + path("c2c")
            )
            l_direct = (1.0 - deleg) * l_direct + deleg * l_deleg
        if probing and p_probe > 0.0:
            probe_rt = path("probe") + 2.0 + path("nack")
            l_hit = path("probe") + 2.0 + path("c2c_rp")
            l_direct = (
                (1.0 - p_probe) * l_direct
                + p_probe * probe_hit * l_hit
                + p_probe * (1.0 - probe_hit) * (probe_rt + l_direct)
            )
        if l_gpu_new is None:
            l_gpu_new = l_direct
        l_cpu_new = (path("cpu_req") + w_mem_cpu + path("cpu_rep")) if c else 0.0

        prev_gpu, prev_cpu = l_gpu, l_cpu
        l_read = DAMP * l_read + (1.0 - DAMP) * min(l_direct, 1e6)
        l_gpu = DAMP * l_gpu + (1.0 - DAMP) * min(l_gpu_new, 1e6)
        l_cpu = DAMP * l_cpu + (1.0 - DAMP) * min(l_cpu_new, 1e6)
        if abs(l_gpu - prev_gpu) < 0.5 and abs(l_cpu - prev_cpu) < 0.5:
            break

    # --- outputs ---------------------------------------------------------
    pred = Prediction(gpu=gpu, cpu=cpu or "", mechanism=cfg.mechanism.value)
    pred.iterations = iters
    pred.delegated_fraction = deleg
    # demand utilisation of the bottleneck had nothing throttled: the
    # zero-load demand against the carrying capacity of the worst link.
    pred.demand_rho = (
        RHO_CAP * rate_free / rate_cap if rate_cap > _EPS else math.inf
    )
    pred.saturated = saturated
    pressure = backlog / inventory if inventory > 0 else 0.0
    pred.mem_blocking_rate = pressure / (pressure + BLOCKING_KNEE)
    if bottleneck is not None:
        pred.bottleneck = link_name(bottleneck)

    max_rho = 0.0
    hot: List[Tuple[str, float]] = []
    for i in range(n_links):
        rho = rate_cpu_req * cw_work[i] + rate_mem * gw_work[i]
        max_rho = max(max_rho, rho)
        if rho >= 0.5:
            hot.append((link_name(links[i]), rho))
    hot.sort(key=lambda kv: -kv[1])
    pred.max_rho = max_rho
    pred.link_rho = dict(hot[:12])

    pred.gpu_latency_avg = l_gpu
    pred.cpu_latency_avg = l_cpu
    # p95: the queueing component has the heavy tail; the deterministic
    # hop/service floor does not.
    floor_cpu = (
        groups["cpu_rep"].mean_hops + groups["cpu_req"].mean_hops
    ) * net.hop_cycles + svc_mem_cpu if c else 0.0
    floor_gpu = (
        groups["gpu_rep"].mean_hops + groups["gpu_req"].mean_hops
    ) * net.hop_cycles + svc_mem
    pred.cpu_latency_p95 = floor_cpu + p95_of_mean(max(l_cpu - floor_cpu, 0.0))
    pred.gpu_latency_p95 = floor_gpu + p95_of_mean(max(l_gpu - floor_gpu, 0.0))
    fill = backlog / (backlog + inventory) if inventory > 0 else 0.0
    pred.gpu_reply_latency = (
        fill * cfg.noc.mem_injection_buffer_flits / bw
        + groups["gpu_rep"].mean_hops * net.hop_cycles
        + (f_gpu_rep - 1) / bw
    )

    pred.gpu_ipc = rate_mem * (1.0 + g.compute_gap)
    if c:
        # instruction rate = mem-op completion rate * insts per mem op
        per_op = c.mem_interval + c.dep_fraction * cpu_miss * l_cpu
        pred.cpu_ipc = c.mem_interval / per_op
    return pred


def predict_spec(spec) -> Prediction:
    """Convenience: run :func:`predict` on a sweep ``JobSpec``."""
    return predict(spec.system_config(), spec.gpu, spec.cpu)
