"""Closed-form priority queueing for one NoC link.

Each directed link (router-to-router, injection or ejection) is modelled
as a single server shared by the two traffic classes, CPU and GPU, with
non-preemptive head-of-line priority for CPU — the switch-allocation
policy ``NocConfig.cpu_priority`` implements cycle by cycle.  Packet
service time is the link occupancy of one worm: ``size_flits`` cycles at
one flit per cycle, divided by the link's bandwidth factor.

The waiting times are the standard M/G/1 non-preemptive priority
results.  With per-class arrival rate :math:`\\lambda_c`, mean service
:math:`E[S_c]` and second moment :math:`E[S_c^2]`:

.. math::

    R = \\tfrac{1}{2} \\sum_c \\lambda_c E[S_c^2], \\qquad
    W_c = \\frac{R}{(1 - \\rho_{<c})(1 - \\rho_{\\le c})}

where :math:`\\rho_{<c}` sums the utilisation of classes with strictly
higher priority.  A saturated class (denominator :math:`\\le 0`) gets an
infinite wait; callers cap it against the finite buffering that bounds
real queues (see :mod:`repro.model.compose`).

Poisson arrivals are an approximation — wormhole networks batch flits
into worms and closed-loop endpoints self-throttle — but the shape of
the curve (linear at low load, diverging as :math:`\\rho \\to 1`) is what
the surrogate needs; DESIGN.md section 10 discusses where it bends.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

#: exponential-tail factor: for an exponential sojourn time the 95th
#: percentile is ``ln(20) ~ 3.0`` times the mean.
P95_FACTOR = math.log(20.0)


@dataclass
class ClassLoad:
    """Aggregate per-class arrival process at one link.

    ``rate`` is packets/cycle; ``work`` and ``work_sq`` accumulate
    ``rate * E[S]`` and ``rate * E[S^2]`` so heterogeneous packet sizes
    (1-flit requests, 9-flit replies) mix exactly.
    """

    rate: float = 0.0
    work: float = 0.0       # sum of rate_i * service_i       (= rho)
    work_sq: float = 0.0    # sum of rate_i * service_i^2

    def add(self, rate: float, service_cycles: float) -> None:
        self.rate += rate
        self.work += rate * service_cycles
        self.work_sq += rate * service_cycles * service_cycles

    @property
    def rho(self) -> float:
        return self.work

    def mean_service(self) -> float:
        return self.work / self.rate if self.rate > 0 else 0.0


def priority_waits(classes: Sequence[ClassLoad]) -> List[float]:
    """Mean queueing wait per class, highest priority first.

    ``classes[0]`` (CPU) is served ahead of ``classes[1]`` (GPU) and so
    on.  Returns one wait per class; ``math.inf`` for classes whose
    priority level is saturated.
    """
    residual = 0.5 * sum(c.work_sq for c in classes)
    waits: List[float] = []
    rho_above = 0.0
    for cls in classes:
        rho_upto = rho_above + cls.rho
        denom = (1.0 - rho_above) * (1.0 - rho_upto)
        if denom <= 0.0:
            waits.append(math.inf)
        else:
            waits.append(residual / denom)
        rho_above = rho_upto
    return waits


def total_rho(classes: Sequence[ClassLoad]) -> float:
    """Total offered utilisation of the link, all classes combined."""
    return sum(c.rho for c in classes)


def p95_of_mean(mean: float) -> float:
    """Approximate 95th percentile of a sojourn with the given mean.

    Uses the exponential-tail approximation (p95 = mean * ln 20); real
    latency distributions under priority scheduling are heavier for the
    low-priority class and lighter for the high-priority one, so this is
    a shape assumption, not a guarantee.
    """
    return mean * P95_FACTOR
