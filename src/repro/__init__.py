"""repro: reproduction of "Delegated Replies: Alleviating Network Clogging
in Heterogeneous Architectures" (HPCA 2022).

The package builds, in pure Python, the full simulation stack the paper's
evaluation rests on — a cycle-level wormhole NoC, GPU/CPU core models, a
shared LLC with per-line core pointers, GDDR5 memory controllers — plus the
paper's mechanism (Delegated Replies) and every comparator it is evaluated
against (Realistic Probing, AVCP, adaptive routing, shared L1 schemes and
bandwidth overprovisioning).

Quickstart::

    from repro import delegated_replies_config, simulate

    cfg = delegated_replies_config()
    result = simulate(cfg, "HS", cycles=20_000)
    print(result.gpu_ipc, result.cpu_latency_avg)

The full stable surface is :mod:`repro.api`.
"""

from repro.config import (
    baseline_config,
    delegated_replies_config,
    realistic_probing_config,
    SystemConfig,
    Mechanism,
    Layout,
    Topology,
)

__version__ = "1.0.0"

__all__ = [
    "Layout",
    "Mechanism",
    "SystemConfig",
    "Topology",
    "baseline_config",
    "delegated_replies_config",
    "explore",
    "predict",
    "realistic_probing_config",
    "run_simulation",
    "simulate",
    "__version__",
]


def run_simulation(*args, **kwargs):
    """Convenience wrapper around :func:`repro.sim.simulator.run_simulation`.

    Imported lazily so ``import repro`` stays cheap.
    """
    from repro.sim.simulator import run_simulation as _run

    return _run(*args, **kwargs)


def simulate(*args, **kwargs):
    """Convenience wrapper around :func:`repro.api.simulate`.

    Imported lazily so ``import repro`` stays cheap.
    """
    from repro.api import simulate as _simulate

    return _simulate(*args, **kwargs)


def predict(*args, **kwargs):
    """Convenience wrapper around :func:`repro.api.predict`.

    Imported lazily so ``import repro`` stays cheap.
    """
    from repro.api import predict as _predict

    return _predict(*args, **kwargs)


def explore(*args, **kwargs):
    """Convenience wrapper around :func:`repro.api.explore`.

    Imported lazily so ``import repro`` stays cheap.
    """
    from repro.api import explore as _explore

    return _explore(*args, **kwargs)
