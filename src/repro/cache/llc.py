"""Shared last-level cache slice with Delegated Replies core pointers.

One LLC slice sits at each memory node, in front of that node's memory
controller.  Beyond ordinary set-associative behaviour the slice keeps, per
resident line, a *core pointer* to the GPU core that most recently accessed
the line — the paper's "simple yet accurate heuristic" for locating a
likely sharer (Section II).  Pointers are:

* set/updated on every GPU read (to the requester),
* invalidated on writes (write-through coherence, Section IV),
* invalidated when the line is evicted, and
* dropped wholesale when a GPU L1 flush invalidates the coherence epoch.

The slice is a timing model: requests enter a bounded input queue (the
ejection gate of the memory-node NIC), are looked up at one request per
cycle, and complete onto a bounded output queue after ``hit_latency``
cycles or after the memory controller returns the line.  A full output
queue stalls the lookup pipeline, which is how reply-network clogging
back-pressures into the request network (Figure 3).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.cache.cache import MshrFile, SetAssociativeCache
from repro.config.system import LlcConfig
from repro.mem.dram import MemoryController
from repro.noc.packet import TrafficClass


@dataclass
class LlcRequest:
    """A request as seen by the LLC slice."""

    requester: int          # node id of the originating core
    block: int              # 128 B block id
    is_write: bool
    cls: TrafficClass
    dnf: bool = False       # Do-Not-Forward (re-sent after a remote miss)
    gpu_core: bool = False  # requester is a GPU core (pointer eligible)
    arrival: int = 0
    #: block id as the requester addressed it (64 B units for CPU cores);
    #: replies echo this so the requester can match them.
    orig_block: int = -1


@dataclass
class LlcResult:
    """Completion handed back to the memory-node endpoint."""

    req: LlcRequest
    hit: bool               # LLC hit (only hits are delegatable)
    pointer: Optional[int]  # core pointer *before* this access, if any
    ready: int = 0

    def __lt__(self, other: "LlcResult") -> bool:
        return self.ready < other.ready


@dataclass
class LlcStats:
    reads: int = 0
    writes: int = 0
    hits: int = 0
    misses: int = 0
    pointer_updates: int = 0
    pointer_invalidations: int = 0
    stalled_cycles: int = 0


class LlcSlice:
    """One LLC slice + its core-pointer table."""

    def __init__(
        self,
        node_id: int,
        cfg: LlcConfig,
        controller: MemoryController,
        output_capacity: int = 8,
    ) -> None:
        self.node_id = node_id
        self.cfg = cfg
        self.cache = SetAssociativeCache(cfg.sets_per_slice, cfg.assoc)
        self.mshrs = MshrFile(cfg.mshrs)
        self.controller = controller
        self.input: Deque[LlcRequest] = deque()
        self.input_capacity = cfg.input_queue
        self.output: Deque[LlcResult] = deque()
        self.output_capacity = output_capacity
        self._pending: List[LlcResult] = []  # (hit results in flight), heap
        self.stats = LlcStats()

    # -- admission (the NIC's ejection gate) ----------------------------

    def can_accept(self) -> bool:
        return len(self.input) < self.input_capacity

    def enqueue(self, req: LlcRequest) -> bool:
        if not self.can_accept():
            return False
        self.input.append(req)
        return True

    # -- pointer table ---------------------------------------------------

    def pointer_of(self, block: int) -> Optional[int]:
        meta = self.cache.meta(block)
        return meta if isinstance(meta, int) else None

    def invalidate_pointer(self, block: int) -> None:
        if self.pointer_of(block) is not None:
            self.cache.set_meta(block, None)
            self.stats.pointer_invalidations += 1

    def drop_all_pointers(self) -> int:
        """GPU L1 flush: every core pointer becomes stale, so drop them."""
        dropped = 0
        for block in list(self.cache.blocks()):
            if self.pointer_of(block) is not None:
                self.cache.set_meta(block, None)
                dropped += 1
        self.stats.pointer_invalidations += dropped
        return dropped

    # -- per-cycle operation ----------------------------------------------

    def step(self, cycle: int) -> None:
        # retire in-flight hit results whose latency elapsed
        while self._pending and self._pending[0].ready <= cycle:
            self.output.append(heapq.heappop(self._pending))
        # lookup pipeline: one request per cycle, stalled when the output
        # side (reply injection) is congested
        if not self.input:
            return
        if len(self.output) >= self.output_capacity:
            self.stats.stalled_cycles += 1
            return
        req = self.input[0]
        if not req.is_write and not self.cache.contains(req.block):
            # read miss: needs an MSHR and a controller queue slot
            if self.mshrs.has(req.block):
                self.input.popleft()
                self.mshrs.add_waiter(req.block, req)
                self.stats.reads += 1
                self.stats.misses += 1
                return
            if self.mshrs.full or not self.controller.can_accept():
                self.stats.stalled_cycles += 1
                return
            self.input.popleft()
            self.stats.reads += 1
            self.stats.misses += 1
            self.cache.misses += 1
            self.mshrs.allocate(req.block, req)
            self.controller.submit(
                req.block, False, cycle, self._on_fill
            )
            return
        self.input.popleft()
        if req.is_write:
            self._do_write(req, cycle)
        else:
            self._do_read_hit(req, cycle)

    def _do_read_hit(self, req: LlcRequest, cycle: int) -> None:
        pointer = self.pointer_of(req.block)
        self.cache.lookup(req.block)
        self.stats.reads += 1
        self.stats.hits += 1
        if req.gpu_core:
            self.cache.set_meta(req.block, req.requester)
            self.stats.pointer_updates += 1
        heapq.heappush(
            self._pending,
            LlcResult(req, hit=True, pointer=pointer, ready=cycle + self.cfg.hit_latency),
        )

    def _do_write(self, req: LlcRequest, cycle: int) -> None:
        """Write-through from the L1s: update/allocate and kill the pointer."""
        self.stats.writes += 1
        if self.cache.contains(req.block):
            self.cache.lookup(req.block)
            self.stats.hits += 1
        else:
            self.cache.misses += 1
            self.stats.misses += 1
            victim = self.cache.insert(req.block, None)
            if victim is not None:
                pass  # write-through below: nothing dirty to write back
        # the write invalidates the core pointer so later readers get the
        # up-to-date copy from the LLC (Section IV, coherence implications)
        if self.cfg.pointer_invalidate_on_write:
            self.invalidate_pointer(req.block)
        heapq.heappush(
            self._pending,
            LlcResult(req, hit=True, pointer=None, ready=cycle + self.cfg.hit_latency),
        )

    def _on_fill(self, block: int, cycle: int) -> None:
        """Memory controller returned ``block``: fill and wake waiters."""
        waiters = self.mshrs.release(block)
        first = waiters[0]
        self.cache.insert(block, first.requester if first.gpu_core else None)
        if first.gpu_core:
            self.stats.pointer_updates += 1
        for req in waiters:
            self.output.append(LlcResult(req, hit=False, pointer=None, ready=cycle))

    # -- output side -------------------------------------------------------

    def pop_result(self) -> Optional[LlcResult]:
        return self.output.popleft() if self.output else None

    def peek_result(self) -> Optional[LlcResult]:
        return self.output[0] if self.output else None
