"""Set-associative cache with LRU replacement and MSHRs.

Addresses are *block ids* (byte address divided by the line size); the
cache only tracks presence, recency and a small per-line metadata slot —
enough for timing simulation, which never needs actual data bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional


class SetAssociativeCache:
    """LRU set-associative cache over integer block ids."""

    def __init__(self, num_sets: int, assoc: int) -> None:
        if num_sets < 1 or assoc < 1:
            raise ValueError("cache needs at least one set and one way")
        self.num_sets = num_sets
        self.assoc = assoc
        #: per-set LRU order: oldest first; maps block -> metadata
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, block: int) -> OrderedDict:
        return self._sets[block % self.num_sets]

    def lookup(self, block: int) -> bool:
        """Access ``block``: True on hit (and refresh LRU)."""
        s = self._set_of(block)
        if block in s:
            s.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, block: int) -> bool:
        """Presence check without touching LRU state or counters."""
        return block in self._set_of(block)

    def insert(self, block: int, meta: object = True) -> Optional[int]:
        """Fill ``block``; returns the evicted block id, if any."""
        s = self._set_of(block)
        victim = None
        if block in s:
            s.move_to_end(block)
            s[block] = meta
            return None
        if len(s) >= self.assoc:
            victim, _ = s.popitem(last=False)
        s[block] = meta
        return victim

    def meta(self, block: int) -> object:
        return self._set_of(block).get(block)

    def set_meta(self, block: int, meta: object) -> None:
        s = self._set_of(block)
        if block in s:
            s[block] = meta

    def invalidate(self, block: int) -> bool:
        s = self._set_of(block)
        if block in s:
            del s[block]
            return True
        return False

    def flush(self) -> int:
        """Invalidate everything (GPU software-coherence flush); returns the
        number of lines dropped."""
        dropped = sum(len(s) for s in self._sets)
        for s in self._sets:
            s.clear()
        return dropped

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def blocks(self) -> Iterable[int]:
        for s in self._sets:
            yield from s.keys()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class MshrFile:
    """Miss Status Holding Registers: merges outstanding misses per block.

    A waiter is an opaque object the owner interprets (a warp id, a remote
    requester id, ...).  One entry per distinct outstanding block.
    """

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = entries
        self._entries: Dict[int, List[object]] = {}
        self.peak = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def has(self, block: int) -> bool:
        return block in self._entries

    def allocate(self, block: int, waiter: object) -> None:
        """Create a new entry for a primary miss."""
        if block in self._entries:
            raise ValueError(f"MSHR for block {block:#x} already allocated")
        if self.full:
            raise RuntimeError("MSHR file full")
        self._entries[block] = [waiter]
        self.peak = max(self.peak, len(self._entries))

    def add_waiter(self, block: int, waiter: object) -> None:
        """Merge a secondary miss into an existing entry."""
        self._entries[block].append(waiter)

    def waiters(self, block: int) -> List[object]:
        return list(self._entries.get(block, ()))

    def remove_waiters(self, block: int, predicate) -> List[object]:
        """Remove and return the waiters of ``block`` matching ``predicate``.

        The entry itself stays allocated (the miss is still outstanding);
        used by the delegation watchdog to time out parked remote waiters.
        """
        entry = self._entries.get(block)
        if entry is None:
            return []
        removed = [w for w in entry if predicate(w)]
        if removed:
            entry[:] = [w for w in entry if not predicate(w)]
        return removed

    def release(self, block: int) -> List[object]:
        """Retire the entry (the fill arrived); returns its waiters."""
        return self._entries.pop(block)

    def outstanding_blocks(self) -> Iterable[int]:
        return self._entries.keys()
