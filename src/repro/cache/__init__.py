"""Cache substrate: set-associative caches, MSHRs and the LLC slice."""

from repro.cache.cache import MshrFile, SetAssociativeCache
from repro.cache.llc import LlcRequest, LlcResult, LlcSlice, LlcStats

__all__ = [
    "LlcRequest",
    "LlcResult",
    "LlcSlice",
    "LlcStats",
    "MshrFile",
    "SetAssociativeCache",
]
