"""GDDR5 memory controller with FR-FCFS scheduling (Table I).

Each memory node owns one controller with 16 banks.  The model captures
the timing that matters for bandwidth and latency under the paper's
workloads: row-buffer locality (activate/precharge vs. CAS-only service),
per-bank occupancy, the shared data bus (one burst at a time), and the
FR-FCFS policy of serving ready row-buffer hits before older row misses.
Timing parameters are in controller cycles and default to the paper's
GDDR5 values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config.system import DramConfig

#: completion callback signature: (block, cycle) -> None
FillCallback = Callable[[int, int], None]


@dataclass
class _DramRequest:
    block: int
    is_write: bool
    arrival: int
    bank: int
    row: int
    on_done: FillCallback


class DramBank:
    """One GDDR5 bank: open row + busy window."""

    __slots__ = ("open_row", "busy_until")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.busy_until = 0


class MemoryController:
    """FR-FCFS memory controller over a banked GDDR5 device."""

    def __init__(self, cfg: DramConfig, line_bytes: int = 128) -> None:
        self.cfg = cfg
        self.banks = [DramBank() for _ in range(cfg.banks)]
        self.queue: List[_DramRequest] = []
        self.bus_free_at = 0
        self.line_bytes = line_bytes
        self.blocks_per_row = max(1, cfg.row_bytes // line_bytes)
        self.served = 0
        self.row_hits = 0
        self.row_misses = 0
        self.busy_cycles = 0
        self._completions: List = []

    def can_accept(self) -> bool:
        return len(self.queue) < self.cfg.queue_depth

    def submit(
        self, block: int, is_write: bool, cycle: int, on_done: FillCallback
    ) -> None:
        """Queue a block-sized access; ``on_done`` fires at completion."""
        if not self.can_accept():
            raise RuntimeError("controller queue full; check can_accept()")
        bank = (block // self.blocks_per_row) % self.cfg.banks
        row = block // (self.blocks_per_row * self.cfg.banks)
        self.queue.append(
            _DramRequest(block, is_write, cycle, bank, row, on_done)
        )

    def _service_latency(self, req: _DramRequest, row_hit: bool) -> int:
        cfg = self.cfg
        latency = cfg.t_cl + cfg.burst_cycles
        if not row_hit:
            latency += cfg.t_rp + cfg.t_rcd
        if req.is_write:
            latency += cfg.t_wr - cfg.t_cl if cfg.t_wr > cfg.t_cl else 0
        return latency

    def step(self, cycle: int) -> None:
        """FR-FCFS: issue at most one burst per cycle onto the data bus."""
        if not self.queue:
            return
        self.busy_cycles += 1
        if cycle < self.bus_free_at:
            return
        # first-ready: oldest row-buffer hit on a free bank ...
        pick = None
        for i, req in enumerate(self.queue):
            bank = self.banks[req.bank]
            if bank.busy_until > cycle:
                continue
            if bank.open_row == req.row:
                pick = i
                break
        if pick is None:
            # ... else FCFS: oldest request whose bank is free
            for i, req in enumerate(self.queue):
                if self.banks[req.bank].busy_until <= cycle:
                    pick = i
                    break
        if pick is None:
            return
        req = self.queue.pop(pick)
        bank = self.banks[req.bank]
        row_hit = bank.open_row == req.row
        if row_hit:
            self.row_hits += 1
        else:
            self.row_misses += 1
        latency = self._service_latency(req, row_hit)
        bank.open_row = req.row
        bank.busy_until = cycle + latency
        # the data bus serialises bursts (tCCD apart at minimum)
        self.bus_free_at = cycle + max(self.cfg.t_ccd, self.cfg.burst_cycles)
        self.served += 1
        self._finish(req, cycle + latency)

    def _finish(self, req: _DramRequest, done_cycle: int) -> None:
        self._completions.append((done_cycle, req))

    def drain_completions(self, cycle: int) -> None:
        """Fire callbacks for bursts whose service completed by ``cycle``.

        Drained by the owner every cycle so callbacks run in deterministic
        cycle order.
        """
        if not self._completions:
            return
        remaining = []
        for done_cycle, req in self._completions:
            if done_cycle <= cycle:
                req.on_done(req.block, cycle)
            else:
                remaining.append((done_cycle, req))
        self._completions = remaining

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
