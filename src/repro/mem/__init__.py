"""Memory substrate: GDDR5 timing model, FR-FCFS controller, address map."""

from repro.mem.address import AddressMap, hash_block
from repro.mem.dram import DramBank, MemoryController

__all__ = ["AddressMap", "DramBank", "MemoryController", "hash_block"]
