"""Memory-side address mapping.

Memory is partitioned by address range across the memory controllers
following PAE's randomized address mapping [43]: a multiplicative hash of
the block address selects the home memory node, which spreads both GPU and
CPU footprints evenly over the controllers and avoids pathological
camping on a single node.
"""

from __future__ import annotations

from typing import Sequence

#: Knuth's multiplicative hash constant (golden-ratio based).
_MULT = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1


def hash_block(block: int) -> int:
    """64-bit mix of a block id (deterministic, well distributed)."""
    h = (block * _MULT) & _MASK
    h ^= h >> 29
    h = (h * 0xBF58476D1CE4E5B9) & _MASK
    h ^= h >> 32
    return h


class AddressMap:
    """Maps block ids to their home memory node."""

    def __init__(self, mem_nodes: Sequence[int]) -> None:
        if not mem_nodes:
            raise ValueError("need at least one memory node")
        self.mem_nodes = tuple(mem_nodes)

    def home_of(self, block: int) -> int:
        """Home memory node id for ``block`` (PAE-style randomized)."""
        return self.mem_nodes[hash_block(block) % len(self.mem_nodes)]

    def slice_index_of(self, block: int) -> int:
        """Index (0..n_mem-1) of the slice owning ``block``."""
        return hash_block(block) % len(self.mem_nodes)
