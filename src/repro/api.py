"""The stable public API of the ``repro`` package.

Everything an external caller needs lives behind this one module:

.. code-block:: python

    from repro.api import simulate
    from repro.config import delegated_replies_config

    result = simulate(delegated_replies_config(), "HS",
                      cpu="canneal", cycles=20_000)
    print(result.gpu_ipc, result.cpu_latency_avg)

:func:`simulate` is the single-run entry point; everything after the
config and workload is keyword-only so call sites stay readable and
new options never break positional callers.  For batches,
:func:`run_sweep` plus :class:`JobSpec` is the campaign entry point —
warm worker pools (``jobs``), chunked submission (``batch``), on-disk
result caching and retries, see :mod:`repro.sweep`.  :func:`predict` is
the millisecond analytical counterpart of :func:`simulate`: same
(config, workload, co-runner) signature, a
:class:`~repro.model.Prediction` instead of a
:class:`SimulationResult` — use it for what-if scans and to pre-screen
sweeps (``repro.sweep run --screen surrogate``).  The lower-level
:func:`run_simulation` / :func:`build_system` pair is re-exported for
callers that need to drive a :class:`HeterogeneousSystem` cycle by
cycle (telemetry tooling, the fault-injection harness).

Names listed in ``__all__`` are covered by the API-snapshot test
(``tests/test_api.py``); removing or renaming one is a breaking change
and must ship with a deprecation shim, like the
``SimulationResult.cpu_avg_latency`` property that still serves the
pre-rename spelling of ``cpu_latency_avg``.
"""

from __future__ import annotations

from typing import Optional

from repro.config.system import SystemConfig
from repro.explore.pareto import ParetoFrontier
from repro.explore.space import SearchSpace
from repro.faults.plan import FaultPlan, chaos_plan
from repro.sim.engines import BackendError, available_backends
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import (
    CpuSpec,
    GpuSpec,
    build_system,
    run_simulation,
)
from repro.sweep import JobSpec, run_sweep

__all__ = [
    "BackendError",
    "FaultPlan",
    "JobSpec",
    "ParetoFrontier",
    "SearchSpace",
    "SimulationResult",
    "available_backends",
    "build_system",
    "chaos_plan",
    "explore",
    "predict",
    "run_simulation",
    "run_sweep",
    "simulate",
]


def explore(
    space="mesh4x4",
    *,
    algo: str = "nsga2",
    budget: int = 64,
    population: int = 16,
    seed: int = 0,
    surrogate_only: bool = False,
    sim_fraction: float = 0.2,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    cache="auto",
    progress=None,
    backend: Optional[str] = None,
):
    """Multi-objective design-space search over a :class:`SearchSpace`.

    Runs a seeded NSGA-II (or uniform-random baseline) search that
    optimises latency p95, throughput, and the ``repro.analysis``
    area/energy models jointly.  Every candidate is scored by the
    :func:`predict` surrogate; only frontier-band survivors (at most
    ``sim_fraction`` of the evaluated designs, plus the mechanism
    reference anchors) are promoted to cycle-level :func:`simulate`
    ground truth via the sweep runner and its content-addressed cache.
    ``space`` is a named demo space (``"mesh4x4"``, ``"mesh8x8"``,
    ``"full"``) or a custom :class:`SearchSpace`.  Returns an
    :class:`~repro.explore.ExploreOutcome` whose ``frontier`` is a
    :class:`ParetoFrontier` and whose ``manifest()`` matches the JSON
    artifact of ``python -m repro.explore run``.
    """
    from repro.explore.search import explore as _explore

    return _explore(
        space,
        algo=algo,
        budget=budget,
        population=population,
        seed=seed,
        surrogate_only=surrogate_only,
        sim_fraction=sim_fraction,
        jobs=jobs,
        batch=batch,
        cycles=cycles,
        warmup=warmup,
        cache=cache,
        progress=progress,
        backend=backend,
    )


def predict(
    cfg: SystemConfig,
    workload: str,
    *,
    cpu: Optional[str] = None,
):
    """Analytical surrogate estimate of :func:`simulate`'s metrics.

    Runs the queueing-theoretic model in :mod:`repro.model` — per-link
    offered loads from the routing tables, M/G/1 priority waits, and a
    closed-loop saturation fixed point — and returns a
    :class:`~repro.model.Prediction` in a few milliseconds.  Field
    names mirror :class:`SimulationResult` where the two overlap
    (``cpu_latency_avg``, ``gpu_ipc``, ``mem_blocking_rate``, ...), and
    the prediction adds ``demand_rho``/``saturated``/``bottleneck`` for
    clogging assessment.  Validated accuracy against the simulator is
    tracked by ``python -m repro.model validate`` and the
    ``surrogate_accuracy`` entry of ``BENCH_noc.json``.
    """
    from repro.model.compose import predict as _model_predict

    return _model_predict(cfg, workload, cpu)


def simulate(
    cfg: SystemConfig,
    workload: GpuSpec,
    *,
    cpu: Optional[CpuSpec] = None,
    cycles: int = 20_000,
    warmup: int = 2_000,
    kernel_flush_interval: int = 0,
    faults: Optional[FaultPlan] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Simulate one workload mix and return its steady-state metrics.

    Args:
        cfg: complete system configuration (e.g.
            :func:`repro.config.delegated_replies_config`).
        workload: GPU benchmark name (Table II) or profile.
        cpu: optional CPU benchmark name or profile; all 16 CPU cores run
            it, matching the paper's workload construction.
        cycles: measured-window length in cycles.
        warmup: cycles simulated before measurement starts.
        kernel_flush_interval: if nonzero, flush GPU L1s and LLC core
            pointers every N cycles (software-coherence kernel
            boundaries).
        faults: optional :class:`~repro.faults.plan.FaultPlan`; installs
            deterministic fault injection plus timeout/retransmit
            recovery (see :mod:`repro.faults`).  ``None`` (the default)
            leaves the simulation bit-identical to a build without the
            fault layer.
        backend: simulation engine to run on: ``"object"`` (the
            per-object reference kernel, supports everything) or
            ``"vector"`` (the struct-of-arrays batch kernel — much
            faster on large or saturated meshes; no telemetry, adaptive
            routing, or non-loss fault plans).  ``None`` (the default)
            honours the ``REPRO_BACKEND`` environment variable and
            falls back to ``"object"``.  Unknown or unusable choices
            raise :class:`BackendError` with a one-line message; see
            :func:`available_backends`.
    """
    return run_simulation(
        cfg,
        workload,
        cpu,
        cycles=cycles,
        warmup=warmup,
        kernel_flush_interval=kernel_flush_interval,
        faults=faults,
        backend=backend,
    )
