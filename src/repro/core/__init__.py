"""The paper's mechanism (Delegated Replies) and its strongest prior (RP)."""

from repro.core.delegated_replies import (
    DelegatedRepliesMechanism,
    DelegationStats,
    ReplyMeta,
    is_delegatable,
)
from repro.core.realistic_probing import ProbeEngine, ProbeStats

__all__ = [
    "DelegatedRepliesMechanism",
    "DelegationStats",
    "ProbeEngine",
    "ProbeStats",
    "ReplyMeta",
    "is_delegatable",
]
