"""Delegated Replies — the paper's mechanism (Sections II and IV).

The memory node speculatively delegates the responsibility of replying to
an LLC *hit* to the GPU core that last accessed the block (the LLC's core
pointer).  Delegation is decided entirely at the end points:

* the LLC marks a reply *delegatable* when the request was a GPU read that
  hit in the LLC, the block's core pointer is valid, points to a different
  GPU core than the requester, and the request did not carry the
  Do-Not-Forward bit;
* the memory-node NIC converts the oldest delegatable reply into a 1-flit
  delegated request *only when the reply network cannot accept traffic
  that cycle* (Figure 4) — turning a 9-flit reply on the clogged reply
  link into a 1-flit request on the under-utilised request link.

Routers treat delegated replies as ordinary requests; no NoC changes are
needed beyond the DNF bit, which fits in existing spare request-header
space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.system import DelegationConfig
from repro.noc.nic import MemoryNodeNic
from repro.noc.packet import MessageType, Packet, TrafficClass


@dataclass
class ReplyMeta:
    """Metadata the memory node attaches to a reply packet (``pkt.txn``)."""

    #: LLC hit (only hits are delegatable)
    llc_hit: bool = False
    #: core to delegate to, when the reply is delegatable
    delegate_to: Optional[int] = None


@dataclass
class DelegationStats:
    delegations: int = 0
    delegatable_seen: int = 0
    suppressed_not_blocked: int = 0


class DelegatedRepliesMechanism:
    """Installs the delegation policy on a memory node's NIC."""

    def __init__(self, cfg: DelegationConfig) -> None:
        self.cfg = cfg
        self.stats = DelegationStats()

    def attach(self, nic: MemoryNodeNic) -> None:
        nic.delegation_policy = self._delegate
        nic.delegate_only_when_blocked = self.cfg.only_when_blocked
        nic.max_delegations_per_cycle = self.cfg.max_delegations_per_cycle

    def _delegate(self, reply: Packet, cycle: int) -> Optional[Packet]:
        """Convert a delegatable reply into its 1-flit delegated request."""
        meta = reply.txn
        if not isinstance(meta, ReplyMeta) or meta.delegate_to is None:
            return None
        if reply.mtype is not MessageType.READ_REPLY:
            return None
        if reply.cls is not TrafficClass.GPU:
            return None
        self.stats.delegatable_seen += 1
        delegated = Packet(
            src=reply.src,              # injected at the memory node ...
            dst=meta.delegate_to,       # ... towards the likely sharer
            mtype=MessageType.DELEGATED_REQ,
            cls=TrafficClass.GPU,
            size_flits=1,
            block=reply.block,
            requester=reply.dst,        # the paper encodes the requesting
                                        # core as the sender ID
            created=cycle,
        )
        self.stats.delegations += 1
        return delegated


def is_delegatable(meta: object) -> bool:
    """True when a reply's metadata marks it delegatable."""
    return isinstance(meta, ReplyMeta) and meta.delegate_to is not None
