"""Realistic Probing (RP) [31] — the strongest prior approach (Section III-A).

On a predicted-shared L1 miss, RP probes the private L1 caches of other
GPU cores for the missing block *before* (instead of) going to the LLC.
This exploits the same inter-core locality as Delegated Replies but has to
*search* for the sharer: probing too many caches wastes request bandwidth
and energy, probing too few rarely finds the data.  The paper reports RP
inflates the total NoC request count by 5.9x and is outperformed by
Delegated Replies by 14.2% on average.

The implementation probes ``probe_width`` index-adjacent GPU cores in
parallel; the first data reply wins, and if every probe NACKs the
requester falls back to a normal LLC request.  The sharing predictor is
modelled with configurable true/false-positive rates on the shared vs.
private address regions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.config.system import ProbingConfig

#: address-region boundary shared with the trace generators: blocks at or
#: above this id belong to per-core private (or CPU) regions.
_SHARED_REGION_LO = 1 << 32
_SHARED_REGION_HI = 2 << 32


@dataclass
class ProbeStats:
    probes_sent: int = 0
    probe_hits: int = 0
    probe_nacks: int = 0
    fallbacks: int = 0
    predicted: int = 0
    not_predicted: int = 0


class ProbeEngine:
    """Per-GPU-core RP state machine."""

    #: predictor hit probability for genuinely shared blocks
    TRUE_POSITIVE = 0.90
    #: predictor false-positive probability for private blocks
    FALSE_POSITIVE = 0.15

    def __init__(
        self,
        cfg: ProbingConfig,
        core_node: int,
        gpu_nodes: Sequence[int],
        seed: int = 42,
    ) -> None:
        self.cfg = cfg
        self.core_node = core_node
        self.gpu_nodes = list(gpu_nodes)
        self.rng = random.Random((seed * 2_654_435_761) ^ core_node)
        #: block -> outstanding probe NACKs still expected
        self._pending: Dict[int, int] = {}
        self.stats = ProbeStats()

    def should_probe(self, block: int) -> bool:
        """Sharing predictor: decide whether this miss is worth probing."""
        shared = _SHARED_REGION_LO <= block < _SHARED_REGION_HI
        p = self.TRUE_POSITIVE if shared else self.FALSE_POSITIVE
        p *= self.cfg.predictor_threshold / 0.5  # scale by config knob
        if self.rng.random() < min(p, 1.0):
            self.stats.predicted += 1
            return True
        self.stats.not_predicted += 1
        return False

    def targets_for(self, block: int) -> List[int]:
        """The cores to probe: index-adjacent neighbours (ring order)."""
        idx = self.gpu_nodes.index(self.core_node)
        n = len(self.gpu_nodes)
        width = min(self.cfg.probe_width, n - 1)
        out = []
        step = 1
        while len(out) < width:
            for sign in (1, -1):
                if len(out) >= width:
                    break
                out.append(self.gpu_nodes[(idx + sign * step) % n])
            step += 1
        return out

    def begin(self, block: int, n_targets: int) -> None:
        self._pending[block] = n_targets
        self.stats.probes_sent += n_targets

    def is_probing(self, block: int) -> bool:
        return block in self._pending

    def on_data(self, block: int) -> None:
        """A probe found the data; remaining NACKs will be ignored."""
        if block in self._pending:
            self._pending.pop(block)
            self.stats.probe_hits += 1

    def on_nack(self, block: int) -> bool:
        """Register a probe NACK; True when all probes missed (fall back)."""
        if block not in self._pending:
            return False  # data already arrived; stale NACK
        self.stats.probe_nacks += 1
        self._pending[block] -= 1
        if self._pending[block] <= 0:
            self._pending.pop(block)
            self.stats.fallbacks += 1
            return True
        return False
