"""Chip layouts of Figure 1 and their default routing orders (Section V).

A layout assigns every grid position a role — GPU core, CPU core or memory
node.  The baseline (Fig. 1a) isolates CPU and GPU traffic by placing the
memory nodes in a column between the CPU columns (west) and the GPU
columns (east) and pairing that with CDR YX-XY routing; the alternatives
trade that isolation for integration simplicity (B), CPU clustering (C) or
uniform traffic spreading (D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config.system import DimensionOrder, Layout, SystemConfig


@dataclass(frozen=True)
class NodePlacement:
    """Role assignment for every node of the fabric."""

    layout: Layout
    width: int
    height: int
    gpu_nodes: Tuple[int, ...]
    cpu_nodes: Tuple[int, ...]
    mem_nodes: Tuple[int, ...]

    def role_of(self, node: int) -> str:
        if node in self._mem_set:
            return "mem"
        if node in self._cpu_set:
            return "cpu"
        return "gpu"

    @property
    def _mem_set(self):
        return frozenset(self.mem_nodes)

    @property
    def _cpu_set(self):
        return frozenset(self.cpu_nodes)

    def validate(self, cfg: SystemConfig) -> None:
        if len(self.gpu_nodes) != cfg.n_gpu:
            raise ValueError(f"layout has {len(self.gpu_nodes)} GPU nodes, config wants {cfg.n_gpu}")
        if len(self.cpu_nodes) != cfg.n_cpu:
            raise ValueError(f"layout has {len(self.cpu_nodes)} CPU nodes, config wants {cfg.n_cpu}")
        if len(self.mem_nodes) != cfg.n_mem:
            raise ValueError(f"layout has {len(self.mem_nodes)} memory nodes, config wants {cfg.n_mem}")


def _grid(width: int, height: int) -> List[int]:
    return list(range(width * height))


def _column_major(width: int, height: int) -> List[int]:
    """Node ids in column-major order: whole columns west to east."""
    return [y * width + x for x in range(width) for y in range(height)]


def _baseline_layout(cfg: SystemConfig) -> NodePlacement:
    """Fig. 1a: CPU columns | memory column | GPU columns."""
    order = _column_major(cfg.mesh_width, cfg.mesh_height)
    cpu = order[: cfg.n_cpu]
    mem = order[cfg.n_cpu: cfg.n_cpu + cfg.n_mem]
    gpu = order[cfg.n_cpu + cfg.n_mem:]
    return NodePlacement(
        Layout.BASELINE, cfg.mesh_width, cfg.mesh_height,
        tuple(gpu), tuple(cpu), tuple(mem),
    )


def _edge_layout(cfg: SystemConfig) -> NodePlacement:
    """Fig. 1b: memory nodes in the top row, CPU columns below-left."""
    w, h = cfg.mesh_width, cfg.mesh_height
    top_row = [0 * w + x for x in range(w)]
    if cfg.n_mem > w:
        raise ValueError("edge layout needs n_mem <= mesh width")
    mem = top_row[: cfg.n_mem]
    remaining = [
        y * w + x for x in range(w) for y in range(1, h)
    ] + top_row[cfg.n_mem:]
    cpu = remaining[: cfg.n_cpu]
    gpu = remaining[cfg.n_cpu:]
    return NodePlacement(
        Layout.EDGE, w, h, tuple(gpu), tuple(cpu), tuple(mem)
    )


def _clustered_layout(cfg: SystemConfig) -> NodePlacement:
    """Fig. 1c: CPU cores clustered in the north-west corner.

    Memory nodes sit in a compact block next to the cluster, so GPU
    traffic to/from memory is multiplexed onto few vertical links.
    """
    w, h = cfg.mesh_width, cfg.mesh_height
    side = 1
    while side * side < cfg.n_cpu:
        side += 1
    cpu = [
        y * w + x for y in range(side) for x in range(side)
    ][: cfg.n_cpu]
    cpu_set = set(cpu)
    # memory block: fill east of the cluster row by row
    mem: List[int] = []
    for y in range(h):
        for x in range(side, w):
            node = y * w + x
            if len(mem) < cfg.n_mem:
                mem.append(node)
    mem_set = set(mem)
    gpu = [n for n in _grid(w, h) if n not in cpu_set and n not in mem_set]
    return NodePlacement(
        Layout.CLUSTERED, w, h, tuple(gpu), tuple(cpu), tuple(mem)
    )


#: Fig. 1d memory positions for the 8x8 grid (evenly spread, per [38][46]).
_DISTRIBUTED_MEM_8X8 = (
    (1, 1), (5, 1), (3, 3), (7, 3), (1, 5), (5, 5), (3, 7), (7, 7),
)


def _distributed_layout(cfg: SystemConfig) -> NodePlacement:
    """Fig. 1d: all core types spread over the chip."""
    w, h = cfg.mesh_width, cfg.mesh_height
    if (w, h) == (8, 8) and cfg.n_mem == 8:
        mem = [y * w + x for (x, y) in _DISTRIBUTED_MEM_8X8]
    else:
        stride = max(1, (w * h) // cfg.n_mem)
        mem = [(i * stride + stride // 2) % (w * h) for i in range(cfg.n_mem)]
        mem = sorted(set(mem))
        extra = 0
        while len(mem) < cfg.n_mem:  # collision fallback
            cand = extra
            if cand not in mem:
                mem.append(cand)
            extra += 1
        mem = sorted(mem[: cfg.n_mem])
    mem_set = set(mem)
    rest = [n for n in _grid(w, h) if n not in mem_set]
    # spread CPU cores evenly across the remaining positions
    step = len(rest) / cfg.n_cpu
    cpu = [rest[int(i * step)] for i in range(cfg.n_cpu)]
    cpu_set = set(cpu)
    gpu = [n for n in rest if n not in cpu_set]
    return NodePlacement(
        Layout.DISTRIBUTED, w, h, tuple(gpu), tuple(cpu), tuple(mem)
    )


_BUILDERS = {
    Layout.BASELINE: _baseline_layout,
    Layout.EDGE: _edge_layout,
    Layout.CLUSTERED: _clustered_layout,
    Layout.DISTRIBUTED: _distributed_layout,
}


def build_layout(cfg: SystemConfig) -> NodePlacement:
    """Construct the node placement for the configured layout."""
    placement = _BUILDERS[cfg.layout](cfg)
    placement.validate(cfg)
    return placement


#: Section V: the per-layout CDR dimension orders the paper recommends
#: (request order, reply order).
DEFAULT_ORDERS: Dict[Layout, Tuple[DimensionOrder, DimensionOrder]] = {
    Layout.BASELINE: (DimensionOrder.YX, DimensionOrder.XY),
    Layout.EDGE: (DimensionOrder.XY, DimensionOrder.YX),
    Layout.CLUSTERED: (DimensionOrder.XY, DimensionOrder.YX),
    Layout.DISTRIBUTED: (DimensionOrder.XY, DimensionOrder.XY),
}


def apply_default_orders(cfg: SystemConfig) -> SystemConfig:
    """Set the layout's recommended CDR orders on a config (in place)."""
    req, rep = DEFAULT_ORDERS[cfg.layout]
    cfg.noc.request_order = req
    cfg.noc.reply_order = rep
    return cfg
