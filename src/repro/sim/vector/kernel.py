"""The struct-of-arrays NoC kernel behind ``backend="vector"``.

Layout (DESIGN.md §12).  Both physical networks are folded into one flat
index space so every per-cycle phase runs once:

* row   ``r = net_i * n + rid``            — one router instance,
* group ``g = r * P + oport``              — one output port (= the input
  port it feeds downstream; ``g`` doubles as the input-port id ``f // V``),
* vc    ``f = (r * P + iport) * V + ivc``  — one input virtual channel.

Each input VC is a small ring of worm entries (``ent_*``, depth
``Q = vc_cap + 1``); the entry at the ring head is mirrored into flat
``h_*`` arrays (packet, flits available, pipeline-ready cycle, switch
priority key, routed group, allocated downstream VC, ...) which are the
authoritative copy — the ring slot under the head is allowed to go stale.
Packets live in a parallel table (``pk_*`` arrays plus the ``pk_obj``
Python list holding the canonical :class:`~repro.noc.packet.Packet`
objects); table indices are recycled through a free list at delivery.

Everything is int64: the arrays are tiny (a mesh 8x8 with two physical
networks is 1280 input VCs), so index-dtype uniformity — which lets numpy
reuse fancy-index buffers without a cast per op — matters far more than
footprint.

One cycle = ``bandwidth`` two-phase passes followed by NIC injection:

1. **Decide** — one mask pass selects the head worms that may move
   (pipeline done, credit + write lock downstream, ejection gate open,
   lazy VC allocation), then a single stable argsort of their priority
   keys feeds two first-occurrence scatters: min-key winner per output
   group, then per-input-port uniqueness among those winners — exactly
   the object kernel's switch allocation, batched.
2. **Commit** — all winners move at once: source counters decrement,
   arriving flits merge into or append to downstream rings, tails pop
   and promote the next ring entry to the head mirror.  Python-side
   effects (deliveries, fault hooks) run in the oracle's
   (network, router, key) order; on the fault-free, memory-less fast
   path the delivery counters are batched into array updates and only
   the per-packet object bookkeeping loops.

Injection batches every compute NIC per network kind: in-flight worms
continue lowest-VC-first, then new worms start on free VCs.  With
separate physical networks the (kind, node) injection lanes coincide
with the router rows, so both kinds run fused in one batch; a shared
network interleaves the kinds with the oracle's parity order and budget.
Memory-node NICs keep their exact Python behaviour (priority scheduling,
delegation) and talk to these arrays through a per-node bridge view.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.noc.packet import NetKind, Packet
from repro.noc.router import LOCAL_PORT

#: sentinels for empty head slots.
_NO_READY = np.int64(2**62)
_NO_KEY = np.int64(2**62)

_I64 = np.int64


class VectorKernel:
    """All mutable NoC state as preallocated numpy arrays."""

    def __init__(self, topology, cfg, mem_nodes, net_facades, separate: bool):
        self.topology = topology
        self.cfg = cfg
        self.nets = net_facades          # VectorNet facades, by net_i
        # (the list is filled by VectorFabric after construction)
        self.NN = 2 if separate else 1   # distinct physical networks
        self.separate = separate
        n = topology.n
        self.n = n
        # geometry
        port_of: List[Dict[int, int]] = []
        nports = []
        for rid in range(n):
            nbrs = topology.neighbors(rid)
            port_of.append({nb: 1 + i for i, nb in enumerate(nbrs)})
            nports.append(1 + len(nbrs))
        self.port_of = port_of
        P = max(nports)
        if separate:
            V = cfg.vcs_per_port
            self.vlo_k = (0, 0)
            self.vhi_k = (V, V)
        else:
            V = cfg.request_vcs + cfg.reply_vcs
            self.vlo_k = (0, cfg.request_vcs)
            self.vhi_k = (cfg.request_vcs, V)
        self._vlo_arr = np.array(self.vlo_k, dtype=_I64)
        self._vhi_arr = np.array(self.vhi_k, dtype=_I64)
        #: net_i of each NetKind (separate: request=0, reply=1; shared: 0)
        self.net_of_kind = (0, 1) if separate else (0, 0)
        R = self.NN * n
        self.P, self.V, self.R = P, V, R
        self.PV = P * V
        F = R * P * V
        G = R * P
        self.F, self.G = F, G
        cap = cfg.vc_depth_flits
        self.cap = cap
        Q = cap + 1
        self.Q = Q
        self.pipeline = cfg.router_pipeline_cycles - 1 + cfg.link_cycles
        self.bandwidth = max(1, round(cfg.bandwidth_factor))

        # deterministic routing tables, flattened: [kind, rid, dst] -> oport
        rt = np.zeros(2 * n * n, dtype=_I64)
        for kind, order in (
            (0, cfg.request_order),
            (1, cfg.reply_order),
        ):
            base = kind * n * n
            for rid in range(n):
                row = base + rid * n
                pmap = port_of[rid]
                for dst in range(n):
                    if dst != rid:
                        rt[row + dst] = pmap[
                            topology.route_next(rid, dst, order)
                        ]
        self.route_tab = rt

        # downstream input-port flat-VC base per output group (-1: local
        # ejection or unused port slot)
        db = np.full(G, -1, dtype=_I64)
        for net_i in range(self.NN):
            for rid in range(n):
                row = net_i * n + rid
                for nb, oport in port_of[rid].items():
                    dport = port_of[nb][rid]
                    db[row * P + oport] = (
                        ((net_i * n + nb) * P + dport) * V
                    )
        self.down_base = db

        # -- per-VC state (head mirror + entry rings) -------------------
        # the ten int64 head fields live in one (10, F) block so install
        # and clear are single column scatters; the named h_* attributes
        # are row views into it and alias its memory
        self._hclear = np.array(
            [[-1], [0], [_NO_READY], [0], [-1], [-1], [-1], [0],
             [_NO_KEY], [0]], dtype=_I64,
        )
        self._H = np.repeat(self._hclear, F, axis=1)
        (self.h_pkt, self.h_avail, self.h_ready, self.h_sent,
         self.h_outvc, self.h_dvc, self.h_dbase, self.h_grp,
         self.h_key, self.h_size) = self._H
        self.h_eject = np.zeros(F, dtype=bool)
        self.occ = np.zeros(F, dtype=_I64)
        self.owner = np.full(F, -1, dtype=_I64)
        self.qlen = np.zeros(F, dtype=_I64)
        self.qhead = np.zeros(F, dtype=_I64)
        self.ent_pkt = np.zeros(F * Q, dtype=_I64)
        self.ent_avail = np.zeros(F * Q, dtype=_I64)
        self.ent_ready = np.zeros(F * Q, dtype=_I64)

        # -- per-router / per-link statistics ---------------------------
        self.flits_routed = np.zeros(R, dtype=_I64)
        self.link_flits = np.zeros(G, dtype=_I64)

        # -- packet table ----------------------------------------------
        pc = 4096
        self.pk_size = np.zeros(pc, dtype=_I64)
        self.pk_dst = np.zeros(pc, dtype=_I64)
        self.pk_netk = np.zeros(pc, dtype=_I64)
        self.pk_key = np.zeros(pc, dtype=_I64)
        self.pk_hops = np.zeros(pc, dtype=_I64)
        self.pk_mtype = np.zeros(pc, dtype=_I64)
        self.pk_cls = np.zeros(pc, dtype=_I64)
        self.pk_obj: List[Optional[Packet]] = [None] * pc
        self._free = list(range(pc - 1, -1, -1))
        #: id(pkt) -> index, for packets entering through the memory-node
        #: bridge (compute-node packets carry their index in-band)
        self._mem_idx: Dict[int, int] = {}

        # -- compute-node injection state -------------------------------
        self.infl_pkt = np.full((2, n, V), -1, dtype=_I64)
        self.infl_pushed = np.zeros((2, n, V), dtype=_I64)
        self.flits_injected_arr = np.zeros((2, n), dtype=_I64)
        self.flits_rx_arr = np.zeros((2, n), dtype=_I64)  # by class
        self.data_rx_arr = np.zeros(n, dtype=_I64)
        #: per-(kind, node) queues of un-started Packet objects; their
        #: lengths are scanned once per cycle instead of being mirrored
        #: into an array that every try_send would have to maintain
        self.queues: List[List] = [
            [deque() for _ in range(n)] for _ in range(2)
        ]
        # local-port (n, V) views per net_i for the injection batch
        occ3 = self.occ.reshape(R, P, V)
        own3 = self.owner.reshape(R, P, V)
        self._occ_loc = [occ3[i * n:(i + 1) * n, LOCAL_PORT] for i in range(self.NN)]
        self._own_loc = [own3[i * n:(i + 1) * n, LOCAL_PORT] for i in range(self.NN)]
        if separate:
            # (kind, node) injection lanes == router rows: fused views
            self._occ_loc_all = occ3[:, LOCAL_PORT]        # (R, V)
            self._own_loc_all = own3[:, LOCAL_PORT]
            self._infl_flat = self.infl_pkt.reshape(R, V)
            self._pushed_flat = self.infl_pushed.reshape(R, V)
            self._finj_flat = self.flits_injected_arr.reshape(R)
            self._q_flat = self.queues[0] + self.queues[1]

        #: nodes whose NIC currently has an ejection gate installed
        self.gate_nodes: Dict[int, object] = {}

        # scratch
        self._gstamp = np.zeros(G, dtype=_I64)
        self._arange = np.arange(F, dtype=_I64)
        # static per-VC route/group bases for _set_heads: with separate
        # physical networks a packet on kind k only travels on net k, so
        # the route-table row (k*n + rid) equals the router row f // PV
        # and needs no per-packet net gather
        row_f = self._arange // self.PV
        self._rtbase_f = row_f * n
        self._rowp_f = row_f * P

        #: wired by VectorFabric after construction
        self.fabric = None
        self.nics: List = []
        self.mem_nodes = tuple(sorted(mem_nodes))
        self._mem_set = set(mem_nodes)

    # ------------------------------------------------------------------
    # packet table
    # ------------------------------------------------------------------

    def _grow_packets(self) -> None:
        old = len(self.pk_obj)
        new = old * 2
        for name in (
            "pk_size", "pk_dst", "pk_netk", "pk_key", "pk_hops",
            "pk_mtype", "pk_cls",
        ):
            arr = getattr(self, name)
            grown = np.zeros(new, dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)
        self.pk_obj.extend([None] * old)
        self._free.extend(range(new - 1, old - 1, -1))

    def register(self, pkt: Packet) -> int:
        """Enter ``pkt`` into the packet table, returning its index."""
        free = self._free
        if not free:
            self._grow_packets()
            free = self._free
        i = free.pop()
        self.pk_size[i] = pkt.size_flits
        self.pk_dst[i] = pkt.dst
        self.pk_netk[i] = int(pkt.net)
        self.pk_key[i] = (pkt.cls << 48) | pkt.pid
        self.pk_hops[i] = 0
        self.pk_mtype[i] = int(pkt.mtype)
        self.pk_cls[i] = int(pkt.cls)
        self.pk_obj[i] = pkt
        return i

    def register_many(self, objs) -> np.ndarray:
        """Batched :meth:`register` for the injection step."""
        need = len(objs)
        free = self._free
        while len(free) < need:
            self._grow_packets()
            free = self._free
        idxs = np.empty(need, dtype=_I64)
        pk_obj = self.pk_obj
        for j, pkt in enumerate(objs):
            i = free.pop()
            idxs[j] = i
            pk_obj[i] = pkt
        # one interleaved fromiter (the enums are IntEnums), six scatters
        data = np.fromiter(
            (x for p in objs
             for x in (p.size_flits, p.dst, p.net, p.cls, p.pid, p.mtype)),
            _I64, count=6 * need,
        ).reshape(need, 6)
        self.pk_size[idxs] = data[:, 0]
        self.pk_dst[idxs] = data[:, 1]
        self.pk_netk[idxs] = data[:, 2]
        cls = data[:, 3]
        self.pk_cls[idxs] = cls
        self.pk_key[idxs] = (cls << 48) | data[:, 4]
        self.pk_hops[idxs] = 0
        self.pk_mtype[idxs] = data[:, 5]
        return idxs

    def mem_index_of(self, pkt: Packet) -> int:
        """Index of a bridge-side packet, registering it on first sight."""
        i = self._mem_idx.get(id(pkt))
        if i is None:
            i = self.register(pkt)
            self._mem_idx[id(pkt)] = i
        return i

    def _recycle(self, i: int, pkt: Packet) -> None:
        self.pk_obj[i] = None
        self._mem_idx.pop(id(pkt), None)
        self._free.append(i)

    # ------------------------------------------------------------------
    # head mirror
    # ------------------------------------------------------------------

    def _set_heads(self, f, pkt, avail, ready) -> None:
        """Install worm heads ``pkt`` at input VCs ``f`` (all arrays)."""
        rt = self._rtbase_f[f] + self.pk_dst[pkt]
        if not self.separate:
            # one shared net: the route-table row still keys on the kind
            rt += self.pk_netk[pkt] * (self.n * self.n)
        op = self.route_tab[rt]
        g = self._rowp_f[f] + op
        self.h_pkt[f] = pkt
        self.h_avail[f] = avail
        self.h_ready[f] = ready
        self.h_sent[f] = 0
        self.h_outvc[f] = -1
        self.h_dvc[f] = -1
        self.h_dbase[f] = self.down_base[g]
        self.h_grp[f] = g
        self.h_key[f] = self.pk_key[pkt]
        self.h_size[f] = self.pk_size[pkt]
        self.h_eject[f] = op == LOCAL_PORT

    def _clear_heads(self, f) -> None:
        # parking h_ready at the sentinel is enough to empty a head:
        # eligibility requires h_ready <= cycle, and every other head
        # field is only read under an eligibility-derived mask or at
        # mover subsets, then rewritten wholesale by the next _set_heads
        self.h_ready[f] = _NO_READY

    # ------------------------------------------------------------------
    # flit acceptance (batched accept_flit)
    # ------------------------------------------------------------------

    def _accept(self, dvc, pkt, tail, cycle: int) -> None:
        """Receive one flit of ``pkt[j]`` into input VC ``dvc[j]``.

        ``dvc`` must be duplicate-free (guaranteed: at most one flit
        enters any input VC per pass).  Mirrors ``Router.accept_flit``:
        a continuation merges into its worm's (tail) entry, a new worm
        appends a header entry that dwells ``pipeline`` cycles.
        """
        merge = self.owner[dvc] == pkt
        ql = self.qlen[dvc]
        mh = merge & (ql == 1)
        self.h_avail[dvc[mh]] += 1
        mr = merge & (ql > 1)
        i = dvc[mr]
        pos = (self.qhead[i] + ql[mr] - 1) % self.Q
        self.ent_avail[i * self.Q + pos] += 1
        new = ~merge
        ready = cycle + self.pipeline
        est = new & (ql == 0)
        if est.any():
            self._set_heads(dvc[est], pkt[est], 1, ready)
        app = new & (ql > 0)
        i = dvc[app]
        pos = (self.qhead[i] + ql[app]) % self.Q
        fi = i * self.Q + pos
        self.ent_pkt[fi] = pkt[app]
        self.ent_avail[fi] = 1
        self.ent_ready[fi] = ready
        self.qlen[dvc[new]] += 1
        self.occ[dvc] += 1
        self.owner[dvc] = np.where(tail, -1, pkt)

    def _accept_cont(self, dvc, tail) -> None:
        """Continuation flits into VCs their worms already own.

        A continuing worm always merges: the write lock (``owner``) is
        released only when its tail is accepted, and its entry cannot pop
        before that tail leaves, so ``qlen >= 1`` and ``owner == pkt``
        hold by construction.
        """
        ql = self.qlen[dvc]
        mh = ql == 1
        self.h_avail[dvc[mh]] += 1
        i = dvc[~mh]
        pos = (self.qhead[i] + ql[~mh] - 1) % self.Q
        self.ent_avail[i * self.Q + pos] += 1
        self.occ[dvc] += 1
        self.owner[dvc[tail]] = -1

    def _accept_new(self, dvc, pkt, tail, cycle: int) -> None:
        """Header flits of freshly started worms (``owner`` was free)."""
        ql = self.qlen[dvc]
        ready = cycle + self.pipeline
        est = ql == 0
        if est.any():
            self._set_heads(dvc[est], pkt[est], 1, ready)
        app = ~est
        i = dvc[app]
        pos = (self.qhead[i] + ql[app]) % self.Q
        fi = i * self.Q + pos
        self.ent_pkt[fi] = pkt[app]
        self.ent_avail[fi] = 1
        self.ent_ready[fi] = ready
        self.qlen[dvc] += 1
        self.occ[dvc] += 1
        self.owner[dvc] = np.where(tail, -1, pkt)

    def accept_one(self, f: int, i: int, is_tail: bool, cycle: int) -> None:
        """Scalar ``accept_flit`` used by the memory-node bridge."""
        if self.owner[f] == i:
            ql = int(self.qlen[f])
            if ql == 1:
                self.h_avail[f] += 1
            else:
                pos = (int(self.qhead[f]) + ql - 1) % self.Q
                self.ent_avail[f * self.Q + pos] += 1
        else:
            ready = cycle + self.pipeline
            ql = int(self.qlen[f])
            if ql == 0:
                one = np.array([f], dtype=_I64)
                self._set_heads(one, np.array([i], dtype=_I64), 1, ready)
            else:
                pos = (int(self.qhead[f]) + ql) % self.Q
                fi = f * self.Q + pos
                self.ent_pkt[fi] = i
                self.ent_avail[fi] = 1
                self.ent_ready[fi] = ready
            self.qlen[f] += 1
        self.occ[f] += 1
        self.owner[f] = -1 if is_tail else i

    # ------------------------------------------------------------------
    # the two-phase pass
    # ------------------------------------------------------------------

    def _decide(self, cycle: int):
        """Phase A: admitted head worms -> switch-allocation winners.

        All masks are computed over the full flat VC space — at the tiny
        array sizes involved, one fat op beats three subset-sized ones
        plus the gather that carves the subset out.
        """
        elig = (self.h_ready <= cycle) & (self.h_avail > 0)
        if not elig.any():
            return None
        # downstream credit + write lock, full-width (h_dvc is -1 when no
        # VC is held; the wrapped gather result is masked off by `have`)
        dvc = self.h_dvc
        own_d = self.owner[dvc]
        credit = (self.occ[dvc] < self.cap) & (
            (own_d < 0) | (own_d == self.h_pkt)
        )
        have = dvc >= 0
        ej = self.h_eject
        admit = elig & (ej | (have & credit))
        need = elig & ~ej & ~have
        if need.any():
            # lazy VC allocation from frozen start-of-pass state; the
            # claim persists even when the worm then loses the switch
            ni = np.flatnonzero(need)
            dbase = self.h_dbase[ni]
            if self.separate:
                vlo = vhi = None
            else:
                k = self.pk_netk[self.h_pkt[ni]]
                vlo = self._vlo_arr[k]
                vhi = self._vhi_arr[k]
            chosen = np.full(ni.size, -1, dtype=_I64)
            for vc in range(self.V):
                at = dbase + vc
                free = (self.owner[at] < 0) & (self.occ[at] < self.cap)
                if vlo is not None:
                    free &= (vc >= vlo) & (vc < vhi)
                chosen = np.where((chosen < 0) & free, vc, chosen)
            got = chosen >= 0
            gi = ni[got]
            if gi.size:
                self.h_outvc[gi] = chosen[got]
                self.h_dvc[gi] = dbase[got] + chosen[got]
                admit[gi] = True
        if self.gate_nodes:
            # a NIC with an ejection gate: new worms (sent == 0) destined
            # there ask the gate scalar-side, exactly like the oracle
            gated = np.flatnonzero(admit & ej & (self.h_sent == 0))
            for f in gated.tolist():
                rid = (f // self.PV) % self.n
                gate = self.gate_nodes.get(rid)
                if gate is not None:
                    pkt = self.pk_obj[int(self.h_pkt[f])]
                    if not gate(pkt):
                        admit[f] = False
        adm = np.flatnonzero(admit)
        if not adm.size:
            return None
        order = np.argsort(self.h_key[adm], kind="stable")
        sadm = adm[order]
        pos = self._arange[:sadm.size]
        # min-key winner per output group: first occurrence in key order
        sgrp = self.h_grp[sadm]
        stamp = self._gstamp
        stamp[sgrp[::-1]] = pos[::-1]
        w = stamp[sgrp] == pos
        sadm = sadm[w]
        # one flit per input port: first occurrence per port among the
        # per-output winners, still in key order (= the oracle's greedy)
        ip = sadm // self.V
        pos = self._arange[:sadm.size]
        stamp[ip[::-1]] = pos[::-1]
        w = stamp[ip] == pos
        return sadm[w]

    def _commit(self, movers, cycle: int) -> None:
        """Phase B: apply all winning moves against the frozen state."""
        m = movers
        pkt = self.h_pkt[m]
        self.h_avail[m] -= 1
        self.occ[m] -= 1
        ns = self.h_sent[m] + 1
        self.h_sent[m] = ns
        tail = ns == self.h_size[m]
        rows = m // self.PV
        np.add.at(self.flits_routed, rows, 1)
        ej = self.h_eject[m]
        nli = ~ej
        fa = self.fabric.faults
        if nli.any():
            mn = m[nli]
            self._accept(self.h_dvc[mn], pkt[nli], tail[nli], cycle)
            grp = self.h_grp[mn]
            self.link_flits[grp] += 1
            if fa is not None and fa._lossy:
                heads = np.flatnonzero(nli & (ns == 1))
                if heads.size:
                    # header link crossings draw from one shared RNG
                    # stream: call in the oracle's (net, rid, key) order
                    sub = np.argsort(rows[heads], kind="stable")
                    for j in heads[sub].tolist():
                        f = int(m[j])
                        row = f // self.PV
                        g = int(self.h_grp[f])
                        fa.on_link_head(
                            self.nets[row // self.n],
                            row % self.n,
                            g % self.P,
                            self.pk_obj[int(pkt[j])],
                        )
        # deliveries: at most one ejection per router per pass, applied
        # in the oracle's (net, rid) order
        dmask = ej & tail
        if dmask.any():
            di = np.flatnonzero(dmask)
            sub = np.argsort(rows[di], kind="stable")
            di = di[sub]
            if fa is None and not self._mem_set:
                self._deliver_fast(rows[di], pkt[di], cycle)
            else:
                for j in di.tolist():
                    self._deliver(int(m[j]), int(pkt[j]), cycle, fa)
        if tail.any():
            # one tail mover per packet per pass: plain fancy increment
            self.pk_hops[pkt[tail]] += 1
            f = m[tail]
            ql = self.qlen[f] - 1
            self.qlen[f] = ql
            fe = f[ql == 0]
            if fe.size:
                self._clear_heads(fe)
            fn = f[ql > 0]
            if fn.size:
                qh = (self.qhead[fn] + 1) % self.Q
                self.qhead[fn] = qh
                fi = fn * self.Q + qh
                self._set_heads(
                    fn,
                    self.ent_pkt[fi],
                    self.ent_avail[fi],
                    self.ent_ready[fi],
                )

    def _deliver_fast(self, rows, pk, cycle: int) -> None:
        """Fault-free deliveries to plain compute NICs, row-sorted.

        Counter updates run as array ops; only the per-packet object
        bookkeeping (delivery stamp, hop count, the NIC handler) loops.
        """
        n = self.n
        rids = rows % n
        sizes = self.pk_size[pk]
        # rows are unique but rids are not (the same node can eject on
        # both networks in one pass): scatter-add, not fancy +=
        np.add.at(self.flits_rx_arr, (self.pk_cls[pk], rids), sizes)
        data = sizes > 1
        if data.any():
            np.add.at(self.data_rx_arr, rids[data], sizes[data] - 1)
        mts = self.pk_mtype[pk]
        net_is = rows // n
        for net_i in range(self.NN):
            net = self.nets[net_i]
            sel = net_is == net_i if self.NN > 1 else slice(None)
            ssz = sizes[sel]
            cnt = ssz.size
            if not cnt:
                continue
            net.packets_delivered += cnt
            net.flits_delivered += int(ssz.sum())
            dbt = net.delivered_by_type
            for mt, c in enumerate(np.bincount(mts[sel]).tolist()):
                if c:
                    dbt[mt] = dbt.get(mt, 0) + c
        pk_obj = self.pk_obj
        free = self._free
        nics = self.nics
        hops_pre = self.pk_hops[pk].tolist()
        rl = rids.tolist()
        for j, p in enumerate(pk.tolist()):
            pkt = pk_obj[p]
            pkt.delivered = cycle
            pre = hops_pre[j]
            pkt.hops = pre  # the handler sees the pre-increment count
            handler = nics[rl[j]].handler
            if handler is not None:
                handler(pkt, cycle)
            pkt.hops = pre + 1
            pk_obj[p] = None
            free.append(p)

    def _deliver(self, f: int, p: int, cycle: int, fa) -> None:
        row = f // self.PV
        net_i, rid = divmod(row, self.n)
        pkt = self.pk_obj[p]
        discarded = fa is not None and fa.discard_on_eject(pkt, rid, cycle)
        if not discarded:
            net = self.nets[net_i]
            pkt.delivered = cycle
            pkt.hops = int(self.pk_hops[p])  # final +1 lands below
            net.packets_delivered += 1
            net.flits_delivered += pkt.size_flits
            key = int(pkt.mtype)
            dbt = net.delivered_by_type
            dbt[key] = dbt.get(key, 0) + 1
            self.nics[rid].deliver(pkt, cycle)
        pkt.hops = int(self.pk_hops[p]) + 1
        self._recycle(p, pkt)

    # ------------------------------------------------------------------
    # injection
    # ------------------------------------------------------------------

    def _inject_fused(self, cycle: int) -> None:
        """One flit per compute node on BOTH kinds at once (separate
        physical networks, bw == 1: the (kind, node) lanes are the router
        rows, and the two networks share no state)."""
        occ_loc = self._occ_loc_all
        own_loc = self._own_loc_all
        ip = self._infl_flat
        cont = (
            (ip >= 0)
            & (occ_loc < self.cap)
            & ((own_loc < 0) | (own_loc == ip))
        )
        has_cont = cont.any(axis=1)
        lanes_c = np.flatnonzero(has_cont)
        if lanes_c.size:
            vcs = np.argmax(cont[lanes_c], axis=1)
            pk = ip[lanes_c, vcs]
            pushed = self._pushed_flat[lanes_c, vcs] + 1
            tl = pushed == self.pk_size[pk]
            dvc = lanes_c * self.PV + vcs
            self._accept_cont(dvc, tl)
            self._pushed_flat[lanes_c, vcs] = pushed
            ip[lanes_c[tl], vcs[tl]] = -1
            self._finj_flat[lanes_c] += 1
        qf = self._q_flat
        qlens = np.fromiter(map(len, qf), _I64, count=self.R)
        start = ~has_cont & (qlens > 0)
        if not start.any():
            return
        free = (own_loc < 0) & (occ_loc < self.cap) & (ip < 0)
        can = free.any(axis=1) & start
        lanes_s = np.flatnonzero(can)
        if lanes_s.size:
            vcs = np.argmax(free[lanes_s], axis=1)
            objs = [qf[lane].popleft() for lane in lanes_s.tolist()]
            idxs = self.register_many(objs)
            for pkt in objs:
                pkt.injected = cycle
            tl = self.pk_size[idxs] == 1
            dvc = lanes_s * self.PV + vcs
            self._accept_new(dvc, idxs, tl, cycle)
            multi = ~tl
            ip[lanes_s[multi], vcs[multi]] = idxs[multi]
            self._pushed_flat[lanes_s[multi], vcs[multi]] = 1
            self._finj_flat[lanes_s] += 1

    def _inject_kind(self, k: int, cycle: int, allowed):
        """One flit per compute node on network kind ``k`` (bw == 1,
        shared physical network: the kinds contend for one budget).

        In-flight worms continue on the lowest eligible VC; nodes with no
        eligible continuation start the queue head on the lowest free VC.
        Returns the per-node pushed mask (shared-net budget accounting).
        """
        net_i = self.net_of_kind[k]
        occ_loc = self._occ_loc[net_i]
        own_loc = self._own_loc[net_i]
        ip = self.infl_pkt[k]
        cont = (
            (ip >= 0)
            & (occ_loc < self.cap)
            & ((own_loc < 0) | (own_loc == ip))
        )
        if allowed is not None:
            cont &= allowed[:, None]
        has_cont = cont.any(axis=1)
        base = (net_i * self.n) * self.PV + LOCAL_PORT * self.V
        nodes_c = np.flatnonzero(has_cont)
        if nodes_c.size:
            vcs = np.argmax(cont[nodes_c], axis=1)
            pk = ip[nodes_c, vcs]
            pushed = self.infl_pushed[k][nodes_c, vcs] + 1
            tl = pushed == self.pk_size[pk]
            dvc = base + nodes_c * self.PV + vcs
            self._accept_cont(dvc, tl)
            self.infl_pushed[k][nodes_c, vcs] = pushed
            if tl.any():
                self.infl_pkt[k][nodes_c[tl], vcs[tl]] = -1
            self.flits_injected_arr[k][nodes_c] += 1
        qk = self.queues[k]
        qlens = np.fromiter(map(len, qk), _I64, count=self.n)
        start = (~has_cont) & (qlens > 0)
        if allowed is not None:
            start &= allowed
        if not start.any():
            return has_cont
        free = (own_loc < 0) & (occ_loc < self.cap) & (ip < 0)
        vlo, vhi = self.vlo_k[k], self.vhi_k[k]
        if vlo > 0:
            free[:, :vlo] = False
        if vhi < self.V:
            free[:, vhi:] = False
        can = free.any(axis=1) & start
        nodes_s = np.flatnonzero(can)
        if nodes_s.size:
            vcs = np.argmax(free[nodes_s], axis=1)
            objs = [qk[node].popleft() for node in nodes_s.tolist()]
            idxs = self.register_many(objs)
            for pkt in objs:
                pkt.injected = cycle
            tl = self.pk_size[idxs] == 1
            dvc = base + nodes_s * self.PV + vcs
            self._accept_new(dvc, idxs, tl, cycle)
            multi = ~tl
            if multi.any():
                self.infl_pkt[k][nodes_s[multi], vcs[multi]] = idxs[multi]
                self.infl_pushed[k][nodes_s[multi], vcs[multi]] = 1
            self.flits_injected_arr[k][nodes_s] += 1
        return has_cont | can

    def _inject_scalar(self, cycle: int) -> None:
        """Reference-shaped per-node injection (any bandwidth)."""
        bw = self.bandwidth
        for node in range(self.n):
            if node in self._mem_set:
                continue
            if self.separate:
                for k in (0, 1):
                    self._inject_node_kind(node, k, cycle, bw)
            else:
                order = (1, 0) if cycle & 1 else (0, 1)
                budget = bw
                for k in order:
                    if budget <= 0:
                        break
                    budget -= self._inject_node_kind(node, k, cycle, budget)

    def _inject_node_kind(self, node: int, k: int, cycle: int, budget: int) -> int:
        net_i = self.net_of_kind[k]
        base = (net_i * self.n + node) * self.PV + LOCAL_PORT * self.V
        ip = self.infl_pkt[k][node]
        pushed_now = 0
        live = np.flatnonzero(ip >= 0)
        for vc in live.tolist():
            if budget <= 0:
                break
            f = base + vc
            p = int(ip[vc])
            if self.occ[f] >= self.cap:
                continue
            ow = int(self.owner[f])
            if ow >= 0 and ow != p:
                continue
            npushed = int(self.infl_pushed[k][node, vc]) + 1
            is_tail = npushed == int(self.pk_size[p])
            self.accept_one(f, p, is_tail, cycle)
            pushed_now += 1
            budget -= 1
            if is_tail:
                self.infl_pkt[k][node, vc] = -1
            else:
                self.infl_pushed[k][node, vc] = npushed
        dq = self.queues[k][node]
        while budget > 0 and dq:
            vc = -1
            for c in range(self.vlo_k[k], self.vhi_k[k]):
                if ip[c] >= 0:
                    continue
                f = base + c
                if self.owner[f] < 0 and self.occ[f] < self.cap:
                    vc = c
                    break
            if vc < 0:
                break
            pkt = dq.popleft()
            p = self.register(pkt)
            pkt.injected = cycle
            is_tail = pkt.size_flits == 1
            self.accept_one(base + vc, p, is_tail, cycle)
            pushed_now += 1
            budget -= 1
            if not is_tail:
                self.infl_pkt[k][node, vc] = p
                self.infl_pushed[k][node, vc] = 1
        if pushed_now:
            self.flits_injected_arr[k][node] += pushed_now
        return pushed_now

    # ------------------------------------------------------------------
    # one cycle
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        for _ in range(self.bandwidth):
            movers = self._decide(cycle)
            if movers is None:
                break
            self._commit(movers, cycle)
        if self.bandwidth == 1:
            if self.separate:
                self._inject_fused(cycle)
            else:
                order = (1, 0) if cycle & 1 else (0, 1)
                allowed = np.ones(self.n, dtype=bool)
                for k in order:
                    pushed = self._inject_kind(k, cycle, allowed)
                    allowed &= ~pushed
        else:
            self._inject_scalar(cycle)

    # ------------------------------------------------------------------
    # statistics helpers for the facades
    # ------------------------------------------------------------------

    def net_flits_routed(self, net_i: int) -> int:
        n = self.n
        return int(self.flits_routed[net_i * n:(net_i + 1) * n].sum())

    def net_buffered(self, net_i: int) -> int:
        n = self.n
        lo = net_i * n * self.PV
        return int(self.occ[lo:lo + n * self.PV].sum())

    def router_buffered(self, net_i: int, rid: int) -> int:
        lo = (net_i * self.n + rid) * self.PV
        return int(self.occ[lo:lo + self.PV].sum())

    def sync_packet_objects(self) -> None:
        """Write array-held packet state back to the Python objects."""
        for i, pkt in enumerate(self.pk_obj):
            if pkt is not None:
                pkt.hops = int(self.pk_hops[i])
