"""Struct-of-arrays batch simulation backend (``backend="vector"``).

The vector backend keeps all flit, VC, credit, link and reply-buffer
state in preallocated numpy integer arrays and advances the whole NoC in
batch per-cycle array operations, replacing per-object ``step()``
dispatch on the router/NIC hot path.  It implements the synchronous
two-phase (decide-then-commit) semantics of the object kernel's oracle
mode (``NocFabric.set_sync_stepping``) and is pinned bit-identical to it
by ``tests/test_vector_kernel.py``.  See DESIGN.md §12 for the memory
layout and the batch step order.
"""

from repro.sim.vector.fabric import VectorFabric

__all__ = ["VectorFabric"]
