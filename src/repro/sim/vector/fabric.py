"""Facades wrapping :class:`~repro.sim.vector.kernel.VectorKernel`.

The vector backend keeps all hot-path state in the kernel's numpy arrays;
everything in this module is a thin object-shaped view over those arrays
so the rest of the tree (metrics collection, the fault controller, memory
nodes, cores) talks to the vector backend through the exact surface
:class:`~repro.noc.network.NocFabric` exposes:

* :class:`VectorFabric` — drop-in for ``NocFabric`` (built by the
  ``engines`` registry for ``backend="vector"``),
* :class:`VectorNet` — drop-in for ``PhysicalNetwork`` statistics and
  fault-controller surfaces,
* :class:`VectorNic` — compute-node NIC whose injection runs inside the
  kernel's batched step; its counters are views into kernel arrays,
* :class:`_VecMemNic` — a real :class:`~repro.noc.nic.MemoryNodeNic`
  (priority reply scheduling and delegation are reused verbatim) injecting
  through a per-node :class:`_RouterView` bridge into the arrays.

Features the arrays do not model fail fast with a one-line
:class:`~repro.sim.engines.BackendError` (telemetry, adaptive routing;
the ``engines`` check layer additionally rejects non-loss fault plans).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.config.system import NocConfig
from repro.noc.nic import MemoryNodeNic
from repro.noc.packet import NetKind, Packet
from repro.noc.router import LOCAL_PORT
from repro.noc.routing import build_routing
from repro.noc.topology import BaseTopology
from repro.sim.engines import BackendError
from repro.sim.vector.kernel import VectorKernel


class _KindCounter:
    """Read-only ``{NetKind: int}`` view over a ``(2, n)`` counter array."""

    __slots__ = ("_arr", "_node")

    def __init__(self, arr, node: int) -> None:
        self._arr = arr
        self._node = node

    def __getitem__(self, kind) -> int:
        return int(self._arr[int(kind), self._node])


class _ListCounter:
    """Read-only ``{NetKind: int}`` view over a plain two-slot list."""

    __slots__ = ("_l",)

    def __init__(self, l: List[int]) -> None:
        self._l = l

    def __getitem__(self, kind) -> int:
        return self._l[int(kind)]


class _ClsCounter:
    """Read-only ``{TrafficClass: int}`` view over a ``(2, n)`` array."""

    __slots__ = ("_arr", "_node")

    def __init__(self, arr, node: int) -> None:
        self._arr = arr
        self._node = node

    def __getitem__(self, cls) -> int:
        return int(self._arr[int(cls), self._node])


class _OwnerRow:
    """``router.owner[LOCAL_PORT]`` shaped view: index -> Packet | None."""

    __slots__ = ("_K", "_base")

    def __init__(self, kernel: VectorKernel, base: int) -> None:
        self._K = kernel
        self._base = base

    def __getitem__(self, vc: int) -> Optional[Packet]:
        i = self._K.owner[self._base + vc]
        return self._K.pk_obj[i] if i >= 0 else None


class _RouterView:
    """Local-port injection surface of one router, bridging the object
    NIC code (memory nodes) onto the kernel arrays.

    Only the members :meth:`~repro.noc.nic.NodeInterface._inject_net` and
    ``_pick_vc`` touch are provided: ``occ[LOCAL_PORT]`` /
    ``owner[LOCAL_PORT]`` rows, ``vc_cap`` and ``accept_flit``.
    """

    __slots__ = ("_K", "_base", "occ", "owner", "vc_cap")

    def __init__(self, kernel: VectorKernel, net_i: int, node: int) -> None:
        self._K = kernel
        row = net_i * kernel.n + node
        base = row * kernel.PV + LOCAL_PORT * kernel.V
        self._base = base
        occ3 = kernel.occ.reshape(kernel.R, kernel.P, kernel.V)
        self.occ = [occ3[row, LOCAL_PORT]]
        self.owner = [_OwnerRow(kernel, base)]
        self.vc_cap = kernel.cap

    def accept_flit(
        self, port: int, vc: int, pkt: Packet, is_tail: bool, cycle: int
    ) -> None:
        K = self._K
        K.accept_one(self._base + vc, K.mem_index_of(pkt), is_tail, cycle)


class _RouterStats:
    """Per-router statistics view (fault watchdog, analysis helpers)."""

    __slots__ = ("_K", "_row", "rid")

    def __init__(self, kernel: VectorKernel, net_i: int, rid: int) -> None:
        self._K = kernel
        self._row = net_i * kernel.n + rid
        self.rid = rid

    @property
    def flits_routed(self) -> int:
        return int(self._K.flits_routed[self._row])

    def buffered_flits(self) -> int:
        K = self._K
        lo = self._row * K.PV
        return int(K.occ[lo:lo + K.PV].sum())

    @property
    def active(self) -> bool:
        return self.buffered_flits() > 0


class VectorNet:
    """``PhysicalNetwork``-shaped statistics/fault surface of one net."""

    def __init__(self, name: str, kernel: VectorKernel, net_i: int) -> None:
        self.name = name
        self._K = kernel
        self._net_i = net_i
        self.topology = kernel.topology
        self.cfg = kernel.cfg
        self.vcs = kernel.V
        self.bandwidth = kernel.bandwidth
        self.telemetry = None
        self.stall_tel = None
        #: assigned by the fault controller on install (same contract as
        #: PhysicalNetwork: default empty/falsy keeps hot-path checks cheap)
        self.faults = None
        self.fault_down: frozenset = frozenset()
        self.fault_frozen: frozenset = frozenset()
        self.full_scan = False
        self._port_of = kernel.port_of
        self.packets_delivered = 0
        self.flits_delivered = 0
        self.cycles = 0
        self.delivered_by_type: Dict[int, int] = {}
        self.routers = [
            _RouterStats(kernel, net_i, rid) for rid in range(kernel.n)
        ]

    def mark_router_active(self, rid: int) -> None:
        pass  # no active-set scheduler: every router is stepped in batch

    def total_flits_routed(self) -> int:
        return self._K.net_flits_routed(self._net_i)

    def buffered_flits(self) -> int:
        return self._K.net_buffered(self._net_i)

    @property
    def link_flits(self) -> List[List[int]]:
        """Per-link flit counts, ``[rid][oport]`` shaped like the object
        kernel's (materialised from the kernel's flat group array)."""
        K = self._K
        base = self._net_i * K.n
        out = []
        for rid in range(K.n):
            g0 = (base + rid) * K.P
            nports = 1 + len(self._port_of[rid])
            out.append([int(K.link_flits[g0 + p]) for p in range(nports)])
        return out

    def link_utilization(self, rid: int, oport: int) -> float:
        if self.cycles == 0:
            return 0.0
        K = self._K
        g = (self._net_i * K.n + rid) * K.P + oport
        return int(K.link_flits[g]) / (self.cycles * self.bandwidth)

    def utilization_of_links_into(self, rid: int) -> List[float]:
        out = []
        for nb, _port in self._port_of[rid].items():
            towards = self._port_of[nb][rid]
            out.append(self.link_utilization(nb, towards))
        return out


class VectorNic:
    """Compute-node NIC of the vector backend.

    ``try_send`` appends to a per-(kind, node) queue the kernel drains in
    its batched injection step; every counter the rest of the tree reads
    is a view into the kernel's arrays.
    """

    __slots__ = (
        "node_id",
        "_K",
        "queue_packets",
        "handler",
        "telemetry",
        "stall_tel",
        "fault_guard",
        "_eject_gate_fn",
        "_queues",
        "_sent",
        "flits_injected_net",
        "packets_sent_net",
        "flits_received",
    )

    def __init__(
        self, node_id: int, kernel: VectorKernel, queue_packets: int
    ) -> None:
        self.node_id = node_id
        self._K = kernel
        self.queue_packets = queue_packets
        self.handler: Optional[Callable[[Packet, int], None]] = None
        self.telemetry = None
        self.stall_tel = None
        self.fault_guard = None
        self._eject_gate_fn: Optional[Callable[[Packet], bool]] = None
        self._queues = (
            kernel.queues[0][node_id],
            kernel.queues[1][node_id],
        )
        self._sent = [0, 0]
        self.flits_injected_net = _KindCounter(
            kernel.flits_injected_arr, node_id
        )
        self.packets_sent_net = _ListCounter(self._sent)
        self.flits_received = _ClsCounter(kernel.flits_rx_arr, node_id)

    # -- endpoint-facing API -------------------------------------------

    def can_enqueue(self, net: NetKind) -> bool:
        return len(self._queues[int(net)]) < self.queue_packets

    def try_send(self, pkt: Packet, cycle: int) -> bool:
        k = pkt.net
        dq = self._queues[k]
        if len(dq) >= self.queue_packets:
            return False
        if pkt.created < 0:
            pkt.created = cycle
        dq.append(pkt)
        self._sent[k] += 1
        if self.fault_guard is not None:
            self.fault_guard.on_send(self.node_id, pkt, cycle)
        return True

    # -- ejection -------------------------------------------------------

    @property
    def eject_gate(self) -> Optional[Callable[[Packet], bool]]:
        return self._eject_gate_fn

    @eject_gate.setter
    def eject_gate(self, fn: Optional[Callable[[Packet], bool]]) -> None:
        self._eject_gate_fn = fn
        if fn is None:
            self._K.gate_nodes.pop(self.node_id, None)
        else:
            self._K.gate_nodes[self.node_id] = fn

    def can_eject(self, pkt: Packet) -> bool:
        gate = self._eject_gate_fn
        if gate is not None:
            return gate(pkt)
        return True

    def notify_eject_ready(self) -> None:
        pass  # gates are re-evaluated every pass; nothing sleeps on them

    def deliver(self, pkt: Packet, cycle: int) -> None:
        if self.fault_guard is not None:
            self.fault_guard.on_deliver(self.node_id, pkt, cycle)
        K = self._K
        K.flits_rx_arr[int(pkt.cls), self.node_id] += pkt.size_flits
        if pkt.size_flits > 1:
            K.data_rx_arr[self.node_id] += pkt.size_flits - 1
        if self.handler is not None:
            self.handler(pkt, cycle)

    # -- counters -------------------------------------------------------

    @property
    def flits_injected(self) -> int:
        return int(self._K.flits_injected_arr[:, self.node_id].sum())

    @property
    def data_flits_received(self) -> int:
        return int(self._K.data_rx_arr[self.node_id])


class _VecMemNic(MemoryNodeNic):
    """Memory-node NIC on the vector backend.

    Priority reply scheduling, the flit-bounded reply buffer and the
    delegation hook are inherited verbatim; injection flows through the
    fabric's :class:`_RouterView` bridge into the kernel arrays.  Only the
    ejection gate needs kernel awareness (the batch step consults a
    per-node gate registry instead of calling into sleeping routers).
    """

    def __init__(
        self,
        node_id: int,
        fabric: "VectorFabric",
        queue_packets: int,
        reply_buffer_flits: int,
        kernel: VectorKernel,
    ) -> None:
        super().__init__(node_id, fabric, queue_packets, reply_buffer_flits)
        self._K = kernel

    @property
    def eject_gate(self) -> Optional[Callable[[Packet], bool]]:
        return self._eject_gate_fn

    @eject_gate.setter
    def eject_gate(self, fn: Optional[Callable[[Packet], bool]]) -> None:
        self._eject_gate_fn = fn
        if fn is None:
            self._K.gate_nodes.pop(self.node_id, None)
        else:
            self._K.gate_nodes[self.node_id] = fn


class VectorFabric:
    """Drop-in for :class:`~repro.noc.network.NocFabric` backed by the
    struct-of-arrays kernel (DESIGN.md §12)."""

    def __init__(
        self,
        topology: BaseTopology,
        cfg: NocConfig,
        mem_nodes: Tuple[int, ...] = (),
    ) -> None:
        self.topology = topology
        self.cfg = cfg
        self.separate_networks = cfg.separate_physical_networks
        self.bandwidth = max(1, round(cfg.bandwidth_factor))
        routing = build_routing(topology, cfg)
        if routing.adaptive:
            raise BackendError(
                "backend 'vector' does not support adaptive routing "
                f"({cfg.routing!r}); use backend='object'"
            )
        self.routing = routing
        facades: List[VectorNet] = []
        kernel = VectorKernel(
            topology, cfg, mem_nodes, facades, self.separate_networks
        )
        self.kernel = kernel
        if self.separate_networks:
            facades.append(VectorNet("request", kernel, 0))
            facades.append(VectorNet("reply", kernel, 1))
            self.request_net, self.reply_net = facades
        else:
            shared = VectorNet("shared", kernel, 0)
            facades.append(shared)
            self.request_net = self.reply_net = shared
        self._net_list: Tuple[VectorNet, ...] = tuple(facades)
        mem_set = set(mem_nodes)
        self.nics: List = []
        for node in range(topology.n):
            if node in mem_set:
                nic = _VecMemNic(
                    node,
                    self,
                    cfg.node_injection_queue_packets,
                    cfg.mem_injection_buffer_flits,
                    kernel,
                )
            else:
                nic = VectorNic(
                    node, kernel, cfg.node_injection_queue_packets
                )
            self.nics.append(nic)
        kernel.nics = self.nics
        kernel.fabric = self
        #: per-(kind, mem node) injection bridges for router_for
        self._rviews: Dict[Tuple[int, int], _RouterView] = {}
        for node in mem_set:
            for kind in (0, 1):
                net_i = kernel.net_of_kind[kind]
                self._rviews[(kind, node)] = _RouterView(kernel, net_i, node)
        self.full_scan = False
        self.telemetry = None
        self.faults = None

    # -- telemetry ------------------------------------------------------

    def attach_telemetry(self, collector) -> None:
        raise BackendError(
            "backend 'vector' does not support telemetry; "
            "use backend='object' for traced runs"
        )

    def detach_telemetry(self) -> None:
        pass  # nothing was ever attached

    # -- endpoint API ---------------------------------------------------

    def nic(self, node: int):
        return self.nics[node]

    def router_for(self, node: int, net: NetKind) -> _RouterView:
        view = self._rviews.get((int(net), node))
        if view is None:
            # compute nodes inject inside the kernel; a bridge view is
            # only pre-built for memory nodes.  Build on demand for any
            # other caller (tests, analysis helpers).
            net_i = self.kernel.net_of_kind[int(net)]
            view = _RouterView(self.kernel, net_i, node)
            self._rviews[(int(net), node)] = view
        return view

    def vc_range_for(self, pkt: Packet) -> Tuple[int, int]:
        k = int(pkt.net)
        return (self.kernel.vlo_k[k], self.kernel.vhi_k[k])

    # -- simulation -----------------------------------------------------

    def mark_nic_active(self, node: int) -> None:
        pass  # every queue is visible to the batched injection step

    def wake_node_routers(self, node: int) -> None:
        pass  # gates are re-evaluated every pass

    def step(self, cycle: int) -> None:
        for net in self._net_list:
            net.cycles += 1
        self.kernel.step(cycle)
        # memory-node NICs run the inherited object-kernel scheduler and
        # delegation logic; ascending node order matches the oracle (all
        # other NICs' injection is node-disjoint and creates no pids, so
        # batching compute injection first is order-equivalent)
        nics = self.nics
        for node in self.kernel.mem_nodes:
            nics[node].inject_step(cycle)

    def in_flight_flits(self) -> int:
        return int(self.kernel.occ.sum())

    def memory_blocking_rates(self) -> Dict[int, float]:
        return {
            nic.node_id: nic.blocking_rate
            for nic in self.nics
            if isinstance(nic, MemoryNodeNic)
        }
