"""Backend-selection layer: the simulation-engine registry.

``repro.api.simulate()`` (and every CLI behind it) picks a *backend* — an
implementation of the NoC fabric's per-cycle kernel:

``object``
    The per-object reference kernel (:class:`repro.noc.network.NocFabric`):
    Python routers/NICs stepped by the active-set scheduler.  Supports
    everything (telemetry, adaptive routing, every fault plan) and is the
    oracle the fast path is validated against.

``vector``
    The struct-of-arrays batch kernel
    (:class:`repro.sim.vector.fabric.VectorFabric`): flit/VC/credit/link
    state in preallocated numpy arrays, the whole network advanced in
    batch per-cycle array ops.  ~10x the object kernel on saturated
    meshes; validated bit-identical to the object kernel's synchronous
    oracle mode (see DESIGN.md §12).  Unsupported features fail fast with
    a one-line :class:`BackendError` instead of silently diverging.

The registry is deliberately tiny: a name → (build, check) table plus the
three helpers the rest of the tree uses.  ``resolve_backend(None)`` honours
the ``REPRO_BACKEND`` environment variable so whole pipelines can be
switched without touching call sites.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

#: environment variable consulted when no explicit backend is passed.
ENV_VAR = "REPRO_BACKEND"

#: the backend used when neither the caller nor the environment chose one.
DEFAULT_BACKEND = "object"


class BackendError(ValueError):
    """Unknown or unusable simulation backend.

    The message is always a single line, suitable for the CLIs' shared
    ``error: <message>`` exit convention.
    """


# -- engine implementations -------------------------------------------------


def _build_object(topology, noc_cfg, mem_nodes):
    from repro.noc.network import NocFabric

    return NocFabric(topology, noc_cfg, mem_nodes=mem_nodes)


def _check_object(telemetry_enabled: bool, faults) -> None:
    return None  # the reference kernel supports everything


def _build_vector(topology, noc_cfg, mem_nodes):
    from repro.sim.vector.fabric import VectorFabric

    return VectorFabric(topology, noc_cfg, mem_nodes=mem_nodes)


def _check_vector(telemetry_enabled: bool, faults) -> None:
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy ships with the toolchain
        raise BackendError(
            "backend 'vector' requires numpy, which is not installed; "
            "use backend='object'"
        ) from None
    if telemetry_enabled:
        raise BackendError(
            "backend 'vector' does not support telemetry; "
            "use backend='object' for traced runs"
        )
    if faults is not None:
        for ev in faults.events:
            if ev.kind not in ("flit_drop", "flit_corrupt"):
                raise BackendError(
                    f"backend 'vector' does not support fault event "
                    f"'{ev.kind}'; use backend='object' for "
                    f"link-down/router-freeze plans"
                )


#: name -> {"build": (topology, noc_cfg, mem_nodes) -> fabric,
#:          "check": (telemetry_enabled, faults) -> None | raises}
_ENGINES: Dict[str, Dict[str, Callable]] = {
    "object": {"build": _build_object, "check": _check_object},
    "vector": {"build": _build_vector, "check": _check_vector},
}


# -- public helpers ---------------------------------------------------------


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_ENGINES))


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend name: explicit > ``$REPRO_BACKEND`` > default.

    Raises :class:`BackendError` (one line) for unknown names.
    """
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if name not in _ENGINES:
        raise BackendError(
            f"unknown backend {name!r} "
            f"(available: {', '.join(available_backends())})"
        )
    return name


def validate_backend(
    name: Optional[str] = None,
    *,
    telemetry: bool = False,
    faults=None,
) -> str:
    """Resolve ``name`` and check it supports the requested features."""
    name = resolve_backend(name)
    _ENGINES[name]["check"](telemetry, faults)
    return name


def build_fabric(name: Optional[str], topology, noc_cfg, mem_nodes=()):
    """Construct the fabric for ``name`` (resolving env/default)."""
    name = resolve_backend(name)
    return _ENGINES[name]["build"](topology, noc_cfg, tuple(mem_nodes))
