"""Top-level simulation driver.

``run_simulation`` builds a :class:`HeterogeneousSystem` for one workload
mix, runs a warmup window (caches fill, the NoC reaches steady-state
congestion), snapshots all counters, runs the measured window, and derives
a :class:`SimulationResult` from the difference.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config.system import SystemConfig
from repro.faults.plan import FaultPlan
from repro.sim.metrics import (
    SimulationResult,
    collect_counters,
    derive_result,
    diff_counters,
)
from repro.sim.system import HeterogeneousSystem
from repro.workloads.cpu import CpuBenchmarkProfile, cpu_benchmark
from repro.workloads.gpu import GpuBenchmarkProfile, gpu_benchmark

GpuSpec = Union[str, GpuBenchmarkProfile]
CpuSpec = Union[str, CpuBenchmarkProfile]


def _resolve_gpu(spec: GpuSpec) -> GpuBenchmarkProfile:
    return gpu_benchmark(spec) if isinstance(spec, str) else spec


def _resolve_cpu(spec: Optional[CpuSpec]) -> Optional[CpuBenchmarkProfile]:
    if spec is None:
        return None
    return cpu_benchmark(spec) if isinstance(spec, str) else spec


def build_system(
    cfg: SystemConfig,
    gpu: GpuSpec,
    cpu: Optional[CpuSpec] = None,
    kernel_flush_interval: int = 0,
    faults: Optional[FaultPlan] = None,
    backend: Optional[str] = None,
) -> HeterogeneousSystem:
    """Construct (but do not run) the system for a workload mix."""
    return HeterogeneousSystem(
        cfg,
        _resolve_gpu(gpu),
        _resolve_cpu(cpu),
        kernel_flush_interval=kernel_flush_interval,
        faults=faults,
        backend=backend,
    )


def run_simulation(
    cfg: SystemConfig,
    gpu: GpuSpec,
    cpu: Optional[CpuSpec] = None,
    cycles: int = 20_000,
    warmup: int = 2_000,
    kernel_flush_interval: int = 0,
    system: Optional[HeterogeneousSystem] = None,
    faults: Optional[FaultPlan] = None,
    backend: Optional[str] = None,
) -> SimulationResult:
    """Simulate one workload mix and return its steady-state metrics.

    Args:
        cfg: complete system configuration.
        gpu: GPU benchmark name (Table II) or profile.
        cpu: optional CPU benchmark name or profile (all 16 CPU cores run
            it, as in the paper's workload construction).
        cycles: measured-window length in cycles.
        warmup: cycles simulated before measurement starts.
        kernel_flush_interval: if nonzero, flush GPU L1s and LLC core
            pointers every N cycles (software-coherence kernel boundaries).
        system: reuse a pre-built system (advanced; ``cfg``/workload
            arguments are ignored for construction then).
        faults: optional :class:`~repro.faults.plan.FaultPlan` installing
            the fault-injection layer (see :mod:`repro.faults`).
        backend: simulation engine name (``"object"`` | ``"vector"``;
            see :mod:`repro.sim.engines`).  ``None`` honours
            ``$REPRO_BACKEND`` and defaults to ``"object"``.
    """
    if system is None:
        system = build_system(
            cfg, gpu, cpu, kernel_flush_interval, faults, backend=backend
        )
    system.run(warmup)
    baseline = collect_counters(system)
    if system.telemetry is not None:
        # align the stall-attribution window with the measured window
        system.telemetry.mark_window_start(system.cycle)
    system.run(cycles)
    window = diff_counters(collect_counters(system), baseline)
    if system.telemetry is not None:
        # flush open clogging episodes, write histogram/summary records
        # and close the trace sink
        system.telemetry.finalize(system.cycle)
    return derive_result(system, window)
