"""Metrics: counter snapshots, warmup subtraction and derived results.

Every experiment in the paper reports steady-state rates and ratios.  The
simulator therefore snapshots all raw counters at the end of warmup and
derives results from the *difference* between the final and warmup
snapshots — the measured window only.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.noc.packet import MessageType, NetKind
from repro.sim.system import HeterogeneousSystem
from repro.telemetry.hist import LogHistogram


def _flatten_hist(c: Dict[str, float], prefix: str, buckets: Dict[int, int]) -> None:
    """Write sparse histogram buckets as ``<prefix><idx>`` counter keys.

    Buckets are monotonically increasing counts, so window diffing
    (:func:`diff_counters`) subtracts them bucket-wise like any other
    counter; :func:`_window_hist` rebuilds a histogram from the diff.
    """
    for idx in sorted(buckets):
        c[f"{prefix}{idx}"] = buckets[idx]


def _window_hist(window: Dict[str, float], prefix: str) -> LogHistogram:
    """Rebuild a latency histogram from diffed ``<prefix><idx>`` keys."""
    sparse = {
        int(k[len(prefix):]): int(v)
        for k, v in window.items()
        if k.startswith(prefix)
    }
    return LogHistogram.from_sparse(sparse)


def collect_counters(system: HeterogeneousSystem) -> Dict[str, float]:
    """Flatten every raw counter of the system into one dict."""
    c: Dict[str, float] = {"cycle": system.cycle}

    # GPU cores
    agg = {
        "insts": 0, "mem_ops": 0, "reads": 0, "writes": 0,
        "l1_hit_ops": 0, "l1_miss_ops": 0, "secondary_misses": 0,
        "llc_replies": 0, "c2c_replies": 0,
        "frq_remote_hits": 0, "frq_delayed_hits": 0, "frq_remote_misses": 0,
        "frq_timeout_dnfs": 0, "frq_merged": 0,
        "probes_received": 0, "probe_hits_served": 0, "issue_stalls": 0,
    }
    gpu_data_flits = 0
    gpu_reply_flits = 0
    gpu_hist: Dict[int, int] = {}
    for core in system.gpu_cores:
        s = core.stats
        for k in agg:
            agg[k] += getattr(s, k)
        for idx, n in s.lat_hist.buckets.items():
            gpu_hist[idx] = gpu_hist.get(idx, 0) + n
        nic = core.nic
        gpu_data_flits += nic.data_flits_received
        gpu_reply_flits += nic.flits_received[1]  # GPU-class flits
    for k, v in agg.items():
        c[f"gpu.{k}"] = v
    _flatten_hist(c, "gpu.lat_hist.", gpu_hist)
    c["gpu.data_flits"] = gpu_data_flits
    c["gpu.frq_merge_opportunities"] = sum(
        core.frq.merge_opportunities for core in system.gpu_cores
    )
    c["gpu.frq_enqueued"] = sum(
        core.frq.total_enqueued for core in system.gpu_cores
    )
    probe_stats = [
        core.probe.stats for core in system.gpu_cores if core.probe is not None
    ]
    c["rp.probes_sent"] = sum(p.probes_sent for p in probe_stats)
    c["rp.probe_hits"] = sum(p.probe_hits for p in probe_stats)
    c["rp.probe_nacks"] = sum(p.probe_nacks for p in probe_stats)
    c["rp.fallbacks"] = sum(p.fallbacks for p in probe_stats)

    # CPU cores
    for name in ("insts", "mem_ops", "l1_hits", "l1_misses", "stall_cycles",
                 "replies", "total_latency"):
        c[f"cpu.{name}"] = sum(
            getattr(core.stats, name) for core in system.cpu_cores
        )
    cpu_hist: Dict[int, int] = {}
    for core in system.cpu_cores:
        for idx, n in core.stats.lat_hist.buckets.items():
            cpu_hist[idx] = cpu_hist.get(idx, 0) + n
    _flatten_hist(c, "cpu.lat_hist.", cpu_hist)

    # memory nodes
    c["mem.blocked_cycles"] = 0
    c["mem.observed_cycles"] = 0
    c["mem.delegations"] = 0
    for name in ("requests", "gpu_reads", "cpu_reads", "writes",
                 "dnf_requests", "replies_sent", "delegatable_replies"):
        c[f"mem.{name}"] = sum(
            getattr(m.stats, name) for m in system.memory_nodes
        )
    c["llc.hits"] = sum(m.llc.stats.hits for m in system.memory_nodes)
    c["llc.misses"] = sum(m.llc.stats.misses for m in system.memory_nodes)
    c["llc.stalled"] = sum(m.llc.stats.stalled_cycles for m in system.memory_nodes)
    c["dram.served"] = sum(m.controller.served for m in system.memory_nodes)
    c["dram.row_hits"] = sum(m.controller.row_hits for m in system.memory_nodes)
    mem_reply_flits = 0
    for m in system.memory_nodes:
        nic = m.nic
        c["mem.blocked_cycles"] += nic.blocked_cycles
        c["mem.observed_cycles"] += nic.observed_cycles
        c["mem.delegations"] += nic.delegations
        mem_reply_flits += nic.flits_injected_net[NetKind.REPLY]
    c["mem.reply_flits_injected"] = mem_reply_flits

    # NoC
    req_net = system.fabric.request_net
    rep_net = system.fabric.reply_net
    c["noc.req_flits_routed"] = req_net.total_flits_routed()
    c["noc.rep_flits_routed"] = rep_net.total_flits_routed()
    c["noc.req_packets"] = sum(
        nic.packets_sent_net[NetKind.REQUEST] for nic in system.fabric.nics
    )
    c["noc.rep_packets"] = sum(
        nic.packets_sent_net[NetKind.REPLY] for nic in system.fabric.nics
    )
    for net, prefix in ((req_net, "req"), (rep_net, "rep")):
        for mt in MessageType:
            n = net.delivered_by_type.get(int(mt), 0)
            if n:
                c[f"noc.{prefix}.{mt.name}"] = n

    # fault injection (keys exist only when a fault plan is installed, so
    # plain runs' counter dicts stay bit-identical)
    fc = system.faults
    if fc is not None:
        c["fault.drops"] = fc.drops
        c["fault.corrupts"] = fc.corrupts
        c["fault.discarded"] = fc.discarded
        c["fault.retransmits"] = fc.retransmits
        c["fault.fallback_dnfs"] = fc.fallback_dnfs
        c["fault.recovered"] = fc.recovered
        c["fault.lost"] = fc.lost
        c["fault.watchdog_fires"] = fc.watchdog_fires
        c["fault.links_downed"] = fc.links_downed
    return c


def diff_counters(
    end: Dict[str, float], start: Optional[Dict[str, float]]
) -> Dict[str, float]:
    if start is None:
        return dict(end)
    return {k: end[k] - start.get(k, 0.0) for k in end}


@dataclass
class SimulationResult:
    """Derived steady-state metrics for one simulation window."""

    cycles: int
    counters: Dict[str, float] = field(repr=False, default_factory=dict)
    n_gpu: int = 0
    n_cpu: int = 0
    n_mem: int = 0

    # headline metrics
    gpu_ipc: float = 0.0
    cpu_ipc: float = 0.0
    cpu_latency_avg: float = 0.0
    # reply-latency percentiles from the windowed log-bucketed histograms
    # (bucket-midpoint values, relative error <= 2^-sub_bits)
    cpu_latency_p50: float = 0.0
    cpu_latency_p95: float = 0.0
    cpu_latency_p99: float = 0.0
    gpu_latency_p50: float = 0.0
    gpu_latency_p95: float = 0.0
    gpu_latency_p99: float = 0.0
    gpu_data_rate: float = 0.0          # data flits / cycle / GPU core
    mem_blocking_rate: float = 0.0
    mem_reply_link_utilization: float = 0.0
    l1_miss_rate: float = 0.0
    remote_hit_fraction: float = 0.0    # of delegated requests
    delegated_fraction: float = 0.0     # of L1 read misses
    noc_request_packets: float = 0.0
    # fault injection (all zero unless a FaultPlan was installed)
    fault_retransmits: float = 0.0
    fault_lost: float = 0.0
    fault_recovery_p50: float = 0.0
    fault_recovery_p99: float = 0.0
    #: measured-window stall attribution (telemetry only): victim group
    #: ("CPU" | "GPU" | "mem") -> {stall class: blocked head-worm cycles}.
    #: Empty when telemetry or stall attribution is disabled — kept out of
    #: ``counters`` so traced and untraced runs stay bit-identical there.
    stall_breakdown: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: telemetry metrics-registry snapshot (event counts, windows, clog
    #: episodes, flight dumps, plus anything subsystems registered).
    #: Empty when telemetry is disabled — kept out of ``counters`` for
    #: the same bit-identity reason as ``stall_breakdown``.
    telemetry_metrics: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-compatible dict of every field (for the sweep result cache).

        The encoding is lossless: ints stay ints, floats round-trip exactly
        through ``json`` (repr-based), so ``from_dict(to_dict())`` rebuilds a
        bit-identical result.
        """
        return {
            f.name: (dict(self.counters) if f.name == "counters"
                     else getattr(self, f.name))
            for f in dataclasses.fields(self)
        }

    #: legacy field name -> current name; applied by :meth:`from_dict` so
    #: cached sweep results and JSON manifests written by older code still
    #: load (extend this table on any future field rename).
    _FIELD_RENAMES = {
        "cpu_avg_latency": "cpu_latency_avg",
    }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        """Rebuild from :meth:`to_dict` output.

        Renamed fields are mapped through :attr:`_FIELD_RENAMES` (current
        spellings win when both appear); unknown keys are ignored so cached
        sweep results written by newer code (with extra fields) still load;
        missing fields fall back to their dataclass defaults.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        out = {k: v for k, v in data.items() if k in names}
        for old, new in cls._FIELD_RENAMES.items():
            if old in data and new not in out:
                out[new] = data[old]
        return cls(**out)

    @property
    def cpu_avg_latency(self) -> float:
        """Deprecated alias of :attr:`cpu_latency_avg`."""
        return self.cpu_latency_avg

    @property
    def llc_direct_fraction(self) -> float:
        return max(0.0, 1.0 - self.delegated_fraction)

    def miss_breakdown(self) -> Dict[str, float]:
        """Fig. 14 categories as fractions of L1 read misses."""
        served = (
            self.counters.get("gpu.frq_remote_hits", 0)
            + self.counters.get("gpu.frq_delayed_hits", 0)
            + self.counters.get("gpu.frq_remote_misses", 0)
        )
        primary = max(
            1.0,
            self.counters.get("gpu.llc_replies", 0)
            + self.counters.get("gpu.c2c_replies", 0),
        )
        remote_hit = (
            self.counters.get("gpu.frq_remote_hits", 0)
            + self.counters.get("gpu.frq_delayed_hits", 0)
        )
        remote_miss = self.counters.get("gpu.frq_remote_misses", 0)
        return {
            "llc": max(0.0, 1.0 - served / primary),
            "remote_hit": remote_hit / primary,
            "remote_miss": remote_miss / primary,
        }


def derive_result(system: HeterogeneousSystem, window: Dict[str, float]) -> SimulationResult:
    cycles = max(1, int(window["cycle"]))
    cfg = system.cfg
    res = SimulationResult(
        cycles=cycles,
        counters=window,
        n_gpu=cfg.n_gpu,
        n_cpu=cfg.n_cpu,
        n_mem=cfg.n_mem,
    )
    res.gpu_ipc = window.get("gpu.insts", 0) / cycles / max(1, cfg.n_gpu)
    if system.cpu_cores:
        res.cpu_ipc = window.get("cpu.insts", 0) / cycles / len(system.cpu_cores)
        replies = window.get("cpu.replies", 0)
        res.cpu_latency_avg = (
            window.get("cpu.total_latency", 0) / replies if replies else 0.0
        )
        cpu_hist = _window_hist(window, "cpu.lat_hist.")
        if cpu_hist.count:
            res.cpu_latency_p50 = cpu_hist.percentile(50)
            res.cpu_latency_p95 = cpu_hist.percentile(95)
            res.cpu_latency_p99 = cpu_hist.percentile(99)
    gpu_hist = _window_hist(window, "gpu.lat_hist.")
    if gpu_hist.count:
        res.gpu_latency_p50 = gpu_hist.percentile(50)
        res.gpu_latency_p95 = gpu_hist.percentile(95)
        res.gpu_latency_p99 = gpu_hist.percentile(99)
    res.gpu_data_rate = window.get("gpu.data_flits", 0) / cycles / max(1, cfg.n_gpu)
    observed = window.get("mem.observed_cycles", 0)
    res.mem_blocking_rate = (
        window.get("mem.blocked_cycles", 0) / observed if observed else 0.0
    )
    bw = max(1, round(cfg.noc.bandwidth_factor))
    res.mem_reply_link_utilization = window.get(
        "mem.reply_flits_injected", 0
    ) / (cycles * max(1, cfg.n_mem) * bw)
    reads = window.get("gpu.reads", 0)
    res.l1_miss_rate = (
        window.get("gpu.l1_miss_ops", 0) / reads if reads else 0.0
    )
    # Fig. 14 denominator: primary L1 misses, i.e. requests that produced a
    # data reply (one per transaction, from the LLC or a remote core)
    primary = window.get("gpu.llc_replies", 0) + window.get("gpu.c2c_replies", 0)
    delegations = window.get("mem.delegations", 0)
    res.delegated_fraction = delegations / primary if primary else 0.0
    served = (
        window.get("gpu.frq_remote_hits", 0)
        + window.get("gpu.frq_delayed_hits", 0)
        + window.get("gpu.frq_remote_misses", 0)
    )
    remote_ok = window.get("gpu.frq_remote_hits", 0) + window.get(
        "gpu.frq_delayed_hits", 0
    )
    res.remote_hit_fraction = remote_ok / served if served else 0.0
    res.noc_request_packets = window.get("noc.req_packets", 0)
    fc = system.faults
    if fc is not None:
        res.fault_retransmits = window.get("fault.retransmits", 0)
        res.fault_lost = window.get("fault.lost", 0)
        # recovery-time percentiles cover the whole run (recoveries are
        # rare events; a warmup-only split would usually be empty)
        res.fault_recovery_p50 = fc.recovery_percentile(50)
        res.fault_recovery_p99 = fc.recovery_percentile(99)
    if system.telemetry is not None:
        res.stall_breakdown = system.telemetry.stall_breakdown()
        res.telemetry_metrics = system.telemetry.metrics_snapshot()
    return res
