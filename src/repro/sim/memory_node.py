"""Memory-node endpoint: LLC slice + memory controller behind one NIC.

The memory node ejects requests from the request network (gated on LLC
input-queue space — a blocked memory node refuses requests, which is the
back-pressure loop of Figure 3), looks them up in its LLC slice, fetches
misses from its GDDR5 controller, and posts replies into the NIC's
flit-bounded reply injection buffer.  Replies to GPU LLC *hits* carry the
delegation metadata (:class:`~repro.core.delegated_replies.ReplyMeta`)
that the Delegated Replies NIC policy acts on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Set

from repro.cache.llc import LlcRequest, LlcResult, LlcSlice
from repro.config.system import SystemConfig
from repro.core.delegated_replies import ReplyMeta
from repro.mem.dram import MemoryController
from repro.noc.nic import MemoryNodeNic
from repro.noc.packet import MessageType, NetKind, Packet, TrafficClass


@dataclass
class MemoryNodeStats:
    requests: int = 0
    gpu_reads: int = 0
    cpu_reads: int = 0
    writes: int = 0
    dnf_requests: int = 0
    replies_sent: int = 0
    delegatable_replies: int = 0
    reply_backpressure_cycles: int = 0


class MemoryNode:
    """One memory node (LLC slice + memory controller)."""

    def __init__(
        self,
        node_id: int,
        cfg: SystemConfig,
        nic: MemoryNodeNic,
        gpu_nodes: Set[int],
        delegation_enabled: bool = False,
    ) -> None:
        self.node_id = node_id
        self.cfg = cfg
        self.nic = nic
        self.gpu_nodes = frozenset(gpu_nodes)
        self.delegation_enabled = delegation_enabled
        self.controller = MemoryController(cfg.dram, line_bytes=cfg.llc.line_bytes)
        self.llc = LlcSlice(node_id, cfg.llc, self.controller)
        self.stats = MemoryNodeStats()
        #: requests admitted by the ejection gate while the input queue was
        #: momentarily overbooked by interleaved worms
        self._overflow: Deque[LlcRequest] = deque()
        nic.handler = self.on_packet
        nic.eject_gate = self._eject_gate
        #: ejection-gate state after the previous step; the fabric's
        #: active-set scheduler is woken on every closed -> open transition
        self._gate_was_open = True

    # -- NoC-facing side --------------------------------------------------

    def _eject_gate(self, pkt: Packet) -> bool:
        return self.llc.can_accept() and not self._overflow

    def on_packet(self, pkt: Packet, cycle: int) -> None:
        mtype = pkt.mtype
        if mtype not in (
            MessageType.READ_REQ,
            MessageType.WRITE_REQ,
            MessageType.DNF_REQ,
        ):  # pragma: no cover - protocol violation
            raise RuntimeError(f"memory node got unexpected {pkt!r}")
        self.stats.requests += 1
        is_write = mtype is MessageType.WRITE_REQ
        is_cpu = pkt.cls is TrafficClass.CPU
        if is_write:
            self.stats.writes += 1
        elif is_cpu:
            self.stats.cpu_reads += 1
        else:
            self.stats.gpu_reads += 1
        if mtype is MessageType.DNF_REQ:
            self.stats.dnf_requests += 1
        req = LlcRequest(
            requester=pkt.requester,
            block=pkt.block >> 1 if is_cpu else pkt.block,
            is_write=is_write,
            cls=pkt.cls,
            dnf=pkt.dnf or mtype is MessageType.DNF_REQ,
            gpu_core=pkt.requester in self.gpu_nodes,
            arrival=cycle,
        )
        req.orig_block = pkt.block  # reply must echo the requester's view
        if not self.llc.enqueue(req):
            self._overflow.append(req)
        # ejections can close the gate mid-fabric-step; record it so the
        # next reopening is seen as a transition and wakes the routers
        if self._gate_was_open:
            self._gate_was_open = not self._overflow and self.llc.can_accept()

    # -- per-cycle behaviour ----------------------------------------------

    def step(self, cycle: int) -> None:
        while self._overflow and self.llc.can_accept():
            self.llc.enqueue(self._overflow.popleft())
        self.controller.step(cycle)
        self.controller.drain_completions(cycle)
        self.llc.step(cycle)
        self._drain_results(cycle)
        # a request worm parked behind a full LLC queue sleeps in the local
        # router; tell the fabric when the gate reopens
        gate_open = not self._overflow and self.llc.can_accept()
        if gate_open and not self._gate_was_open:
            self.nic.notify_eject_ready()
        self._gate_was_open = gate_open

    def _drain_results(self, cycle: int) -> None:
        while True:
            result = self.llc.peek_result()
            if result is None:
                return
            if not self.nic.can_enqueue(NetKind.REPLY):
                self.stats.reply_backpressure_cycles += 1
                tel = self.nic.stall_tel
                if tel is not None:
                    tel.on_reply_backpressure(self.node_id, cycle)
                return
            self.llc.pop_result()
            self.nic.try_send(self._reply_for(result, cycle), cycle)
            self.stats.replies_sent += 1

    def _reply_for(self, result: LlcResult, cycle: int) -> Packet:
        req = result.req
        if req.is_write:
            return Packet(
                src=self.node_id,
                dst=req.requester,
                mtype=MessageType.WRITE_ACK,
                cls=req.cls,
                size_flits=1,
                block=req.orig_block,
                created=cycle,
            )
        line = (
            self.cfg.gpu_l1.line_bytes
            if req.cls is TrafficClass.GPU
            else self.cfg.cpu_l1.line_bytes
        )
        pkt = Packet(
            src=self.node_id,
            dst=req.requester,
            mtype=MessageType.READ_REPLY,
            cls=req.cls,
            size_flits=self.cfg.noc.flits_for(line),
            block=req.orig_block,
            created=cycle,
        )
        pkt.txn = self._reply_meta(result)
        if isinstance(pkt.txn, ReplyMeta) and pkt.txn.delegate_to is not None:
            self.stats.delegatable_replies += 1
        return pkt

    def _reply_meta(self, result: LlcResult) -> Optional[ReplyMeta]:
        req = result.req
        if not self.delegation_enabled:
            return ReplyMeta(llc_hit=result.hit, delegate_to=None)
        target: Optional[int] = None
        if (
            result.hit
            and req.gpu_core
            and not req.dnf
            and result.pointer is not None
            and result.pointer != req.requester
            and result.pointer in self.gpu_nodes
        ):
            target = result.pointer
        return ReplyMeta(llc_hit=result.hit, delegate_to=target)

    def flush_pointers(self) -> int:
        """Invalidate all core pointers (GPU coherence flush)."""
        return self.llc.drop_all_pointers()
