"""Assembly of the full heterogeneous system.

``HeterogeneousSystem`` wires the configured topology, layout, NoC fabric,
GPU cores (with the chosen L1 organisation and mechanism), CPU cores and
memory nodes into one steppable simulation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config.system import (
    CtaScheduler,
    L1Organization,
    Mechanism,
    SystemConfig,
)
from repro.coherence.software import SoftwareCoherenceController
from repro.core.delegated_replies import DelegatedRepliesMechanism
from repro.core.realistic_probing import ProbeEngine
from repro.cpu.core import CpuCore
from repro.faults.controller import FaultController
from repro.faults.plan import FaultPlan
from repro.gpu.core import GpuCore
from repro.gpu.cta import apply_cta_policy
from repro.gpu.shared_l1 import (
    DynEBPort,
    PrivateL1,
    SharedL1Cluster,
    SharedL1Port,
)
from repro.mem.address import AddressMap
from repro.noc.nic import MemoryNodeNic
from repro.noc.topology import build_topology
from repro.sim.engines import build_fabric, validate_backend
from repro.sim.layout import NodePlacement, build_layout
from repro.sim.memory_node import MemoryNode
from repro.telemetry.collector import TelemetryCollector
from repro.workloads.cpu import CpuBenchmarkProfile, CpuTraceGenerator
from repro.workloads.gpu import (
    GpuBenchmarkProfile,
    GpuTraceGenerator,
    SharedWavefront,
)

#: GPU cores per shared-L1 cluster (DC-L1 [30])
_CORES_PER_CLUSTER = 8


def _apply_sim_scale(cfg: SystemConfig) -> SystemConfig:
    """Scale GPU L1 and LLC capacities for windowed simulation.

    See :attr:`SystemConfig.sim_scale`.  Scaling happens on a copy so the
    caller's config is untouched; floor is one set per cache.
    """
    if cfg.sim_scale == 1.0:
        return cfg
    scaled = cfg.copy()
    l1 = scaled.gpu_l1
    min_l1 = l1.assoc * l1.line_bytes
    l1.size_bytes = max(min_l1, int(l1.size_bytes * scaled.sim_scale))
    llc = scaled.llc
    min_llc = llc.assoc * llc.line_bytes
    llc.slice_size_bytes = max(
        min_llc, int(llc.slice_size_bytes * scaled.sim_scale)
    )
    scaled.sim_scale = 1.0  # applied exactly once
    return scaled


class HeterogeneousSystem:
    """A complete simulated CPU-GPU chip running one workload mix."""

    def __init__(
        self,
        cfg: SystemConfig,
        gpu_profile: GpuBenchmarkProfile,
        cpu_profile: Optional[CpuBenchmarkProfile] = None,
        kernel_flush_interval: int = 0,
        faults: Optional[FaultPlan] = None,
        backend: Optional[str] = None,
    ) -> None:
        cfg = _apply_sim_scale(cfg)
        self.cfg = cfg
        # resolve + feature-check the simulation backend up front so an
        # unusable combination fails with one line before any wiring
        self.backend = validate_backend(
            backend, telemetry=cfg.telemetry.enabled, faults=faults
        )
        self.layout: NodePlacement = build_layout(cfg)
        self.topology = build_topology(
            cfg.noc.topology, cfg.mesh_width, cfg.mesh_height
        )
        self.fabric = build_fabric(
            self.backend, self.topology, cfg.noc,
            mem_nodes=self.layout.mem_nodes,
        )
        self.addr_map = AddressMap(self.layout.mem_nodes)
        self.cycle = 0
        self.kernel_flush_interval = kernel_flush_interval
        self.kernel_flushes = 0

        profile = apply_cta_policy(gpu_profile, cfg.cta_scheduler)
        self.gpu_profile = profile
        self.cpu_profile = cpu_profile
        self.wavefront = SharedWavefront(profile)

        # mechanism wiring
        self.delegation: Optional[DelegatedRepliesMechanism] = None
        if cfg.mechanism is Mechanism.DELEGATED_REPLIES and cfg.delegation.enabled:
            self.delegation = DelegatedRepliesMechanism(cfg.delegation)
        probing = (
            cfg.mechanism is Mechanism.REALISTIC_PROBING and cfg.probing.enabled
        )

        gpu_nodes = list(self.layout.gpu_nodes)
        self._clusters: List[SharedL1Cluster] = []
        self.gpu_cores: List[GpuCore] = []
        for idx, node in enumerate(gpu_nodes):
            l1 = self._build_l1(idx)
            trace = GpuTraceGenerator(profile, idx, self.wavefront, seed=cfg.seed)
            engine = (
                ProbeEngine(cfg.probing, node, gpu_nodes, seed=cfg.seed)
                if probing
                else None
            )
            core = GpuCore(
                node_id=node,
                core_index=idx,
                cfg=cfg,
                l1=l1,
                trace=trace,
                nic=self.fabric.nic(node),
                addr_map=self.addr_map,
                probe_engine=engine,
            )
            self.gpu_cores.append(core)

        self.cpu_cores: List[CpuCore] = []
        if cpu_profile is not None:
            for idx, node in enumerate(self.layout.cpu_nodes):
                trace = CpuTraceGenerator(cpu_profile, idx, seed=cfg.seed)
                self.cpu_cores.append(
                    CpuCore(
                        node_id=node,
                        core_index=idx,
                        cfg=cfg,
                        trace=trace,
                        nic=self.fabric.nic(node),
                        addr_map=self.addr_map,
                    )
                )

        gpu_node_set = set(gpu_nodes)
        self.memory_nodes: List[MemoryNode] = []
        for node in self.layout.mem_nodes:
            nic = self.fabric.nic(node)
            assert isinstance(nic, MemoryNodeNic)
            mem = MemoryNode(
                node_id=node,
                cfg=cfg,
                nic=nic,
                gpu_nodes=gpu_node_set,
                delegation_enabled=self.delegation is not None,
            )
            if self.delegation is not None:
                self.delegation.attach(nic)
            self.memory_nodes.append(mem)

        self.coherence = SoftwareCoherenceController(
            self.gpu_cores, self.memory_nodes
        )

        # opt-in observability (repro.telemetry): attach a collector to
        # every hook site.  Disabled configs leave every hook attribute
        # None, so the per-event cost is a single check.
        self.telemetry: Optional[TelemetryCollector] = None
        if cfg.telemetry.enabled:
            self.telemetry = TelemetryCollector(
                cfg.telemetry, self.fabric, self.layout.mem_nodes
            )
            self.fabric.attach_telemetry(self.telemetry)

        # opt-in fault injection (repro.faults): installing a plan points
        # every fault hook site at the controller; without one they all
        # stay None and the hot path is untouched.
        self.faults: Optional[FaultController] = None
        if faults is not None:
            self.faults = FaultController(
                faults,
                fabric=self.fabric,
                addr_map=self.addr_map,
                gpu_nodes=gpu_node_set,
                telemetry=self.telemetry,
            )

    def _build_l1(self, core_index: int):
        org = self.cfg.l1_org
        if org is L1Organization.PRIVATE:
            return PrivateL1(self.cfg.gpu_l1)
        cluster_idx, slot = divmod(core_index, _CORES_PER_CLUSTER)
        while len(self._clusters) <= cluster_idx:
            self._clusters.append(SharedL1Cluster(self.cfg.gpu_l1))
        cluster = self._clusters[cluster_idx]
        if org is L1Organization.DC_L1:
            return SharedL1Port(cluster, slot)
        if org is L1Organization.DYNEB:
            return DynEBPort(cluster, slot, self.cfg.gpu_l1)
        raise ValueError(f"unknown L1 organisation {org}")

    # ------------------------------------------------------------------

    def step(self) -> None:
        cycle = self.cycle
        if (
            self.kernel_flush_interval
            and cycle > 0
            and cycle % self.kernel_flush_interval == 0
        ):
            self.kernel_boundary()
        for mem in self.memory_nodes:
            mem.step(cycle)
        for core in self.gpu_cores:
            core.step(cycle)
        for core in self.cpu_cores:
            core.step(cycle)
        if self.faults is not None:
            # fault events + timeout retransmits enqueue before injection,
            # the same ordering the cores' own sends observe
            self.faults.on_cycle(cycle)
        self.fabric.step(cycle)
        if self.telemetry is not None:
            self.telemetry.on_cycle(cycle)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def kernel_boundary(self) -> None:
        """Software-coherence kernel boundary: flush GPU L1s and drop every
        LLC core pointer (Section IV, coherence implications)."""
        self.kernel_flushes += 1
        self.coherence.kernel_boundary(self.cycle)

    # -- conveniences -----------------------------------------------------

    def gpu_core_at(self, node: int) -> GpuCore:
        for core in self.gpu_cores:
            if core.node_id == node:
                return core
        raise KeyError(node)

    def memory_node_at(self, node: int) -> MemoryNode:
        for mem in self.memory_nodes:
            if mem.node_id == node:
                return mem
        raise KeyError(node)
