"""System assembly, chip layouts, simulation driver and metrics."""

from repro.sim.layout import (
    DEFAULT_ORDERS,
    NodePlacement,
    apply_default_orders,
    build_layout,
)
from repro.sim.memory_node import MemoryNode, MemoryNodeStats
from repro.sim.metrics import (
    SimulationResult,
    collect_counters,
    derive_result,
    diff_counters,
)
from repro.sim.simulator import build_system, run_simulation
from repro.sim.system import HeterogeneousSystem

__all__ = [
    "DEFAULT_ORDERS",
    "HeterogeneousSystem",
    "MemoryNode",
    "MemoryNodeStats",
    "NodePlacement",
    "SimulationResult",
    "apply_default_orders",
    "build_layout",
    "build_system",
    "collect_counters",
    "derive_result",
    "diff_counters",
    "run_simulation",
]
