"""GPU L1 organisations: private, DC-L1 (static shared) and DynEB.

Sharing L1 caches among GPU cores trades *capacity* (shared data is stored
once) against *bandwidth* (concurrent accesses to a slice serialise).
DC-L1 [30] statically shares one L1 of four slices among eight GPU cores;
DynEB [29] monitors the effective bandwidth and falls back to the private
organisation when slice contention hurts (which the paper observes for NN
and 2DCON).  Section VII shows these schemes are orthogonal to Delegated
Replies: they do not remove NoC clogging.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cache.cache import SetAssociativeCache
from repro.config.system import GpuCacheConfig

#: result states of an L1 access
HIT = "hit"
MISS = "miss"
BUSY = "busy"


class PrivateL1:
    """The baseline per-core private L1."""

    def __init__(self, cfg: GpuCacheConfig) -> None:
        self.cache = SetAssociativeCache(cfg.num_sets, cfg.assoc)
        self.hit_latency = cfg.hit_latency

    def access(self, block: int, cycle: int) -> Tuple[str, int]:
        if self.cache.lookup(block):
            return HIT, self.hit_latency
        return MISS, 0

    def contains(self, block: int) -> bool:
        return self.cache.contains(block)

    def fill(self, block: int) -> Optional[int]:
        return self.cache.insert(block)

    def invalidate(self, block: int) -> bool:
        return self.cache.invalidate(block)

    def flush(self) -> int:
        return self.cache.flush()

    @property
    def hits(self) -> int:
        return self.cache.hits

    @property
    def misses(self) -> int:
        return self.cache.misses


class SharedL1Cluster:
    """DC-L1: one shared L1 of ``n_slices`` address-hashed slices per
    cluster of GPU cores.  Each slice serves one access per cycle; a busy
    slice port is the serialisation cost of sharing."""

    def __init__(
        self,
        cfg: GpuCacheConfig,
        cores_per_cluster: int = 8,
        n_slices: int = 4,
        remote_slice_latency: int = 4,
    ) -> None:
        self.cfg = cfg
        self.cores_per_cluster = cores_per_cluster
        self.n_slices = n_slices
        self.remote_slice_latency = remote_slice_latency
        # aggregate capacity equals the cores' private capacity, re-sliced
        total_lines = cfg.num_sets * cfg.assoc * cores_per_cluster
        lines_per_slice = total_lines // n_slices
        assoc = max(cfg.assoc, 8)
        self.slices = [
            SetAssociativeCache(max(1, lines_per_slice // assoc), assoc)
            for _ in range(n_slices)
        ]
        self._slice_busy_cycle = [-1] * n_slices
        self.port_conflicts = 0
        self.accesses = 0

    def slice_of(self, block: int) -> int:
        return (block >> 2) % self.n_slices

    def try_access(self, core_slot: int, block: int, cycle: int) -> Tuple[str, int]:
        """Access from cluster-local core ``core_slot``; may be BUSY."""
        s = self.slice_of(block)
        self.accesses += 1
        if self._slice_busy_cycle[s] == cycle:
            self.port_conflicts += 1
            return BUSY, 0
        self._slice_busy_cycle[s] = cycle
        extra = self.remote_slice_latency if (core_slot % self.n_slices) != s else 0
        if self.slices[s].lookup(block):
            return HIT, self.cfg.hit_latency + extra
        return MISS, 0

    def contains(self, block: int) -> bool:
        return self.slices[self.slice_of(block)].contains(block)

    def fill(self, block: int) -> Optional[int]:
        return self.slices[self.slice_of(block)].insert(block)

    def invalidate(self, block: int) -> bool:
        return self.slices[self.slice_of(block)].invalidate(block)

    def flush(self) -> int:
        return sum(s.flush() for s in self.slices)

    @property
    def conflict_rate(self) -> float:
        return self.port_conflicts / self.accesses if self.accesses else 0.0


class SharedL1Port:
    """A core's view of its cluster's shared L1 (DC-L1 mode)."""

    def __init__(self, cluster: SharedL1Cluster, core_slot: int) -> None:
        self.cluster = cluster
        self.core_slot = core_slot
        self.hits = 0
        self.misses = 0

    def access(self, block: int, cycle: int) -> Tuple[str, int]:
        state, lat = self.cluster.try_access(self.core_slot, block, cycle)
        if state == HIT:
            self.hits += 1
        elif state == MISS:
            self.misses += 1
        return state, lat

    def contains(self, block: int) -> bool:
        return self.cluster.contains(block)

    def fill(self, block: int) -> Optional[int]:
        return self.cluster.fill(block)

    def invalidate(self, block: int) -> bool:
        return self.cluster.invalidate(block)

    def flush(self) -> int:
        return self.cluster.flush()


class DynEBPort:
    """DynEB [29]: start shared, sample slice contention, and revert the
    cluster to private L1s when sharing starves effective bandwidth."""

    #: port-conflict rate above which sharing is deemed harmful
    CONFLICT_THRESHOLD = 0.15

    def __init__(
        self,
        cluster: SharedL1Cluster,
        core_slot: int,
        private_cfg: GpuCacheConfig,
        sample_cycles: int = 2_000,
    ) -> None:
        self.shared = SharedL1Port(cluster, core_slot)
        self.private = PrivateL1(private_cfg)
        self.cluster = cluster
        self.sample_cycles = sample_cycles
        self.mode = "shared"
        self.switched_at: Optional[int] = None

    def _maybe_switch(self, cycle: int) -> None:
        if self.mode != "shared" or cycle < self.sample_cycles:
            return
        if self.cluster.conflict_rate > self.CONFLICT_THRESHOLD:
            self.mode = "private"
            self.switched_at = cycle
            self.private.flush()

    def _backend(self):
        return self.shared if self.mode == "shared" else self.private

    def access(self, block: int, cycle: int) -> Tuple[str, int]:
        self._maybe_switch(cycle)
        return self._backend().access(block, cycle)

    def contains(self, block: int) -> bool:
        return self._backend().contains(block)

    def fill(self, block: int) -> Optional[int]:
        return self._backend().fill(block)

    def invalidate(self, block: int) -> bool:
        return self._backend().invalidate(block)

    def flush(self) -> int:
        return self._backend().flush()

    @property
    def hits(self) -> int:
        return self.shared.hits + self.private.hits

    @property
    def misses(self) -> int:
        return self.shared.misses + self.private.misses
