"""CTA scheduling policies (Section VII, Fig. 15).

The baseline assigns Cooperative Thread Arrays round-robin across SMs.
*Distributed* CTA scheduling [8] assigns index-adjacent CTAs to the same
SM, which improves intra-core locality (adjacent CTAs touch overlapping
tiles) and tightens the inter-core wavefront.  In the synthetic workload
model this maps to a higher reuse probability and a smaller wavefront
skew.  The paper's observation — better baseline locality shrinks but does
not eliminate Delegated Replies' benefit — follows from the reduced (yet
nonzero) clogging this produces.
"""

from __future__ import annotations

import dataclasses

from repro.config.system import CtaScheduler
from repro.workloads.gpu import GpuBenchmarkProfile

#: locality boosts of distributed CTA scheduling on the generator model
_DISTRIBUTED_REUSE_BOOST = 0.08
_DISTRIBUTED_SKEW_FACTOR = 0.6


def apply_cta_policy(
    profile: GpuBenchmarkProfile, policy: CtaScheduler
) -> GpuBenchmarkProfile:
    """Return the profile as observed under the given CTA scheduler."""
    if policy is CtaScheduler.ROUND_ROBIN:
        return profile
    if policy is CtaScheduler.DISTRIBUTED:
        return dataclasses.replace(
            profile,
            p_reuse=min(0.97, profile.p_reuse + _DISTRIBUTED_REUSE_BOOST),
            skew=profile.skew * _DISTRIBUTED_SKEW_FACTOR,
        )
    raise ValueError(f"unknown CTA scheduler {policy}")
