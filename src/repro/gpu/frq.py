"""Forwarded Request Queue (FRQ) — Section IV, Figure 8.

Each GPU core gains a small queue holding the delegated replies (remote
memory requests) sent to it.  Requests are *not* merged: the paper found
only 4.8% of FRQ entries access the same block and merging would require
NoC multicast.  A full FRQ refuses further ejections, back-pressuring the
request network.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

#: an FRQ entry: (requesting core, block id, arrival cycle)
FrqEntry = Tuple[int, int, int]


class ForwardedRequestQueue:
    """Bounded FIFO of delegated requests awaiting L1 service."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("FRQ needs at least one entry")
        self.capacity = capacity
        self._q: Deque[FrqEntry] = deque()
        self.peak = 0
        self.total_enqueued = 0
        self.rejected = 0
        #: pushes that found a same-block entry already queued.  The paper
        #: measured 4.8% and decided merging was not worth NoC multicast.
        self.merge_opportunities = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.capacity

    def contains_block(self, block: int) -> bool:
        return any(entry[1] == block for entry in self._q)

    def push(self, requester: int, block: int, cycle: int) -> bool:
        if self.contains_block(block):
            self.merge_opportunities += 1
        if self.full:
            self.rejected += 1
            return False
        self._q.append((requester, block, cycle))
        self.total_enqueued += 1
        self.peak = max(self.peak, len(self._q))
        return True

    def peek(self) -> Optional[FrqEntry]:
        return self._q[0] if self._q else None

    def pop(self) -> FrqEntry:
        return self._q.popleft()
