"""GPU core model: SM, FRQ, CTA scheduling and L1 organisations."""

from repro.gpu.core import GpuCore, GpuCoreStats
from repro.gpu.cta import apply_cta_policy
from repro.gpu.frq import ForwardedRequestQueue
from repro.gpu.shared_l1 import (
    DynEBPort,
    PrivateL1,
    SharedL1Cluster,
    SharedL1Port,
)

__all__ = [
    "DynEBPort",
    "ForwardedRequestQueue",
    "GpuCore",
    "GpuCoreStats",
    "PrivateL1",
    "SharedL1Cluster",
    "SharedL1Port",
    "apply_cta_policy",
]
