"""Config-file layer: build a :class:`SystemConfig` from JSON.

GPGPU-sim and gem5 drive their simulators from configuration files; this
module plays that role so experiments can be described declaratively::

    {
      "mechanism": "delegated_replies",
      "layout": "edge",
      "noc": {"channel_width_bytes": 8, "topology": "dragonfly"},
      "gpu_l1": {"size_bytes": 16384},
      "delegation": {"enabled": true, "max_delegations_per_cycle": 1}
    }

Unknown keys fail loudly (a typo must never silently fall back to a
default), enum fields accept their string values, and nested sections map
onto the nested config dataclasses.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.config.system import SystemConfig


class ConfigError(ValueError):
    """A configuration file referenced an unknown field or a bad value."""


def _coerce(value: Any, target_type) -> Any:
    """Coerce a JSON value onto a dataclass field's type."""
    if isinstance(target_type, type) and issubclass(target_type, enum.Enum):
        try:
            return target_type(value)
        except ValueError:
            options = [m.value for m in target_type]
            raise ConfigError(
                f"{value!r} is not a valid {target_type.__name__}; "
                f"choose from {options}"
            ) from None
    if target_type is float and isinstance(value, int):
        return float(value)
    return value


def _apply(obj, section: Dict[str, Any], path: str) -> None:
    fields = {f.name: f for f in dataclasses.fields(obj)}
    for key, value in section.items():
        if key not in fields:
            raise ConfigError(
                f"unknown config key {path}{key!r}; valid keys: "
                f"{sorted(fields)}"
            )
        current = getattr(obj, key)
        if dataclasses.is_dataclass(current) and not isinstance(current, type):
            if not isinstance(value, dict):
                raise ConfigError(
                    f"{path}{key} is a section and needs an object value"
                )
            _apply(current, value, f"{path}{key}.")
            continue
        ftype = type(current) if current is not None else None
        if isinstance(current, bool) and not isinstance(value, bool):
            raise ConfigError(f"{path}{key} expects a boolean")
        setattr(obj, key, _coerce(value, ftype))


def config_from_dict(data: Dict[str, Any]) -> SystemConfig:
    """Build a :class:`SystemConfig` from a (nested) plain dict."""
    cfg = SystemConfig()
    _apply(cfg, data, "")
    cfg.__post_init__()  # re-validate the node mix after overrides
    return cfg


def load_config(path: Union[str, Path]) -> SystemConfig:
    """Load a :class:`SystemConfig` from a JSON file."""
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ConfigError("config file must contain a JSON object")
    return config_from_dict(data)


def dump_config(cfg: SystemConfig) -> Dict[str, Any]:
    """Serialize a config back to a JSON-compatible dict (round-trips
    through :func:`config_from_dict`)."""
    return cfg.to_dict()


def save_config(cfg: SystemConfig, path: Union[str, Path]) -> None:
    """Write a config to a JSON file."""
    with open(path, "w") as fh:
        json.dump(dump_config(cfg), fh, indent=2, sort_keys=True)
        fh.write("\n")
