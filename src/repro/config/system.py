"""Configuration dataclasses for the simulated CPU-GPU architecture.

The defaults reproduce Table I of the paper: a 64-node system with 40 GPU
cores, 16 CPU cores and 8 memory nodes on an 8x8 mesh with a 16-byte channel
width, 2 VCs of 4 flits each, CPU-over-GPU priority, and a GDDR5 memory
system behind FR-FCFS controllers.

Everything the experiments sweep (topology, layout, routing, mechanism,
cache sizes, channel width, VC organisation, node mix) is a field here so a
single ``SystemConfig`` fully describes a simulation.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict


class Topology(str, enum.Enum):
    """NoC topologies evaluated in the paper (Sections II, III-B and VII)."""

    MESH = "mesh"
    CROSSBAR = "crossbar"
    FLATTENED_BUTTERFLY = "flattened_butterfly"
    DRAGONFLY = "dragonfly"


class RoutingPolicy(str, enum.Enum):
    """Routing policies (Sections III-B and V).

    ``CDR`` uses a different dimension order per traffic class; which order
    each class uses is configured by ``NocConfig.request_order`` and
    ``NocConfig.reply_order``.
    """

    CDR = "cdr"          # class-based deterministic routing (DOR per class)
    DYXY = "dyxy"        # congestion-aware adaptive (DyXY)
    FOOTPRINT = "footprint"  # adaptiveness-regulating adaptive routing
    HARE = "hare"        # history-aware adaptive routing


class DimensionOrder(str, enum.Enum):
    XY = "xy"
    YX = "yx"


class Layout(str, enum.Enum):
    """Chip layouts of Figure 1."""

    BASELINE = "baseline"   # Fig. 1a: memory column between CPUs and GPUs
    EDGE = "edge"           # Fig. 1b: memory nodes in the top row
    CLUSTERED = "clustered"  # Fig. 1c: CPU cores clustered together
    DISTRIBUTED = "distributed"  # Fig. 1d: core types spread over the chip


class Mechanism(str, enum.Enum):
    """Reply-delivery mechanisms compared throughout the evaluation."""

    BASELINE = "baseline"
    DELEGATED_REPLIES = "delegated_replies"
    REALISTIC_PROBING = "realistic_probing"


class CtaScheduler(str, enum.Enum):
    """CTA-to-SM assignment policies (Section VII, Fig. 15)."""

    ROUND_ROBIN = "round_robin"
    DISTRIBUTED = "distributed"


class L1Organization(str, enum.Enum):
    """GPU L1 organisations (Section III-A and Fig. 15)."""

    PRIVATE = "private"
    DC_L1 = "dc_l1"      # statically shared: 4 slices per 8-core cluster
    DYNEB = "dyneb"      # dynamically selects shared or private


@dataclass
class NocConfig:
    """Network-on-chip parameters (Table I plus mechanism-level knobs)."""

    topology: Topology = Topology.MESH
    routing: RoutingPolicy = RoutingPolicy.CDR
    request_order: DimensionOrder = DimensionOrder.YX
    reply_order: DimensionOrder = DimensionOrder.XY
    channel_width_bytes: int = 16
    vcs_per_port: int = 2
    vc_depth_flits: int = 4
    router_pipeline_cycles: int = 4
    link_cycles: int = 1
    #: physically separate request and reply networks (the baseline); when
    #: False both classes share one physical network via virtual networks.
    separate_physical_networks: bool = True
    #: VCs per virtual network when sharing one physical network.  AVCP
    #: asymmetrically splits these between request and reply traffic.
    request_vcs: int = 2
    reply_vcs: int = 2
    #: memory-node reply injection buffer capacity, in flits.  When the
    #: buffer is full the memory node *blocks* (Figure 3).
    mem_injection_buffer_flits: int = 36
    #: endpoint injection queue capacity for compute nodes, in packets.
    node_injection_queue_packets: int = 16
    #: bandwidth multiplier applied to every link (2.0 doubles NoC bandwidth
    #: by letting each link move 2 flits/cycle, as in Fig. 5).
    bandwidth_factor: float = 1.0
    #: CPU packets win switch allocation over GPU packets when True.
    cpu_priority: bool = True

    def flits_for(self, payload_bytes: int) -> int:
        """Number of flits for a packet carrying ``payload_bytes`` of data.

        One header flit plus enough data flits for the payload; a
        metadata-only packet (``payload_bytes == 0``) is a single flit.
        """
        if payload_bytes <= 0:
            return 1
        data = -(-payload_bytes // self.channel_width_bytes)
        return 1 + data


@dataclass
class GpuCacheConfig:
    """GPU L1 cache parameters (Table I)."""

    size_bytes: int = 48 * 1024
    assoc: int = 4
    line_bytes: int = 128
    mshrs: int = 32
    hit_latency: int = 4
    #: max delegated requests buffered at a GPU core (Section IV).
    frq_entries: int = 8

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass
class CpuCacheConfig:
    """CPU L1 cache parameters (Table I)."""

    size_bytes: int = 32 * 1024
    assoc: int = 4
    line_bytes: int = 64
    mshrs: int = 16
    hit_latency: int = 3

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass
class LlcConfig:
    """Shared LLC parameters (Table I): 1 MB slice per memory controller."""

    slice_size_bytes: int = 1024 * 1024
    assoc: int = 16
    line_bytes: int = 128
    hit_latency: int = 20
    mshrs: int = 64
    #: LLC request input queue depth (requests wait here after ejection).
    input_queue: int = 32
    #: invalidate core pointers on write-through (Section IV coherence
    #: rule).  Disabling this is an *ablation*: stale pointers can then
    #: delegate to cores holding outdated lines, trading correctness
    #: discipline for a measurement of how much the rule costs.
    pointer_invalidate_on_write: bool = True

    @property
    def sets_per_slice(self) -> int:
        return self.slice_size_bytes // (self.assoc * self.line_bytes)


@dataclass
class DramConfig:
    """GDDR5 timing parameters in memory-controller cycles (Table I)."""

    banks: int = 16
    t_cl: int = 12
    t_rp: int = 12
    t_rc: int = 40
    t_ras: int = 28
    t_rcd: int = 12
    t_rrd: int = 6
    t_ccd: int = 2
    t_wr: int = 12
    #: data-burst cycles per 128 B access; sets peak per-controller bandwidth.
    burst_cycles: int = 4
    row_bytes: int = 2048
    queue_depth: int = 32


@dataclass
class GpuCoreConfig:
    """GPU SM model parameters (Table I, scaled-down knobs for simulation)."""

    warps: int = 48
    #: memory instructions issued per warp slot per cycle.
    issue_width: int = 1
    #: instructions retired per issued memory operation (amortises the
    #: compute instructions between memory operations).
    insts_per_mem_op: int = 8


@dataclass
class CpuCoreConfig:
    """CPU traffic model parameters (Netrace-style)."""

    max_outstanding: int = 8


@dataclass
class DelegationConfig:
    """Delegated Replies policy knobs (Section IV)."""

    enabled: bool = False
    #: delegate only when the reply network cannot accept traffic this cycle
    #: (the paper's policy).  When False, delegate every delegatable reply
    #: (an ablation).
    only_when_blocked: bool = True
    #: maximum number of delegations issued per memory node per cycle;
    #: effectively bounded by the 1 flit/cycle request injection link.
    max_delegations_per_cycle: int = 2
    #: watchdog for delayed remote hits: a delegated request parked on an
    #: outstanding MSHR entry for longer than this is re-sent to the LLC
    #: with the DNF bit.  Breaks the (rare) circular-delegation case where
    #: two cores' requests for the same block are delegated to each other
    #: after an eviction/re-request race.
    delayed_hit_timeout: int = 4096
    #: merge same-block FRQ entries (the design point the paper *rejects*
    #: because only 4.8% of entries share a block; modelled here as an
    #: ablation — merged entries serve every merged requester with one L1
    #: probe but still send one unicast reply each).
    frq_merge: bool = False


@dataclass
class ProbingConfig:
    """Realistic Probing (RP) policy knobs (Section III-A)."""

    enabled: bool = False
    #: number of remote L1s probed per predicted-shared miss.
    probe_width: int = 6
    #: fraction of misses the sharing predictor flags as probe-worthy.
    #: RP's predictor is imperfect; the paper reports RP inflates NoC
    #: request count by 5.9x.
    predictor_threshold: float = 0.5


@dataclass
class TelemetryConfig:
    """Observability knobs (the :mod:`repro.telemetry` subsystem).

    Telemetry is strictly read-only instrumentation: enabling it must
    never change simulation results, so this section is excluded from
    sweep cache keys (:meth:`repro.sweep.jobs.JobSpec.key`).
    """

    enabled: bool = False
    #: instrumentation depth.  ``"light"`` (the default) is the cheap
    #: always-on tier: ring-buffer events, counter-array latency
    #: histograms, windowed probes, clogging detection, the flight
    #: recorder and the metrics registry.  ``"full"`` adds exact
    #: per-cycle stall attribution (``stall_attribution`` below) — the
    #: per-blocked-VC accounting that dominates telemetry cost on
    #: saturated meshes.
    mode: str = "light"
    #: per-packet trace destination; empty = aggregate-only (histograms,
    #: window probes and clogging detection, but no per-packet I/O).
    trace_path: str = ""
    #: ``jsonl`` (greppable) or ``bin`` (compact packed structs).
    trace_format: str = "jsonl"
    #: fraction of packets traced, decided by a stateless hash of the
    #: packet id so every lifecycle event of a packet is kept or dropped
    #: together (and the simulation's RNG streams are untouched).
    sample_rate: float = 1.0
    #: cycles per windowed probe of link/buffer/injection state.
    probe_interval: int = 200
    #: clogging-event detector: a memory node whose windowed reply-path
    #: pressure (max of injection-buffer occupancy and blocked-cycle
    #: fraction) stays >= this threshold ...
    clog_threshold: float = 0.9
    #: ... for at least this many consecutive windows is one episode.
    clog_min_windows: int = 2
    #: per-cycle stall attribution (why each blocked head worm cannot
    #: advance).  Only effective when ``enabled`` is True *and* ``mode``
    #: is ``"full"`` — light mode never charges the per-blocked-VC
    #: StallTable, whatever this flag says.  The probe-time blame chain
    #: walker that attaches ``root_cause`` records to clogging episodes
    #: runs in both modes (it is windowed, not per-cycle).
    stall_attribution: bool = True
    #: flight recorder: retain the most recent ``ring_events`` packet
    #: events per network in the event ring and dump them (as ``RDMP``
    #: files under ``flight_dir``) when the clogging detector opens an
    #: episode or a fault fires.  Retention is always on; dumps are
    #: written only when ``flight_dir`` is set.
    flight_recorder: bool = True
    #: ring capacity in events per network.  The retained tuples are
    #: live objects the allocator keeps cycling through, so oversized
    #: rings cost real cache pressure on the simulation itself — 512
    #: per network (~1k events, a ~20-cycle lead-up window on a
    #: saturated 8x8 mesh) keeps light mode under the
    #: telemetry-overhead budget.  Raise it (with ``mode="full"`` money
    #: already on the table) when a deeper flight window matters more
    #: than hot-path cost.
    ring_events: int = 512
    #: directory for flight-recorder dumps; empty = keep the ring in
    #: memory but never write dump files.
    flight_dir: str = ""


@dataclass
class SystemConfig:
    """Complete description of one simulated system."""

    mesh_width: int = 8
    mesh_height: int = 8
    n_gpu: int = 40
    n_cpu: int = 16
    n_mem: int = 8
    layout: Layout = Layout.BASELINE
    mechanism: Mechanism = Mechanism.BASELINE
    l1_org: L1Organization = L1Organization.PRIVATE
    cta_scheduler: CtaScheduler = CtaScheduler.ROUND_ROBIN
    noc: NocConfig = field(default_factory=NocConfig)
    gpu_l1: GpuCacheConfig = field(default_factory=GpuCacheConfig)
    cpu_l1: CpuCacheConfig = field(default_factory=CpuCacheConfig)
    llc: LlcConfig = field(default_factory=LlcConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    gpu_core: GpuCoreConfig = field(default_factory=GpuCoreConfig)
    cpu_core: CpuCoreConfig = field(default_factory=CpuCoreConfig)
    delegation: DelegationConfig = field(default_factory=DelegationConfig)
    probing: ProbingConfig = field(default_factory=ProbingConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    seed: int = 42
    #: capacity scale applied to the GPU L1s and the LLC at system build.
    #: The paper simulates one billion instructions; this reproduction runs
    #: windows of a few thousand cycles, so cache capacities (and the
    #: synthetic footprints) are scaled down together to keep residence
    #: times short relative to the window — the standard scaled-working-set
    #: methodology.  Set to 1.0 for full Table I capacities.
    sim_scale: float = 0.125

    def __post_init__(self) -> None:
        total = self.n_gpu + self.n_cpu + self.n_mem
        if total != self.mesh_width * self.mesh_height:
            raise ValueError(
                f"node mix {self.n_gpu}+{self.n_cpu}+{self.n_mem}={total} does "
                f"not fill the {self.mesh_width}x{self.mesh_height} fabric"
            )

    @property
    def n_nodes(self) -> int:
        return self.mesh_width * self.mesh_height

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible nested dict of every field, in declaration order.

        Enum fields collapse to their string values, so the result
        round-trips through :func:`repro.config.loader.config_from_dict`.
        """

        def convert(value):
            if dataclasses.is_dataclass(value) and not isinstance(value, type):
                return {
                    f.name: convert(getattr(value, f.name))
                    for f in dataclasses.fields(value)
                }
            if isinstance(value, enum.Enum):
                return value.value
            return value

        return convert(self)

    def config_hash(self) -> str:
        """Stable content hash of the full configuration.

        Computed over the canonical (sorted-key, compact) JSON encoding of
        :meth:`to_dict`, so the hash is independent of dict insertion order
        and identical across processes and Python versions.  Two configs
        hash equal iff every field (including nested sections) is equal.
        """
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def copy(self, **overrides) -> "SystemConfig":
        """Deep copy with top-level field overrides.

        Nested configs passed in ``overrides`` replace the copied ones.
        """
        clone = dataclasses.replace(self)
        for name, value in overrides.items():
            if not hasattr(clone, name):
                raise AttributeError(f"SystemConfig has no field {name!r}")
            setattr(clone, name, value)
        # deep-copy nested dataclasses not explicitly overridden so callers
        # can mutate them without aliasing the original
        for f in dataclasses.fields(clone):
            value = getattr(clone, f.name)
            if dataclasses.is_dataclass(value) and f.name not in overrides:
                setattr(clone, f.name, dataclasses.replace(value))
        return clone


def baseline_config(**overrides) -> SystemConfig:
    """The paper's baseline system (Table I, Fig. 1a, CDR YX-XY)."""
    return SystemConfig().copy(**overrides) if overrides else SystemConfig()


def delegated_replies_config(**overrides) -> SystemConfig:
    """Baseline system with Delegated Replies enabled."""
    cfg = SystemConfig(mechanism=Mechanism.DELEGATED_REPLIES)
    cfg.delegation.enabled = True
    return cfg.copy(**overrides) if overrides else cfg


def realistic_probing_config(**overrides) -> SystemConfig:
    """Baseline system with Realistic Probing (RP) enabled."""
    cfg = SystemConfig(mechanism=Mechanism.REALISTIC_PROBING)
    cfg.probing.enabled = True
    return cfg.copy(**overrides) if overrides else cfg
