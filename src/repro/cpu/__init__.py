"""CPU core model: Netrace-style dependency-driven traffic and traces."""

from repro.cpu.core import CpuCore, CpuCoreStats
from repro.cpu.trace_file import (
    TraceRecord,
    TraceReplayer,
    capture_trace,
    iter_trace,
    read_trace,
    write_trace,
)

__all__ = [
    "CpuCore",
    "CpuCoreStats",
    "TraceRecord",
    "TraceReplayer",
    "capture_trace",
    "iter_trace",
    "read_trace",
    "write_trace",
]
