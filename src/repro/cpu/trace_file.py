"""Netrace-style CPU trace files.

Netrace [26] replays dependency-annotated network traces: each record is a
memory request plus the records it depends on, so replay speed reacts to
reply latency exactly like a real core would.  This module provides that
substrate: a compact JSON-lines trace format, a writer that captures a
synthetic generator into a file, and a replayer that drives a CPU node
from a trace instead of the generator.

Record format (one JSON object per line)::

    {"id": 17, "block": 123456, "gap": 12, "dep": 16}

* ``id``    — monotonically increasing record id,
* ``block`` — 64 B block address of the read,
* ``gap``   — instructions executed after the previous record issues,
* ``dep``   — id of the record this one must wait for (absent if none;
  a record can only depend on an earlier one).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Union

from repro.workloads.cpu import CpuBenchmarkProfile, CpuTraceGenerator


@dataclass(frozen=True)
class TraceRecord:
    """One dependency-annotated memory request."""

    rid: int
    block: int
    gap: int
    dep: Optional[int] = None

    def to_json(self) -> str:
        obj = {"id": self.rid, "block": self.block, "gap": self.gap}
        if self.dep is not None:
            obj["dep"] = self.dep
        return json.dumps(obj, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "TraceRecord":
        obj = json.loads(line)
        rec = cls(
            rid=obj["id"], block=obj["block"], gap=obj["gap"],
            dep=obj.get("dep"),
        )
        if rec.dep is not None and rec.dep >= rec.rid:
            raise ValueError(
                f"record {rec.rid} depends on a later record {rec.dep}"
            )
        return rec


def capture_trace(
    profile: CpuBenchmarkProfile,
    core_index: int,
    n_records: int,
    seed: int = 42,
) -> List[TraceRecord]:
    """Capture a synthetic generator into a dependency-annotated trace.

    Dependencies follow the profile's ``dep_fraction``: a dependent record
    waits on the immediately preceding one, like a pointer chase.
    """
    gen = CpuTraceGenerator(profile, core_index, seed=seed)
    records: List[TraceRecord] = []
    for rid in range(n_records):
        block, _ = gen.next_access()
        dep = rid - 1 if rid > 0 and gen.is_dependent() else None
        records.append(
            TraceRecord(rid=rid, block=block, gap=profile.mem_interval, dep=dep)
        )
    return records


def write_trace(records: List[TraceRecord], path: Union[str, Path]) -> None:
    with open(path, "w") as fh:
        for rec in records:
            fh.write(rec.to_json() + "\n")


def read_trace(path: Union[str, Path]) -> List[TraceRecord]:
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(TraceRecord.from_json(line))
    return records


def iter_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream a trace without loading it whole (Netrace traces are huge)."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield TraceRecord.from_json(line)


class TraceReplayer:
    """Drives a CPU node from a trace, honouring dependencies.

    Drop-in replacement for :class:`CpuTraceGenerator` in
    :class:`repro.cpu.core.CpuCore`: ``next_access`` yields the next
    record's block and ``is_dependent`` reports whether that record
    depends on an outstanding one.  The trace loops when exhausted (the
    paper replays windows of much longer traces).
    """

    def __init__(self, records: List[TraceRecord], profile: CpuBenchmarkProfile):
        if not records:
            raise ValueError("empty trace")
        self.records = records
        self.profile = profile
        self._pos = 0
        self._last_dep: Optional[int] = None
        self.replays = 0

    def next_access(self):
        rec = self.records[self._pos]
        self._last_dep = rec.dep
        self._pos += 1
        if self._pos >= len(self.records):
            self._pos = 0
            self.replays += 1
        return rec.block, False

    def is_dependent(self) -> bool:
        return self._last_dep is not None
