"""CPU core model: Netrace-style dependency-driven traffic.

The paper injects CPU traffic from dependency-annotated traces (Netrace
[26]) so that CPU performance responds to network latency.  Our model
executes a synthetic instruction stream with a memory operation every
``mem_interval`` instructions; L1-missing loads either *block* the core
until the reply returns (with the benchmark's ``dep_fraction``
probability) or overlap with execution up to ``max_outstanding`` misses.
CPU IPC and average network latency therefore react to memory-node
blocking exactly the way the paper's Figures 12-13 measure.

CPU cores sit in their own MESI coherence domain; the workloads are
multi-programmed (no inter-CPU sharing), so directory traffic reduces to
the LLC round trip already modelled.  Delegated Replies never crosses the
CPU-GPU coherence boundary (Section IV): CPU replies are never delegated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cache.cache import MshrFile, SetAssociativeCache
from repro.config.system import SystemConfig
from repro.mem.address import AddressMap
from repro.noc.nic import NodeInterface
from repro.noc.packet import MessageType, NetKind, Packet, TrafficClass
from repro.telemetry.hist import LogHistogram
from repro.workloads.cpu import CpuTraceGenerator


@dataclass
class CpuCoreStats:
    insts: int = 0
    mem_ops: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    stall_cycles: int = 0
    replies: int = 0
    total_latency: int = 0
    #: reply-latency distribution; the mean hides the tail the paper's
    #: Fig. 12 argument rests on, so the full (log-bucketed) histogram is
    #: kept alongside ``total_latency`` and flattened into the counter
    #: snapshot for window diffing.
    lat_hist: LogHistogram = field(default_factory=LogHistogram)

    @property
    def avg_latency(self) -> float:
        return self.total_latency / self.replies if self.replies else 0.0


class CpuCore:
    """One latency-sensitive CPU core."""

    def __init__(
        self,
        node_id: int,
        core_index: int,
        cfg: SystemConfig,
        trace: CpuTraceGenerator,
        nic: NodeInterface,
        addr_map: AddressMap,
    ) -> None:
        self.node_id = node_id
        self.core_index = core_index
        self.cfg = cfg
        self.trace = trace
        self.nic = nic
        self.addr_map = addr_map
        self.l1 = SetAssociativeCache(cfg.cpu_l1.num_sets, cfg.cpu_l1.assoc)
        self.mshrs = MshrFile(cfg.cpu_l1.mshrs)
        self.stats = CpuCoreStats()
        #: block the core is stalled on (dependent load), if any
        self._blocked_on: Optional[int] = None
        #: instructions left before the next memory operation
        self._countdown = trace.profile.mem_interval
        #: pending access that could not be sent yet
        self._pending: Optional[int] = None
        #: cycles the core is busy with a previous L1 hit
        self._busy_until = 0
        #: issue cycle per outstanding block (round-trip latency tracking)
        self._issue_cycle: dict = {}
        nic.handler = self.on_packet

    # -- NoC side --------------------------------------------------------

    def on_packet(self, pkt: Packet, cycle: int) -> None:
        if pkt.mtype is not MessageType.READ_REPLY:
            raise RuntimeError(f"CPU core got unexpected {pkt!r}")
        self.stats.replies += 1
        block = pkt.block
        issued = self._issue_cycle.pop(block, None)
        # round-trip network latency: request issue to reply delivery.
        # This is what Netrace feeds back into CPU timing (Fig. 12).
        latency = cycle - issued if issued is not None else pkt.latency
        self.stats.total_latency += latency
        self.stats.lat_hist.record(latency)
        self.l1.insert(block)
        if self.mshrs.has(block):
            self.mshrs.release(block)
        if self._blocked_on == block:
            self._blocked_on = None

    # -- per-cycle behaviour ----------------------------------------------

    def step(self, cycle: int) -> None:
        if self._blocked_on is not None or cycle < self._busy_until:
            self.stats.stall_cycles += 1
            return
        if self._pending is not None:
            if not self._try_send(self._pending, cycle):
                self.stats.stall_cycles += 1
                return
            self._pending = None
            self._countdown = self.trace.profile.mem_interval
            return
        if self._countdown > 0:
            self._countdown -= 1
            self.stats.insts += 1
            return
        # memory operation
        block, _is_write = self.trace.next_access()
        self.stats.mem_ops += 1
        self.stats.insts += 1
        if self.l1.lookup(block):
            self.stats.l1_hits += 1
            self._busy_until = cycle + self.cfg.cpu_l1.hit_latency
            self._countdown = self.trace.profile.mem_interval
            return
        self.stats.l1_misses += 1
        if self.mshrs.has(block):
            # already in flight: dependent semantics apply
            if self.trace.is_dependent():
                self._blocked_on = block
            self._countdown = self.trace.profile.mem_interval
            return
        if not self._try_send(block, cycle):
            self._pending = block
            self.stats.stall_cycles += 1
            return
        self._countdown = self.trace.profile.mem_interval

    def _try_send(self, block: int, cycle: int) -> bool:
        if self.mshrs.full or len(self.mshrs) >= self.cfg.cpu_core.max_outstanding:
            return False
        if not self.nic.can_enqueue(NetKind.REQUEST):
            return False
        pkt = Packet(
            src=self.node_id,
            dst=self.addr_map.home_of(block >> 1),  # 128 B home of a 64 B block
            mtype=MessageType.READ_REQ,
            cls=TrafficClass.CPU,
            size_flits=1,
            block=block,
            created=cycle,
        )
        self.nic.try_send(pkt, cycle)
        self.mshrs.allocate(block, "cpu")
        self._issue_cycle[block] = cycle
        if self.trace.is_dependent():
            self._blocked_on = block
        return True

    @property
    def ipc(self) -> float:
        return 0.0  # computed by the simulator against elapsed cycles
