"""The fault controller: event application, detection and recovery.

One :class:`FaultController` per :class:`~repro.sim.system.HeterogeneousSystem`
owns the live fault state and every recovery mechanism:

* **Event application** — the plan's timed events mutate per-network fault
  state: a link-health mask (``net.fault_down``), a frozen-router set
  (``net.fault_frozen``) and per-link drop/corrupt probabilities.
* **Degraded-mode routing** — whenever the link mask changes, healthy
  next-hop tables are recomputed (:func:`repro.noc.topology.degraded_route_table`)
  and swapped into the network's precomputed routing tables, so detours
  cost the hot path nothing; a reachability check fails fast
  (:class:`~repro.noc.topology.PartitionedTopologyError`) on partitioned
  meshes.  While a mask is dirty, adaptive routing follows the same
  healthy tables (adaptivity resumes when the mask clears).
* **Loss injection** — each packet is sampled once per lossy link at
  head-flit traversal, against a dedicated seeded RNG stream.  Damaged
  packets keep consuming bandwidth and are discarded by the CRC-style
  check at ejection (:meth:`discard_on_eject`), i.e. the receiver never
  sees them.
* **Retransmit guard** — every request send registers a ``(requester,
  read/write, block)`` entry cleared by the matching data reply / write
  ack at the requester's NIC.  Expired entries retransmit with capped
  exponential backoff; GPU reads retransmit as *Do-Not-Forward* requests,
  so the recovery reply is always served directly by the LLC (the paper's
  existing DNF path) even when the original reply was lost mid-delegation.
  Entries that exhaust ``max_retries`` are counted ``lost``.
* **Watchdog** — every ``watchdog_interval`` cycles, a router holding
  buffered flits whose routed-flit counter has not moved for
  ``watchdog_checks`` consecutive checks trips a ``fault_stall`` telemetry
  event; outstanding requests are expired on the spot so reads fall back
  to direct LLC replies instead of waiting out the backoff ladder.

Everything is gated exactly like telemetry: hook sites check one
attribute (``net.faults`` / ``nic.fault_guard``) that is ``None`` when no
plan is installed, so fault support costs the fault-free hot path a single
``is not None`` per site.
"""

from __future__ import annotations

import itertools
import random
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.plan import (
    FaultPlan,
    FlitCorrupt,
    FlitDrop,
    LinkDown,
    LinkUp,
    RouterFreeze,
    sorted_events,
)
from repro.noc.packet import MessageType, NetKind, Packet, TrafficClass
from repro.noc.topology import PartitionedTopologyError, degraded_route_table

__all__ = ["FaultController", "PartitionedTopologyError", "quiesce"]

# retransmit-guard groups
_READ, _WRITE = 0, 1

# guard-entry field indices: first send cycle, attempts, deadline,
# traffic class, size in flits, original destination
_E_FIRST, _E_ATTEMPTS, _E_DEADLINE, _E_CLS, _E_SIZE, _E_DST = range(6)

#: request types whose answer is a data reply to the *requester* (a DNF
#: sent by a delegate on another core's behalf refreshes the requester's
#: entry, never its own).
_TRACKED_READS = frozenset(
    (MessageType.READ_REQ, MessageType.DNF_REQ, MessageType.PROBE_REQ)
)


class FaultController:
    """Live fault state + recovery machinery for one system."""

    def __init__(
        self,
        plan: FaultPlan,
        fabric,
        addr_map,
        gpu_nodes: Set[int],
        telemetry=None,
    ) -> None:
        self.plan = plan
        self.fabric = fabric
        self.addr_map = addr_map
        self.gpu_nodes = set(gpu_nodes)
        self.telemetry = telemetry
        self._rng = random.Random(plan.seed)
        self._events = sorted_events(plan.events)
        self._next_ev = 0
        self._seq = itertools.count()
        #: deferred RouterFreeze thaws: (cycle, seq, net_name, rid)
        self._thaws: List[Tuple[int, int, str, int]] = []
        nets = fabric._net_list
        self._nets = nets
        self._net_by_name = {net.name: net for net in nets}
        #: per-net down-link masks; the *same set objects* are installed as
        #: ``net.fault_down`` so the router check needs no indirection
        self._down: Dict[str, Set[Tuple[int, int]]] = {
            net.name: set() for net in nets
        }
        self._frozen: Dict[str, Set[int]] = {net.name: set() for net in nets}
        #: per-net per-directed-link [p_drop, p_corrupt]
        self._lossy: Dict[str, Dict[Tuple[int, int], List[float]]] = {}
        #: per-net healthy next-hop tables while the link mask is dirty
        self._detour: Dict[str, List[List[int]]] = {}
        #: pid -> damage kind (0 drop, 1 corrupt) for in-flight packets
        self._damaged: Dict[int, int] = {}
        #: retransmit guard: (node, group, block) -> entry list
        self._entries: Dict[Tuple[int, int, int], List] = {}
        self._heap: List[Tuple[int, int, Tuple[int, int, int]]] = []
        #: watchdog per-net {rid: [last_flits_routed, strikes]}
        self._strikes: Dict[str, Dict[int, List[int]]] = {
            net.name: {} for net in nets
        }
        # counters (window-diffable: all monotone)
        self.drops = 0
        self.corrupts = 0
        self.discarded = 0
        self.retransmits = 0
        self.fallback_dnfs = 0
        self.recovered = 0
        self.lost = 0
        self.watchdog_fires = 0
        self.links_downed = 0
        #: send-to-answer latencies (cycles) of requests that needed at
        #: least one retransmit — the recovery-time distribution
        self.recovery_samples: List[int] = []
        self._install()

    # -- installation ---------------------------------------------------

    def _install(self) -> None:
        self.fabric.faults = self
        for net in self._nets:
            net.faults = self
            net.fault_down = self._down[net.name]
            net.fault_frozen = self._frozen[net.name]
        if self.plan.events:
            # an event-free plan arms nothing per-packet: the guard stays
            # detached so fault-capable runs without faults stay
            # bit-identical to plain runs
            for nic in self.fabric.nics:
                nic.fault_guard = self

    def detach(self) -> None:
        self.fabric.faults = None
        for net in self._nets:
            net.faults = None
            net.fault_down = frozenset()
            net.fault_frozen = frozenset()
        for nic in self.fabric.nics:
            nic.fault_guard = None

    # -- per-cycle driver (called by HeterogeneousSystem.step) ----------

    def on_cycle(self, cycle: int) -> None:
        events = self._events
        i = self._next_ev
        if i < len(events) and events[i].at <= cycle:
            while i < len(events) and events[i].at <= cycle:
                self._apply(events[i], cycle)
                i += 1
            self._next_ev = i
        thaws = self._thaws
        while thaws and thaws[0][0] <= cycle:
            _, _, name, rid = heappop(thaws)
            self._thaw(name, rid)
        if self._heap and self._heap[0][0] <= cycle:
            self._service_timeouts(cycle)
        interval = self.plan.watchdog_interval
        if interval and cycle and cycle % interval == 0:
            self._watchdog(cycle)

    # -- event application ----------------------------------------------

    def _nets_for(self, name: str):
        if name == "request":
            return (self.fabric.request_net,)
        if name == "reply":
            return (self.fabric.reply_net,)
        return self._nets

    def _ports(self, net, a: int, b: int, bidir: bool):
        try:
            ports = [(a, net._port_of[a][b])]
            if bidir:
                ports.append((b, net._port_of[b][a]))
        except KeyError:
            raise ValueError(
                f"fault names link {a}<->{b}, but those routers are not "
                f"adjacent in the {net.name} network"
            ) from None
        return ports

    def _apply(self, ev, cycle: int) -> None:
        if isinstance(ev, LinkDown):
            for net in self._nets_for(ev.net):
                self._down[net.name].update(
                    self._ports(net, ev.a, ev.b, ev.bidir)
                )
                self.links_downed += 1
                self._refresh_link_state(net)
        elif isinstance(ev, LinkUp):
            for net in self._nets_for(ev.net):
                down = self._down[net.name]
                for key in self._ports(net, ev.a, ev.b, ev.bidir):
                    down.discard(key)
                self._refresh_link_state(net)
        elif isinstance(ev, RouterFreeze):
            for net in self._nets_for(ev.net):
                self._frozen[net.name].add(ev.router)
                net.mark_router_active(ev.router)
                heappush(
                    self._thaws,
                    (ev.at + ev.cycles, next(self._seq), net.name, ev.router),
                )
        elif isinstance(ev, (FlitDrop, FlitCorrupt)):
            slot = 1 if isinstance(ev, FlitCorrupt) else 0
            for net in self._nets_for(ev.net):
                lossy = self._lossy.setdefault(net.name, {})
                for key in self._ports(net, ev.a, ev.b, ev.bidir):
                    pp = lossy.setdefault(key, [0.0, 0.0])
                    pp[slot] = ev.p
                    if pp[0] == 0.0 and pp[1] == 0.0:
                        del lossy[key]
        else:  # pragma: no cover - plan validation catches this earlier
            raise TypeError(f"unknown fault event {ev!r}")

    def _thaw(self, net_name: str, rid: int) -> None:
        net = self._net_by_name[net_name]
        self._frozen[net_name].discard(rid)
        self._wake_all(net)

    def _refresh_link_state(self, net) -> None:
        down = self._down[net.name]
        if down:
            # raises PartitionedTopologyError when a destination becomes
            # unreachable — fail fast rather than silently losing traffic
            self._detour[net.name] = degraded_route_table(
                net.topology, net._port_of, down
            )
        else:
            self._detour.pop(net.name, None)
        if not net.full_scan:
            if net.name in self._detour:
                self.on_tables_rebuilt(net)
            else:
                # healthy again: restore the configured dimension-order
                # tables (the rebuilt hook sees a clean mask and no-ops)
                net._build_route_tables()
        self._wake_all(net)

    def _wake_all(self, net) -> None:
        # link/freeze state changes can unblock (or block) any worm in the
        # net, including ones whose router sleeps without a timed wake
        for router in net.routers:
            if router.active:
                net.mark_router_active(router.rid)

    # -- hooks from the NoC hot path (gated on ``net.faults``) -----------

    def on_tables_rebuilt(self, net) -> None:
        """Re-apply the detour tables after ``_build_route_tables``.

        Keeps degraded routing in force across table rebuilds (e.g.
        ``set_reference_stepping(False)``); in full-scan mode tables stay
        ``None`` and ``route_port`` serves detours directly.
        """
        tbl = self._detour.get(net.name)
        if tbl is None or net.full_scan:
            return
        kinds = {NetKind.REQUEST: tbl, NetKind.REPLY: tbl}
        net._dor_tables = kinds
        if not net.routing.adaptive:
            net._det_tables = kinds

    def route_port(self, net, rid: int, dst: int) -> int:
        """Healthy next-hop port while the link mask is dirty, else -1.

        Backs ``PhysicalNetwork.route``/``dor_port`` when precomputed
        tables are off (adaptive routing, full-scan mode).  Adaptivity is
        deliberately suspended while links are down: minimal-path choice
        sets cannot see the health mask, the BFS detour tables can.
        """
        tbl = self._detour.get(net.name)
        if tbl is None:
            return -1
        return tbl[rid][dst]

    def on_link_head(self, net, rid: int, oport: int, pkt: Packet) -> None:
        """Sample loss for ``pkt``'s head flit crossing ``(rid, oport)``."""
        lossy = self._lossy.get(net.name)
        if not lossy:
            return
        pp = lossy.get((rid, oport))
        if pp is None or pkt.pid in self._damaged:
            return
        r = self._rng.random()
        if r < pp[0]:
            self._damaged[pkt.pid] = 0
            self.drops += 1
        elif r < pp[0] + pp[1]:
            self._damaged[pkt.pid] = 1
            self.corrupts += 1

    def discard_on_eject(self, pkt: Packet, rid: int, cycle: int) -> bool:
        """CRC-style check at ejection: True = packet damaged, discard.

        A discarded packet is never delivered (no delivery accounting, no
        handler call), so the requester's guard entry stays open and the
        timeout path answers the request instead.
        """
        kind = self._damaged.pop(pkt.pid, None)
        if kind is None:
            return False
        self.discarded += 1
        tel = self.telemetry
        if tel is not None:
            tel.on_fault_event({
                "rec": "fault",
                "fault": "flit_drop" if kind == 0 else "flit_corrupt",
                "pid": pkt.pid,
                "mtype": int(pkt.mtype),
                "node": rid,
                "cycle": cycle,
            })
        return True

    # -- retransmit guard (gated on ``nic.fault_guard``) -----------------

    def on_send(self, node: int, pkt: Packet, cycle: int) -> None:
        mt = pkt.mtype
        if mt in _TRACKED_READS:
            requester = pkt.requester
            key = (
                requester if requester is not None else pkt.src,
                _READ,
                pkt.block,
            )
        elif mt is MessageType.WRITE_REQ:
            key = (pkt.src, _WRITE, pkt.block)
        else:
            return
        entries = self._entries
        if key in entries:
            return  # refresh-free: the oldest send owns the deadline
        entry = [
            cycle, 0, cycle + self.plan.request_timeout,
            pkt.cls, pkt.size_flits, pkt.dst,
        ]
        entries[key] = entry
        heappush(self._heap, (entry[_E_DEADLINE], next(self._seq), key))

    def on_deliver(self, node: int, pkt: Packet, cycle: int) -> None:
        mt = pkt.mtype
        if mt is MessageType.READ_REPLY or mt is MessageType.C2C_REPLY:
            key = (node, _READ, pkt.block)
        elif mt is MessageType.WRITE_ACK:
            key = (node, _WRITE, pkt.block)
        else:
            return
        entry = self._entries.pop(key, None)
        if entry is not None and entry[_E_ATTEMPTS] > 0:
            self.recovered += 1
            self.recovery_samples.append(cycle - entry[_E_FIRST])

    def outstanding(self) -> int:
        """Tracked requests not yet answered (conservation checks)."""
        return len(self._entries)

    def _service_timeouts(self, cycle: int) -> None:
        heap = self._heap
        entries = self._entries
        while heap and heap[0][0] <= cycle:
            deadline, _, key = heappop(heap)
            entry = entries.get(key)
            if entry is None or entry[_E_DEADLINE] != deadline:
                continue  # cleared, or superseded by a newer deadline
            self._retransmit(key, entry, cycle)

    def _retransmit(self, key, entry, cycle: int) -> None:
        node, group, block = key
        attempts = entry[_E_ATTEMPTS]
        if attempts >= self.plan.max_retries:
            del self._entries[key]
            self.lost += 1
            return
        is_dnf = False
        if group == _READ:
            if node in self.gpu_nodes:
                # fall back to a Do-Not-Forward request: the LLC answers
                # directly, never through the (possibly faulty) delegation
                # chain, so every request is still answered
                pkt = Packet(
                    node, self.addr_map.home_of(block), MessageType.DNF_REQ,
                    TrafficClass.GPU, 1, block=block, requester=node,
                    dnf=True,
                )
                is_dnf = True
            else:
                # CPU blocks home at half granularity (64B in a 128B space)
                pkt = Packet(
                    node, self.addr_map.home_of(block >> 1),
                    MessageType.READ_REQ, TrafficClass.CPU, 1, block=block,
                )
        else:
            pkt = Packet(
                node, entry[_E_DST], MessageType.WRITE_REQ,
                entry[_E_CLS], entry[_E_SIZE], block=block,
            )
        if self.fabric.nic(node).try_send(pkt, cycle):
            entry[_E_ATTEMPTS] = attempts + 1
            self.retransmits += 1
            if is_dnf:
                self.fallback_dnfs += 1
            delay = min(
                int(self.plan.request_timeout
                    * self.plan.backoff ** (attempts + 1)),
                self.plan.timeout_cap,
            )
        else:
            delay = 8  # injection queue full: retry soon, attempt not spent
        entry[_E_DEADLINE] = cycle + delay
        heappush(self._heap, (entry[_E_DEADLINE], next(self._seq), key))

    # -- deadlock/livelock watchdog --------------------------------------

    def _watchdog(self, cycle: int) -> None:
        fired = False
        checks = self.plan.watchdog_checks
        for net in self._nets:
            strikes = self._strikes[net.name]
            for router in net.routers:
                rid = router.rid
                if router.buffered_flits() == 0:
                    strikes.pop(rid, None)
                    continue
                routed = router.flits_routed
                state = strikes.get(rid)
                if state is None or state[0] != routed:
                    strikes[rid] = [routed, 1]
                    continue
                state[1] += 1
                if state[1] >= checks:
                    self.watchdog_fires += 1
                    fired = True
                    state[1] = -checks  # cooldown before re-firing
                    tel = self.telemetry
                    if tel is not None:
                        tel.on_fault_event({
                            "rec": "fault",
                            "fault": "fault_stall",
                            "net": net.name,
                            "router": rid,
                            "cycle": cycle,
                            "buffered": router.buffered_flits(),
                        })
                    net.mark_router_active(rid)
        if fired and self._entries:
            # livelock recovery: expire everything outstanding now so reads
            # fall back to direct LLC (DNF) replies immediately instead of
            # waiting out the backoff ladder
            for key, entry in self._entries.items():
                if entry[_E_DEADLINE] > cycle:
                    entry[_E_DEADLINE] = cycle
                    heappush(self._heap, (cycle, next(self._seq), key))
            self._service_timeouts(cycle)

    # -- reporting -------------------------------------------------------

    def recovery_percentile(self, pct: float) -> float:
        samples = sorted(self.recovery_samples)
        if not samples:
            return 0.0
        idx = min(len(samples) - 1, int(len(samples) * pct / 100.0))
        return float(samples[idx])

    def summary(self) -> Dict[str, float]:
        return {
            "drops": self.drops,
            "corrupts": self.corrupts,
            "discarded": self.discarded,
            "retransmits": self.retransmits,
            "fallback_dnfs": self.fallback_dnfs,
            "recovered": self.recovered,
            "lost": self.lost,
            "outstanding": self.outstanding(),
            "watchdog_fires": self.watchdog_fires,
            "links_downed": self.links_downed,
            "recovery_p50": self.recovery_percentile(50),
            "recovery_max": (
                float(max(self.recovery_samples))
                if self.recovery_samples else 0.0
            ),
        }


def quiesce(system, max_cycles: int = 40_000) -> int:
    """Stop the traffic sources and drain the system.

    Freezes every core's trace generator, then steps until all tracked
    requests are answered and no flit remains buffered in any router —
    the packet-conservation check chaos runs assert on.  Returns the
    number of unanswered requests plus stranded flits (0 = conserved).
    """
    for core in system.gpu_cores:
        core.stall_until = 10 ** 9
    for core in system.cpu_cores:
        core._countdown = 10 ** 9
        core._pending = None
    fc: Optional[FaultController] = system.faults
    for _ in range(max_cycles):
        pending = (fc.outstanding() if fc is not None else 0)
        if pending == 0 and system.fabric.in_flight_flits() == 0:
            break
        system.step()
    return (
        (fc.outstanding() if fc is not None else 0)
        + system.fabric.in_flight_flits()
    )
