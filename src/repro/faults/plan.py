"""Fault models: timed, seed-reproducible hardware-fault plans.

A :class:`FaultPlan` is the complete description of one fault scenario: a
list of timed :class:`FaultEvent` s plus the recovery parameters (request
timeout, retransmit budget, watchdog cadence) and the RNG seed the
drop/corrupt sampling consumes.  Plans are plain data — JSON-serialisable,
canonically hashable — so they slot into :class:`repro.sweep.jobs.JobSpec`
cache keys the same way a :class:`~repro.config.system.SystemConfig` does:
the same seed and plan always reproduce the same simulation, bit for bit.

Event taxonomy (Section "fault taxonomy", DESIGN.md §9):

* :class:`LinkDown` / :class:`LinkUp` — a named inter-router link stops /
  resumes carrying flits.  Degraded-mode routing detours around it.
* :class:`RouterFreeze` — a router arbitrates nothing for ``cycles``
  cycles; its buffers still accept flits (a hung pipeline, not a power
  gate).
* :class:`FlitDrop` / :class:`FlitCorrupt` — each packet crossing the
  named link is lost / damaged with probability ``p`` (sampled once per
  packet per link, at head-flit traversal).  Damaged packets still consume
  bandwidth and are discarded by the CRC-style check at ejection.

Links are named by router-id pairs ``(a, b)``; ``bidir=True`` (default)
applies the event to both directions.  ``net`` selects the physical
network(s): ``"request"``, ``"reply"`` or ``"both"`` (shared-network
configs map all three onto the single physical network).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Type

_NET_NAMES = ("request", "reply", "both")


def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something happens to the fabric at cycle ``at``."""

    at: int

    #: wire-format tag; one per concrete event class.
    kind = "event"

    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        d["kind"] = self.kind
        return d


@dataclass(frozen=True)
class _LinkEvent(FaultEvent):
    a: int = 0
    b: int = 0
    net: str = "both"
    bidir: bool = True


@dataclass(frozen=True)
class LinkDown(_LinkEvent):
    """The ``a -> b`` link (both directions when ``bidir``) goes down."""

    kind = "link_down"


@dataclass(frozen=True)
class LinkUp(_LinkEvent):
    """Undo an earlier :class:`LinkDown` on the same link."""

    kind = "link_up"


@dataclass(frozen=True)
class RouterFreeze(FaultEvent):
    """Router ``router`` stops arbitrating for ``cycles`` cycles."""

    router: int = 0
    cycles: int = 0
    net: str = "both"

    kind = "router_freeze"


@dataclass(frozen=True)
class _LossEvent(FaultEvent):
    a: int = 0
    b: int = 0
    p: float = 0.0
    net: str = "reply"
    bidir: bool = False


@dataclass(frozen=True)
class FlitDrop(_LossEvent):
    """Packets crossing ``a -> b`` are silently lost with probability
    ``p`` (``p = 0`` clears an earlier event on the link)."""

    kind = "flit_drop"


@dataclass(frozen=True)
class FlitCorrupt(_LossEvent):
    """Packets crossing ``a -> b`` are damaged with probability ``p``;
    the ejection-side CRC check discards them on arrival."""

    kind = "flit_corrupt"


_EVENT_KINDS: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (LinkDown, LinkUp, RouterFreeze, FlitDrop, FlitCorrupt)
}


def event_from_dict(data: Dict[str, Any]) -> FaultEvent:
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault-event kind {kind!r}")
    return cls(**data)


@dataclass
class FaultPlan:
    """One fault scenario: timed events + detection/recovery parameters.

    ``seed`` feeds the dedicated drop/corrupt RNG stream (never the
    simulator's own RNGs), so a plan is reproducible independently of the
    workload.  ``request_timeout`` / ``max_retries`` / ``backoff`` shape
    the per-NIC retransmit guard; ``watchdog_interval`` /
    ``watchdog_checks`` shape the no-progress watchdog (a router holding
    flits that routes nothing for ``interval * checks`` cycles trips it).
    """

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0
    request_timeout: int = 512
    max_retries: int = 6
    backoff: float = 2.0
    timeout_cap: int = 8192
    watchdog_interval: int = 128
    watchdog_checks: int = 8

    def __post_init__(self) -> None:
        for ev in self.events:
            net = getattr(ev, "net", "both")
            if net not in _NET_NAMES:
                raise ValueError(
                    f"fault event net must be one of {_NET_NAMES}, got {net!r}"
                )

    # -- queries --------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether the plan injects any fault at all."""
        return bool(self.events)

    # -- wire format ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [ev.to_dict() for ev in sorted_events(self.events)],
            "seed": self.seed,
            "request_timeout": self.request_timeout,
            "max_retries": self.max_retries,
            "backoff": self.backoff,
            "timeout_cap": self.timeout_cap,
            "watchdog_interval": self.watchdog_interval,
            "watchdog_checks": self.watchdog_checks,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        data = dict(data)
        events = [event_from_dict(ev) for ev in data.pop("events", [])]
        return cls(events=events, **data)

    def canonical_json(self) -> str:
        """Canonical encoding: what :class:`~repro.sweep.jobs.JobSpec`
        hashes into its cache key."""
        return _canonical_json(self.to_dict())

    def plan_hash(self) -> str:
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()[:16]


def sorted_events(events: Sequence[FaultEvent]) -> List[FaultEvent]:
    """Events in deterministic application order (time, then kind/fields)."""
    return sorted(events, key=lambda ev: (ev.at, ev.kind, repr(ev)))


def chaos_plan(
    cfg,
    intensity: float,
    *,
    seed: int = 0,
    warmup: int = 0,
    cycles: int = 0,
    link_down: bool = True,
) -> FaultPlan:
    """A canonical chaos scenario for ``cfg`` at the given fault intensity.

    Drops (``0.8 * intensity``) and corruptions (``0.2 * intensity``) are
    injected on every reply-network link *out of* each memory node — the
    links every LLC/DRAM reply must cross, so the retransmit guard and the
    DNF fallback are exercised in proportion to ``intensity``.  When
    ``link_down`` and the window is long enough, one deterministic interior
    mesh link additionally goes down for the middle half of the measured
    window, exercising degraded-mode routing.

    Deterministic in (``cfg``, ``intensity``, ``seed``): the same arguments
    always produce the same plan, so chaos sweeps cache cleanly.
    """
    from repro.noc.topology import MeshTopology, build_topology
    from repro.sim.layout import build_layout

    if intensity < 0 or intensity > 1:
        raise ValueError("intensity must be in [0, 1]")
    topo = build_topology(cfg.noc.topology, cfg.mesh_width, cfg.mesh_height)
    layout = build_layout(cfg)
    events: List[FaultEvent] = []
    p_drop = round(0.8 * intensity, 6)
    p_corrupt = round(0.2 * intensity, 6)
    if intensity > 0:
        for mem in layout.mem_nodes:
            for nb in topo.neighbors(mem):
                events.append(
                    FlitDrop(at=0, a=mem, b=nb, p=p_drop, net="reply")
                )
                if p_corrupt > 0:
                    events.append(
                        FlitCorrupt(at=0, a=mem, b=nb, p=p_corrupt,
                                    net="reply")
                    )
    horizon = warmup + cycles
    if (
        link_down
        and intensity > 0
        and horizon >= 400
        and isinstance(topo, MeshTopology)
        and topo.width > 3
        and topo.height > 2
    ):
        # one interior horizontal link, chosen reproducibly from the seed,
        # away from the memory column (mesh layouts keep memory nodes on
        # the outer columns, so interior x in [1, width-3] is safe)
        rng = random.Random(seed * 2654435761 + 17)
        mem_set = set(layout.mem_nodes)
        candidates = []
        for y in range(1, topo.height - 1):
            for x in range(1, topo.width - 2):
                a, b = topo.router_at(x, y), topo.router_at(x + 1, y)
                if a not in mem_set and b not in mem_set:
                    candidates.append((a, b))
        if candidates:
            a, b = candidates[rng.randrange(len(candidates))]
            down_at = warmup + max(1, cycles // 4)
            up_at = warmup + max(2, cycles // 2)
            events.append(LinkDown(at=down_at, a=a, b=b, net="both"))
            events.append(LinkUp(at=up_at, a=a, b=b, net="both"))
    return FaultPlan(events=events, seed=seed)
