"""CLI entry point: ``python -m repro.faults`` — the chaos harness.

Subcommands::

    run    simulate one workload mix under a fault plan, verify recovery
    plan   generate a chaos FaultPlan as JSON (edit, replay, share)
    sweep  fault-intensity x mechanism degradation sweep (chaos_sweep)

Examples::

    # drop/corrupt 10% of reply head flits, check nothing is lost
    python -m repro.faults run --mechanism dr --intensity 0.1

    # write a plan, tweak it by hand, replay it exactly
    python -m repro.faults plan --intensity 0.2 --seed 7 --out chaos.json
    python -m repro.faults run --plan chaos.json

    # the full degradation table
    python -m repro.faults sweep --jobs 4 --out chaos_sweep.json

``run`` exits nonzero if any transaction is lost (neither retransmitted
successfully nor answered through the delegated-reply fallback) or if
the post-run quiesce leaves packets in flight — the conservation
property the fault layer guarantees.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cli import (
    add_backend_option,
    add_batch_option,
    add_format_option,
    add_jobs_option,
    add_out_option,
    add_seed_option,
    add_window_options,
    backend_error_exit,
    emit,
)


def _add_workload_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--gpu", default="SC",
                   help="GPU benchmark (default SC, the clogging-heavy one)")
    p.add_argument("--cpu", default=None,
                   help="CPU co-runner (default: the benchmark's first "
                        "Table II mix)")
    p.add_argument("--mechanism", choices=("baseline", "rp", "dr"),
                   default="dr")


def _build_plan(args, cfg, cycles: int, warmup: int):
    from repro.faults.plan import FaultPlan, chaos_plan
    from repro.sim.engines import resolve_backend

    if getattr(args, "plan", None):
        with open(args.plan) as fh:
            return FaultPlan.from_dict(json.load(fh))
    # the vector backend only injects loss faults, so a generated chaos
    # plan for it skips the link-down/up schedule instead of erroring
    loss_only = resolve_backend(getattr(args, "backend", None)) == "vector"
    return chaos_plan(
        cfg, args.intensity, seed=args.seed or 0,
        warmup=warmup, cycles=cycles, link_down=not loss_only,
    )


def cmd_run(args) -> int:
    from repro.experiments.common import cpu_corunners, mechanism_config
    from repro.faults.controller import quiesce
    from repro.sim.simulator import build_system, run_simulation

    cfg = mechanism_config(args.mechanism)
    if args.seed is not None:
        cfg.seed = args.seed
    cycles = args.cycles if args.cycles is not None else 3000
    warmup = args.warmup if args.warmup is not None else 1000
    plan = _build_plan(args, cfg, cycles, warmup)
    cpu = args.cpu or cpu_corunners(args.gpu, 1)[0]

    from repro.sim.engines import BackendError

    try:
        system = build_system(
            cfg, args.gpu, cpu, faults=plan, backend=args.backend
        )
    except BackendError as exc:
        # e.g. --backend vector with a link-down plan: usage error
        return backend_error_exit(exc)
    result = run_simulation(
        cfg, args.gpu, cpu, cycles=cycles, warmup=warmup, system=system
    )
    # drain: stop injecting and let every outstanding transaction finish
    # (or exhaust its retries) so conservation is checkable
    leftover = quiesce(system)
    summary = system.faults.summary() if system.faults else {}

    lost = summary.get("lost", 0)
    ok = not (lost or leftover)

    def _render() -> str:
        lines = [
            f"chaos run {args.gpu}/{cpu}/{args.mechanism}: "
            f"{warmup}+{cycles} cycles, plan {plan.plan_hash()} "
            f"({len(plan.events)} events)",
            f"  gpu_ipc {result.gpu_ipc:.4f}  "
            f"cpu p99 {result.cpu_latency_p99:.0f}",
        ]
        for k in ("drops", "corrupts", "discarded", "retransmits",
                  "fallback_dnfs", "recovered", "lost", "watchdog_fires",
                  "links_downed"):
            lines.append(f"  {k:>14}: {summary.get(k, 0)}")
        lines.append(f"  recovery p50/max: {summary.get('recovery_p50', 0)}/"
                     f"{summary.get('recovery_max', 0)} cycles")
        if ok:
            lines.append(
                "OK: every injected fault recovered; network drained clean"
            )
        return "\n".join(lines)

    emit(args.format, {
        "gpu": args.gpu,
        "cpu": cpu,
        "mechanism": args.mechanism,
        "cycles": cycles,
        "warmup": warmup,
        "plan_hash": plan.plan_hash(),
        "plan_events": len(plan.events),
        "gpu_ipc": result.gpu_ipc,
        "cpu_latency_p99": result.cpu_latency_p99,
        "faults": dict(summary),
        "leftover": leftover,
        "ok": ok,
    }, _render)
    if not ok:
        print(f"FAIL: {lost} transaction(s) lost, "
              f"{leftover} flit(s)/entry(ies) stuck after quiesce",
              file=sys.stderr)
        return 1
    return 0


def cmd_plan(args) -> int:
    from repro.experiments.common import mechanism_config

    cfg = mechanism_config(args.mechanism)
    cycles = args.cycles if args.cycles is not None else 3000
    warmup = args.warmup if args.warmup is not None else 1000
    plan = _build_plan(args, cfg, cycles, warmup)
    payload = json.dumps(plan.to_dict(), indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload)
        print(f"wrote {args.out} (plan {plan.plan_hash()}, "
              f"{len(plan.events)} events)")
    else:
        print(payload, end="")
    return 0


def cmd_sweep(args) -> int:
    from repro.experiments import chaos_sweep

    result = chaos_sweep.run(
        benchmarks=args.benchmarks.split(",") if args.benchmarks else None,
        cycles=args.cycles,
        warmup=args.warmup,
        seed=args.seed or 0,
        jobs=args.jobs,
        batch=args.batch,
    )
    payload = {"rows": [[label, cells] for label, cells in result.rows],
               "data": result.data}
    emit(args.format, payload, result.text)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        if args.format != "json":
            print(f"wrote {args.out}")
    return 1 if result.data.get("total_lost") else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="deterministic fault injection and recovery checking",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="simulate under a fault plan and verify recovery"
    )
    _add_workload_options(run_p)
    add_window_options(run_p)
    add_seed_option(run_p)
    run_p.add_argument("--intensity", type=float, default=0.1,
                       help="chaos intensity in [0,1] (default 0.1)")
    run_p.add_argument("--plan", default=None,
                       help="JSON FaultPlan file (overrides --intensity)")
    add_backend_option(run_p,
                       help="simulation engine; vector accepts loss-only "
                            "plans (flit_drop/flit_corrupt)")
    add_format_option(run_p)

    plan_p = sub.add_parser("plan", help="emit a chaos FaultPlan as JSON")
    plan_p.add_argument("--mechanism", choices=("baseline", "rp", "dr"),
                        default="dr")
    add_window_options(plan_p)
    add_seed_option(plan_p)
    plan_p.add_argument("--intensity", type=float, default=0.1,
                        help="chaos intensity in [0,1] (default 0.1)")
    add_out_option(plan_p, help="plan output path (default: stdout)")

    sweep_p = sub.add_parser(
        "sweep", help="fault-intensity x mechanism degradation sweep"
    )
    sweep_p.add_argument("--benchmarks", default=None,
                         help="comma-separated GPU benchmarks")
    add_window_options(sweep_p)
    add_seed_option(sweep_p)
    add_jobs_option(sweep_p)
    add_batch_option(sweep_p)
    add_out_option(sweep_p, help="write the sweep rows as JSON")
    add_format_option(sweep_p)

    args = parser.parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "plan":
        return cmd_plan(args)
    return cmd_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
