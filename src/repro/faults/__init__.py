"""Fault injection & graceful degradation (``repro.faults``).

Deterministic, seed-reproducible hardware-fault scenarios for the NoC:
timed link failures, frozen routers and lossy links described by a
:class:`FaultPlan`, installed on the fabric behind the same single
``None``-check gating telemetry uses, plus the recovery machinery
(retransmit guard with DNF fallback, no-progress watchdog, degraded-mode
routing) that keeps every request answered while faults are live.

Entry points:

* :func:`repro.api.simulate` / :func:`repro.sim.simulator.run_simulation`
  accept ``faults=FaultPlan(...)``.
* ``python -m repro.faults`` — chaos harness CLI (single runs, plan
  authoring, intensity sweeps).
* :func:`chaos_plan` — canonical fault scenario at a given intensity.
"""

from repro.faults.controller import (
    FaultController,
    PartitionedTopologyError,
    quiesce,
)
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    FlitCorrupt,
    FlitDrop,
    LinkDown,
    LinkUp,
    RouterFreeze,
    chaos_plan,
    event_from_dict,
    sorted_events,
)

__all__ = [
    "FaultController",
    "FaultEvent",
    "FaultPlan",
    "FlitCorrupt",
    "FlitDrop",
    "LinkDown",
    "LinkUp",
    "PartitionedTopologyError",
    "RouterFreeze",
    "chaos_plan",
    "event_from_dict",
    "quiesce",
    "sorted_events",
]
