"""Figure 7: adaptive routing vs CDR (Section III-B).

DyXY [45], Footprint [22] and HARE [37] route around *unbalanced*
congestion — but the request network has none, and in the reply network
every path from a memory node is equally clogged.  The adaptive schemes
therefore pay their overheads without any benefit and the paper measures a
small slowdown versus CDR.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.config import RoutingPolicy, baseline_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)

ADAPTIVE_POLICIES = (
    RoutingPolicy.DYXY,
    RoutingPolicy.FOOTPRINT,
    RoutingPolicy.HARE,
)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 7: adaptive-routing GPU perf normalised to CDR."""
    benchmarks = list(benchmarks or default_benchmarks(subset=5))
    rows: List[Tuple[str, dict]] = []
    for gpu in benchmarks:
        cpu = cpu_corunners(gpu, 1)[0]
        base = run_config(
            baseline_config(), gpu, cpu, cycles=cycles, warmup=warmup
        )
        values = {}
        for policy in ADAPTIVE_POLICIES:
            cfg = baseline_config()
            cfg.noc.routing = policy
            res = run_config(cfg, gpu, cpu, cycles=cycles, warmup=warmup)
            values[policy.value] = res.gpu_ipc / base.gpu_ipc
        rows.append((gpu, values))
    text = format_table(
        "Fig. 7: adaptive routing vs CDR baseline "
        "(paper: adaptive routing does not help, slightly hurts)",
        rows,
        mean="hmean",
        label_header="benchmark",
    )
    return ExperimentResult(
        name="fig07_adaptive",
        description="Adaptive routing is ineffective against clogging",
        rows=rows,
        text=text,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
