"""Area and energy study (Sections III-B, IV and VII).

Area: the double-bandwidth mesh costs 2.5x the baseline NoC (5.76 vs
2.27 mm²) while Delegated Replies adds 0.172 mm² — about 5% of the
2x-NoC's extra area.  Energy: Delegated Replies slightly *reduces* dynamic
NoC energy (shorter data paths) while RP increases it (5.9x request
inflation); both reduce total system energy through shorter execution
time, DR more (-13.6% vs -7.4%).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.area import delegated_replies_overhead, noc_area
from repro.analysis.energy import energy_report
from repro.analysis.report import amean, format_table
from repro.config import baseline_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    mechanism_config,
    mechanism_sweep,
)


def area_rows() -> List[Tuple[str, dict]]:
    cfg = baseline_config()
    base = noc_area(cfg)
    cfg2 = baseline_config()
    cfg2.noc.bandwidth_factor = 2.0
    double = noc_area(cfg2)
    dr = delegated_replies_overhead(cfg)
    return [
        ("baseline_noc_mm2", {"value": base.total}),
        ("double_bw_noc_mm2", {"value": double.total}),
        ("double_bw_ratio", {"value": double.total / base.total}),
        ("dr_core_pointers_mm2", {"value": dr["core_pointers"]}),
        ("dr_frqs_mm2", {"value": dr["frqs"]}),
        ("dr_total_mm2", {"value": dr["total"]}),
        (
            "dr_vs_double_bw_extra",
            {"value": dr["total"] / (double.total - base.total)},
        ),
    ]


def energy_rows(
    benchmarks: Sequence[str],
    n_mixes: int,
    cycles: int,
    warmup: int,
) -> Tuple[List[Tuple[str, dict]], dict]:
    sweep = mechanism_sweep(benchmarks, n_mixes, cycles, warmup)
    noc_ratios = {"rp": [], "dr": []}
    sys_ratios = {"rp": [], "dr": []}
    req_ratios = {"rp": [], "dr": []}
    for gpu in benchmarks:
        for cpu in cpu_corunners(gpu, n_mixes):
            base = sweep[(gpu, cpu, "baseline")]
            base_e = energy_report(base, mechanism_config("baseline"))
            for mech in ("rp", "dr"):
                res = sweep[(gpu, cpu, mech)]
                e = energy_report(res, mechanism_config(mech))
                if base_e.noc_dynamic_pj_per_inst > 0:
                    noc_ratios[mech].append(
                        e.noc_dynamic_pj_per_inst / base_e.noc_dynamic_pj_per_inst
                    )
                sys_ratios[mech].append(
                    e.system_pj_per_inst / base_e.system_pj_per_inst
                )
                if base.noc_request_packets > 0:
                    req_ratios[mech].append(
                        res.noc_request_packets / base.noc_request_packets
                    )
    rows = [
        ("rp_noc_dynamic_energy", {"ratio": amean(noc_ratios["rp"])}),
        ("dr_noc_dynamic_energy", {"ratio": amean(noc_ratios["dr"])}),
        ("rp_system_energy", {"ratio": amean(sys_ratios["rp"])}),
        ("dr_system_energy", {"ratio": amean(sys_ratios["dr"])}),
        ("rp_request_count", {"ratio": amean(req_ratios["rp"])}),
        ("dr_request_count", {"ratio": amean(req_ratios["dr"])}),
    ]
    summary = {k: amean(v) for k, v in sys_ratios.items()}
    return rows, summary


def run(
    benchmarks: Optional[Sequence[str]] = None,
    n_mixes: int = 1,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate the area table and the energy comparison."""
    benchmarks = list(benchmarks or default_benchmarks(subset=5))
    a_rows = area_rows()
    e_rows, summary = energy_rows(benchmarks, n_mixes, cycles, warmup)
    text = format_table(
        "Area (paper: 2.27 / 5.76 / 2.5x / 0.08 / 0.092 / 0.172 mm2 / ~5%)",
        a_rows,
        mean=None,
        label_header="quantity",
    ) + format_table(
        "Energy vs baseline (paper: RP noc +9.4%, DR noc -1.1%; "
        "system RP -7.4%, DR -13.6%; RP requests 5.9x)",
        e_rows,
        mean=None,
        label_header="quantity",
    )
    return ExperimentResult(
        name="area_energy",
        description="DSENT/CACTI-style area and energy comparison",
        rows=a_rows + e_rows,
        text=text,
        data=summary,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
