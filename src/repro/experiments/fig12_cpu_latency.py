"""Figure 12: CPU network latency under Delegated Replies.

Delegation drains the memory nodes' reply injection buffers, so CPU
requests stop queueing behind blocked GPU replies and CPU packets see much
lower round-trip latencies.  Paper: -44.2% on average, up to -59.7%
(dedup).  Rows are grouped by CPU benchmark (the paper's x-axis); whiskers
come from the GPU workloads each CPU benchmark co-runs with.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    mechanism_sweep,
)


def _by_cpu(
    benchmarks: Sequence[str], n_mixes: int
) -> Dict[str, List[str]]:
    """CPU benchmark -> GPU benchmarks it co-runs with."""
    groups: Dict[str, List[str]] = defaultdict(list)
    for gpu in benchmarks:
        for cpu in cpu_corunners(gpu, n_mixes):
            groups[cpu].append(gpu)
    return groups


def run(
    benchmarks: Optional[Sequence[str]] = None,
    n_mixes: int = 3,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 12: normalised CPU packet latency per CPU bench."""
    benchmarks = list(benchmarks or default_benchmarks())
    sweep = mechanism_sweep(benchmarks, n_mixes, cycles, warmup)
    rows: List[Tuple[str, dict]] = []
    for cpu, gpus in sorted(_by_cpu(benchmarks, n_mixes).items()):
        ratios = []
        p95_ratios = []
        p99_ratios = []
        for gpu in gpus:
            base_res = sweep[(gpu, cpu, "baseline")]
            dr_res = sweep[(gpu, cpu, "dr")]
            if base_res.cpu_latency_avg > 0:
                ratios.append(dr_res.cpu_latency_avg / base_res.cpu_latency_avg)
            # distribution view (telemetry histograms): delegation's win is
            # largest in the tail, where clogging parks CPU packets
            if base_res.cpu_latency_p95 > 0:
                p95_ratios.append(dr_res.cpu_latency_p95 / base_res.cpu_latency_p95)
            if base_res.cpu_latency_p99 > 0:
                p99_ratios.append(dr_res.cpu_latency_p99 / base_res.cpu_latency_p99)
        if not ratios:
            continue
        cells = {
            "dr_latency_ratio": amean(ratios),
            "min": min(ratios),
            "max": max(ratios),
        }
        if p95_ratios:
            cells["dr_p95_ratio"] = amean(p95_ratios)
        if p99_ratios:
            cells["dr_p99_ratio"] = amean(p99_ratios)
        rows.append((cpu, cells))
    text = format_table(
        "Fig. 12: CPU network latency, DR / baseline "
        "(paper: 0.558 avg, down to 0.403)",
        rows,
        mean="amean",
        label_header="cpu bench",
    )
    return ExperimentResult(
        name="fig12_cpu_latency",
        description="CPU packet latency reduction under Delegated Replies",
        rows=rows,
        text=text,
        data={"mean_ratio": amean([r[1]["dr_latency_ratio"] for r in rows])},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
