"""Figure 2: inter-core locality of the GPU benchmarks.

The paper motivates Delegated Replies by showing that, on average, more
than 57% of the cache lines missing in a local L1 are present in at least
one remote GPU L1 at miss time.  We reproduce the measurement with an
oracle hook: on every primary L1 read miss the experiment checks every
other GPU core's L1 for the block.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.config import baseline_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
)
from repro.sim.simulator import build_system


def measure_locality(
    gpu: str,
    cpu: Optional[str],
    cycles: int,
    warmup: int,
) -> float:
    """Fraction of primary L1 misses present in >=1 remote GPU L1."""
    system = build_system(baseline_config(), gpu, cpu)
    counters = {"misses": 0, "remote": 0}
    cores = system.gpu_cores

    def observer(core, block):
        counters["misses"] += 1
        for other in cores:
            if other is core:
                continue
            # a line is "available" remotely when it is resident in the L1
            # or outstanding in its MSHRs (the fill is on its way; a remote
            # request would be served as a delayed hit)
            if other.l1.contains(block) or other.mshrs.has(block):
                counters["remote"] += 1
                return

    system.run(warmup)
    for core in cores:
        core.miss_observer = observer
    system.run(cycles)
    if counters["misses"] == 0:
        return 0.0
    return counters["remote"] / counters["misses"]


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Figure 2 (one bar per GPU benchmark + the mean)."""
    benchmarks = list(benchmarks or default_benchmarks())
    rows: List[Tuple[str, dict]] = []
    for gpu in benchmarks:
        cpu = cpu_corunners(gpu, 1)[0]
        frac = measure_locality(gpu, cpu, cycles, warmup)
        rows.append((gpu, {"remote_l1_fraction": frac}))
    text = format_table(
        "Fig. 2: fraction of L1 misses present in a remote L1 "
        "(paper mean: >0.57)",
        rows,
        mean="amean",
        label_header="benchmark",
    )
    return ExperimentResult(
        name="fig02_locality",
        description="Inter-core locality of GPU L1 misses",
        rows=rows,
        text=text,
        data={"mean": amean([r[1]["remote_l1_fraction"] for r in rows])},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
