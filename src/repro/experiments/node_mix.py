"""Node-mix study (Section VII, text): varying CPU/GPU/memory node ratios.

Two sweeps on a 64-node chip: (i) 8 memory nodes with 8/16/24 CPU cores
(and 48/40/32 GPU cores), and (ii) 8 CPU cores with 4/8/16 memory nodes.
Paper: clogging — and therefore Delegated Replies' benefit — grows with
the GPU-to-memory-node ratio (38.2% with 4 memory nodes, 10.7% with 16).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.config import baseline_config, delegated_replies_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)

#: (n_cpu, n_gpu, n_mem) mixes on the 64-node fabric
CPU_SWEEP = ((8, 48, 8), (16, 40, 8), (24, 32, 8))
MEM_SWEEP = ((8, 52, 4), (8, 48, 8), (8, 40, 16))


def _speedup_for_mix(
    n_cpu: int,
    n_gpu: int,
    n_mem: int,
    benchmarks: Sequence[str],
    cycles: int,
    warmup: int,
) -> float:
    speedups = []
    for gpu in benchmarks:
        cpu = cpu_corunners(gpu, 1)[0]
        base_cfg = baseline_config(n_cpu=n_cpu, n_gpu=n_gpu, n_mem=n_mem)
        dr_cfg = delegated_replies_config(n_cpu=n_cpu, n_gpu=n_gpu, n_mem=n_mem)
        base = run_config(base_cfg, gpu, cpu, cycles=cycles, warmup=warmup)
        dr = run_config(dr_cfg, gpu, cpu, cycles=cycles, warmup=warmup)
        speedups.append(dr.gpu_ipc / base.gpu_ipc)
    return amean(speedups)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate the node-mix study."""
    benchmarks = list(benchmarks or default_benchmarks(subset=3))
    rows: List[Tuple[str, dict]] = []
    for n_cpu, n_gpu, n_mem in CPU_SWEEP:
        s = _speedup_for_mix(n_cpu, n_gpu, n_mem, benchmarks, cycles, warmup)
        rows.append((f"{n_cpu}cpu/{n_gpu}gpu/{n_mem}mem", {"dr_speedup": s}))
    for n_cpu, n_gpu, n_mem in MEM_SWEEP:
        if (n_cpu, n_gpu, n_mem) in CPU_SWEEP:
            continue
        s = _speedup_for_mix(n_cpu, n_gpu, n_mem, benchmarks, cycles, warmup)
        rows.append((f"{n_cpu}cpu/{n_gpu}gpu/{n_mem}mem", {"dr_speedup": s}))
    text = format_table(
        "Node mix: DR speedup vs node ratios "
        "(paper: 1.305/1.258/1.226 over CPU sweep; 1.382/1.305/1.107 over "
        "memory sweep — fewer memory nodes, more clogging, more gain)",
        rows,
        mean=None,
        label_header="mix",
    )
    return ExperimentResult(
        name="node_mix",
        description="Delegated Replies vs CPU/GPU/memory node ratios",
        rows=rows,
        text=text,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
