"""Shared infrastructure for the per-figure experiment modules.

Each ``figNN_*`` module exposes ``run(...) -> ExperimentResult`` that
regenerates one paper figure/table: same rows, same normalisations.  The
heavy lifting — simulating every (GPU benchmark, CPU co-runner, mechanism)
triple — is shared through a process-level cache so that Figures 10-14,
which all read the same sweep, simulate it once.

Window lengths default to ``REPRO_CYCLES``/``REPRO_WARMUP``, read at
*call* time (:func:`default_cycles`/:func:`default_warmup`) so the bench
harness and tests can vary them after import.

Simulation execution is delegated to :mod:`repro.sweep`: the shared
mechanism sweep and :func:`run_config` both build ``JobSpec`` batches and
run them through the sweep runner, which adds process-level parallelism
(``REPRO_SWEEP_JOBS``) and an on-disk result cache (``REPRO_SWEEP_CACHE``)
on top of the in-process memo kept here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config.system import SystemConfig
from repro.sim.metrics import SimulationResult
from repro.config import (
    baseline_config,
    delegated_replies_config,
    realistic_probing_config,
)
from repro.workloads.gpu import GPU_BENCHMARK_NAMES
from repro.workloads.mixes import TABLE_II


def default_cycles() -> int:
    """Measured-window length: ``REPRO_CYCLES`` (read now), default 3000."""
    return int(os.environ.get("REPRO_CYCLES", "3000"))


def default_warmup() -> int:
    """Warmup-window length: ``REPRO_WARMUP`` (read now), default 2000."""
    return int(os.environ.get("REPRO_WARMUP", "2000"))


def __getattr__(name: str):
    # back-compat: the old module constants now resolve the environment on
    # every access instead of freezing it at import time
    if name == "DEFAULT_CYCLES":
        return default_cycles()
    if name == "DEFAULT_WARMUP":
        return default_warmup()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: the three reply-delivery mechanisms compared throughout the evaluation
MECHANISMS = ("baseline", "rp", "dr")

_CONFIG_FACTORIES = {
    "baseline": baseline_config,
    "rp": realistic_probing_config,
    "dr": delegated_replies_config,
}


def mechanism_config(mechanism: str) -> SystemConfig:
    """A fresh config for one of ``baseline`` / ``rp`` / ``dr``."""
    try:
        return _CONFIG_FACTORIES[mechanism]()
    except KeyError:
        raise ValueError(
            f"unknown mechanism {mechanism!r}; choose from {MECHANISMS}"
        ) from None


def default_benchmarks(subset: Optional[int] = None) -> List[str]:
    """The 11 Table II GPU benchmarks, optionally a representative subset.

    The subset keeps the paper's extremes: HS (best case), SC (LLC-bound,
    worst case), 3DCON (remote misses) and NN (low miss rate).
    """
    if subset is None:
        return list(GPU_BENCHMARK_NAMES)
    representative = ["HS", "SC", "3DCON", "NN", "2DCON", "BP", "MM",
                      "LPS", "BT", "LUD", "SRAD"]
    return representative[: max(1, subset)]


@dataclass
class ExperimentResult:
    """Output of one experiment: rows, a rendered table and raw data."""

    name: str
    description: str
    rows: List[Tuple[str, Mapping[str, float]]]
    text: str
    data: Dict = field(default_factory=dict)

    def column(self, name: str) -> List[float]:
        return [r[1][name] for r in self.rows if name in r[1]]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ----------------------------------------------------------------------
# cached mechanism sweep shared by Figures 10-14 and the energy study
# ----------------------------------------------------------------------

_SWEEP_CACHE: Dict[Tuple, Dict[Tuple[str, str, str], SimulationResult]] = {}


def cpu_corunners(gpu_name: str, n_mixes: int) -> List[str]:
    """The first ``n_mixes`` Table II CPU co-runners of a GPU benchmark."""
    return list(TABLE_II[gpu_name.upper()][: max(1, n_mixes)])


def mechanism_sweep(
    benchmarks: Sequence[str],
    n_mixes: int = 1,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    mechanisms: Sequence[str] = MECHANISMS,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
) -> Dict[Tuple[str, str, str], SimulationResult]:
    """Simulate every (GPU bench, CPU co-runner, mechanism) triple.

    Execution goes through the :mod:`repro.sweep` runner — ``jobs``
    worker processes (default ``REPRO_SWEEP_JOBS`` or 1), ``batch``
    jobs per worker task (default adaptive) and, when
    ``REPRO_SWEEP_CACHE`` is set, an on-disk result cache.  Results are
    additionally memoised per process so the per-figure modules can share
    one sweep.  Keys are ``(gpu, cpu, mechanism)``.
    """
    from repro.sweep import mechanism_jobs, run_sweep

    cycles = default_cycles() if cycles is None else cycles
    warmup = default_warmup() if warmup is None else warmup
    key = (tuple(benchmarks), n_mixes, cycles, warmup, tuple(mechanisms))
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    specs = mechanism_jobs(benchmarks, n_mixes, cycles, warmup, mechanisms)
    results = run_sweep(specs, jobs=jobs, batch=batch)
    out = {
        (spec.label[0], spec.label[1], spec.label[2]): results[spec.key()]
        for spec in specs
    }
    _SWEEP_CACHE[key] = out
    return out


def clear_sweep_cache() -> None:
    """Drop cached sweeps (tests use this to force fresh simulations)."""
    _SWEEP_CACHE.clear()


def run_config(
    cfg: SystemConfig,
    gpu: str,
    cpu: Optional[str] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> SimulationResult:
    """Single-configuration run (for topology/layout studies).

    Routed through the sweep runner so the on-disk cache, when enabled
    via ``REPRO_SWEEP_CACHE``, also covers the per-figure config studies.
    """
    from repro.sweep import JobSpec, run_sweep

    cycles = default_cycles() if cycles is None else cycles
    warmup = default_warmup() if warmup is None else warmup
    spec = JobSpec.make(cfg, gpu, cpu, cycles=cycles, warmup=warmup)
    return run_sweep([spec], jobs=1)[spec.key()]
