"""Shared infrastructure for the per-figure experiment modules.

Each ``figNN_*`` module exposes ``run(...) -> ExperimentResult`` that
regenerates one paper figure/table: same rows, same normalisations.  The
heavy lifting — simulating every (GPU benchmark, CPU co-runner, mechanism)
triple — is shared through a process-level cache so that Figures 10-14,
which all read the same sweep, simulate it once.

Window lengths default to ``REPRO_CYCLES``/``REPRO_WARMUP`` (env vars) so
the benchmark harness and CI can trade fidelity for speed uniformly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config.system import SystemConfig
from repro.sim.metrics import SimulationResult
from repro.sim.simulator import run_simulation
from repro.config import (
    baseline_config,
    delegated_replies_config,
    realistic_probing_config,
)
from repro.workloads.gpu import GPU_BENCHMARK_NAMES
from repro.workloads.mixes import TABLE_II

DEFAULT_CYCLES = int(os.environ.get("REPRO_CYCLES", "3000"))
DEFAULT_WARMUP = int(os.environ.get("REPRO_WARMUP", "2000"))

#: the three reply-delivery mechanisms compared throughout the evaluation
MECHANISMS = ("baseline", "rp", "dr")

_CONFIG_FACTORIES = {
    "baseline": baseline_config,
    "rp": realistic_probing_config,
    "dr": delegated_replies_config,
}


def mechanism_config(mechanism: str) -> SystemConfig:
    """A fresh config for one of ``baseline`` / ``rp`` / ``dr``."""
    try:
        return _CONFIG_FACTORIES[mechanism]()
    except KeyError:
        raise ValueError(
            f"unknown mechanism {mechanism!r}; choose from {MECHANISMS}"
        ) from None


def default_benchmarks(subset: Optional[int] = None) -> List[str]:
    """The 11 Table II GPU benchmarks, optionally a representative subset.

    The subset keeps the paper's extremes: HS (best case), SC (LLC-bound,
    worst case), 3DCON (remote misses) and NN (low miss rate).
    """
    if subset is None:
        return list(GPU_BENCHMARK_NAMES)
    representative = ["HS", "SC", "3DCON", "NN", "2DCON", "BP", "MM",
                      "LPS", "BT", "LUD", "SRAD"]
    return representative[: max(1, subset)]


@dataclass
class ExperimentResult:
    """Output of one experiment: rows, a rendered table and raw data."""

    name: str
    description: str
    rows: List[Tuple[str, Mapping[str, float]]]
    text: str
    data: Dict = field(default_factory=dict)

    def column(self, name: str) -> List[float]:
        return [r[1][name] for r in self.rows if name in r[1]]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ----------------------------------------------------------------------
# cached mechanism sweep shared by Figures 10-14 and the energy study
# ----------------------------------------------------------------------

_SWEEP_CACHE: Dict[Tuple, Dict[Tuple[str, str, str], SimulationResult]] = {}


def cpu_corunners(gpu_name: str, n_mixes: int) -> List[str]:
    """The first ``n_mixes`` Table II CPU co-runners of a GPU benchmark."""
    return list(TABLE_II[gpu_name.upper()][: max(1, n_mixes)])


def mechanism_sweep(
    benchmarks: Sequence[str],
    n_mixes: int = 1,
    cycles: int = DEFAULT_CYCLES,
    warmup: int = DEFAULT_WARMUP,
    mechanisms: Sequence[str] = MECHANISMS,
) -> Dict[Tuple[str, str, str], SimulationResult]:
    """Simulate every (GPU bench, CPU co-runner, mechanism) triple.

    Results are cached per process so the per-figure modules can share one
    sweep.  Keys are ``(gpu, cpu, mechanism)``.
    """
    key = (tuple(benchmarks), n_mixes, cycles, warmup, tuple(mechanisms))
    if key in _SWEEP_CACHE:
        return _SWEEP_CACHE[key]
    out: Dict[Tuple[str, str, str], SimulationResult] = {}
    for gpu in benchmarks:
        for cpu in cpu_corunners(gpu, n_mixes):
            for mech in mechanisms:
                cfg = mechanism_config(mech)
                out[(gpu, cpu, mech)] = run_simulation(
                    cfg, gpu, cpu, cycles=cycles, warmup=warmup
                )
    _SWEEP_CACHE[key] = out
    return out


def clear_sweep_cache() -> None:
    """Drop cached sweeps (tests use this to force fresh simulations)."""
    _SWEEP_CACHE.clear()


def run_config(
    cfg: SystemConfig,
    gpu: str,
    cpu: Optional[str] = None,
    cycles: int = DEFAULT_CYCLES,
    warmup: int = DEFAULT_WARMUP,
) -> SimulationResult:
    """Uncached single-configuration run (for topology/layout studies)."""
    return run_simulation(cfg, gpu, cpu, cycles=cycles, warmup=warmup)
