"""Ablation studies of Delegated Replies' design choices.

The paper motivates several design decisions without dedicated figures;
these ablations quantify them on our reproduction:

* **Delegate-on-block vs. delegate-always** — the paper delegates only
  when the reply network cannot accept traffic ("we do not want to
  unnecessarily expose the cores to overhead", Section II).
* **FRQ sizing** — the paper picks 8 entries (Section IV); sweeping shows
  where the queue starts back-pressuring the request network.
* **Pointer invalidation on writes** — the Section IV coherence rule;
  disabling it leaves stale pointers that delegate to cores holding
  outdated lines (more remote misses, wasted round trips).
* **Delegations per cycle** — the request-injection-link budget.
* **Pointer accuracy** — the fraction of delegated requests served
  remotely (the paper reports a 74.5% average pointer hit rate).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.config import baseline_config, delegated_replies_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)


def _dr_speedups(benchmarks, mutate, cycles, warmup) -> List[float]:
    speedups = []
    for gpu in benchmarks:
        cpu = cpu_corunners(gpu, 1)[0]
        base = run_config(baseline_config(), gpu, cpu, cycles=cycles, warmup=warmup)
        cfg = delegated_replies_config()
        mutate(cfg)
        dr = run_config(cfg, gpu, cpu, cycles=cycles, warmup=warmup)
        speedups.append(dr.gpu_ipc / base.gpu_ipc)
    return speedups


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Run every ablation; one row per design point."""
    benchmarks = list(benchmarks or default_benchmarks(subset=3))
    rows: List[Tuple[str, dict]] = []

    def point(label, mutate):
        rows.append(
            (label, {"dr_speedup": amean(
                _dr_speedups(benchmarks, mutate, cycles, warmup)
            )})
        )

    point("delegate_on_block (paper)", lambda cfg: None)

    def always(cfg):
        cfg.delegation.only_when_blocked = False
    point("delegate_always", always)

    for entries in (2, 4, 8, 16):
        def frq(cfg, _n=entries):
            cfg.gpu_l1.frq_entries = _n
        point(f"frq_{entries}_entries", frq)

    def stale(cfg):
        cfg.llc.pointer_invalidate_on_write = False
    point("no_pointer_invalidation", stale)

    def merge(cfg):
        cfg.delegation.frq_merge = True
    point("frq_merging (paper rejects)", merge)

    for per_cycle in (1, 2, 4):
        def cap(cfg, _n=per_cycle):
            cfg.delegation.max_delegations_per_cycle = _n
        point(f"delegations_per_cycle_{per_cycle}", cap)

    # pointer accuracy on the paper configuration (Fig. 14's remote hit
    # rate; the paper quotes 74.5% average), and the FRQ same-block rate
    # that justifies not merging (the paper measures 4.8%)
    hits, merge_rates = [], []
    for gpu in benchmarks:
        cpu = cpu_corunners(gpu, 1)[0]
        dr = run_config(
            delegated_replies_config(), gpu, cpu, cycles=cycles, warmup=warmup
        )
        if dr.remote_hit_fraction > 0:
            hits.append(dr.remote_hit_fraction)
        enq = dr.counters.get("gpu.frq_enqueued", 0)
        if enq:
            merge_rates.append(
                dr.counters.get("gpu.frq_merge_opportunities", 0) / enq
            )
    rows.append(("pointer_accuracy", {"dr_speedup": amean(hits)}))
    rows.append(("frq_same_block_rate", {"dr_speedup": amean(merge_rates)}))

    text = format_table(
        "Ablations: Delegated Replies design choices "
        "(paper picks delegate-on-block, 8 FRQ entries, write invalidation)",
        rows,
        mean=None,
        label_header="design point",
    )
    return ExperimentResult(
        name="ablations",
        description="Ablation studies of DR design choices",
        rows=rows,
        text=text,
        data={"benchmarks": benchmarks},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
