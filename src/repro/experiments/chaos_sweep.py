"""Chaos sweep: graceful degradation under injected network faults.

Not a paper figure — a robustness study of the reproduction itself.  The
same (GPU benchmark x CPU co-runner x mechanism) mixes the evaluation
sweeps are run again under :func:`~repro.faults.plan.chaos_plan` at
increasing intensity: flit loss/corruption on the reply links out of
every memory node, plus a mid-run link outage on larger meshes.  The
interesting questions are

* how much throughput survives (``gpu_ipc`` relative to the fault-free
  run of the same mix), and what the CPU tail latency inflates to;
* whether recovery is complete — every dropped flit's transaction must
  be answered by retransmit or, for delegated replies, by the direct-LLC
  fallback, so ``fault_lost`` should stay 0 at any intensity.

Delegated Replies is the mechanism under test: its reply path has more
moving parts (C2C transfers, DNF fallbacks), so this is where silent
loss would hide.  Execution goes through :mod:`repro.sweep` — fault
plans hash into the job key, so chaos results cache independently of the
clean sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    default_cycles,
    default_warmup,
    mechanism_config,
)

#: fault intensity levels (fraction of head flits sampled for
#: drop/corrupt on memory reply links); 0.0 is the fault-free anchor
INTENSITIES = (0.0, 0.05, 0.1, 0.2)

#: baseline (plain reply path) vs. the paper's mechanism (delegation,
#: C2C, DNF fallback) — the recovery paths differ, both must conserve
_MECHS = ("baseline", "dr")


def run(
    benchmarks: Optional[Sequence[str]] = None,
    n_mixes: int = 1,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    intensities: Sequence[float] = INTENSITIES,
    seed: int = 0,
    jobs: Optional[int] = None,
    batch: Optional[int] = None,
) -> ExperimentResult:
    """Sweep fault intensity x mechanism; report degradation + recovery."""
    from repro.faults.plan import chaos_plan
    from repro.sweep import JobSpec, run_sweep

    benchmarks = list(benchmarks or default_benchmarks(subset=2))
    cycles = default_cycles() if cycles is None else cycles
    warmup = default_warmup() if warmup is None else warmup

    specs: List[JobSpec] = []
    index: Dict[Tuple[str, str, str, float], JobSpec] = {}
    for gpu in benchmarks:
        for cpu in cpu_corunners(gpu, n_mixes):
            for mech in _MECHS:
                cfg = mechanism_config(mech)
                for level in intensities:
                    plan = (
                        chaos_plan(
                            cfg, level, seed=seed,
                            warmup=warmup, cycles=cycles,
                        )
                        if level > 0
                        else None
                    )
                    spec = JobSpec.make(
                        cfg, gpu, cpu, cycles=cycles, warmup=warmup,
                        label=(gpu, cpu, mech, f"i{level:g}"),
                        faults=plan,
                    )
                    specs.append(spec)
                    index[(gpu, cpu, mech, level)] = spec

    results = run_sweep(specs, jobs=jobs, batch=batch)

    rows: List[Tuple[str, dict]] = []
    total_lost = 0
    per_mix: Dict[str, dict] = {}
    for mech in _MECHS:
        for level in intensities:
            ipc_ratios: List[float] = []
            p99s: List[float] = []
            retrans = lost = 0
            rec_p99 = 0.0
            for gpu in benchmarks:
                for cpu in cpu_corunners(gpu, n_mixes):
                    res = results[index[(gpu, cpu, mech, level)].key()]
                    clean = results[index[(gpu, cpu, mech, 0.0)].key()]
                    if clean.gpu_ipc > 0:
                        ipc_ratios.append(res.gpu_ipc / clean.gpu_ipc)
                    p99s.append(res.cpu_latency_p99)
                    retrans += res.fault_retransmits
                    lost += res.fault_lost
                    rec_p99 = max(rec_p99, res.fault_recovery_p99)
                    per_mix[f"{gpu}/{cpu}/{mech}@{level:g}"] = {
                        "gpu_ipc": res.gpu_ipc,
                        "cpu_latency_p99": res.cpu_latency_p99,
                        "fault_retransmits": res.fault_retransmits,
                        "fault_lost": res.fault_lost,
                    }
            total_lost += lost
            rows.append((
                f"{mech}@{level:g}",
                {
                    "gpu_ipc_vs_clean": (
                        sum(ipc_ratios) / len(ipc_ratios)
                        if ipc_ratios else 0.0
                    ),
                    "cpu_p99": sum(p99s) / len(p99s) if p99s else 0.0,
                    "retransmits": float(retrans),
                    "lost": float(lost),
                    "recovery_p99": rec_p99,
                },
            ))

    text = format_table(
        "Chaos sweep: throughput + recovery vs. injected fault intensity",
        rows,
        mean=None,
        label_header="mech@intensity",
    )
    verdict = (
        "all injected faults recovered (0 transactions lost)"
        if total_lost == 0
        else f"WARNING: {total_lost} transaction(s) lost"
    )
    text += verdict + "\n"
    return ExperimentResult(
        name="chaos_sweep",
        description="graceful degradation under injected link faults",
        rows=rows,
        text=text,
        data={
            "per_mix": per_mix,
            "total_lost": total_lost,
            "intensities": list(intensities),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
