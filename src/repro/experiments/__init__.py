"""Per-figure experiment modules regenerating the paper's evaluation.

Each module exposes ``run(...) -> ExperimentResult``; ``run_all`` executes
every experiment in figure order and returns the concatenated report.
"""

from typing import Dict

from repro.experiments.common import (
    ExperimentResult,
    clear_sweep_cache,
    default_benchmarks,
    default_cycles,
    default_warmup,
    mechanism_config,
    mechanism_sweep,
)
from repro.experiments import (
    ablations,
    area_energy,
    chaos_sweep,
    fig02_locality,
    fig05_topology,
    fig06_avcp,
    fig07_adaptive,
    fig09_layout,
    fig10_gpu_perf,
    fig11_data_rate,
    fig12_cpu_latency,
    fig13_cpu_perf,
    fig14_miss_breakdown,
    fig15_shared_l1,
    fig16_topology_dr,
    fig17_layout_dr,
    fig19_sensitivity,
    node_mix,
    stall_decomposition,
)

#: experiment modules in paper order
ALL_EXPERIMENTS = [
    fig02_locality,
    fig05_topology,
    fig06_avcp,
    fig07_adaptive,
    fig09_layout,
    fig10_gpu_perf,
    fig11_data_rate,
    fig12_cpu_latency,
    stall_decomposition,
    fig13_cpu_perf,
    fig14_miss_breakdown,
    fig15_shared_l1,
    fig16_topology_dr,
    fig17_layout_dr,
    fig19_sensitivity,
    node_mix,
    area_energy,
    ablations,
    chaos_sweep,
]


def run_all(**kwargs) -> Dict[str, ExperimentResult]:
    """Run every experiment; kwargs are forwarded to each ``run``."""
    results = {}
    for module in ALL_EXPERIMENTS:
        result = module.run(**kwargs)
        results[result.name] = result
    return results


def __getattr__(name: str):
    # back-compat: DEFAULT_CYCLES/DEFAULT_WARMUP resolve the environment
    # on access (see repro.experiments.common)
    if name in ("DEFAULT_CYCLES", "DEFAULT_WARMUP"):
        from repro.experiments import common

        return getattr(common, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ALL_EXPERIMENTS",
    "DEFAULT_CYCLES",
    "DEFAULT_WARMUP",
    "ExperimentResult",
    "clear_sweep_cache",
    "default_benchmarks",
    "default_cycles",
    "default_warmup",
    "mechanism_config",
    "mechanism_sweep",
    "run_all",
]
