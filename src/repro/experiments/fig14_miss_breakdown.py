"""Figure 14: L1 miss breakdown under Delegated Replies.

Splits GPU L1 misses into (i) served directly by the memory node ("LLC"),
(ii) delegated and served by a remote L1 (remote hit, including delayed
hits on outstanding lines), and (iii) delegated but missing remotely
(remote miss — re-sent to the LLC with the DNF bit).  Paper: 54.8% of
misses delegated, 74.4% of those remote hits; 3DCON/BT/LPS show a fair
number of remote misses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    mechanism_sweep,
)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    n_mixes: int = 1,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 14 from the Delegated Replies runs."""
    benchmarks = list(benchmarks or default_benchmarks())
    sweep = mechanism_sweep(benchmarks, n_mixes, cycles, warmup)
    rows: List[Tuple[str, dict]] = []
    for gpu in benchmarks:
        cpu = cpu_corunners(gpu, 1)[0]
        res = sweep[(gpu, cpu, "dr")]
        breakdown = res.miss_breakdown()
        rows.append(
            (
                gpu,
                {
                    "llc": breakdown["llc"],
                    "remote_hit": breakdown["remote_hit"],
                    "remote_miss": breakdown["remote_miss"],
                },
            )
        )
    delegated = [
        r[1]["remote_hit"] + r[1]["remote_miss"] for r in rows
    ]
    hit_of_delegated = [
        r[1]["remote_hit"] / d if d else 0.0
        for r, d in zip(rows, delegated)
    ]
    text = format_table(
        "Fig. 14: L1 miss breakdown under DR "
        "(paper: 54.8% delegated; 74.4% of delegated are remote hits)",
        rows,
        mean="amean",
        label_header="benchmark",
    )
    return ExperimentResult(
        name="fig14_miss_breakdown",
        description="L1 miss breakdown (LLC / remote hit / remote miss)",
        rows=rows,
        text=text,
        data={
            "mean_delegated": amean(delegated),
            "mean_remote_hit_rate": amean(hit_of_delegated),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
