"""Figure 11: received data rate per GPU core (flits/cycle).

Delegated Replies moves reply traffic off the clogged memory-node links
onto the GPU-to-GPU links, raising the effective NoC bandwidth delivered
to the cores.  Paper: +26.5% on average (up to 70.9%) vs +11.9% for RP.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    mechanism_sweep,
)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    n_mixes: int = 1,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 11: per-core received data rate by mechanism."""
    benchmarks = list(benchmarks or default_benchmarks())
    sweep = mechanism_sweep(benchmarks, n_mixes, cycles, warmup)
    rows: List[Tuple[str, dict]] = []
    for gpu in benchmarks:
        cpus = cpu_corunners(gpu, n_mixes)
        base = amean(sweep[(gpu, c, "baseline")].gpu_data_rate for c in cpus)
        rp = amean(sweep[(gpu, c, "rp")].gpu_data_rate for c in cpus)
        dr = amean(sweep[(gpu, c, "dr")].gpu_data_rate for c in cpus)
        rows.append(
            (
                gpu,
                {
                    "baseline": base,
                    "rp": rp,
                    "dr": dr,
                    "dr_gain": dr / base if base else 0.0,
                },
            )
        )
    text = format_table(
        "Fig. 11: received data rate per GPU core, flits/cycle "
        "(paper: DR +26.5% avg, up to +70.9%; RP +11.9%)",
        rows,
        mean="amean",
        label_header="benchmark",
    )
    return ExperimentResult(
        name="fig11_data_rate",
        description="Effective NoC bandwidth delivered to GPU cores",
        rows=rows,
        text=text,
        data={"dr_mean_gain": amean([r[1]["dr_gain"] for r in rows])},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
