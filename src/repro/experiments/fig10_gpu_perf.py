"""Figure 10: GPU performance improvement of Delegated Replies.

Per GPU benchmark, IPC speedup of RP and Delegated Replies over the
baseline; whiskers show min/max across the benchmark's Table II CPU
co-runners.  Paper: DR +25.7% on average (up to 65.9%) over baseline and
+14.2% (up to 30.6%) over RP; variability across CPU co-runners is small
(GPUs are latency-tolerant).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    mechanism_sweep,
)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    n_mixes: int = 1,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 10 (set ``n_mixes=3`` for the full 33 workloads)."""
    benchmarks = list(benchmarks or default_benchmarks())
    sweep = mechanism_sweep(benchmarks, n_mixes, cycles, warmup)
    rows: List[Tuple[str, dict]] = []
    for gpu in benchmarks:
        cpus = cpu_corunners(gpu, n_mixes)
        rp = [
            sweep[(gpu, c, "rp")].gpu_ipc / sweep[(gpu, c, "baseline")].gpu_ipc
            for c in cpus
        ]
        dr = [
            sweep[(gpu, c, "dr")].gpu_ipc / sweep[(gpu, c, "baseline")].gpu_ipc
            for c in cpus
        ]
        rows.append(
            (
                gpu,
                {
                    "rp_speedup": amean(rp),
                    "dr_speedup": amean(dr),
                    "dr_min": min(dr),
                    "dr_max": max(dr),
                },
            )
        )
    text = format_table(
        "Fig. 10: GPU speedup over baseline "
        "(paper: DR 1.257 avg / up to 1.659; RP 1.101 avg)",
        rows,
        mean="amean",
        label_header="benchmark",
    )
    dr_mean = amean([r[1]["dr_speedup"] for r in rows])
    rp_mean = amean([r[1]["rp_speedup"] for r in rows])
    return ExperimentResult(
        name="fig10_gpu_perf",
        description="GPU performance improvement (DR vs RP vs baseline)",
        rows=rows,
        text=text,
        data={
            "dr_mean_speedup": dr_mean,
            "rp_mean_speedup": rp_mean,
            "dr_over_rp": dr_mean / rp_mean if rp_mean else 0.0,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
