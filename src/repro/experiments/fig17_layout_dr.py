"""Figures 17 & 18: Delegated Replies across chip layouts (Section VII).

Each layout (with its recommended routing orders) is its own baseline.
Paper: GPU speedups are uniform (+25.8/25.3/29.0/27.0% for Baseline, B, C,
D) while CPU speedups grow with CPU-GPU interference (+3.8/13.4/2.2/20.9%)
— priority for CPU traffic matters more when layouts B and D mix the two.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.config import Layout, baseline_config, delegated_replies_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)
from repro.sim.layout import apply_default_orders

LAYOUTS = (Layout.BASELINE, Layout.EDGE, Layout.CLUSTERED, Layout.DISTRIBUTED)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Figs. 17-18: per-layout DR speedup for GPU and CPU."""
    benchmarks = list(benchmarks or default_benchmarks(subset=4))
    rows: List[Tuple[str, dict]] = []
    for layout in LAYOUTS:
        gpu_speedups, cpu_speedups = [], []
        for gpu in benchmarks:
            cpu = cpu_corunners(gpu, 1)[0]
            base_cfg = apply_default_orders(baseline_config(layout=layout))
            dr_cfg = apply_default_orders(delegated_replies_config(layout=layout))
            base = run_config(base_cfg, gpu, cpu, cycles=cycles, warmup=warmup)
            dr = run_config(dr_cfg, gpu, cpu, cycles=cycles, warmup=warmup)
            gpu_speedups.append(dr.gpu_ipc / base.gpu_ipc)
            if base.cpu_ipc > 0:
                cpu_speedups.append(dr.cpu_ipc / base.cpu_ipc)
        rows.append(
            (
                layout.value,
                {
                    "gpu_dr_speedup": amean(gpu_speedups),
                    "cpu_dr_speedup": amean(cpu_speedups),
                },
            )
        )
    text = format_table(
        "Figs. 17-18: DR speedup per chip layout "
        "(paper GPU: 1.258/1.253/1.290/1.270; CPU: 1.038/1.134/1.022/1.209)",
        rows,
        mean=None,
        label_header="layout",
    )
    return ExperimentResult(
        name="fig17_layout_dr",
        description="Delegated Replies across chip layouts (GPU & CPU)",
        rows=rows,
        text=text,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
