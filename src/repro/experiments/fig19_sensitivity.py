"""Figure 19: sensitivity analyses (Section VII).

Six panels, each reporting Delegated Replies' average GPU speedup under a
swept parameter:

* L1 size (16/48/64 KB): bigger L1s mean fewer misses but better remote
  hit odds — the paper finds the gain *grows* with L1 size (22.9->30.2%).
* LLC size: nearly flat (25.0-26.0%).
* NoC channel width 8/16/24 B: DR matters most when bandwidth is scarce,
  but still +13.9% at 24 B.
* Virtual networks (shared physical net, 1 or 2 VCs per class): DR works
  equally well without separate physical networks (+23.4% / +26.9%).
* Mesh size 8x8 / 10x10 / 12x12 at constant node proportions: stable.
* Memory-node injection buffer size: bigger buffers do not fix clogging,
  DR's gain is insensitive.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.config import (
    SystemConfig,
    baseline_config,
    delegated_replies_config,
)
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)

Mutator = Callable[[SystemConfig], None]


def _l1(kb: int) -> Mutator:
    def mut(cfg: SystemConfig) -> None:
        cfg.gpu_l1.size_bytes = kb * 1024
    return mut


def _llc(mb_per_slice: float) -> Mutator:
    def mut(cfg: SystemConfig) -> None:
        cfg.llc.slice_size_bytes = int(mb_per_slice * 1024 * 1024)
    return mut


def _width(nbytes: int) -> Mutator:
    def mut(cfg: SystemConfig) -> None:
        cfg.noc.channel_width_bytes = nbytes
    return mut


def _virtual(vcs: int) -> Mutator:
    def mut(cfg: SystemConfig) -> None:
        # two virtual networks on one physical network with the baseline
        # link width; both the base and the DR run use the same fabric, so
        # the reported quantity is DR's gain on a virtual-network system
        cfg.noc.separate_physical_networks = False
        cfg.noc.request_vcs = vcs
        cfg.noc.reply_vcs = vcs
    return mut


def _mesh(side: int) -> Mutator:
    def mut(cfg: SystemConfig) -> None:
        n = side * side
        cfg.mesh_width = side
        cfg.mesh_height = side
        cfg.n_cpu = n // 4
        cfg.n_mem = n // 8
        cfg.n_gpu = n - cfg.n_cpu - cfg.n_mem
    return mut


def _injbuf(flits: int) -> Mutator:
    def mut(cfg: SystemConfig) -> None:
        cfg.noc.mem_injection_buffer_flits = flits
    return mut


#: panel name -> list of (point label, mutator)
PANELS: Dict[str, List[Tuple[str, Mutator]]] = {
    "l1_size": [("16KB", _l1(16)), ("48KB", _l1(48)), ("64KB", _l1(64))],
    "llc_size": [("0.5MB", _llc(0.5)), ("1MB", _llc(1.0)), ("2MB", _llc(2.0))],
    "channel_width": [("8B", _width(8)), ("16B", _width(16)), ("24B", _width(24))],
    "virtual_networks": [("1vc", _virtual(1)), ("2vc", _virtual(2))],
    "mesh_size": [("8x8", _mesh(8)), ("10x10", _mesh(10)), ("12x12", _mesh(12))],
    "injection_buffer": [
        ("18f", _injbuf(18)), ("36f", _injbuf(36)), ("72f", _injbuf(72))
    ],
}


def run_panel(
    panel: str,
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> List[Tuple[str, dict]]:
    """DR speedup at every point of one sensitivity panel."""
    benchmarks = list(benchmarks or default_benchmarks(subset=3))
    rows: List[Tuple[str, dict]] = []
    for label, mutate in PANELS[panel]:
        speedups = []
        for gpu in benchmarks:
            cpu = cpu_corunners(gpu, 1)[0]
            base_cfg = baseline_config()
            dr_cfg = delegated_replies_config()
            mutate(base_cfg)
            mutate(dr_cfg)
            base = run_config(base_cfg, gpu, cpu, cycles=cycles, warmup=warmup)
            dr = run_config(dr_cfg, gpu, cpu, cycles=cycles, warmup=warmup)
            speedups.append(dr.gpu_ipc / base.gpu_ipc)
        rows.append((f"{panel}:{label}", {"dr_speedup": amean(speedups)}))
    return rows


def run(
    benchmarks: Optional[Sequence[str]] = None,
    panels: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 19 (all panels unless a subset is requested)."""
    panels = list(panels or PANELS.keys())
    rows: List[Tuple[str, dict]] = []
    for panel in panels:
        rows.extend(run_panel(panel, benchmarks, cycles, warmup))
    text = format_table(
        "Fig. 19: sensitivity analyses — DR speedup per design point "
        "(paper: consistent gains across the design space)",
        rows,
        mean=None,
        label_header="design point",
    )
    return ExperimentResult(
        name="fig19_sensitivity",
        description="Sensitivity analyses across the design space",
        rows=rows,
        text=text,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
