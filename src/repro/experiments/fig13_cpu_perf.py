"""Figure 13: CPU performance improvement under Delegated Replies.

Lower CPU network latency turns into CPU IPC gains whose size depends on
the benchmark's latency sensitivity (vips gains most, dedup least) and on
how badly the co-running GPU workload clogs the memory nodes.  Paper:
+3.8% on average across everything, +8.8% (up to +19.8%) across the
clogged workloads — the whisker maxima.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    mechanism_sweep,
)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    n_mixes: int = 3,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 13: CPU speedup (DR / baseline) per CPU benchmark."""
    benchmarks = list(benchmarks or default_benchmarks())
    sweep = mechanism_sweep(benchmarks, n_mixes, cycles, warmup)
    groups: Dict[str, List[float]] = defaultdict(list)
    rp_groups: Dict[str, List[float]] = defaultdict(list)
    for gpu in benchmarks:
        for cpu in cpu_corunners(gpu, n_mixes):
            base = sweep[(gpu, cpu, "baseline")].cpu_ipc
            if base <= 0:
                continue
            groups[cpu].append(sweep[(gpu, cpu, "dr")].cpu_ipc / base)
            rp_groups[cpu].append(sweep[(gpu, cpu, "rp")].cpu_ipc / base)
    rows: List[Tuple[str, dict]] = []
    for cpu in sorted(groups):
        vals = groups[cpu]
        rows.append(
            (
                cpu,
                {
                    "dr_speedup": amean(vals),
                    "min": min(vals),
                    "max": max(vals),
                    "rp_speedup": amean(rp_groups[cpu]),
                },
            )
        )
    maxima = [r[1]["max"] for r in rows]
    text = format_table(
        "Fig. 13: CPU speedup, DR / baseline per CPU benchmark "
        "(paper: +3.8% avg, +8.8% on clogged workloads, max +19.8%)",
        rows,
        mean="amean",
        label_header="cpu bench",
    )
    return ExperimentResult(
        name="fig13_cpu_perf",
        description="CPU performance improvement under Delegated Replies",
        rows=rows,
        text=text,
        data={
            "mean_speedup": amean([r[1]["dr_speedup"] for r in rows]),
            "clogged_mean_speedup": amean(maxima),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
