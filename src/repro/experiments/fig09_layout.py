"""Figure 9: chip layout and routing-policy study (Section V).

Compares the four layouts of Figure 1 under their candidate CDR dimension
orders, normalised to Baseline YX-XY.  The paper's conclusions: the
baseline layout (memory column between CPUs and GPUs, YX requests / XY
replies) is the only one that provides both good CPU and GPU performance;
Layout B needs XY-YX to avoid memory-row congestion; Layout C favours
CPUs; Layout D favours GPUs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.config import DimensionOrder, Layout, baseline_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)

#: (layout, request order, reply order) configurations of Fig. 9
CONFIGS: Tuple[Tuple[Layout, DimensionOrder, DimensionOrder], ...] = (
    (Layout.BASELINE, DimensionOrder.YX, DimensionOrder.XY),
    (Layout.BASELINE, DimensionOrder.XY, DimensionOrder.XY),
    (Layout.EDGE, DimensionOrder.XY, DimensionOrder.YX),
    (Layout.EDGE, DimensionOrder.XY, DimensionOrder.XY),
    (Layout.CLUSTERED, DimensionOrder.XY, DimensionOrder.YX),
    (Layout.CLUSTERED, DimensionOrder.XY, DimensionOrder.XY),
    (Layout.DISTRIBUTED, DimensionOrder.XY, DimensionOrder.XY),
)

_LAYOUT_LABEL = {
    Layout.BASELINE: "Baseline",
    Layout.EDGE: "B",
    Layout.CLUSTERED: "C",
    Layout.DISTRIBUTED: "D",
}


def _label(layout: Layout, req: DimensionOrder, rep: DimensionOrder) -> str:
    return f"{_LAYOUT_LABEL[layout]} {req.value.upper()}-{rep.value.upper()}"


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 9: average GPU and CPU perf per layout/routing."""
    benchmarks = list(benchmarks or default_benchmarks(subset=4))
    raw = {}
    for layout, req, rep in CONFIGS:
        for gpu in benchmarks:
            cfg = baseline_config()
            cfg.layout = layout
            cfg.noc.request_order = req
            cfg.noc.reply_order = rep
            cpu = cpu_corunners(gpu, 1)[0]
            raw[(layout, req, rep, gpu)] = run_config(
                cfg, gpu, cpu, cycles=cycles, warmup=warmup
            )
    ref = CONFIGS[0]
    ref_gpu = amean(
        raw[(ref[0], ref[1], ref[2], gpu)].gpu_ipc for gpu in benchmarks
    )
    ref_cpu = amean(
        raw[(ref[0], ref[1], ref[2], gpu)].cpu_ipc for gpu in benchmarks
    )
    rows: List[Tuple[str, dict]] = []
    for layout, req, rep in CONFIGS:
        gpu_perf = amean(
            raw[(layout, req, rep, gpu)].gpu_ipc for gpu in benchmarks
        )
        cpu_perf = amean(
            raw[(layout, req, rep, gpu)].cpu_ipc for gpu in benchmarks
        )
        rows.append(
            (
                _label(layout, req, rep),
                {
                    "gpu_perf": gpu_perf / ref_gpu if ref_gpu else 0.0,
                    "cpu_perf": cpu_perf / ref_cpu if ref_cpu else 0.0,
                },
            )
        )
    text = format_table(
        "Fig. 9: layout & routing, normalised to Baseline YX-XY "
        "(paper: Baseline best overall; B needs XY-YX; C favours CPUs; "
        "D favours GPUs)",
        rows,
        mean=None,
        label_header="layout-routing",
    )
    return ExperimentResult(
        name="fig09_layout",
        description="Chip layout / routing policy study",
        rows=rows,
        text=text,
        data={"benchmarks": benchmarks},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
