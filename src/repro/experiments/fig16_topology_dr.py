"""Figure 16: Delegated Replies across NoC topologies (Section VII).

Each topology is its own baseline; DR's gain barely changes because the
clogged resource — the memory node's single reply injection link — exists
in every topology.  Paper: +21.9% (flattened butterfly), +23.9%
(Dragonfly), +28.3% (crossbar), +25.8% (mesh).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import amean, format_table
from repro.config import Topology, baseline_config, delegated_replies_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)
from repro.experiments.fig05_topology import TOPOLOGIES


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    topologies: Sequence[Topology] = TOPOLOGIES,
) -> ExperimentResult:
    """Regenerate Fig. 16: DR speedup per topology (vs that topology)."""
    benchmarks = list(benchmarks or default_benchmarks(subset=4))
    rows: List[Tuple[str, dict]] = []
    for topo in topologies:
        speedups = []
        for gpu in benchmarks:
            cpu = cpu_corunners(gpu, 1)[0]
            base_cfg = baseline_config()
            base_cfg.noc.topology = topo
            dr_cfg = delegated_replies_config()
            dr_cfg.noc.topology = topo
            base = run_config(base_cfg, gpu, cpu, cycles=cycles, warmup=warmup)
            dr = run_config(dr_cfg, gpu, cpu, cycles=cycles, warmup=warmup)
            speedups.append(dr.gpu_ipc / base.gpu_ipc)
        rows.append(
            (
                topo.value,
                {
                    "dr_speedup": amean(speedups),
                    "min": min(speedups),
                    "max": max(speedups),
                },
            )
        )
    text = format_table(
        "Fig. 16: DR GPU speedup per topology "
        "(paper: mesh 1.258, fbfly 1.219, dragonfly 1.239, crossbar 1.283)",
        rows,
        mean=None,
        label_header="topology",
    )
    return ExperimentResult(
        name="fig16_topology_dr",
        description="Delegated Replies is topology-insensitive",
        rows=rows,
        text=text,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
