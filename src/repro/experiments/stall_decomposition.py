"""CPU stall decomposition: where blocked cycles go, with and without DR.

Companion view to Fig. 12: instead of *how long* CPU packets take, this
breaks down *why* their head flits could not advance, cycle by cycle,
using the stall-attribution taxonomy (:mod:`repro.telemetry.blame`).
Under the baseline, CPU traffic loses most of its blocked cycles to
``credit`` stalls — downstream VCs held by reply worms parked behind full
memory-node injection buffers (the paper's Fig. 1/Fig. 3 clogging loop).
Delegated Replies drains those buffers, so the credit share collapses and
the residue shifts to benign serialization/switch contention.

Unlike the figure modules, this experiment calls ``run_simulation``
directly rather than going through the shared mechanism sweep: stall
attribution rides on telemetry, which is deliberately excluded from sweep
cache keys (traced and untraced runs share one entry), so cached sweep
results carry no stall data.  To keep the uncached cost reasonable the
default benchmark set is the 4-benchmark representative subset.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    default_cycles,
    default_warmup,
    mechanism_config,
)
from repro.telemetry.blame import STALL_CLASSES

#: the two mechanisms this decomposition contrasts (RP adds nothing here:
#: its reply path is the baseline's)
_MECHS = ("baseline", "dr")


def _cpu_stalls(
    gpu: str,
    cpu: str,
    mechanism: str,
    cycles: int,
    warmup: int,
) -> Dict[str, int]:
    """CPU-class stall cycles for one mix, simulated with telemetry on."""
    from repro.sim.simulator import run_simulation

    cfg = mechanism_config(mechanism)
    cfg.telemetry.enabled = True          # aggregate-only: no trace file
    cfg.telemetry.mode = "full"           # exact stall attribution
    cfg.telemetry.stall_attribution = True
    res = run_simulation(cfg, gpu, cpu, cycles=cycles, warmup=warmup)
    return dict(res.stall_breakdown.get("CPU", {}))


def run(
    benchmarks: Optional[Sequence[str]] = None,
    n_mixes: int = 1,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Decompose CPU stall cycles by class, baseline vs. DR."""
    benchmarks = list(benchmarks or default_benchmarks(subset=4))
    cycles = default_cycles() if cycles is None else cycles
    warmup = default_warmup() if warmup is None else warmup

    totals: Dict[str, Dict[str, int]] = {
        m: {name: 0 for name in STALL_CLASSES} for m in _MECHS
    }
    per_mix: Dict[str, Dict[str, Dict[str, int]]] = {}
    for gpu in benchmarks:
        for cpu in cpu_corunners(gpu, n_mixes):
            mix = f"{gpu}/{cpu}"
            per_mix[mix] = {}
            for mech in _MECHS:
                stalls = _cpu_stalls(gpu, cpu, mech, cycles, warmup)
                per_mix[mix][mech] = stalls
                for name, n in stalls.items():
                    totals[mech][name] = totals[mech].get(name, 0) + n

    grand = {m: sum(totals[m].values()) for m in _MECHS}
    rows: List[Tuple[str, dict]] = []
    for name in STALL_CLASSES:
        cells = {}
        for mech in _MECHS:
            cells[f"{mech}_share"] = (
                totals[mech][name] / grand[mech] if grand[mech] else 0.0
            )
        base = totals["baseline"][name]
        if base:
            cells["dr_cycle_ratio"] = totals["dr"][name] / base
        rows.append((name, cells))

    stall_ratio = grand["dr"] / grand["baseline"] if grand["baseline"] else 0.0
    text = format_table(
        "CPU stall decomposition: share of blocked head-flit cycles "
        "by stall class",
        rows,
        mean=None,
        label_header="stall class",
    )
    text += (
        f"total CPU stall cycles: baseline {grand['baseline']}, "
        f"DR {grand['dr']} ({stall_ratio:.3f}x)\n"
    )
    return ExperimentResult(
        name="stall_decomposition",
        description="CPU blocked-cycle attribution with and without DR",
        rows=rows,
        text=text,
        data={
            "totals": totals,
            "per_mix": per_mix,
            "stall_cycle_ratio": stall_ratio,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
