"""Figure 6: Asymmetric VC Partitioning (AVCP) [33] — Section III-B.

AVCP shares one physical network between requests and replies and gives
reply traffic more VCs.  The paper finds it ineffective (best case +3%,
HM flat; BP *loses* because it is write-heavy and stresses the virtual
request network): flits still serialise on the same physical links, so VC
allocation cannot raise the clogged links' bandwidth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import format_table, hmean
from repro.config import baseline_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)

#: (request VCs, reply VCs) splits over one shared physical network with
#: the baseline's aggregate 4 VCs.  "2+2" is the symmetric reference;
#: AVCP is the reply-heavy split.
VC_SPLITS = ((2, 2), (1, 3), (3, 1))


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 6: AVCP GPU performance vs the baseline."""
    benchmarks = list(benchmarks or default_benchmarks(subset=5))
    base = {}
    for gpu in benchmarks:
        cpu = cpu_corunners(gpu, 1)[0]
        base[gpu] = run_config(
            baseline_config(), gpu, cpu, cycles=cycles, warmup=warmup
        )
    rows: List[Tuple[str, dict]] = []
    for gpu in benchmarks:
        cpu = cpu_corunners(gpu, 1)[0]
        values = {}
        shared_sym = None
        for req_vcs, rep_vcs in VC_SPLITS:
            cfg = baseline_config()
            # one physical network, same link width: the clogged links keep
            # exactly their baseline bandwidth, which is the paper's point —
            # VC allocation cannot raise link bandwidth
            cfg.noc.separate_physical_networks = False
            cfg.noc.request_vcs = req_vcs
            cfg.noc.reply_vcs = rep_vcs
            res = run_config(cfg, gpu, cpu, cycles=cycles, warmup=warmup)
            speedup = res.gpu_ipc / base[gpu].gpu_ipc
            values[f"{req_vcs}req+{rep_vcs}rep"] = speedup
            if (req_vcs, rep_vcs) == VC_SPLITS[0]:
                shared_sym = speedup
        # partitioning effect in isolation: AVCP vs the symmetric shared net
        if shared_sym:
            values["avcp_vs_symmetric"] = values["1req+3rep"] / shared_sym
        rows.append((gpu, values))
    text = format_table(
        "Fig. 6: AVCP (shared physical net, asymmetric VCs) vs baseline "
        "(paper: best case +3%, HM flat, BP hurt by reply-heavy splits)",
        rows,
        mean="hmean",
        label_header="benchmark",
    )
    return ExperimentResult(
        name="fig06_avcp",
        description="Asymmetric VC partitioning is ineffective",
        rows=rows,
        text=text,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
