"""Figure 5: NoC topology and bandwidth overprovisioning (Section III-B).

(a) Changing the topology (crossbar, flattened butterfly, Dragonfly) barely
moves GPU performance because every memory node still has a single reply
injection link; doubling NoC bandwidth helps because it widens exactly
those bottleneck links.  (b) All topologies show high memory-node blocking
rates at nominal bandwidth.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import format_table, hmean
from repro.config import Topology, baseline_config
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)

TOPOLOGIES = (
    Topology.MESH,
    Topology.CROSSBAR,
    Topology.FLATTENED_BUTTERFLY,
    Topology.DRAGONFLY,
)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
    bandwidths: Sequence[float] = (1.0, 2.0),
) -> ExperimentResult:
    """Regenerate Fig. 5a (HM GPU perf vs mesh-1x) and Fig. 5b (blocking)."""
    benchmarks = list(benchmarks or default_benchmarks(subset=5))
    raw = {}
    for topo in TOPOLOGIES:
        for bw in bandwidths:
            for gpu in benchmarks:
                cfg = baseline_config()
                cfg.noc.topology = topo
                cfg.noc.bandwidth_factor = bw
                cpu = cpu_corunners(gpu, 1)[0]
                raw[(topo, bw, gpu)] = run_config(
                    cfg, gpu, cpu, cycles=cycles, warmup=warmup
                )
    base_ipc = {
        gpu: raw[(Topology.MESH, bandwidths[0], gpu)].gpu_ipc
        for gpu in benchmarks
    }
    rows: List[Tuple[str, dict]] = []
    for topo in TOPOLOGIES:
        for bw in bandwidths:
            speedups = [
                raw[(topo, bw, gpu)].gpu_ipc / base_ipc[gpu]
                for gpu in benchmarks
            ]
            blocking = [
                raw[(topo, bw, gpu)].mem_blocking_rate for gpu in benchmarks
            ]
            label = f"{topo.value}-{bw:g}x"
            rows.append(
                (
                    label,
                    {
                        "hm_gpu_speedup": hmean(speedups),
                        "mem_blocking_rate": sum(blocking) / len(blocking),
                    },
                )
            )
    text = format_table(
        "Fig. 5: topology & bandwidth vs mesh-1x "
        "(paper: topology ~flat, 2x bandwidth helps; blocking 0.72-0.79)",
        rows,
        mean=None,
        label_header="config",
    )
    return ExperimentResult(
        name="fig05_topology",
        description="Topology change vs bandwidth overprovisioning",
        rows=rows,
        text=text,
        data={"benchmarks": benchmarks},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
