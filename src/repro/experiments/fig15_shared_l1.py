"""Figure 15: Delegated Replies on top of inter-core locality optimisations.

Evaluates the shared-L1 schemes DC-L1 [30] and DynEB [29] under both
round-robin and distributed CTA scheduling, then stacks Delegated Replies
on DynEB.  Paper: DynEB consistently helps, DC-L1 helps or hurts (NN and
2DCON suffer slice serialisation); locality optimisations do not remove
NoC clogging, so DR still adds +23.5% (round-robin) / +9.9% (distributed)
on top of DynEB.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import format_table, hmean
from repro.config import (
    CtaScheduler,
    L1Organization,
    baseline_config,
    delegated_replies_config,
)
from repro.experiments.common import (
    ExperimentResult,
    cpu_corunners,
    default_benchmarks,
    run_config,
)

#: evaluated configurations: (label, l1 organisation, CTA policy, DR?)
CONFIGS = (
    ("dc_l1-rr", L1Organization.DC_L1, CtaScheduler.ROUND_ROBIN, False),
    ("dyneb-rr", L1Organization.DYNEB, CtaScheduler.ROUND_ROBIN, False),
    ("dyneb+dr-rr", L1Organization.DYNEB, CtaScheduler.ROUND_ROBIN, True),
    ("dc_l1-dist", L1Organization.DC_L1, CtaScheduler.DISTRIBUTED, False),
    ("dyneb-dist", L1Organization.DYNEB, CtaScheduler.DISTRIBUTED, False),
    ("dyneb+dr-dist", L1Organization.DYNEB, CtaScheduler.DISTRIBUTED, True),
)


def run(
    benchmarks: Optional[Sequence[str]] = None,
    cycles: Optional[int] = None,
    warmup: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Fig. 15, normalised to the private-L1 round-robin base."""
    benchmarks = list(benchmarks or default_benchmarks(subset=5))
    rows: List[Tuple[str, dict]] = []
    for gpu in benchmarks:
        cpu = cpu_corunners(gpu, 1)[0]
        base = run_config(
            baseline_config(), gpu, cpu, cycles=cycles, warmup=warmup
        )
        values = {}
        for label, org, cta, use_dr in CONFIGS:
            cfg = delegated_replies_config() if use_dr else baseline_config()
            cfg.l1_org = org
            cfg.cta_scheduler = cta
            res = run_config(cfg, gpu, cpu, cycles=cycles, warmup=warmup)
            values[label] = res.gpu_ipc / base.gpu_ipc
        rows.append((gpu, values))
    text = format_table(
        "Fig. 15: shared L1 schemes & CTA scheduling, vs private-RR "
        "(paper: DynEB consistent, DC-L1 mixed, DR adds on top)",
        rows,
        mean="hmean",
        label_header="benchmark",
    )
    dyneb = [r[1]["dyneb-rr"] for r in rows]
    dyneb_dr = [r[1]["dyneb+dr-rr"] for r in rows]
    return ExperimentResult(
        name="fig15_shared_l1",
        description="DR on top of inter-core locality optimisations",
        rows=rows,
        text=text,
        data={
            "dr_on_dyneb_rr": hmean(dyneb_dr) / hmean(dyneb) if dyneb else 0.0,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().text)
