"""Content-addressed on-disk cache of simulation results.

Each entry is one JSON file named after the :meth:`JobSpec.key` content
hash, sharded into 256 two-hex-digit subdirectories (``ab/ab12...json``)
so a full sweep never piles thousands of files into one directory.
Entries store the spec (for ``status``/debugging), the serialised
:class:`~repro.sim.metrics.SimulationResult` and execution metadata
(wall time, attempts).

Writes are atomic — serialise to a temp file in the same directory, then
``os.replace`` — so a sweep killed mid-write never leaves a truncated
entry, and concurrent writers of the same key simply race to an
identical file.  A corrupt or unreadable entry is treated as a miss and
deleted, never an error: the cache is a pure accelerator.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.sim.metrics import SimulationResult
from repro.sweep.jobs import JobSpec

#: cache directory used when none is given: ``REPRO_SWEEP_CACHE`` if set,
#: else ``.repro_sweep_cache`` under the current directory.
ENV_CACHE_DIR = "REPRO_SWEEP_CACHE"
DEFAULT_CACHE_DIRNAME = ".repro_sweep_cache"


def default_cache_dir() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIRNAME))


class ResultCache:
    """Directory of ``<key>.json`` simulation results, keyed by content."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self.path(key).is_file()

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None on miss/corruption."""
        entry = self.get_entry(key)
        if entry is None:
            return None
        try:
            return SimulationResult.from_dict(entry["result"])
        except (KeyError, TypeError, ValueError):
            self.evict(key)
            return None

    def get_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw cache entry (spec + result + meta), or None."""
        p = self.path(key)
        try:
            with open(p) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self.evict(key)
            return None

    def put(
        self,
        spec: JobSpec,
        result: SimulationResult,
        meta: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Persist one result atomically; returns the entry's key."""
        key = spec.key()
        p = self.path(key)
        p.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
            "meta": dict(meta or {}),
        }
        fd, tmp = tempfile.mkstemp(
            dir=p.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
                fh.write("\n")
            os.replace(tmp, p)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return key

    def evict(self, key: str) -> None:
        try:
            os.unlink(self.path(key))
        except OSError:
            pass

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return
        for p in sorted(self.root.glob("??/*.json")):
            yield p.stem

    def size_bytes(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(p.stat().st_size for p in self.root.glob("??/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        n = 0
        for key in list(self.keys()):
            self.evict(key)
            n += 1
        # prune now-empty shard directories (best-effort)
        if self.root.is_dir():
            for shard in self.root.glob("??"):
                try:
                    shard.rmdir()
                except OSError:
                    pass
        return n
